//! End-to-end checks of the §VIII future-work extensions (E1–E5) on a
//! shared quick corpus — the integration counterpart of the unit tests in
//! `cuisine_atlas::extensions` / `flavor_pairing`.

use clustering::hac::LinkageMethod;
use cuisine_atlas::extensions::{
    bootstrap_claims, kinds_ablation, linkage_sensitivity, pattern_tree_for_kinds,
};
use cuisine_atlas::flavor_pairing::pairing_world_map;
use cuisine_atlas::{AtlasConfig, CuisineAtlas};
use recipedb::alias::AliasTable;
use recipedb::{Cuisine, ItemKind};
use std::sync::OnceLock;

fn atlas() -> &'static CuisineAtlas {
    static ATLAS: OnceLock<CuisineAtlas> = OnceLock::new();
    ATLAS.get_or_init(|| CuisineAtlas::build(&AtlasConfig::quick(321)))
}

#[test]
fn e1_every_kind_variant_produces_a_complete_tree() {
    use ItemKind::*;
    for kinds in [
        vec![Ingredient],
        vec![Ingredient, Process],
        vec![Ingredient, Process, Utensil],
    ] {
        let tree = pattern_tree_for_kinds(atlas().db(), 0.2, &kinds, LinkageMethod::Average);
        assert_eq!(tree.dendrogram.n_leaves(), 26);
        let mut order = tree.dendrogram.leaf_order();
        order.sort_unstable();
        assert_eq!(order, (0..26).collect::<Vec<_>>());
    }
    let report = kinds_ablation(atlas());
    assert!(report.contains("ingredients only"));
}

#[test]
fn e2_alias_merge_keeps_the_pipeline_runnable_end_to_end() {
    let merged_db = recipedb::alias::apply(atlas().db(), &AliasTable::culinary_defaults());
    let merged = CuisineAtlas::from_db(merged_db, atlas().config());
    let table = merged.table1();
    assert_eq!(table.rows.len(), 26);
    // Caribbean's "garlic clove" merges into "garlic" — and the merged
    // item is frequent in so many cuisines (Mediterranean + Asian blocks
    // + the three garlic-clove Latin cuisines) that it crosses the
    // generic threshold and drops out of the significant-pattern report
    // entirely. That is the substantive effect of alias normalization the
    // paper's future-work section is after.
    let carib = &table.rows[Cuisine::Caribbean.index()];
    assert!(
        carib
            .top_patterns
            .iter()
            .all(|p| !p.pattern.contains("garlic")),
        "garlic must be generic after merging: {:?}",
        carib.top_patterns
    );
    let generic =
        cuisine_atlas::patterns::generic_items(merged.patterns(), merged.config().generic_fraction);
    let garlic = merged.db().catalog().token_of(recipedb::Item::Ingredient(
        merged.db().catalog().ingredient("garlic").unwrap(),
    ));
    assert!(generic.contains(&garlic.0), "merged garlic is generic");
    // The un-merged atlas still reports garlic clove for Caribbean.
    let base = &atlas().table1().rows[Cuisine::Caribbean.index()];
    assert_eq!(base.top_patterns[0].pattern, "garlic clove");
}

#[test]
fn e3_bootstrap_is_deterministic_given_seed() {
    let a = bootstrap_claims(atlas(), 3, 42);
    let b = bootstrap_claims(atlas(), 3, 42);
    assert_eq!(a.canada_france_rate, b.canada_france_rate);
    assert_eq!(a.india_nafrica_rate, b.india_nafrica_rate);
    assert!((a.mean_gamma_to_original - b.mean_gamma_to_original).abs() < 1e-12);
}

#[test]
fn e4_linkage_sensitivity_keeps_claims_across_methods() {
    let report = linkage_sensitivity(atlas());
    // Every row ends with two claim booleans; none may be false.
    for line in report.lines().skip(2) {
        assert!(
            !line.contains("false"),
            "claim failed under some linkage: {line}"
        );
    }
}

#[test]
fn e5_pairing_effect_is_strongest_in_the_butter_europe_block() {
    let map = pairing_world_map(atlas().db(), 3, 9);
    let delta_of = |c: Cuisine| map.iter().find(|h| h.cuisine == c).unwrap().delta;
    // All motif-driven cuisines pair above chance on the synthetic table.
    assert!(delta_of(Cuisine::French) > 0.0);
    assert!(delta_of(Cuisine::UK) > 0.0);
    // The butter-Europe block concentrates one flavor family, so it beats
    // a sparse-motif Latin cuisine.
    assert!(
        delta_of(Cuisine::French) > delta_of(Cuisine::Mexican),
        "French {} vs Mexican {}",
        delta_of(Cuisine::French),
        delta_of(Cuisine::Mexican)
    );
}
