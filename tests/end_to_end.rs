//! Cross-crate integration: corpus generation (recipedb) → frequent
//! pattern mining (pattern-mining) → feature encoding and clustering
//! (clustering) → the atlas pipeline (cuisine-atlas), asserting the
//! properties the paper's narrative depends on.

use clustering::validation::cophenetic_correlation;
use clustering::Metric;
use cuisine_atlas::compare::{geo_agreement, historical_claims};
use cuisine_atlas::{AtlasConfig, CuisineAtlas};
use recipedb::Cuisine;
use std::sync::OnceLock;

fn atlas() -> &'static CuisineAtlas {
    static ATLAS: OnceLock<CuisineAtlas> = OnceLock::new();
    ATLAS.get_or_init(|| CuisineAtlas::build(&AtlasConfig::quick(2025)))
}

#[test]
fn corpus_matches_paper_section3_shape() {
    let stats = atlas().db().stats();
    assert_eq!(
        stats.recipes_per_cuisine.iter().filter(|&&n| n > 0).count(),
        26
    );
    assert_eq!(stats.unique_processes, 268);
    assert_eq!(stats.unique_utensils, 69);
    assert!(
        (8.0..12.0).contains(&stats.avg_ingredients),
        "{}",
        stats.avg_ingredients
    );
    assert!(
        (10.0..14.0).contains(&stats.avg_processes),
        "{}",
        stats.avg_processes
    );
    assert!((2.0..4.0).contains(&stats.avg_utensils_when_present));
    let utensil_less = stats.recipes_without_utensils as f64 / stats.total_recipes as f64;
    assert!((0.10..0.15).contains(&utensil_less), "{utensil_less}");
}

#[test]
fn every_cuisine_yields_a_pattern_profile() {
    for cp in atlas().patterns() {
        assert!(
            (15..=200).contains(&cp.pattern_count()),
            "{}: {} patterns",
            cp.cuisine,
            cp.pattern_count()
        );
    }
    // The paper's two richest rows are the Indian Subcontinent (119) and
    // Northern Africa (134); the reproduction must keep them on top.
    let counts: Vec<(Cuisine, usize)> = atlas()
        .patterns()
        .iter()
        .map(|cp| (cp.cuisine, cp.pattern_count()))
        .collect();
    let mut sorted = counts.clone();
    sorted.sort_by_key(|&(_, n)| std::cmp::Reverse(n));
    let top5: Vec<Cuisine> = sorted.iter().take(5).map(|&(c, _)| c).collect();
    assert!(
        top5.contains(&Cuisine::IndianSubcontinent) && top5.contains(&Cuisine::NorthernAfrica),
        "top-5 by pattern count: {top5:?}"
    );
}

#[test]
fn trees_are_faithful_to_their_input_distances() {
    // Cophenetic correlation of every tree against its own distances —
    // an internal-consistency bound, not a paper number.
    for tree in [
        atlas().pattern_tree(Metric::Euclidean),
        atlas().pattern_tree(Metric::Cosine),
        atlas().pattern_tree(Metric::Jaccard),
        atlas().authenticity_tree(),
        atlas().geographic_tree(),
    ] {
        let c = cophenetic_correlation(&tree.dendrogram, &tree.distances);
        assert!(c > 0.55, "{}: cophenetic correlation {c}", tree.description);
    }
}

#[test]
fn historical_claims_hold_in_all_cuisine_trees_but_not_geography() {
    let a = atlas();
    for tree in [
        a.pattern_tree(Metric::Euclidean),
        a.pattern_tree(Metric::Cosine),
        a.pattern_tree(Metric::Jaccard),
        a.authenticity_tree(),
    ] {
        let claims = historical_claims(&tree);
        assert!(
            claims.canada_closer_to_france_than_us,
            "{}",
            tree.description
        );
        assert!(
            claims.india_closer_to_north_africa_than_neighbors,
            "{}",
            tree.description
        );
    }
    let geo = a.geographic_tree();
    assert!(!historical_claims(&geo).canada_closer_to_france_than_us);
}

#[test]
fn authenticity_tree_beats_pattern_trees_against_geography() {
    // Paper §VII: "the clusters obtained via the authenticity based
    // clustering gave similar yet better results ... when validated on
    // geographical distance based clusters".
    let a = atlas();
    let geo = a.geographic_tree();
    let auth = geo_agreement(&a.authenticity_tree(), &geo);
    for metric in [Metric::Euclidean, Metric::Cosine, Metric::Jaccard] {
        let pat = geo_agreement(&a.pattern_tree(metric), &geo);
        assert!(
            auth.bakers_gamma >= pat.bakers_gamma - 0.02,
            "authenticity gamma {} vs {} gamma {}",
            auth.bakers_gamma,
            metric,
            pat.bakers_gamma
        );
    }
}

#[test]
fn regional_blocks_form_in_the_pattern_tree() {
    // The qualitative block structure of Figures 2-4: East Asia coheres,
    // Thai sits with Southeast Asian, the Mediterranean trio coheres.
    let tree = atlas().pattern_tree(Metric::Euclidean);
    let coph = tree.dendrogram.cophenetic();
    let d = |a: Cuisine, b: Cuisine| coph.get(a.index(), b.index());

    assert!(d(Cuisine::Japanese, Cuisine::Korean) < d(Cuisine::Japanese, Cuisine::UK));
    assert!(
        d(Cuisine::ChineseAndMongolian, Cuisine::Japanese)
            < d(Cuisine::ChineseAndMongolian, Cuisine::Mexican)
    );
    assert!(d(Cuisine::Thai, Cuisine::SoutheastAsian) < d(Cuisine::Thai, Cuisine::Irish));
    assert!(d(Cuisine::Greek, Cuisine::Italian) < d(Cuisine::Greek, Cuisine::Japanese));
    assert!(d(Cuisine::UK, Cuisine::Irish) < d(Cuisine::UK, Cuisine::Thai));
}

#[test]
fn elbow_method_fails_as_in_figure_1() {
    // Figure 1's point: no sharp knee on the cuisine pattern vectors.
    let curve = atlas().elbow_curve(16, 9);
    let (_, strength) = clustering::kmeans::elbow_strength(&curve).expect("curve length");
    assert!(
        strength < 0.25,
        "cuisine data should have no sharp elbow, strength {strength}"
    );
    // WCSS still trends downward (valid k-means).
    assert!(curve.last().unwrap() < curve.first().unwrap());
}
