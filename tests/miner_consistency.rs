//! Cross-crate miner consistency: on real (synthetic-corpus) cuisine
//! transactions — not just the small random databases of the property
//! tests — all four miner implementations agree exactly, and the rule
//! inducer scores are coherent with raw supports.

use pattern_mining::apriori::Apriori;
use pattern_mining::charm::Charm;
use pattern_mining::eclat::Eclat;
use pattern_mining::fpgrowth::FpGrowth;
use pattern_mining::itemset::sort_canonical;
use pattern_mining::parallel::ParallelFpGrowth;
use pattern_mining::rules::{induce_rules, RuleConfig};
use pattern_mining::transaction::TransactionDb;
use pattern_mining::Miner;
use recipedb::generator::{CorpusGenerator, GeneratorConfig};
use recipedb::{Cuisine, RecipeDb};

fn corpus() -> RecipeDb {
    let mut cfg = GeneratorConfig::paper_scale(0.02).with_seed(77);
    cfg.min_recipes_per_cuisine = 150;
    CorpusGenerator::new(cfg).generate()
}

fn transactions(db: &RecipeDb, cuisine: Cuisine) -> TransactionDb {
    TransactionDb::from_rows(
        db.transactions_for(cuisine)
            .into_iter()
            .map(|tx| tx.into_iter().map(|t| t.0).collect())
            .collect(),
    )
}

#[test]
fn all_miners_agree_on_cuisine_transactions() {
    let db = corpus();
    for cuisine in [
        Cuisine::Korean,
        Cuisine::Italian,
        Cuisine::IndianSubcontinent,
    ] {
        let tdb = transactions(&db, cuisine);
        let mut fp = FpGrowth::new(0.2).mine(&tdb);
        let mut ap = Apriori::new(0.2).mine(&tdb);
        let mut ec = Eclat::new(0.2).mine(&tdb);
        let mut par = ParallelFpGrowth::new(0.2, 3).mine(&tdb);
        sort_canonical(&mut fp);
        sort_canonical(&mut ap);
        sort_canonical(&mut ec);
        sort_canonical(&mut par);
        assert_eq!(fp, ap, "{cuisine}: apriori disagrees");
        assert_eq!(fp, ec, "{cuisine}: eclat disagrees");
        assert_eq!(fp, par, "{cuisine}: parallel disagrees");
        assert!(!fp.is_empty(), "{cuisine}: nothing mined");
    }
}

#[test]
fn charm_matches_filtered_closed_sets_on_cuisine_data() {
    let db = corpus();
    for cuisine in [Cuisine::Korean, Cuisine::NorthernAfrica, Cuisine::US] {
        let tdb = transactions(&db, cuisine);
        let mut reference = pattern_mining::filter::closed(&FpGrowth::new(0.2).mine(&tdb));
        let mut charm = Charm::new(0.2).mine(&tdb);
        sort_canonical(&mut reference);
        sort_canonical(&mut charm);
        assert_eq!(charm, reference, "{cuisine}");
        assert!(!charm.is_empty(), "{cuisine}");
    }
}

#[test]
fn mined_counts_match_direct_support_counting() {
    let db = corpus();
    let tdb = transactions(&db, Cuisine::Japanese);
    for f in FpGrowth::new(0.25).mine(&tdb) {
        let brute = tdb
            .rows()
            .iter()
            .filter(|row| f.items.is_contained_in(row))
            .count() as u64;
        assert_eq!(f.count, brute, "{}", f.items);
    }
}

#[test]
fn rules_are_consistent_with_itemset_supports() {
    let db = corpus();
    let tdb = transactions(&db, Cuisine::Korean);
    let itemsets = FpGrowth::new(0.2).mine(&tdb);
    let rules = induce_rules(
        &itemsets,
        tdb.len(),
        &RuleConfig {
            min_confidence: 0.1,
            min_lift: 0.0,
        },
    );
    assert!(!rules.is_empty(), "Korean motifs must induce rules");
    for r in &rules {
        assert!(
            (0.0..=1.0 + 1e-9).contains(&r.confidence),
            "confidence {}",
            r.confidence
        );
        assert!(
            r.support <= r.confidence + 1e-9,
            "supp {} > conf {}",
            r.support,
            r.confidence
        );
        assert!(r.lift >= 0.0);
        // Confidence >= support of the union (since supp(A) <= 1).
        assert!(r.confidence + 1e-9 >= r.support);
    }
    // The signature implication: sesame oil ⇒ soy sauce at high confidence
    // (soy sauce co-occurs in the Korean motif).
    let cat = db.catalog();
    let soy = cat
        .token_of(recipedb::Item::Ingredient(
            cat.ingredient("soy sauce").unwrap(),
        ))
        .0;
    let sesame = cat
        .token_of(recipedb::Item::Ingredient(
            cat.ingredient("sesame oil").unwrap(),
        ))
        .0;
    let rule = rules
        .iter()
        .find(|r| r.antecedent.items() == [sesame] && r.consequent.items() == [soy])
        .expect("sesame oil => soy sauce rule");
    assert!(rule.confidence > 0.8, "confidence {}", rule.confidence);
    assert!(rule.lift > 1.5, "lift {}", rule.lift);
}

#[test]
fn mining_threshold_semantics_match_paper_convention() {
    // "support of 0.2" means count >= ceil(0.2 * n): an itemset in exactly
    // 20% of recipes is frequent.
    let rows: Vec<Vec<u32>> = (0..10)
        .map(|i| if i < 2 { vec![1, 2] } else { vec![3] })
        .collect();
    let tdb = TransactionDb::from_rows(rows);
    let mined = FpGrowth::new(0.2).mine(&tdb);
    assert!(
        mined.iter().any(|f| f.items.items() == [1, 2]),
        "exactly-20% itemset kept"
    );
}
