//! Table I reproduction checks against the published values, on a
//! 50%-scale corpus with a 2000-recipe floor (every per-cuisine support
//! estimate has a standard error below ~0.01).
//!
//! EXPERIMENTS.md records the full-scale paper-vs-measured comparison; this
//! test pins the *shape*: for every one of the 26 cuisines, the pattern
//! Table I reports is found among that cuisine's top significant patterns,
//! with a support within 0.07 of the published value (the calibration
//! lifts knife-edge supports by up to 0.04 — see DESIGN.md §2).

use cuisine_atlas::{AtlasConfig, CuisineAtlas};
use recipedb::generator::{cuisine_spec, GeneratorConfig};
use recipedb::Cuisine;
use std::sync::OnceLock;

fn atlas() -> &'static CuisineAtlas {
    static ATLAS: OnceLock<CuisineAtlas> = OnceLock::new();
    ATLAS.get_or_init(|| {
        let mut corpus = GeneratorConfig::paper_scale(0.5).with_seed(7);
        corpus.min_recipes_per_cuisine = 2000;
        let config = AtlasConfig {
            corpus,
            top_k: 8,
            ..AtlasConfig::paper()
        };
        CuisineAtlas::build(&config)
    })
}

/// The paper's pattern in the canonical (sorted, `+`-joined) string form.
fn canonical_paper_top(cuisine: Cuisine) -> (String, f64) {
    let spec = cuisine_spec(cuisine);
    let mut names: Vec<&str> = spec.paper_top.to_vec();
    names.sort_unstable();
    (names.join("+"), spec.paper_support)
}

#[test]
fn every_paper_top_pattern_is_recovered() {
    let table = atlas().table1();
    for row in &table.rows {
        let (expected, paper_support) = canonical_paper_top(row.cuisine);
        let found = row
            .top_patterns
            .iter()
            .find(|p| p.pattern == expected)
            .unwrap_or_else(|| {
                panic!(
                    "{}: paper pattern {:?} not in top significant patterns {:?}",
                    row.cuisine,
                    expected,
                    row.top_patterns
                        .iter()
                        .map(|p| &p.pattern)
                        .collect::<Vec<_>>()
                )
            });
        assert!(
            (found.support - paper_support).abs() <= 0.07,
            "{}: {} support {:.3} vs paper {:.2}",
            row.cuisine,
            expected,
            found.support,
            paper_support
        );
    }
}

#[test]
fn singleton_primaries_are_rank_one() {
    // Where the paper's top pattern is a single item whose support clearly
    // dominates (Japanese soy sauce 0.45, Greek olive oil 0.40, UK butter
    // 0.37, US oven 0.46, ...), it must be the *first* significant pattern.
    let table = atlas().table1();
    for (cuisine, pattern) in [
        (Cuisine::Japanese, "soy sauce"),
        (Cuisine::Greek, "olive oil"),
        (Cuisine::UK, "butter"),
        (Cuisine::US, "oven"),
        (Cuisine::Irish, "butter"),
        (Cuisine::Italian, "parmesan cheese"),
        (Cuisine::EasternEuropean, "cream"),
        (Cuisine::Deutschland, "onion"),
        (Cuisine::CentralAmerican, "onion"),
        (Cuisine::Mexican, "cilantro"),
        (Cuisine::SpanishAndPortuguese, "olive oil"),
    ] {
        let row = &table.rows[cuisine.index()];
        assert_eq!(
            row.top_patterns[0].pattern, pattern,
            "{cuisine}: top was {:?}",
            row.top_patterns[0]
        );
    }
}

#[test]
fn multi_item_primaries_are_recovered_at_rank_one() {
    let table = atlas().table1();
    for (cuisine, pattern) in [
        (Cuisine::Belgian, "butter+salt"),
        (Cuisine::ChineseAndMongolian, "add+heat+soy sauce"),
        (Cuisine::Thai, "add+fish sauce+heat"),
        (Cuisine::Korean, "sesame oil+soy sauce"),
        (Cuisine::MiddleEastern, "bowl+salt"),
        (Cuisine::Scandinavian, "butter+salt"),
        (Cuisine::IndianSubcontinent, "add+heat+onion+salt"),
    ] {
        let row = &table.rows[cuisine.index()];
        assert_eq!(
            row.top_patterns[0].pattern, pattern,
            "{cuisine}: top was {:?}",
            row.top_patterns[0]
        );
    }
}

#[test]
fn supports_scale_with_the_paper_ordering() {
    // Cross-cuisine support ordering from Table I: Japanese soy sauce
    // (0.45) and US oven (0.46) dominate everything reported around 0.2.
    let table = atlas().table1();
    let top = |c: Cuisine| table.rows[c.index()].top_patterns[0].support;
    assert!(top(Cuisine::Japanese) > top(Cuisine::Canadian) + 0.1);
    assert!(top(Cuisine::US) > top(Cuisine::SouthAmerican) + 0.1);
    assert!(top(Cuisine::Greek) > top(Cuisine::Caribbean));
}

#[test]
fn corpus_universes_match_section3_exactly() {
    let stats = atlas().db().stats();
    assert_eq!(stats.unique_ingredients, 20_280);
    assert_eq!(stats.unique_processes, 268);
    assert_eq!(stats.unique_utensils, 69);
}
