//! Corpus-level statistics mirroring the figures quoted in the paper's
//! Data Collection section (Section III).

use serde::{Deserialize, Serialize};

use crate::cuisine::Cuisine;
use crate::store::RecipeDb;

/// Aggregate statistics of a corpus.
///
/// The paper's reference values for the full RecipeDB snapshot:
/// 118,071 recipes; 20,280 unique ingredients; 268 unique processes;
/// 69 unique utensils; ~10 ingredients, ~12 processes, ~3 utensils per
/// recipe; 14,601 recipes with no utensil information.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CorpusStats {
    /// Total recipes in the corpus.
    pub total_recipes: usize,
    /// Number of unique ingredient names.
    pub unique_ingredients: usize,
    /// Number of unique process names.
    pub unique_processes: usize,
    /// Number of unique utensil names.
    pub unique_utensils: usize,
    /// Mean ingredients per recipe.
    pub avg_ingredients: f64,
    /// Mean processes per recipe.
    pub avg_processes: f64,
    /// Mean utensils per recipe, over recipes that have utensil data.
    pub avg_utensils_when_present: f64,
    /// Recipes that carry no utensil information.
    pub recipes_without_utensils: usize,
    /// Recipes per cuisine, indexed by `Cuisine::index()`.
    pub recipes_per_cuisine: Vec<usize>,
}

impl CorpusStats {
    /// Compute statistics for a corpus.
    pub fn compute(db: &RecipeDb) -> CorpusStats {
        let total = db.recipe_count();
        let mut ing_sum = 0usize;
        let mut proc_sum = 0usize;
        let mut ute_sum = 0usize;
        let mut with_utensils = 0usize;
        for r in db.recipes() {
            ing_sum += r.ingredients.len();
            proc_sum += r.processes.len();
            if r.has_utensils() {
                ute_sum += r.utensils.len();
                with_utensils += 1;
            }
        }
        let denom = total.max(1) as f64;
        CorpusStats {
            total_recipes: total,
            unique_ingredients: db.catalog().ingredient_count(),
            unique_processes: db.catalog().process_count(),
            unique_utensils: db.catalog().utensil_count(),
            avg_ingredients: ing_sum as f64 / denom,
            avg_processes: proc_sum as f64 / denom,
            avg_utensils_when_present: ute_sum as f64 / with_utensils.max(1) as f64,
            recipes_without_utensils: total - with_utensils,
            recipes_per_cuisine: Cuisine::ALL.iter().map(|&c| db.recipes_in(c)).collect(),
        }
    }

    /// Render a small human-readable report.
    pub fn report(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("recipes:               {}\n", self.total_recipes));
        out.push_str(&format!(
            "unique ingredients:    {}\n",
            self.unique_ingredients
        ));
        out.push_str(&format!(
            "unique processes:      {}\n",
            self.unique_processes
        ));
        out.push_str(&format!(
            "unique utensils:       {}\n",
            self.unique_utensils
        ));
        out.push_str(&format!(
            "avg ingredients/recipe: {:.2}\n",
            self.avg_ingredients
        ));
        out.push_str(&format!(
            "avg processes/recipe:   {:.2}\n",
            self.avg_processes
        ));
        out.push_str(&format!(
            "avg utensils/recipe (when present): {:.2}\n",
            self.avg_utensils_when_present
        ));
        out.push_str(&format!(
            "recipes without utensils: {}\n",
            self.recipes_without_utensils
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::RecipeDbBuilder;

    #[test]
    fn compute_on_tiny_corpus() {
        let mut b = RecipeDbBuilder::new();
        let a = b.catalog_mut().intern_ingredient("a");
        let c = b.catalog_mut().intern_ingredient("c");
        let p = b.catalog_mut().intern_process("p");
        let u = b.catalog_mut().intern_utensil("u");
        b.add_recipe("r0", Cuisine::UK, vec![a, c], vec![p], vec![u]);
        b.add_recipe("r1", Cuisine::UK, vec![a], vec![p], vec![]);
        let db = b.build().unwrap();
        let s = db.stats();
        assert_eq!(s.total_recipes, 2);
        assert_eq!(s.unique_ingredients, 2);
        assert_eq!(s.unique_processes, 1);
        assert_eq!(s.unique_utensils, 1);
        assert!((s.avg_ingredients - 1.5).abs() < 1e-12);
        assert!((s.avg_processes - 1.0).abs() < 1e-12);
        assert!((s.avg_utensils_when_present - 1.0).abs() < 1e-12);
        assert_eq!(s.recipes_without_utensils, 1);
        assert_eq!(s.recipes_per_cuisine[Cuisine::UK.index()], 2);
        let report = s.report();
        assert!(report.contains("recipes:               2"));
    }

    #[test]
    fn compute_on_empty_corpus_does_not_divide_by_zero() {
        let db = RecipeDbBuilder::new().build().unwrap();
        let s = db.stats();
        assert_eq!(s.total_recipes, 0);
        assert_eq!(s.avg_ingredients, 0.0);
        assert_eq!(s.avg_utensils_when_present, 0.0);
    }
}
