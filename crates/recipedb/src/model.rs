//! Core entity types: typed identifiers, items and recipes.
//!
//! Every recipe is an *unordered* collection of ingredients, cooking
//! processes and utensils, exactly as the paper treats them ("Each recipe
//! was treated as an unordered list of ingredients, processes and
//! utensils"). Identifiers are small newtyped integers into the interned
//! [`crate::catalog::Catalog`].

use serde::{Deserialize, Serialize};

/// Identifier of a recipe within a [`crate::store::RecipeDb`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RecipeId(pub u32);

/// Identifier of an interned ingredient name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct IngredientId(pub u32);

/// Identifier of an interned cooking-process name (e.g. "add", "heat").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ProcessId(pub u32);

/// Identifier of an interned utensil name (e.g. "bowl", "skillet").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct UtensilId(pub u32);

/// The three kinds of entities a recipe is composed of.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ItemKind {
    /// A food ingredient ("soy sauce", "butter", ...).
    Ingredient,
    /// A cooking action ("add", "heat", "bake", ...).
    Process,
    /// A cooking vessel or tool ("bowl", "oven", "skillet", ...).
    Utensil,
}

impl ItemKind {
    /// All three kinds in a fixed order.
    pub const ALL: [ItemKind; 3] = [ItemKind::Ingredient, ItemKind::Process, ItemKind::Utensil];

    /// Human-readable singular label.
    pub fn label(self) -> &'static str {
        match self {
            ItemKind::Ingredient => "ingredient",
            ItemKind::Process => "process",
            ItemKind::Utensil => "utensil",
        }
    }
}

impl std::fmt::Display for ItemKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A single kinded item reference — the atom the miner works over.
///
/// The paper concatenates ingredients, processes and utensils into one
/// transaction per recipe; `Item` preserves the kind so the same surface
/// string can exist as, say, both an ingredient and a process without
/// colliding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Item {
    /// An ingredient reference.
    Ingredient(IngredientId),
    /// A process reference.
    Process(ProcessId),
    /// A utensil reference.
    Utensil(UtensilId),
}

impl Item {
    /// The kind of this item.
    pub fn kind(self) -> ItemKind {
        match self {
            Item::Ingredient(_) => ItemKind::Ingredient,
            Item::Process(_) => ItemKind::Process,
            Item::Utensil(_) => ItemKind::Utensil,
        }
    }

    /// The raw interned index, independent of kind.
    pub fn raw(self) -> u32 {
        match self {
            Item::Ingredient(IngredientId(i)) => i,
            Item::Process(ProcessId(i)) => i,
            Item::Utensil(UtensilId(i)) => i,
        }
    }
}

/// A recipe: a named, cuisine-tagged unordered set of items.
///
/// Invariants maintained by [`crate::store::RecipeDb`]:
/// * `ingredients`, `processes` and `utensils` are sorted and deduplicated;
/// * `utensils` may be empty (14,601 of the 118,071 paper recipes have no
///   utensil information).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Recipe {
    /// Identifier within the owning store.
    pub id: RecipeId,
    /// Display name (synthetic corpora use a deterministic name).
    pub name: String,
    /// The geo-cultural cuisine this recipe belongs to.
    pub cuisine: crate::cuisine::Cuisine,
    /// Sorted, deduplicated ingredient ids.
    pub ingredients: Vec<IngredientId>,
    /// Sorted, deduplicated process ids.
    pub processes: Vec<ProcessId>,
    /// Sorted, deduplicated utensil ids (possibly empty).
    pub utensils: Vec<UtensilId>,
}

impl Recipe {
    /// Total number of items across all three kinds.
    pub fn item_count(&self) -> usize {
        self.ingredients.len() + self.processes.len() + self.utensils.len()
    }

    /// Whether the recipe has any utensil information.
    pub fn has_utensils(&self) -> bool {
        !self.utensils.is_empty()
    }

    /// Iterate over every item of the recipe as a kinded [`Item`].
    pub fn items(&self) -> impl Iterator<Item = Item> + '_ {
        self.ingredients
            .iter()
            .map(|&i| Item::Ingredient(i))
            .chain(self.processes.iter().map(|&p| Item::Process(p)))
            .chain(self.utensils.iter().map(|&u| Item::Utensil(u)))
    }

    /// Whether the recipe contains the given item.
    pub fn contains(&self, item: Item) -> bool {
        match item {
            Item::Ingredient(i) => self.ingredients.binary_search(&i).is_ok(),
            Item::Process(p) => self.processes.binary_search(&p).is_ok(),
            Item::Utensil(u) => self.utensils.binary_search(&u).is_ok(),
        }
    }

    /// Normalise the item lists: sort and deduplicate each kind.
    pub fn normalize(&mut self) {
        self.ingredients.sort_unstable();
        self.ingredients.dedup();
        self.processes.sort_unstable();
        self.processes.dedup();
        self.utensils.sort_unstable();
        self.utensils.dedup();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cuisine::Cuisine;

    fn sample_recipe() -> Recipe {
        Recipe {
            id: RecipeId(7),
            name: "test".into(),
            cuisine: Cuisine::Japanese,
            ingredients: vec![IngredientId(2), IngredientId(5)],
            processes: vec![ProcessId(1)],
            utensils: vec![],
        }
    }

    #[test]
    fn item_count_sums_all_kinds() {
        assert_eq!(sample_recipe().item_count(), 3);
    }

    #[test]
    fn has_utensils_false_when_empty() {
        assert!(!sample_recipe().has_utensils());
    }

    #[test]
    fn items_iterates_every_kind_in_order() {
        let r = sample_recipe();
        let items: Vec<Item> = r.items().collect();
        assert_eq!(
            items,
            vec![
                Item::Ingredient(IngredientId(2)),
                Item::Ingredient(IngredientId(5)),
                Item::Process(ProcessId(1)),
            ]
        );
    }

    #[test]
    fn contains_uses_binary_search_on_sorted_lists() {
        let r = sample_recipe();
        assert!(r.contains(Item::Ingredient(IngredientId(5))));
        assert!(!r.contains(Item::Ingredient(IngredientId(3))));
        assert!(r.contains(Item::Process(ProcessId(1))));
        assert!(!r.contains(Item::Utensil(UtensilId(0))));
    }

    #[test]
    fn normalize_sorts_and_dedups() {
        let mut r = sample_recipe();
        r.ingredients = vec![IngredientId(9), IngredientId(1), IngredientId(9)];
        r.normalize();
        assert_eq!(r.ingredients, vec![IngredientId(1), IngredientId(9)]);
    }

    #[test]
    fn item_kind_roundtrip() {
        assert_eq!(
            Item::Ingredient(IngredientId(3)).kind(),
            ItemKind::Ingredient
        );
        assert_eq!(Item::Process(ProcessId(3)).kind(), ItemKind::Process);
        assert_eq!(Item::Utensil(UtensilId(3)).kind(), ItemKind::Utensil);
        assert_eq!(Item::Utensil(UtensilId(3)).raw(), 3);
    }

    #[test]
    fn item_kind_display_labels() {
        assert_eq!(ItemKind::Ingredient.to_string(), "ingredient");
        assert_eq!(ItemKind::Process.to_string(), "process");
        assert_eq!(ItemKind::Utensil.to_string(), "utensil");
    }
}
