//! A fluent query API over a [`RecipeDb`]: filter recipes by cuisine,
//! item membership and structural properties, and compute item
//! co-occurrence statistics (the raw material of food-pairing analyses in
//! the paper's lineage — Jain et al. 2015, Ahn et al. 2011).

use std::collections::HashMap;

use crate::catalog::TokenId;
use crate::cuisine::Cuisine;
use crate::model::{Item, Recipe};
use crate::store::RecipeDb;

/// A composable recipe filter. All constraints are conjunctive.
#[derive(Debug, Clone, Default)]
pub struct RecipeQuery {
    cuisines: Option<Vec<Cuisine>>,
    must_contain: Vec<Item>,
    must_not_contain: Vec<Item>,
    min_ingredients: Option<usize>,
    max_ingredients: Option<usize>,
    requires_utensils: Option<bool>,
    name_contains: Option<String>,
}

impl RecipeQuery {
    /// Match everything.
    pub fn new() -> Self {
        Self::default()
    }

    /// Restrict to one cuisine (call repeatedly for a union of cuisines).
    pub fn cuisine(mut self, cuisine: Cuisine) -> Self {
        self.cuisines.get_or_insert_with(Vec::new).push(cuisine);
        self
    }

    /// Require an item to be present.
    pub fn containing(mut self, item: Item) -> Self {
        self.must_contain.push(item);
        self
    }

    /// Require an item to be absent.
    pub fn excluding(mut self, item: Item) -> Self {
        self.must_not_contain.push(item);
        self
    }

    /// Require at least `n` ingredients.
    pub fn min_ingredients(mut self, n: usize) -> Self {
        self.min_ingredients = Some(n);
        self
    }

    /// Require at most `n` ingredients.
    pub fn max_ingredients(mut self, n: usize) -> Self {
        self.max_ingredients = Some(n);
        self
    }

    /// Require utensil information to be present (or absent).
    pub fn with_utensils(mut self, present: bool) -> Self {
        self.requires_utensils = Some(present);
        self
    }

    /// Require the recipe name to contain a substring (case-sensitive).
    pub fn name_contains(mut self, needle: impl Into<String>) -> Self {
        self.name_contains = Some(needle.into());
        self
    }

    /// Whether a recipe satisfies every constraint.
    pub fn matches(&self, recipe: &Recipe) -> bool {
        if let Some(cs) = &self.cuisines {
            if !cs.contains(&recipe.cuisine) {
                return false;
            }
        }
        if self.must_contain.iter().any(|&it| !recipe.contains(it)) {
            return false;
        }
        if self.must_not_contain.iter().any(|&it| recipe.contains(it)) {
            return false;
        }
        if let Some(min) = self.min_ingredients {
            if recipe.ingredients.len() < min {
                return false;
            }
        }
        if let Some(max) = self.max_ingredients {
            if recipe.ingredients.len() > max {
                return false;
            }
        }
        if let Some(req) = self.requires_utensils {
            if recipe.has_utensils() != req {
                return false;
            }
        }
        if let Some(needle) = &self.name_contains {
            if !recipe.name.contains(needle.as_str()) {
                return false;
            }
        }
        true
    }

    /// Run the query.
    pub fn execute<'db>(&self, db: &'db RecipeDb) -> Vec<&'db Recipe> {
        match &self.cuisines {
            // Use the cuisine index when possible.
            Some(cs) => {
                let mut out = Vec::new();
                for &c in cs {
                    out.extend(db.cuisine_recipes(c).filter(|r| self.matches(r)));
                }
                out
            }
            None => db.recipes().filter(|r| self.matches(r)).collect(),
        }
    }

    /// Count matches without materializing them.
    pub fn count(&self, db: &RecipeDb) -> usize {
        match &self.cuisines {
            Some(cs) => cs
                .iter()
                .map(|&c| db.cuisine_recipes(c).filter(|r| self.matches(r)).count())
                .sum(),
            None => db.recipes().filter(|r| self.matches(r)).count(),
        }
    }
}

/// Pairwise item co-occurrence counts within a recipe set.
///
/// `count(a, b)` is the number of recipes containing both tokens; the
/// marginals and total enable probabilistic scores (see
/// `cuisine_atlas::pairing` for PMI on top of this).
#[derive(Debug, Clone)]
pub struct CooccurrenceCounts {
    /// Number of recipes aggregated.
    pub n_recipes: usize,
    /// Per-token recipe counts.
    pub marginals: HashMap<TokenId, u32>,
    /// Pair counts, keyed by `(min_token, max_token)`.
    pub pairs: HashMap<(TokenId, TokenId), u32>,
}

impl CooccurrenceCounts {
    /// Count co-occurrences over the recipes of one cuisine, restricted to
    /// tokens with at least `min_count` occurrences (keeps the pair table
    /// small: the long tail cannot form meaningful pairs anyway).
    pub fn for_cuisine(db: &RecipeDb, cuisine: Cuisine, min_count: u32) -> Self {
        let marginals_all = db.item_frequencies(cuisine);
        let keep: HashMap<TokenId, u32> = marginals_all
            .into_iter()
            .filter(|&(_, c)| c >= min_count)
            .collect();
        let mut pairs: HashMap<(TokenId, TokenId), u32> = HashMap::new();
        let mut n_recipes = 0usize;
        for r in db.cuisine_recipes(cuisine) {
            n_recipes += 1;
            let toks: Vec<TokenId> = db
                .recipe_tokens(r)
                .into_iter()
                .filter(|t| keep.contains_key(t))
                .collect();
            for i in 0..toks.len() {
                for j in (i + 1)..toks.len() {
                    *pairs.entry((toks[i], toks[j])).or_insert(0) += 1;
                }
            }
        }
        CooccurrenceCounts {
            n_recipes,
            marginals: keep,
            pairs,
        }
    }

    /// Co-occurrence count of a pair (order-insensitive).
    pub fn pair(&self, a: TokenId, b: TokenId) -> u32 {
        let key = if a <= b { (a, b) } else { (b, a) };
        self.pairs.get(&key).copied().unwrap_or(0)
    }

    /// Marginal count of a token.
    pub fn marginal(&self, t: TokenId) -> u32 {
        self.marginals.get(&t).copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{IngredientId, Item};
    use crate::store::RecipeDbBuilder;

    fn db() -> (RecipeDb, IngredientId, IngredientId) {
        let mut b = RecipeDbBuilder::new();
        let soy = b.catalog_mut().intern_ingredient("soy sauce");
        let rice = b.catalog_mut().intern_ingredient("rice");
        let heat = b.catalog_mut().intern_process("heat");
        let wok = b.catalog_mut().intern_utensil("wok");
        b.add_recipe(
            "teriyaki bowl",
            Cuisine::Japanese,
            vec![soy, rice],
            vec![heat],
            vec![wok],
        );
        b.add_recipe(
            "plain rice",
            Cuisine::Japanese,
            vec![rice],
            vec![heat],
            vec![],
        );
        b.add_recipe(
            "fried rice",
            Cuisine::Thai,
            vec![soy, rice],
            vec![heat],
            vec![wok],
        );
        (b.build().unwrap(), soy, rice)
    }

    #[test]
    fn cuisine_and_containment_filters() {
        let (db, soy, _) = db();
        let q = RecipeQuery::new()
            .cuisine(Cuisine::Japanese)
            .containing(Item::Ingredient(soy));
        assert_eq!(q.count(&db), 1);
        assert_eq!(q.execute(&db)[0].name, "teriyaki bowl");
    }

    #[test]
    fn union_of_cuisines() {
        let (db, soy, _) = db();
        let q = RecipeQuery::new()
            .cuisine(Cuisine::Japanese)
            .cuisine(Cuisine::Thai)
            .containing(Item::Ingredient(soy));
        assert_eq!(q.count(&db), 2);
    }

    #[test]
    fn exclusion_and_size_filters() {
        let (db, soy, _) = db();
        let q = RecipeQuery::new().excluding(Item::Ingredient(soy));
        assert_eq!(q.count(&db), 1);
        assert_eq!(RecipeQuery::new().min_ingredients(2).count(&db), 2);
        assert_eq!(RecipeQuery::new().max_ingredients(1).count(&db), 1);
    }

    #[test]
    fn utensil_and_name_filters() {
        let (db, _, _) = db();
        assert_eq!(RecipeQuery::new().with_utensils(false).count(&db), 1);
        assert_eq!(RecipeQuery::new().with_utensils(true).count(&db), 2);
        assert_eq!(RecipeQuery::new().name_contains("rice").count(&db), 2);
    }

    #[test]
    fn empty_query_matches_all() {
        let (db, _, _) = db();
        assert_eq!(RecipeQuery::new().count(&db), 3);
        assert_eq!(RecipeQuery::new().execute(&db).len(), 3);
    }

    #[test]
    fn cooccurrence_counts() {
        let (db, soy, rice) = db();
        let co = CooccurrenceCounts::for_cuisine(&db, Cuisine::Japanese, 1);
        let ts = db.catalog().token_of(Item::Ingredient(soy));
        let tr = db.catalog().token_of(Item::Ingredient(rice));
        assert_eq!(co.n_recipes, 2);
        assert_eq!(co.marginal(ts), 1);
        assert_eq!(co.marginal(tr), 2);
        assert_eq!(co.pair(ts, tr), 1);
        assert_eq!(co.pair(tr, ts), 1, "order-insensitive");
        // min_count filter drops rare tokens entirely.
        let co2 = CooccurrenceCounts::for_cuisine(&db, Cuisine::Japanese, 2);
        assert_eq!(co2.marginal(ts), 0);
        assert_eq!(co2.pair(ts, tr), 0);
        assert_eq!(co2.marginal(tr), 2);
    }
}
