//! String interning for ingredients, processes and utensils, plus a unified
//! token space used by the pattern miner.
//!
//! The paper's corpus has 20,280 unique ingredients, 268 unique processes
//! and 69 unique utensils; keeping them interned lets a recipe be a handful
//! of `u32`s and lets the miner work over dense integer ids. The
//! [`Catalog`] additionally exposes a *unified token space*: a bijection
//! between kinded [`Item`]s and dense [`TokenId`]s (`0..total_items`) so a
//! transaction database can mix all three kinds without collisions.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::model::{IngredientId, Item, ItemKind, ProcessId, UtensilId};

/// A dense id in the unified (ingredient ∪ process ∪ utensil) token space.
///
/// Layout: `[0, n_ing)` are ingredients, `[n_ing, n_ing + n_proc)` are
/// processes, and the remainder are utensils. The layout is an internal
/// detail — use [`Catalog::token_of`] / [`Catalog::item_of`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TokenId(pub u32);

/// An append-only string interner with stable indices.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Interner {
    names: Vec<String>,
    #[serde(skip)]
    index: HashMap<String, u32>,
}

impl Interner {
    /// Create an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern `name`, returning its stable index.
    pub fn intern(&mut self, name: &str) -> u32 {
        if let Some(&id) = self.index.get(name) {
            return id;
        }
        let id = u32::try_from(self.names.len()).expect("interner overflow");
        self.names.push(name.to_owned());
        self.index.insert(name.to_owned(), id);
        id
    }

    /// Look up an already-interned name.
    pub fn get(&self, name: &str) -> Option<u32> {
        self.index.get(name).copied()
    }

    /// Resolve an index back to its name.
    pub fn resolve(&self, id: u32) -> Option<&str> {
        self.names.get(id as usize).map(String::as_str)
    }

    /// Number of interned names.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the interner is empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterate over `(id, name)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (i as u32, n.as_str()))
    }

    /// Rebuild the reverse index after deserialization.
    pub(crate) fn rebuild_index(&mut self) {
        self.index = self
            .names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.clone(), i as u32))
            .collect();
    }
}

/// The three interners of a corpus plus the unified token space.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Catalog {
    ingredients: Interner,
    processes: Interner,
    utensils: Interner,
}

impl Catalog {
    /// Create an empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern an ingredient name.
    pub fn intern_ingredient(&mut self, name: &str) -> IngredientId {
        IngredientId(self.ingredients.intern(name))
    }

    /// Intern a process name.
    pub fn intern_process(&mut self, name: &str) -> ProcessId {
        ProcessId(self.processes.intern(name))
    }

    /// Intern a utensil name.
    pub fn intern_utensil(&mut self, name: &str) -> UtensilId {
        UtensilId(self.utensils.intern(name))
    }

    /// Look up an ingredient by name.
    pub fn ingredient(&self, name: &str) -> Option<IngredientId> {
        self.ingredients.get(name).map(IngredientId)
    }

    /// Look up a process by name.
    pub fn process(&self, name: &str) -> Option<ProcessId> {
        self.processes.get(name).map(ProcessId)
    }

    /// Look up a utensil by name.
    pub fn utensil(&self, name: &str) -> Option<UtensilId> {
        self.utensils.get(name).map(UtensilId)
    }

    /// Look up an item of any kind by name, trying ingredient, process,
    /// then utensil.
    pub fn item(&self, name: &str) -> Option<Item> {
        self.ingredient(name)
            .map(Item::Ingredient)
            .or_else(|| self.process(name).map(Item::Process))
            .or_else(|| self.utensil(name).map(Item::Utensil))
    }

    /// Resolve an item to its display name.
    pub fn name_of(&self, item: Item) -> Option<&str> {
        match item {
            Item::Ingredient(IngredientId(i)) => self.ingredients.resolve(i),
            Item::Process(ProcessId(i)) => self.processes.resolve(i),
            Item::Utensil(UtensilId(i)) => self.utensils.resolve(i),
        }
    }

    /// Number of unique ingredients.
    pub fn ingredient_count(&self) -> usize {
        self.ingredients.len()
    }

    /// Number of unique processes.
    pub fn process_count(&self) -> usize {
        self.processes.len()
    }

    /// Number of unique utensils.
    pub fn utensil_count(&self) -> usize {
        self.utensils.len()
    }

    /// Total size of the unified token space.
    pub fn token_count(&self) -> usize {
        self.ingredient_count() + self.process_count() + self.utensil_count()
    }

    /// Map a kinded item into the unified dense token space.
    pub fn token_of(&self, item: Item) -> TokenId {
        let n_ing = self.ingredients.len() as u32;
        let n_proc = self.processes.len() as u32;
        match item {
            Item::Ingredient(IngredientId(i)) => {
                debug_assert!(i < n_ing, "ingredient id out of range");
                TokenId(i)
            }
            Item::Process(ProcessId(i)) => {
                debug_assert!(i < n_proc, "process id out of range");
                TokenId(n_ing + i)
            }
            Item::Utensil(UtensilId(i)) => {
                debug_assert!(
                    (i as usize) < self.utensils.len(),
                    "utensil id out of range"
                );
                TokenId(n_ing + n_proc + i)
            }
        }
    }

    /// Map a unified token back to its kinded item.
    pub fn item_of(&self, token: TokenId) -> Option<Item> {
        let n_ing = self.ingredients.len() as u32;
        let n_proc = self.processes.len() as u32;
        let n_ute = self.utensils.len() as u32;
        let t = token.0;
        if t < n_ing {
            Some(Item::Ingredient(IngredientId(t)))
        } else if t < n_ing + n_proc {
            Some(Item::Process(ProcessId(t - n_ing)))
        } else if t < n_ing + n_proc + n_ute {
            Some(Item::Utensil(UtensilId(t - n_ing - n_proc)))
        } else {
            None
        }
    }

    /// Resolve a unified token directly to its display name.
    pub fn token_name(&self, token: TokenId) -> Option<&str> {
        self.item_of(token).and_then(|it| self.name_of(it))
    }

    /// Iterate over all ingredient `(id, name)` pairs.
    pub fn ingredients(&self) -> impl Iterator<Item = (IngredientId, &str)> {
        self.ingredients.iter().map(|(i, n)| (IngredientId(i), n))
    }

    /// Iterate over all process `(id, name)` pairs.
    pub fn processes(&self) -> impl Iterator<Item = (ProcessId, &str)> {
        self.processes.iter().map(|(i, n)| (ProcessId(i), n))
    }

    /// Iterate over all utensil `(id, name)` pairs.
    pub fn utensils(&self) -> impl Iterator<Item = (UtensilId, &str)> {
        self.utensils.iter().map(|(i, n)| (UtensilId(i), n))
    }

    /// The kind of entity a unified token refers to.
    pub fn kind_of(&self, token: TokenId) -> Option<ItemKind> {
        self.item_of(token).map(Item::kind)
    }

    /// Rebuild reverse indices after deserialization.
    pub(crate) fn rebuild_indices(&mut self) {
        self.ingredients.rebuild_index();
        self.processes.rebuild_index();
        self.utensils.rebuild_index();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interner_returns_stable_ids() {
        let mut i = Interner::new();
        let a = i.intern("salt");
        let b = i.intern("pepper");
        let a2 = i.intern("salt");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(i.resolve(a), Some("salt"));
        assert_eq!(i.len(), 2);
        assert!(!i.is_empty());
    }

    #[test]
    fn interner_get_without_intern() {
        let mut i = Interner::new();
        assert_eq!(i.get("salt"), None);
        i.intern("salt");
        assert_eq!(i.get("salt"), Some(0));
    }

    #[test]
    fn catalog_token_space_is_a_bijection() {
        let mut c = Catalog::new();
        let butter = c.intern_ingredient("butter");
        let salt = c.intern_ingredient("salt");
        let add = c.intern_process("add");
        let bowl = c.intern_utensil("bowl");

        let items = [
            Item::Ingredient(butter),
            Item::Ingredient(salt),
            Item::Process(add),
            Item::Utensil(bowl),
        ];
        for item in items {
            let tok = c.token_of(item);
            assert_eq!(c.item_of(tok), Some(item), "roundtrip failed for {item:?}");
        }
        // Dense and distinct.
        let toks: Vec<u32> = items.iter().map(|&i| c.token_of(i).0).collect();
        let mut sorted = toks.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 4);
        assert_eq!(c.token_count(), 4);
        assert_eq!(c.item_of(TokenId(4)), None);
    }

    #[test]
    fn catalog_lookup_by_name_prefers_ingredient() {
        let mut c = Catalog::new();
        let ing = c.intern_ingredient("blend");
        let _proc = c.intern_process("blend");
        assert_eq!(c.item("blend"), Some(Item::Ingredient(ing)));
        assert_eq!(c.item("missing"), None);
    }

    #[test]
    fn token_name_resolves_through_kinds() {
        let mut c = Catalog::new();
        c.intern_ingredient("soy sauce");
        let heat = c.intern_process("heat");
        let tok = c.token_of(Item::Process(heat));
        assert_eq!(c.token_name(tok), Some("heat"));
        assert_eq!(c.kind_of(tok), Some(ItemKind::Process));
    }

    #[test]
    fn interner_iter_in_id_order() {
        let mut i = Interner::new();
        i.intern("a");
        i.intern("b");
        let pairs: Vec<(u32, &str)> = i.iter().collect();
        assert_eq!(pairs, vec![(0, "a"), (1, "b")]);
    }
}
