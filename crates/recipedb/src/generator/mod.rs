//! Calibrated synthetic corpus generation (the RecipeDB stand-in).
//!
//! See [`spec`] for the per-cuisine calibration and DESIGN.md §2 for why a
//! calibrated synthetic corpus is a faithful substitute for the paper's
//! proprietary RecipeDB snapshot.
//!
//! # Generation model
//!
//! Per recipe of cuisine `c`:
//!
//! 1. Decide utensil presence (the paper: 14,601 of 118,071 recipes carry
//!    no utensil information, so presence ≈ 0.8763).
//! 2. Fire each **motif** of `c` independently with its target support;
//!    motifs containing utensils fire only in utensil-bearing recipes,
//!    with probability scaled by `1 / utensil_presence` so the
//!    unconditional support still hits the target. A fired motif then
//!    fires each **child** with probability `child.support /
//!    parent.support` (children encode the paper's nested Table I rows).
//! 3. Sample each **staple** independently. Staples whose item appears in
//!    any motif of `c` are dropped — the motif is then the *only* source
//!    of that item, which makes the motif a closed itemset with exactly
//!    its target support (the property the Table I report relies on).
//! 4. Draw a couple of **regional pool** ingredients (shared pools are the
//!    authenticity-clustering signal); items colliding with `c`'s motif
//!    items are rejected so they cannot distort calibrated supports.
//! 5. Top up ingredients / processes / utensils to per-recipe size targets
//!    (~10 / ~12 / ~3, as reported in §III of the paper) from the long
//!    uniform tails, which keeps every tail item far below the 0.2 mining
//!    threshold.
//!
//! Everything is driven by a single master seed; each cuisine gets an
//! independent deterministic stream, so corpora are reproducible and
//! per-cuisine output does not depend on generation order.

pub mod pools;
pub mod spec;

use std::collections::HashSet;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::catalog::Catalog;
use crate::cuisine::Cuisine;
use crate::model::{IngredientId, ItemKind, ProcessId, UtensilId};
use crate::store::{RecipeDb, RecipeDbBuilder};

pub use spec::{all_specs, cuisine_spec, CuisineSpec, MotifSpec, StapleSpec};

/// Fraction of recipes with utensil information in the paper's corpus:
/// `1 − 14,601 / 118,071`.
pub const UTENSIL_PRESENCE: f64 = 1.0 - 14_601.0 / 118_071.0;

/// Configuration of the synthetic corpus generator.
#[derive(Debug, Clone)]
pub struct GeneratorConfig {
    /// Master RNG seed; every derived stream is a pure function of it.
    pub seed: u64,
    /// Scale factor on Table I's per-region recipe counts (1.0 = the full
    /// 118k-recipe corpus).
    pub scale: f64,
    /// Per-cuisine floor so tiny scales still produce usable supports
    /// (Korean has only 668 recipes at full scale).
    pub min_recipes_per_cuisine: usize,
    /// Probability that a recipe carries utensil information.
    pub utensil_presence: f64,
    /// Size of the ingredient name universe (signature + pool + tail).
    pub target_unique_ingredients: usize,
    /// Mean ingredients per recipe.
    pub mean_ingredients: f64,
    /// Mean processes per recipe.
    pub mean_processes: f64,
    /// Mean utensils per utensil-bearing recipe.
    pub mean_utensils: f64,
    /// Regional-pool ingredient draws per recipe.
    pub regional_draws: usize,
}

impl GeneratorConfig {
    /// A corpus at `scale` × the paper's per-region recipe counts.
    pub fn paper_scale(scale: f64) -> Self {
        assert!(scale > 0.0, "scale must be positive");
        GeneratorConfig {
            seed: 0xC0FFEE,
            scale,
            min_recipes_per_cuisine: 40,
            utensil_presence: UTENSIL_PRESENCE,
            target_unique_ingredients: pools::TARGET_UNIQUE_INGREDIENTS,
            mean_ingredients: 10.0,
            mean_processes: 12.0,
            mean_utensils: 3.0,
            regional_draws: 2,
        }
    }

    /// The full-scale corpus (118k recipes — takes a few seconds).
    pub fn full_paper() -> Self {
        Self::paper_scale(1.0)
    }

    /// Replace the master seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Number of recipes to generate for one cuisine.
    pub fn recipes_for(&self, cuisine: Cuisine) -> usize {
        let scaled = (cuisine.paper_recipe_count() as f64 * self.scale).round() as usize;
        scaled.max(self.min_recipes_per_cuisine)
    }

    /// Total recipes across all cuisines.
    pub fn total_recipes(&self) -> usize {
        Cuisine::ALL.iter().map(|&c| self.recipes_for(c)).sum()
    }
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        Self::paper_scale(0.05)
    }
}

/// A compiled (interned, probability-adjusted) motif.
#[derive(Debug, Clone)]
struct CompiledMotif {
    ingredients: Vec<IngredientId>,
    processes: Vec<ProcessId>,
    utensils: Vec<UtensilId>,
    /// Probability of firing, conditional on the recipe satisfying the
    /// utensil requirement (and on the parent having fired, for children).
    prob: f64,
    requires_utensils: bool,
    children: Vec<CompiledMotif>,
}

/// A compiled staple.
#[derive(Debug, Clone)]
struct CompiledStaple {
    item: CompiledItem,
    prob: f64,
}

#[derive(Debug, Clone, Copy)]
enum CompiledItem {
    Ingredient(IngredientId),
    Process(ProcessId),
    Utensil(UtensilId),
}

/// One cuisine's ready-to-sample state.
struct CompiledCuisine {
    cuisine: Cuisine,
    motifs: Vec<CompiledMotif>,
    staples: Vec<CompiledStaple>,
    /// Regional-pool ingredient ids (motif collisions already excluded).
    regional: Vec<IngredientId>,
}

/// The corpus generator. Construct with a [`GeneratorConfig`], call
/// [`CorpusGenerator::generate`].
pub struct CorpusGenerator {
    config: GeneratorConfig,
}

impl CorpusGenerator {
    /// Create a generator.
    pub fn new(config: GeneratorConfig) -> Self {
        CorpusGenerator { config }
    }

    /// Generate the corpus. Deterministic in the config.
    pub fn generate(&self) -> RecipeDb {
        self.generate_with_threads(1)
    }

    /// Generate the corpus on up to `threads` worker threads.
    ///
    /// Every cuisine already draws from an independent RNG stream derived
    /// from the master seed (reproducible and order-free), so each
    /// cuisine's recipe batch is generated in parallel and the batches
    /// are appended to the builder in fixed [`Cuisine::ALL`] order — the
    /// resulting corpus is **bit-for-bit identical** to the sequential
    /// build for any thread count. Cuisines are claimed largest-first so
    /// the heavy batches (Italian is ~25× Korean) never strand a lone
    /// straggler thread at the end of the run.
    pub fn generate_with_threads(&self, threads: usize) -> RecipeDb {
        let cfg = &self.config;
        let mut builder = RecipeDbBuilder::new();
        let specs = spec::all_specs();

        // Intern every "real" name up front so ids are stable regardless of
        // which recipes end up using them.
        let compiled: Vec<CompiledCuisine> = specs
            .iter()
            .map(|s| compile_cuisine(s, cfg, builder.catalog_mut()))
            .collect();

        // Long-tail names: enough to reach the target unique-ingredient
        // count on top of the real names.
        let real_names: HashSet<&str> = specs
            .iter()
            .flat_map(|s| s.mentioned_items())
            .filter(|&(k, _)| k == ItemKind::Ingredient)
            .map(|(_, n)| n)
            .chain(
                pools::ALL_POOLS
                    .iter()
                    .flat_map(|p| pools::regional_pool(p).iter().copied()),
            )
            .collect();
        let tail_count = cfg
            .target_unique_ingredients
            .saturating_sub(builder.catalog().ingredient_count());
        let tail_names = pools::tail_ingredient_names(tail_count, &real_names);
        let tail_ids: Vec<IngredientId> = tail_names
            .iter()
            .map(|n| builder.catalog_mut().intern_ingredient(n))
            .collect();

        // Processes and utensils: the full fixed universes are interned,
        // but the *fill* pools exclude every name a staple or motif
        // samples explicitly — otherwise the uniform top-up draws would
        // add ~3% to each calibrated probability and push sub-threshold
        // staples onto the mining-threshold knife edge.
        let reserved: HashSet<(ItemKind, &str)> =
            specs.iter().flat_map(|s| s.mentioned_items()).collect();
        let process_names = pools::process_names();
        let process_ids: Vec<ProcessId> = process_names
            .iter()
            .map(|n| builder.catalog_mut().intern_process(n))
            .collect();
        let process_fill: Vec<ProcessId> = process_names
            .iter()
            .zip(&process_ids)
            .filter(|(n, _)| !reserved.contains(&(ItemKind::Process, n.as_str())))
            .map(|(_, &id)| id)
            .collect();
        let utensil_ids: Vec<UtensilId> = pools::UTENSILS
            .iter()
            .map(|n| builder.catalog_mut().intern_utensil(n))
            .collect();
        let utensil_fill: Vec<UtensilId> = pools::UTENSILS
            .iter()
            .zip(&utensil_ids)
            .filter(|(n, _)| !reserved.contains(&(ItemKind::Utensil, **n)))
            .map(|(_, &id)| id)
            .collect();

        // Generate each cuisine's batch independently (workers claim
        // cuisines largest-first), then append in fixed Cuisine::ALL
        // order so recipe ids and the final corpus are identical to a
        // sequential build.
        let claim_order = par::descending_cost_order(
            &compiled
                .iter()
                .map(|cc| cfg.recipes_for(cc.cuisine) as u64)
                .collect::<Vec<_>>(),
        );
        let compiled_ref = &compiled;
        let tail_ref = &tail_ids;
        let process_ref = &process_fill;
        let utensil_ref = &utensil_fill;
        let batches: Vec<CuisineBatch> = par::map_claiming(threads, &claim_order, |c| {
            cuisine_batch(&compiled_ref[c], cfg, tail_ref, process_ref, utensil_ref)
        });

        for (cc, batch) in compiled.iter().zip(batches) {
            for (i, recipe) in batch.into_iter().enumerate() {
                builder.add_recipe(
                    format!("{} recipe {i}", cc.cuisine.name()),
                    cc.cuisine,
                    recipe.0,
                    recipe.1,
                    recipe.2,
                );
            }
        }

        builder
            .build()
            .expect("generated corpus is internally consistent")
    }

    /// The configuration in use.
    pub fn config(&self) -> &GeneratorConfig {
        &self.config
    }
}

fn compile_item(kind: ItemKind, name: &str, catalog: &mut Catalog) -> CompiledItem {
    match kind {
        ItemKind::Ingredient => CompiledItem::Ingredient(catalog.intern_ingredient(name)),
        ItemKind::Process => CompiledItem::Process(catalog.intern_process(name)),
        ItemKind::Utensil => CompiledItem::Utensil(catalog.intern_utensil(name)),
    }
}

fn compile_motif(
    m: &MotifSpec,
    parent_support: Option<f64>,
    utensil_presence: f64,
    catalog: &mut Catalog,
) -> CompiledMotif {
    let mut ingredients = Vec::new();
    let mut processes = Vec::new();
    let mut utensils = Vec::new();
    for &(kind, name) in &m.items {
        match compile_item(kind, name, catalog) {
            CompiledItem::Ingredient(i) => ingredients.push(i),
            CompiledItem::Process(p) => processes.push(p),
            CompiledItem::Utensil(u) => utensils.push(u),
        }
    }
    let requires_utensils = !utensils.is_empty();
    // Conditional probability: divide by the parent's support for children,
    // and by utensil presence when this motif introduces the utensil
    // requirement (a child of a utensil-bearing parent is already
    // conditioned on presence).
    let mut prob = match parent_support {
        Some(ps) => m.support / ps,
        None => m.support,
    };
    if requires_utensils && parent_support.is_none() {
        prob /= utensil_presence;
    }
    let children = m
        .children
        .iter()
        .map(|c| compile_motif(c, Some(m.support), utensil_presence, catalog))
        .collect();
    CompiledMotif {
        ingredients,
        processes,
        utensils,
        prob: prob.min(1.0),
        requires_utensils,
        children,
    }
}

fn compile_cuisine(
    s: &CuisineSpec,
    cfg: &GeneratorConfig,
    catalog: &mut Catalog,
) -> CompiledCuisine {
    let motifs: Vec<CompiledMotif> = s
        .motifs
        .iter()
        .map(|m| compile_motif(m, None, cfg.utensil_presence, catalog))
        .collect();

    // Items claimed by motifs: their staples are dropped (see module docs).
    let motif_items: HashSet<(ItemKind, &str)> =
        s.motifs.iter().flat_map(|m| m.all_items()).collect();

    let staples: Vec<CompiledStaple> = s
        .staples
        .iter()
        .filter(|st| !motif_items.contains(&(st.kind, st.name)))
        .map(|st| {
            let item = compile_item(st.kind, st.name, catalog);
            let prob = match st.kind {
                ItemKind::Utensil => (st.prob / cfg.utensil_presence).min(1.0),
                _ => st.prob,
            };
            CompiledStaple { item, prob }
        })
        .collect();

    // Regional pool, with motif-item collisions rejected at compile time.
    let motif_names: HashSet<&str> = motif_items
        .iter()
        .filter(|&&(k, _)| k == ItemKind::Ingredient)
        .map(|&(_, n)| n)
        .collect();
    let mut regional: Vec<IngredientId> = Vec::new();
    for pool in &s.pools {
        for name in pools::regional_pool(pool) {
            if !motif_names.contains(name) {
                regional.push(catalog.intern_ingredient(name));
            }
        }
    }
    regional.sort_unstable();
    regional.dedup();

    CompiledCuisine {
        cuisine: s.cuisine,
        motifs,
        staples,
        regional,
    }
}

/// One cuisine's generated recipes, in generation order.
type CuisineBatch = Vec<(Vec<IngredientId>, Vec<ProcessId>, Vec<UtensilId>)>;

/// Generate one cuisine's full recipe batch from its own derived RNG
/// stream. Pure in its inputs — safe to run on any thread, in any order.
fn cuisine_batch(
    cc: &CompiledCuisine,
    cfg: &GeneratorConfig,
    tail_ids: &[IngredientId],
    process_fill: &[ProcessId],
    utensil_fill: &[UtensilId],
) -> CuisineBatch {
    let n = cfg.recipes_for(cc.cuisine);
    // Independent stream per cuisine: reproducible and order-free.
    let mut rng = StdRng::seed_from_u64(
        cfg.seed ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(cc.cuisine.index() as u64 + 1)),
    );
    (0..n)
        .map(|_| generate_recipe(cc, cfg, tail_ids, process_fill, utensil_fill, &mut rng))
        .collect()
}

/// Sample an approximately normal count via Box–Muller, clamped.
fn sample_count(rng: &mut StdRng, mean: f64, sd: f64, min: usize, max: usize) -> usize {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen();
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    let v = (mean + sd * z).round();
    (v.max(min as f64) as usize).min(max)
}

fn fire_motif(
    m: &CompiledMotif,
    has_utensils: bool,
    out: &mut (Vec<IngredientId>, Vec<ProcessId>, Vec<UtensilId>),
    rng: &mut StdRng,
) {
    if m.requires_utensils && !has_utensils {
        return;
    }
    if !rng.gen_bool(m.prob) {
        return;
    }
    out.0.extend_from_slice(&m.ingredients);
    out.1.extend_from_slice(&m.processes);
    out.2.extend_from_slice(&m.utensils);
    for child in &m.children {
        fire_motif(child, has_utensils, out, rng);
    }
}

#[allow(clippy::type_complexity)]
fn generate_recipe(
    cc: &CompiledCuisine,
    cfg: &GeneratorConfig,
    tail_ids: &[IngredientId],
    process_ids: &[ProcessId],
    utensil_ids: &[UtensilId],
    rng: &mut StdRng,
) -> (Vec<IngredientId>, Vec<ProcessId>, Vec<UtensilId>) {
    let has_utensils = rng.gen_bool(cfg.utensil_presence);
    let mut out = (Vec::new(), Vec::new(), Vec::new());

    for motif in &cc.motifs {
        fire_motif(motif, has_utensils, &mut out, rng);
    }

    for staple in &cc.staples {
        match staple.item {
            CompiledItem::Utensil(u) => {
                if has_utensils && rng.gen_bool(staple.prob) {
                    out.2.push(u);
                }
            }
            CompiledItem::Ingredient(i) => {
                if rng.gen_bool(staple.prob) {
                    out.0.push(i);
                }
            }
            CompiledItem::Process(p) => {
                if rng.gen_bool(staple.prob) {
                    out.1.push(p);
                }
            }
        }
    }

    // Regional flavour draws (below mining threshold by construction).
    if !cc.regional.is_empty() {
        for _ in 0..cfg.regional_draws {
            let idx = rng.gen_range(0..cc.regional.len());
            out.0.push(cc.regional[idx]);
        }
    }

    // Top up to per-recipe size targets from the uniform long tails.
    let ing_target = sample_count(rng, cfg.mean_ingredients, 2.0, 3, 24);
    while out.0.len() < ing_target && !tail_ids.is_empty() {
        out.0.push(tail_ids[rng.gen_range(0..tail_ids.len())]);
    }
    let proc_target = sample_count(rng, cfg.mean_processes, 2.5, 4, 30);
    while out.1.len() < proc_target && !process_ids.is_empty() {
        out.1.push(process_ids[rng.gen_range(0..process_ids.len())]);
    }
    if has_utensils {
        let ute_target = sample_count(rng, cfg.mean_utensils, 1.0, 1, 8);
        while out.2.len() < ute_target && !utensil_ids.is_empty() {
            out.2.push(utensil_ids[rng.gen_range(0..utensil_ids.len())]);
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Item;

    fn small_db(seed: u64) -> RecipeDb {
        CorpusGenerator::new(GeneratorConfig::paper_scale(0.02).with_seed(seed)).generate()
    }

    #[test]
    fn generation_is_deterministic() {
        let a = small_db(7);
        let b = small_db(7);
        assert_eq!(a.recipe_count(), b.recipe_count());
        let ra = a.recipe(crate::model::RecipeId(100)).unwrap();
        let rb = b.recipe(crate::model::RecipeId(100)).unwrap();
        assert_eq!(ra, rb);
    }

    #[test]
    fn parallel_generation_is_bit_identical_to_sequential() {
        let gen = CorpusGenerator::new(GeneratorConfig::paper_scale(0.02).with_seed(2024));
        let seq = gen.generate();
        for threads in [2, 4, 13] {
            let par = gen.generate_with_threads(threads);
            assert_eq!(seq.recipe_count(), par.recipe_count(), "threads {threads}");
            for (a, b) in seq.recipes().zip(par.recipes()) {
                assert_eq!(a, b, "threads {threads}");
            }
            // The serialized corpora must match byte for byte.
            let sj = crate::io::to_json(&seq).unwrap();
            let pj = crate::io::to_json(&par).unwrap();
            assert_eq!(sj, pj, "threads {threads}");
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = small_db(7);
        let b = small_db(8);
        let differs = a
            .recipes()
            .zip(b.recipes())
            .any(|(x, y)| x.ingredients != y.ingredients);
        assert!(differs);
    }

    #[test]
    fn all_cuisines_present_with_floored_counts() {
        let cfg = GeneratorConfig::paper_scale(0.02).with_seed(1);
        let db = CorpusGenerator::new(cfg.clone()).generate();
        assert_eq!(db.cuisine_count(), 26);
        for &c in &Cuisine::ALL {
            assert_eq!(db.recipes_in(c), cfg.recipes_for(c), "{c}");
            assert!(db.recipes_in(c) >= cfg.min_recipes_per_cuisine);
        }
        assert_eq!(db.recipe_count(), cfg.total_recipes());
    }

    #[test]
    fn per_recipe_sizes_match_paper_shape() {
        let db = small_db(3);
        let stats = db.stats();
        assert!(
            (8.0..12.5).contains(&stats.avg_ingredients),
            "avg ingredients {}",
            stats.avg_ingredients
        );
        assert!(
            (10.0..14.5).contains(&stats.avg_processes),
            "avg processes {}",
            stats.avg_processes
        );
        assert!(
            (2.0..4.5).contains(&stats.avg_utensils_when_present),
            "avg utensils {}",
            stats.avg_utensils_when_present
        );
        // ~12.4% of recipes lack utensils.
        let frac = stats.recipes_without_utensils as f64 / stats.total_recipes as f64;
        assert!((0.09..0.16).contains(&frac), "utensil-less fraction {frac}");
    }

    #[test]
    fn catalogs_match_paper_universes() {
        let db = small_db(5);
        // Processes and utensils are fully interned up front.
        assert_eq!(db.catalog().process_count(), 268);
        assert_eq!(db.catalog().utensil_count(), 69);
        // Ingredient universe is the full 20,280 (usage varies with scale).
        assert_eq!(
            db.catalog().ingredient_count(),
            pools::TARGET_UNIQUE_INGREDIENTS
        );
    }

    #[test]
    fn primary_signature_supports_land_near_targets() {
        // Statistically adequate corpus: >= 1000 recipes per cuisine keeps
        // the binomial std-err of every support under 0.016, so the 0.06
        // tolerance below is ~4 standard errors.
        let mut cfg = GeneratorConfig::paper_scale(0.2).with_seed(11);
        cfg.min_recipes_per_cuisine = 1000;
        let db = CorpusGenerator::new(cfg).generate();
        for spec in spec::all_specs() {
            // Measure the support of the primary motif's full item set.
            let items: Vec<Item> = spec.motifs[0]
                .items
                .iter()
                .map(|&(k, n)| match k {
                    ItemKind::Ingredient => Item::Ingredient(db.catalog().ingredient(n).unwrap()),
                    ItemKind::Process => Item::Process(db.catalog().process(n).unwrap()),
                    ItemKind::Utensil => Item::Utensil(db.catalog().utensil(n).unwrap()),
                })
                .collect();
            let n_recipes = db.recipes_in(spec.cuisine);
            let hits = db
                .cuisine_recipes(spec.cuisine)
                .filter(|r| items.iter().all(|&it| r.contains(it)))
                .count();
            let support = hits as f64 / n_recipes as f64;
            let target = spec.motifs[0].support;
            assert!(
                (support - target).abs() < 0.06,
                "{}: measured {support:.3} vs target {target:.3}",
                spec.cuisine
            );
        }
    }

    #[test]
    fn sample_count_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let c = sample_count(&mut rng, 10.0, 2.0, 3, 24);
            assert!((3..=24).contains(&c));
        }
    }

    #[test]
    fn config_scaling_and_floor() {
        let cfg = GeneratorConfig::paper_scale(0.5);
        assert_eq!(cfg.recipes_for(Cuisine::Italian), 8291);
        // Korean 668 * 0.01 = 7 -> floored to 40.
        let tiny = GeneratorConfig::paper_scale(0.01);
        assert_eq!(tiny.recipes_for(Cuisine::Korean), 40);
    }

    #[test]
    #[should_panic(expected = "scale must be positive")]
    fn zero_scale_rejected() {
        let _ = GeneratorConfig::paper_scale(0.0);
    }
}
