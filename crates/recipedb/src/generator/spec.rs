//! Per-cuisine generation specifications, calibrated to Table I of the
//! paper and to the qualitative block structure its dendrograms report.
//!
//! Each cuisine is described by:
//!
//! * **Motifs** — signature item bundles that fire as a unit with a target
//!   support (e.g. `{soy sauce, add, heat}` at 0.28 for Chinese and
//!   Mongolian). A motif may carry *children*: conditional extensions that
//!   fire only when the parent fired, with their own absolute support
//!   target (e.g. the US `{oven}` motif at 0.47 with a
//!   `{bake, preheat, bowl}` child at 0.22, reproducing both of Table I's
//!   US rows). Motif supports are set ~0.01 above the published value so
//!   sampling noise cannot push them under the 0.2 mining threshold.
//! * **Staples** — independent per-item probabilities for the generic
//!   backbone (salt, add, heat, ...). These produce the "highly skewed"
//!   generic patterns the paper remarks on.
//! * **Pools** — regional ingredient pools (below mining threshold) shared
//!   between related cuisines; they drive the authenticity-based
//!   clustering.
//!
//! Calibration rules (see DESIGN.md):
//! * a distinctive item appears in exactly one motif of a cuisine, so the
//!   motif is the *closed* itemset that the Table I report surfaces;
//! * per cuisine, the primary motif's support exceeds every secondary's by
//!   at least 0.02 so the Table I ranking is stable under sampling noise;
//! * cross-cuisine blocks (CJK, butter-Europe, Mediterranean, spice belt,
//!   Latin, Thai/SE-Asia) share motif strings, which is what makes the
//!   pattern-based dendrograms group them; Canadian shares the
//!   cream/skillet/white-wine motifs with French but not the oven-centric
//!   US motifs, reproducing the paper's Canada–France finding.

use crate::cuisine::Cuisine;
use crate::model::ItemKind;

use super::pools;

/// A signature bundle with a target support, plus optional conditional
/// extensions.
#[derive(Debug, Clone)]
pub struct MotifSpec {
    /// The items that fire together.
    pub items: Vec<(ItemKind, &'static str)>,
    /// Absolute target support of the bundle within the cuisine.
    pub support: f64,
    /// Conditional extensions; each child's `support` is an absolute
    /// target and must not exceed the parent's.
    pub children: Vec<MotifSpec>,
}

/// An independently sampled generic item.
#[derive(Debug, Clone)]
pub struct StapleSpec {
    /// Item kind.
    pub kind: ItemKind,
    /// Item display name.
    pub name: &'static str,
    /// Per-recipe inclusion probability.
    pub prob: f64,
}

/// Everything needed to generate one cuisine's recipes.
#[derive(Debug, Clone)]
pub struct CuisineSpec {
    /// Which cuisine this spec describes.
    pub cuisine: Cuisine,
    /// Signature bundles.
    pub motifs: Vec<MotifSpec>,
    /// Generic backbone items.
    pub staples: Vec<StapleSpec>,
    /// Regional ingredient pools this cuisine draws flavour items from.
    pub pools: Vec<&'static str>,
    /// Items of the top pattern Table I reports for this cuisine.
    pub paper_top: &'static [&'static str],
    /// The support Table I reports for that pattern.
    pub paper_support: f64,
    /// The "Number of patterns" column of Table I.
    pub paper_pattern_count: usize,
}

fn ing(name: &'static str) -> (ItemKind, &'static str) {
    (ItemKind::Ingredient, name)
}
fn prc(name: &'static str) -> (ItemKind, &'static str) {
    (ItemKind::Process, name)
}
fn ute(name: &'static str) -> (ItemKind, &'static str) {
    (ItemKind::Utensil, name)
}

fn motif(items: Vec<(ItemKind, &'static str)>, support: f64) -> MotifSpec {
    MotifSpec {
        items,
        support,
        children: Vec::new(),
    }
}

fn motif_with(
    items: Vec<(ItemKind, &'static str)>,
    support: f64,
    children: Vec<MotifSpec>,
) -> MotifSpec {
    MotifSpec {
        items,
        support,
        children,
    }
}

/// The generic backbone shared by every cuisine. Probabilities are chosen
/// so that a handful of generic singletons and pairs clear the 0.2 mining
/// threshold in every cuisine (the paper: "most regions containing patterns
/// having generic ingredients such as 'salt', 'onion' and processes such as
/// 'add' and 'cook'").
fn base_staples() -> Vec<StapleSpec> {
    // Every probability sits well away from the 0.2 mining threshold
    // (and so do the products of the high-probability pairs), so the
    // generic pattern set is stable under sampling noise.
    let mk = |kind, name, prob| StapleSpec { kind, name, prob };
    vec![
        mk(ItemKind::Ingredient, "salt", 0.60),
        mk(ItemKind::Ingredient, "water", 0.30),
        mk(ItemKind::Ingredient, "black pepper", 0.24),
        mk(ItemKind::Ingredient, "onion", 0.15),
        mk(ItemKind::Ingredient, "garlic", 0.15),
        mk(ItemKind::Ingredient, "sugar", 0.15),
        mk(ItemKind::Ingredient, "flour", 0.12),
        mk(ItemKind::Ingredient, "egg", 0.12),
        mk(ItemKind::Ingredient, "milk", 0.12),
        mk(ItemKind::Ingredient, "vegetable oil", 0.24),
        mk(ItemKind::Process, "add", 0.55),
        mk(ItemKind::Process, "heat", 0.50),
        mk(ItemKind::Process, "cook", 0.45),
        mk(ItemKind::Process, "stir", 0.30),
        mk(ItemKind::Process, "mix", 0.30),
        mk(ItemKind::Process, "place", 0.28),
        mk(ItemKind::Process, "combine", 0.25),
        mk(ItemKind::Process, "serve", 0.24),
        mk(ItemKind::Process, "pour", 0.28),
        mk(ItemKind::Process, "cut", 0.26),
        mk(ItemKind::Process, "chop", 0.25),
        mk(ItemKind::Process, "season", 0.24),
        mk(ItemKind::Process, "sprinkle", 0.22),
        mk(ItemKind::Process, "drain", 0.22),
        mk(ItemKind::Process, "boil", 0.16),
        mk(ItemKind::Process, "simmer", 0.16),
        mk(ItemKind::Process, "bake", 0.12),
        mk(ItemKind::Utensil, "bowl", 0.12),
        mk(ItemKind::Utensil, "pan", 0.24),
        mk(ItemKind::Utensil, "pot", 0.24),
        mk(ItemKind::Utensil, "knife", 0.10),
        mk(ItemKind::Utensil, "oven", 0.10),
        mk(ItemKind::Utensil, "skillet", 0.10),
    ]
}

/// Base staples with per-cuisine overrides/additions applied.
fn staples(overrides: &[(ItemKind, &'static str, f64)]) -> Vec<StapleSpec> {
    let mut out = base_staples();
    for &(kind, name, prob) in overrides {
        if let Some(existing) = out.iter_mut().find(|s| s.kind == kind && s.name == name) {
            existing.prob = prob;
        } else {
            out.push(StapleSpec { kind, name, prob });
        }
    }
    out
}

/// Build the calibrated spec for one cuisine.
pub fn cuisine_spec(cuisine: Cuisine) -> CuisineSpec {
    use Cuisine::*;
    use ItemKind::{Process, Utensil};
    match cuisine {
        Australian => CuisineSpec {
            cuisine,
            motifs: vec![
                motif(vec![ing("butter")], 0.25),
                motif(vec![ing("flour")], 0.225),
                motif(vec![ing("sugar")], 0.225),
                motif(vec![ing("egg")], 0.225),
            ],
            staples: staples(&[
                (Utensil, "oven", 0.22),
                (Utensil, "bowl", 0.22),
                (Process, "bake", 0.16),
            ]),
            pools: vec![pools::POOL_EUROPE, pools::POOL_NORTH_AMERICA],
            paper_top: &["butter"],
            paper_support: 0.24,
            paper_pattern_count: 29,
        },
        Belgian => CuisineSpec {
            cuisine,
            motifs: vec![
                motif(vec![ing("butter"), ing("salt")], 0.26),
                motif(vec![ing("flour")], 0.225),
                motif(vec![ing("egg")], 0.225),
                motif(vec![ing("cream")], 0.225),
            ],
            staples: staples(&[]),
            pools: vec![pools::POOL_EUROPE],
            paper_top: &["butter", "salt"],
            paper_support: 0.24,
            paper_pattern_count: 51,
        },
        Canadian => CuisineSpec {
            cuisine,
            motifs: vec![
                motif(vec![ing("onion")], 0.24),
                motif(vec![ing("cream")], 0.225),
                motif(vec![ute("skillet")], 0.225),
                motif(vec![ing("white wine")], 0.225),
                motif(vec![ing("flour")], 0.225),
                motif(vec![ing("sugar")], 0.225),
                motif(vec![ing("dijon mustard")], 0.225),
            ],
            staples: staples(&[]),
            // Deliberately European (not North-American) pools: the
            // paper's headline finding is that Canadian cuisine clusters
            // with French, reflecting colonial history.
            pools: vec![pools::POOL_EUROPE],
            paper_top: &["onion"],
            paper_support: 0.20,
            paper_pattern_count: 31,
        },
        Caribbean => CuisineSpec {
            cuisine,
            motifs: vec![
                motif(vec![ing("garlic clove")], 0.25),
                motif(vec![ing("onion")], 0.225),
                motif(vec![ing("lime juice")], 0.225),
                motif(vec![ing("thyme")], 0.225),
                motif(vec![ing("allspice")], 0.225),
            ],
            staples: staples(&[]),
            pools: vec![pools::POOL_LATIN, pools::POOL_AFRICA],
            paper_top: &["garlic clove"],
            paper_support: 0.24,
            paper_pattern_count: 32,
        },
        CentralAmerican => CuisineSpec {
            cuisine,
            motifs: vec![
                motif(vec![ing("onion")], 0.31),
                motif(vec![ing("garlic clove")], 0.225),
                motif(vec![ing("corn")], 0.225),
                motif(vec![ing("lime juice")], 0.225),
            ],
            staples: staples(&[]),
            pools: vec![pools::POOL_LATIN],
            paper_top: &["onion"],
            paper_support: 0.30,
            paper_pattern_count: 38,
        },
        ChineseAndMongolian => CuisineSpec {
            cuisine,
            motifs: vec![
                motif(vec![ing("soy sauce"), prc("add"), prc("heat")], 0.28),
                motif(vec![ing("rice")], 0.225),
                motif(vec![ing("ginger"), ing("garlic")], 0.225),
                motif(vec![ing("sesame oil")], 0.225),
                motif(vec![ute("wok")], 0.225),
            ],
            staples: staples(&[]),
            pools: vec![pools::POOL_EAST_ASIA],
            paper_top: &["soy sauce", "add", "heat"],
            paper_support: 0.27,
            paper_pattern_count: 88,
        },
        Deutschland => CuisineSpec {
            cuisine,
            motifs: vec![
                motif(vec![ing("onion")], 0.30),
                motif(vec![ing("butter")], 0.225),
                motif(vec![ing("flour")], 0.225),
                motif(vec![ing("potato")], 0.225),
            ],
            staples: staples(&[(Utensil, "oven", 0.22), (Utensil, "bowl", 0.22)]),
            pools: vec![pools::POOL_EUROPE],
            paper_top: &["onion"],
            paper_support: 0.29,
            paper_pattern_count: 54,
        },
        EasternEuropean => CuisineSpec {
            cuisine,
            motifs: vec![
                motif(vec![ing("cream")], 0.31),
                motif(vec![ing("potato")], 0.225),
                motif(vec![ing("onion")], 0.225),
                motif(vec![ing("dill")], 0.225),
            ],
            staples: staples(&[]),
            pools: vec![pools::POOL_EUROPE, pools::POOL_NORDIC],
            paper_top: &["cream"],
            paper_support: 0.30,
            paper_pattern_count: 60,
        },
        French => CuisineSpec {
            cuisine,
            motifs: vec![
                motif(vec![ute("skillet")], 0.24),
                motif(vec![ing("cream")], 0.225),
                motif(vec![ing("butter")], 0.225),
                motif(vec![ing("white wine")], 0.225),
                motif(vec![ing("flour")], 0.225),
                motif(vec![ing("dijon mustard")], 0.225),
            ],
            staples: staples(&[]),
            pools: vec![pools::POOL_EUROPE],
            paper_top: &["skillet"],
            paper_support: 0.21,
            paper_pattern_count: 60,
        },
        Greek => CuisineSpec {
            cuisine,
            motifs: vec![
                motif(vec![ing("olive oil")], 0.41),
                motif(vec![ing("garlic")], 0.225),
                motif(vec![ing("tomato")], 0.225),
                motif(vec![ing("lemon juice")], 0.225),
                motif(vec![ing("flour")], 0.225),
            ],
            staples: staples(&[]),
            pools: vec![pools::POOL_MEDITERRANEAN, pools::POOL_EUROPE],
            paper_top: &["olive oil"],
            paper_support: 0.40,
            paper_pattern_count: 43,
        },
        IndianSubcontinent => CuisineSpec {
            cuisine,
            motifs: vec![
                motif(
                    vec![ing("onion"), prc("add"), prc("heat"), ing("salt")],
                    0.25,
                ),
                motif(vec![ing("cumin"), ing("coriander")], 0.225),
                motif(vec![ing("turmeric")], 0.225),
                motif(vec![ing("garam masala")], 0.225),
                motif(vec![ing("cinnamon"), ing("cardamom")], 0.225),
                motif(vec![ing("green chili")], 0.225),
            ],
            staples: staples(&[]),
            pools: vec![pools::POOL_SPICE_BELT],
            paper_top: &["onion", "add", "heat", "salt"],
            paper_support: 0.22,
            paper_pattern_count: 119,
        },
        Irish => CuisineSpec {
            cuisine,
            motifs: vec![
                motif(vec![ing("butter")], 0.33),
                motif(vec![ing("potato")], 0.225),
                motif(vec![ing("flour")], 0.225),
                motif(vec![ing("milk")], 0.225),
            ],
            staples: staples(&[(Utensil, "oven", 0.22)]),
            pools: vec![pools::POOL_EUROPE],
            paper_top: &["butter"],
            paper_support: 0.32,
            paper_pattern_count: 41,
        },
        Italian => CuisineSpec {
            cuisine,
            motifs: vec![
                motif(vec![ing("parmesan cheese")], 0.32),
                motif(vec![ing("olive oil")], 0.25),
                motif(vec![ing("garlic")], 0.225),
                motif(vec![ing("tomato")], 0.225),
                motif(vec![ing("pasta")], 0.225),
                motif(vec![ing("basil")], 0.225),
            ],
            staples: staples(&[]),
            pools: vec![pools::POOL_MEDITERRANEAN],
            paper_top: &["parmesan cheese"],
            paper_support: 0.31,
            paper_pattern_count: 63,
        },
        Japanese => CuisineSpec {
            cuisine,
            motifs: vec![
                motif(vec![ing("soy sauce")], 0.46),
                motif(vec![ing("rice")], 0.225),
                motif(vec![ing("sesame oil")], 0.225),
                motif(vec![ing("ginger"), ing("garlic")], 0.225),
            ],
            staples: staples(&[]),
            pools: vec![pools::POOL_EAST_ASIA],
            paper_top: &["soy sauce"],
            paper_support: 0.45,
            paper_pattern_count: 45,
        },
        Mexican => CuisineSpec {
            cuisine,
            motifs: vec![
                motif(vec![ing("cilantro")], 0.26),
                motif(vec![ing("onion")], 0.225),
                motif(vec![ing("garlic clove")], 0.225),
                motif(vec![ing("lime juice")], 0.225),
                motif(vec![ing("chili powder")], 0.225),
            ],
            staples: staples(&[]),
            pools: vec![pools::POOL_LATIN],
            paper_top: &["cilantro"],
            paper_support: 0.25,
            paper_pattern_count: 33,
        },
        RestAfrica => CuisineSpec {
            cuisine,
            motifs: vec![
                motif(vec![ing("onion"), prc("add"), prc("heat")], 0.24),
                motif(vec![ing("cumin")], 0.225),
                motif(vec![ing("tomato")], 0.225),
                motif(vec![ing("green chili")], 0.225),
            ],
            staples: staples(&[]),
            pools: vec![pools::POOL_AFRICA, pools::POOL_SPICE_BELT],
            paper_top: &["onion", "add", "heat"],
            paper_support: 0.20,
            paper_pattern_count: 51,
        },
        SouthAmerican => CuisineSpec {
            cuisine,
            motifs: vec![
                motif(vec![ing("onion"), ing("salt")], 0.24),
                motif(vec![ing("garlic")], 0.225),
                motif(vec![ing("tomato")], 0.225),
                motif(vec![ing("lime juice")], 0.225),
            ],
            staples: staples(&[]),
            pools: vec![pools::POOL_LATIN, pools::POOL_MEDITERRANEAN],
            paper_top: &["onion", "salt"],
            paper_support: 0.21,
            paper_pattern_count: 62,
        },
        SoutheastAsian => CuisineSpec {
            cuisine,
            motifs: vec![
                motif(vec![ing("fish sauce")], 0.25),
                motif(vec![ing("coconut milk")], 0.225),
                motif(vec![ing("soy sauce")], 0.225),
                motif(vec![ing("lime juice")], 0.225),
                motif(vec![ing("ginger"), ing("garlic")], 0.225),
            ],
            staples: staples(&[]),
            pools: vec![pools::POOL_SOUTHEAST_ASIA, pools::POOL_EAST_ASIA],
            paper_top: &["fish sauce"],
            paper_support: 0.24,
            paper_pattern_count: 69,
        },
        SpanishAndPortuguese => CuisineSpec {
            cuisine,
            motifs: vec![
                motif(vec![ing("olive oil")], 0.32),
                motif(vec![ing("garlic")], 0.225),
                motif(vec![ing("tomato")], 0.225),
                motif(vec![ing("paprika")], 0.225),
                motif(vec![ing("onion"), ing("salt")], 0.225),
            ],
            staples: staples(&[]),
            pools: vec![pools::POOL_MEDITERRANEAN],
            paper_top: &["olive oil"],
            paper_support: 0.31,
            paper_pattern_count: 67,
        },
        Thai => CuisineSpec {
            cuisine,
            motifs: vec![
                motif(vec![ing("fish sauce"), prc("add"), prc("heat")], 0.26),
                motif(vec![ing("coconut milk")], 0.225),
                motif(vec![ing("soy sauce")], 0.225),
                motif(vec![ing("lime juice")], 0.225),
                motif(vec![ing("ginger"), ing("garlic")], 0.225),
            ],
            staples: staples(&[]),
            pools: vec![pools::POOL_SOUTHEAST_ASIA, pools::POOL_EAST_ASIA],
            paper_top: &["fish sauce", "add", "heat"],
            paper_support: 0.23,
            paper_pattern_count: 73,
        },
        Korean => CuisineSpec {
            cuisine,
            motifs: vec![
                motif_with(
                    vec![ing("soy sauce"), ing("sesame oil")],
                    0.35,
                    vec![motif(vec![ing("green onion")], 0.245)],
                ),
                motif(vec![ing("rice")], 0.225),
                motif(vec![ing("ginger"), ing("garlic")], 0.225),
                motif(vec![ing("gochujang")], 0.225),
            ],
            // Salt lowered so {soy sauce, sesame oil} x salt products stay
            // clearly below the mining threshold (0.35 x 0.5 = 0.175).
            staples: staples(&[(ItemKind::Ingredient, "salt", 0.50)]),
            pools: vec![pools::POOL_EAST_ASIA],
            paper_top: &["soy sauce", "sesame oil"],
            paper_support: 0.34,
            paper_pattern_count: 85,
        },
        MiddleEastern => CuisineSpec {
            cuisine,
            motifs: vec![
                motif(vec![ing("salt"), ute("bowl")], 0.26),
                motif(vec![ing("lemon juice")], 0.23),
                motif(vec![ing("olive oil")], 0.225),
                motif(vec![ing("cumin")], 0.225),
                motif(vec![ing("garlic")], 0.225),
            ],
            staples: staples(&[]),
            pools: vec![pools::POOL_MIDDLE_EAST, pools::POOL_SPICE_BELT],
            paper_top: &["salt", "bowl"],
            paper_support: 0.22,
            paper_pattern_count: 46,
        },
        NorthernAfrica => CuisineSpec {
            cuisine,
            motifs: vec![
                motif_with(
                    vec![ing("cumin")],
                    0.40,
                    vec![
                        motif(vec![ing("olive oil")], 0.225),
                        motif(vec![ing("salt")], 0.225),
                        motif(vec![ing("cinnamon")], 0.225),
                    ],
                ),
                // The salt-extended saute base makes Northern Africa the
                // pattern-richest cuisine (as in the paper: 134 patterns)
                // and shares the whole subset lattice with the Indian
                // primary motif — the basis of the India–North-Africa
                // grouping the paper highlights.
                motif(
                    vec![ing("onion"), prc("add"), prc("heat"), ing("salt")],
                    0.225,
                ),
                motif(vec![ing("coriander")], 0.225),
                motif(vec![ing("lemon juice")], 0.225),
            ],
            staples: staples(&[]),
            pools: vec![pools::POOL_SPICE_BELT, pools::POOL_MIDDLE_EAST],
            paper_top: &["cumin", "olive oil"],
            paper_support: 0.22,
            paper_pattern_count: 134,
        },
        Scandinavian => CuisineSpec {
            cuisine,
            motifs: vec![
                motif(vec![ing("butter"), ing("salt")], 0.25),
                motif(vec![ing("salt"), ing("sugar")], 0.225),
                motif(vec![ing("flour")], 0.225),
                motif(vec![ing("dill")], 0.225),
            ],
            staples: staples(&[(Utensil, "oven", 0.22), (Utensil, "bowl", 0.22)]),
            pools: vec![pools::POOL_NORDIC, pools::POOL_EUROPE],
            paper_top: &["butter", "salt"],
            paper_support: 0.22,
            paper_pattern_count: 52,
        },
        UK => CuisineSpec {
            cuisine,
            motifs: vec![
                motif(vec![ing("butter")], 0.38),
                motif(vec![ing("flour")], 0.225),
                motif(vec![ing("sugar")], 0.225),
                motif(vec![ing("egg")], 0.225),
                motif(vec![ing("milk")], 0.225),
            ],
            staples: staples(&[
                (Utensil, "oven", 0.27),
                (Utensil, "bowl", 0.22),
                (Process, "bake", 0.16),
            ]),
            pools: vec![pools::POOL_EUROPE],
            paper_top: &["butter"],
            paper_support: 0.37,
            paper_pattern_count: 45,
        },
        US => CuisineSpec {
            cuisine,
            motifs: vec![
                motif_with(
                    vec![ute("oven")],
                    0.47,
                    vec![motif(vec![prc("bake"), prc("preheat"), ute("bowl")], 0.23)],
                ),
                motif(vec![ing("onion")], 0.25),
                motif(vec![ing("flour")], 0.225),
                motif(vec![ing("sugar")], 0.225),
                motif(vec![ing("cheddar cheese")], 0.225),
            ],
            staples: staples(&[]),
            pools: vec![pools::POOL_NORTH_AMERICA],
            paper_top: &["oven"],
            paper_support: 0.46,
            paper_pattern_count: 67,
        },
    }
}

/// Specs for all 26 cuisines, in Table I order.
pub fn all_specs() -> Vec<CuisineSpec> {
    Cuisine::ALL.iter().map(|&c| cuisine_spec(c)).collect()
}

impl MotifSpec {
    /// Whether any item of this motif (not counting children) is a utensil.
    pub fn has_utensil(&self) -> bool {
        self.items.iter().any(|&(k, _)| k == ItemKind::Utensil)
    }

    /// All items reachable from this motif including children.
    pub fn all_items(&self) -> Vec<(ItemKind, &'static str)> {
        let mut out = self.items.clone();
        for c in &self.children {
            out.extend(c.all_items());
        }
        out
    }
}

impl CuisineSpec {
    /// Every distinct item name mentioned by this spec (motifs + staples).
    pub fn mentioned_items(&self) -> Vec<(ItemKind, &'static str)> {
        let mut out: Vec<(ItemKind, &'static str)> = Vec::new();
        for m in &self.motifs {
            out.extend(m.all_items());
        }
        for s in &self.staples {
            out.push((s.kind, s.name));
        }
        out.sort_unstable();
        out.dedup();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_cuisine_has_a_spec_with_sane_probabilities() {
        for spec in all_specs() {
            assert!(!spec.motifs.is_empty(), "{}: no motifs", spec.cuisine);
            for m in &spec.motifs {
                assert!(
                    (0.0..=1.0).contains(&m.support),
                    "{}: motif support {}",
                    spec.cuisine,
                    m.support
                );
                assert!(
                    m.support >= 0.20,
                    "{}: motif below mining threshold",
                    spec.cuisine
                );
                for c in &m.children {
                    assert!(
                        c.support <= m.support + 1e-12,
                        "{}: child support {} exceeds parent {}",
                        spec.cuisine,
                        c.support,
                        m.support
                    );
                }
            }
            for s in &spec.staples {
                assert!(
                    (0.0..=1.0).contains(&s.prob),
                    "{}: staple prob",
                    spec.cuisine
                );
            }
            assert!(!spec.pools.is_empty(), "{}: no pools", spec.cuisine);
            assert!(!spec.paper_top.is_empty());
        }
    }

    #[test]
    fn primary_motif_leads_secondaries_by_margin() {
        // The first motif is the Table I primary; it must exceed every
        // other motif's support by >= 0.015 so the ranking is noise-stable
        // at the paper's per-cuisine corpus sizes.
        for spec in all_specs() {
            let primary = spec.motifs[0].support;
            for m in &spec.motifs[1..] {
                assert!(
                    primary >= m.support + 0.015 - 1e-12,
                    "{}: primary {} too close to secondary {}",
                    spec.cuisine,
                    primary,
                    m.support
                );
            }
        }
    }

    #[test]
    fn primary_motif_matches_paper_top_items() {
        for spec in all_specs() {
            let primary: std::collections::BTreeSet<&str> =
                spec.motifs[0].all_items().iter().map(|&(_, n)| n).collect();
            let paper: std::collections::BTreeSet<&str> = spec.paper_top.iter().copied().collect();
            assert!(
                paper.is_subset(&primary),
                "{}: paper top {:?} not within primary motif {:?}",
                spec.cuisine,
                paper,
                primary
            );
            // Calibration sets the target above the published support —
            // knife-edge rows (paper support 0.20-0.23) are lifted to at
            // least 0.24 so sampling noise cannot drop them under the 0.2
            // mining threshold; the bias never exceeds 0.04 and is
            // documented in EXPERIMENTS.md. Motifs with children (Korean,
            // Northern Africa, US) encode several Table I rows at once;
            // their published supports attach to the child bundles, so the
            // parent is exempt from the delta check.
            if spec.motifs[0].children.is_empty() {
                let delta = spec.motifs[0].support - spec.paper_support;
                assert!(
                    (0.0..=0.04 + 1e-12).contains(&delta),
                    "{}: support target {} vs paper {}",
                    spec.cuisine,
                    spec.motifs[0].support,
                    spec.paper_support
                );
            }
        }
    }

    #[test]
    fn regional_pools_resolve() {
        for spec in all_specs() {
            for pool in &spec.pools {
                assert!(
                    !super::super::pools::regional_pool(pool).is_empty(),
                    "{}: pool {pool} unknown",
                    spec.cuisine
                );
            }
        }
    }

    #[test]
    fn canada_shares_french_not_us_signatures() {
        // The headline qualitative claim of the paper: Canadian clusters
        // with French, not with US, despite geographic proximity.
        let canadian = cuisine_spec(Cuisine::Canadian);
        let french = cuisine_spec(Cuisine::French);
        let us = cuisine_spec(Cuisine::US);
        let names = |s: &CuisineSpec| -> std::collections::BTreeSet<&str> {
            s.motifs
                .iter()
                .flat_map(|m| m.all_items())
                .map(|(_, n)| n)
                .collect()
        };
        let ca = names(&canadian);
        let fr = names(&french);
        let usn = names(&us);
        let ca_fr = ca.intersection(&fr).count();
        let ca_us = ca.intersection(&usn).count();
        assert!(
            ca_fr > ca_us,
            "Canada∩France {ca_fr} must exceed Canada∩US {ca_us}"
        );
    }

    #[test]
    fn india_shares_spice_belt_with_northern_africa() {
        let india = cuisine_spec(Cuisine::IndianSubcontinent);
        let nafrica = cuisine_spec(Cuisine::NorthernAfrica);
        let items = |s: &CuisineSpec| -> std::collections::BTreeSet<&str> {
            s.motifs
                .iter()
                .flat_map(|m| m.all_items())
                .map(|(_, n)| n)
                .collect()
        };
        let shared: Vec<&str> = items(&india)
            .intersection(&items(&nafrica))
            .copied()
            .collect();
        assert!(
            shared.contains(&"cumin") && shared.contains(&"cinnamon"),
            "spice belt must share cumin and cinnamon, got {shared:?}"
        );
        assert!(
            india.pools.iter().any(|p| nafrica.pools.contains(p)),
            "India and Northern Africa must share a regional pool"
        );
    }

    #[test]
    fn mentioned_items_are_deduplicated() {
        let spec = cuisine_spec(Cuisine::US);
        let items = spec.mentioned_items();
        let mut dedup = items.clone();
        dedup.dedup();
        assert_eq!(items, dedup);
        assert!(items.contains(&(ItemKind::Utensil, "oven")));
    }
}
