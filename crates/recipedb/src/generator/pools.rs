//! Name pools for the synthetic corpus: cooking processes (exactly 268),
//! utensils (exactly 69), regional ingredient pools, and a deterministic
//! long-tail ingredient name grid sized so the full-scale corpus reaches the
//! paper's 20,280 unique ingredients.

/// Target number of unique ingredient names at full scale (paper, §III).
pub const TARGET_UNIQUE_INGREDIENTS: usize = 20_280;
/// Target number of unique process names (paper, §III).
pub const TARGET_UNIQUE_PROCESSES: usize = 268;
/// Target number of unique utensil names (paper, §III).
pub const TARGET_UNIQUE_UTENSILS: usize = 69;

/// Real cooking-verb names used as the head of the process distribution.
pub const PROCESS_BASES: &[&str] = &[
    "add", "heat", "cook", "stir", "mix", "place", "combine", "serve", "boil", "simmer",
    "bake", "pour", "cut", "chop", "slice", "dice", "mince", "grate", "peel", "drain",
    "rinse", "whisk", "beat", "fold", "knead", "roll", "spread", "sprinkle", "season",
    "marinate", "grill", "roast", "fry", "saute", "steam", "blanch", "braise", "toss",
    "garnish", "chill", "freeze", "thaw", "melt", "dissolve", "strain", "blend", "puree",
    "crush", "mash", "whip", "brush", "coat", "dip", "layer", "stuff", "wrap", "preheat",
    "cover", "uncover", "refrigerate", "cool", "reduce", "deglaze", "sear", "caramelize",
    "toast", "ferment", "pickle", "cure", "smoke", "broil", "poach", "scramble", "flip",
    "skewer", "baste", "tenderize", "score", "zest", "juice", "core", "pit", "shuck",
    "devein", "fillet", "debone", "carve", "rest", "proof", "scald", "temper",
];

/// Exactly 69 utensil names.
pub const UTENSILS: &[&str] = &[
    "bowl", "oven", "skillet", "pan", "pot", "saucepan", "baking sheet", "baking dish",
    "knife", "cutting board", "whisk tool", "spatula", "wooden spoon", "ladle", "tongs",
    "colander", "strainer", "sieve", "box grater", "peeler", "rolling pin", "measuring cup",
    "measuring spoon", "blender", "food processor", "mixer", "stand mixer", "wok",
    "griddle", "grill rack", "dutch oven", "stockpot", "casserole dish", "roasting pan",
    "loaf pan", "muffin tin", "cake pan", "pie dish", "ramekin", "metal skewer", "foil",
    "parchment paper", "plastic wrap", "thermometer", "kitchen timer", "mandoline",
    "mortar and pestle", "pressure cooker", "slow cooker", "rice cooker", "steamer basket",
    "tajine", "paella pan", "crepe pan", "springform pan", "pizza stone", "broiler pan",
    "double boiler", "fondue pot", "microwave", "toaster", "citrus juicer", "zester",
    "turkey baster", "pastry brush", "pastry bag", "cooling rack", "kitchen scale",
    "frying basket",
];

/// Modifiers used to synthesize long-tail ingredient names ("heirloom
/// parsnip", "smoked barley", ...). Combined with [`TAIL_INGREDIENT_BASES`]
/// they form a deterministic grid large enough to reach
/// [`TARGET_UNIQUE_INGREDIENTS`].
pub const TAIL_MODIFIERS: &[&str] = &[
    "dried", "fresh", "smoked", "pickled", "ground", "roasted", "organic", "wild", "baby",
    "red", "green", "black", "white", "sweet", "sour", "heirloom", "aged", "cured",
    "fermented", "candied", "toasted", "raw", "frozen", "canned", "crushed", "whole",
    "sliced", "shredded", "powdered", "flaked", "salted", "unsalted", "spiced", "herbed",
    "golden", "purple", "yellow", "baby-cut", "stone-ground", "cold-pressed", "double",
    "extra", "young", "mature", "blanched", "grilled", "charred", "glazed", "brined",
    "marinated", "stuffed", "ribboned", "crystallized", "puffed", "malted", "sprouted",
    "pressed", "clarified", "rendered", "infused",
];

/// Base nouns for the long-tail ingredient grid.
pub const TAIL_INGREDIENT_BASES: &[&str] = &[
    "parsnip", "barley", "kale", "quinoa", "lentil", "chickpea", "walnut", "almond",
    "hazelnut", "pecan", "cashew", "pistachio", "apricot", "fig", "date", "plum", "pear",
    "quince", "persimmon", "pomegranate", "guava", "papaya", "mango", "lychee", "longan",
    "rambutan", "durian", "jackfruit", "plantain", "cassava", "taro", "yam", "turnip",
    "rutabaga", "kohlrabi", "celeriac", "fennel", "endive", "radicchio", "arugula",
    "watercress", "sorrel", "chard", "collard", "mustard green", "bok choy leaf",
    "napa cabbage", "savoy cabbage", "brussels sprout", "artichoke", "asparagus", "leek",
    "shallot bulb", "chive", "ramp", "squash", "pumpkin", "zucchini", "eggplant", "okra",
    "tomatillo", "pepper", "habanero", "serrano", "poblano", "anaheim", "cayenne berry",
    "peppercorn", "juniper", "sumac berry", "caper", "olive fruit", "grape", "currant",
    "gooseberry", "elderberry", "mulberry", "cranberry", "blueberry", "blackberry",
    "raspberry", "strawberry", "rhubarb", "melon", "cantaloupe", "honeydew", "kiwi",
    "starfruit", "passionfruit", "tamarind pod", "kumquat", "clementine", "tangerine",
    "grapefruit", "pomelo", "yuzu", "bergamot", "buckwheat", "millet", "sorghum", "teff",
    "amaranth", "farro", "spelt", "kamut", "rye berry", "oat groat", "wild rice",
    "arborio rice", "bomba rice", "jasmine grain", "basmati grain", "couscous pearl",
    "orzo", "ditalini", "farfalle", "rigatoni", "fusilli", "penne", "linguine",
    "fettuccine", "pappardelle", "tagliatelle", "gnocchi", "polenta meal", "semolina",
    "cornmeal", "hominy", "grits", "bran", "germ", "seitan", "tempeh", "natto bean",
    "edamame", "mung bean", "adzuki bean", "fava bean", "lima bean", "pinto bean",
    "navy bean", "cannellini", "borlotti", "flageolet", "pigeon pea", "split pea",
    "black-eyed pea", "soybean", "peanut", "macadamia", "brazil nut", "pine nut",
    "chestnut", "coconut flesh", "sesame seed", "poppy seed", "sunflower seed",
    "pumpkin seed", "flax seed", "chia seed", "hemp seed", "nigella seed", "anise seed",
    "caraway seed", "celery seed", "dill seed", "fennel seed", "mustard seed",
    "coriander seed", "cumin seed", "cardamom pod", "clove bud", "allspice berry",
    "star anise pod", "cinnamon bark", "cassia bark", "nutmeg kernel", "mace aril",
    "vanilla pod", "saffron thread", "turmeric root", "galangal root", "ginger root",
    "horseradish root", "wasabi root", "lotus root", "burdock", "salsify", "jicama",
    "daikon", "radish", "beet", "carrot", "potato", "sweet potato", "onion bulb",
    "garlic bulb", "scallion stalk", "anchovy fillet", "sardine", "mackerel", "herring",
    "trout", "salmon", "tuna", "cod", "haddock", "halibut", "flounder", "sole", "snapper",
    "grouper", "bass", "perch", "pike", "carp", "tilapia", "catfish", "eel", "octopus",
    "squid", "cuttlefish", "shrimp", "prawn", "crab", "lobster", "crayfish", "scallop",
    "mussel", "clam", "oyster", "abalone", "sea urchin", "roe", "caviar", "duck breast",
    "goose", "quail", "pheasant", "partridge", "guinea fowl", "turkey breast", "rabbit",
    "venison", "boar", "lamb shank", "mutton", "goat", "veal", "oxtail", "tripe",
    "sweetbread", "liver", "kidney", "heart", "tongue", "bone marrow", "pancetta",
    "prosciutto", "speck", "bresaola", "chorizo link", "salami", "mortadella",
    "pastrami", "corned brisket", "ham hock", "bacon slab", "lardon", "guanciale",
    "brie", "camembert", "roquefort", "gorgonzola", "stilton", "gouda", "edam",
    "gruyere", "emmental", "comte", "manchego", "pecorino", "asiago", "provolone",
    "mozzarella ball", "burrata", "ricotta curd", "mascarpone", "quark", "kefir",
    "buttermilk", "creme fraiche", "clotted cream", "ghee", "tallow", "lard",
    "schmaltz", "duck fat", "grapeseed oil", "walnut oil", "hazelnut oil", "avocado oil",
    "palm oil", "mustard oil", "truffle", "morel", "chanterelle", "porcini", "shiitake",
    "maitake", "enoki", "oyster mushroom", "cremini", "portobello", "button mushroom",
    "seaweed", "nori sheet", "kombu", "wakame", "dulse", "agar", "spirulina", "nettle",
    "dandelion green", "purslane", "lambsquarter", "fiddlehead", "cactus paddle",
    "agave nectar", "maple syrup", "molasses", "treacle", "golden syrup", "honeycomb",
    "demerara", "muscovado", "jaggery", "palm sugar", "rock sugar", "isomalt",
    "marzipan", "nougat", "praline", "cacao nib", "carob pod", "espresso bean",
    "chicory root", "matcha powder", "oolong leaf", "rooibos leaf", "hibiscus petal",
    "chamomile flower", "lavender bud", "rose petal", "orange blossom", "elderflower",
    "violet petal", "nasturtium", "borage flower", "squash blossom", "banana leaf",
    "grape leaf", "curry leaf", "kaffir lime leaf", "pandan leaf", "shiso leaf",
    "epazote", "hoja santa", "culantro", "lovage", "chervil", "tarragon sprig",
    "marjoram", "savory herb", "hyssop", "angelica", "verbena", "lemon balm",
];

/// Names of the regional ingredient pools. Each cuisine samples a couple of
/// below-threshold "flavour" ingredients per recipe from its pools; shared
/// pools are what make related cuisines look alike to the
/// authenticity-based clustering.
pub const POOL_EAST_ASIA: &str = "east-asia";
/// Southeast-Asian aromatics pool.
pub const POOL_SOUTHEAST_ASIA: &str = "southeast-asia";
/// Northern/continental European pool.
pub const POOL_EUROPE: &str = "europe";
/// Mediterranean pool.
pub const POOL_MEDITERRANEAN: &str = "mediterranean";
/// Indian-subcontinent / North-African spice-belt pool.
pub const POOL_SPICE_BELT: &str = "spice-belt";
/// Latin-American pool.
pub const POOL_LATIN: &str = "latin";
/// Sub-Saharan African pool.
pub const POOL_AFRICA: &str = "africa";
/// Middle-Eastern pool.
pub const POOL_MIDDLE_EAST: &str = "middle-east";
/// Nordic pool.
pub const POOL_NORDIC: &str = "nordic";
/// North-American pool.
pub const POOL_NORTH_AMERICA: &str = "north-america";

/// Resolve a regional pool name to its member ingredients.
pub fn regional_pool(name: &str) -> &'static [&'static str] {
    match name {
        n if n == POOL_EAST_ASIA => &[
            "mirin", "miso", "tofu", "scallion", "bok choy", "rice vinegar", "dashi",
            "sake", "nori", "shiitake mushroom", "hoisin sauce", "oyster sauce",
            "five-spice powder", "sichuan peppercorn", "rice wine", "bean sprout",
            "water chestnut", "bamboo shoot", "wonton wrapper", "udon noodle",
        ],
        n if n == POOL_SOUTHEAST_ASIA => &[
            "lemongrass", "galangal", "kaffir lime", "thai basil", "shrimp paste",
            "palm sugar lump", "bird's eye chili", "tamarind", "coconut cream",
            "rice noodle", "holy basil", "pandan", "candlenut", "turmeric leaf",
            "banana blossom", "sambal", "belacan", "laksa paste",
        ],
        n if n == POOL_EUROPE => &[
            "thyme", "rosemary", "bay leaf", "parsley", "leeks", "celery", "carrots",
            "white wine", "red wine", "dijon mustard", "nutmeg", "chicken stock",
            "beef stock", "shallots", "tarragon", "juniper berry", "horseradish",
            "sauerkraut", "caraway", "marjoram leaf",
        ],
        n if n == POOL_MEDITERRANEAN => &[
            "oregano", "basil", "tomato paste", "capers", "anchovy", "feta cheese",
            "kalamata olive", "pine nuts", "balsamic vinegar", "rosemary sprig",
            "artichoke heart", "sun-dried tomato", "mozzarella", "ricotta",
            "red wine vinegar", "zucchini squash", "eggplant fruit", "saffron",
        ],
        n if n == POOL_SPICE_BELT => &[
            "turmeric", "coriander", "cardamom", "clove", "fenugreek", "garam masala",
            "ginger paste", "green chili", "curry leaves", "mustard seeds", "ghee butter",
            "yogurt", "basmati rice", "lentils", "asafoetida", "chickpeas", "mint leaves",
            "ras el hanout", "harissa", "preserved lemon", "dried apricot",
        ],
        n if n == POOL_LATIN => &[
            "jalapeno", "lime", "black beans", "corn tortilla", "avocado", "queso fresco",
            "chipotle", "cotija cheese", "tomatillos", "epazote leaf", "achiote",
            "plantains", "yuca", "sofrito", "adobo", "poblano pepper", "masa harina",
            "pinto beans", "aji amarillo", "chimichurri",
        ],
        n if n == POOL_AFRICA => &[
            "peanut butter", "okra pods", "palm oil drizzle", "scotch bonnet", "cassava root",
            "millet flour", "sorghum grain", "egusi", "berbere", "injera", "fufu",
            "baobab powder", "hibiscus", "plantain flour", "dried fish",
        ],
        n if n == POOL_MIDDLE_EAST => &[
            "tahini", "sumac", "za'atar", "pomegranate molasses", "bulgur", "pita bread",
            "chickpea flour", "rose water", "orange blossom water", "dates", "pistachios",
            "labneh", "halloumi", "freekeh", "grape leaves",
        ],
        n if n == POOL_NORDIC => &[
            "dill", "lingonberry", "rye bread", "pickled herring", "cloudberry",
            "juniper", "smoked salmon", "cardamom bun spice", "rye flour", "elderflower syrup",
            "brown cheese", "crispbread", "aquavit",
        ],
        n if n == POOL_NORTH_AMERICA => &[
            "maple syrup drizzle", "cheddar cheese", "cream cheese", "ranch dressing",
            "barbecue sauce", "corn syrup", "pecans", "cranberries", "buttermilk biscuit mix",
            "hot sauce", "peanut oil", "molasses syrup", "wild blueberry",
        ],
        _ => &[],
    }
}

/// All regional pool names.
pub const ALL_POOLS: &[&str] = &[
    POOL_EAST_ASIA,
    POOL_SOUTHEAST_ASIA,
    POOL_EUROPE,
    POOL_MEDITERRANEAN,
    POOL_SPICE_BELT,
    POOL_LATIN,
    POOL_AFRICA,
    POOL_MIDDLE_EAST,
    POOL_NORDIC,
    POOL_NORTH_AMERICA,
];

/// The exact list of 268 process names: the real cooking verbs padded with
/// deterministic "gently/quickly <verb>" variants.
pub fn process_names() -> Vec<String> {
    let mut out: Vec<String> = PROCESS_BASES.iter().map(|s| s.to_string()).collect();
    'outer: for modifier in ["gently", "quickly", "partially"] {
        for base in PROCESS_BASES {
            if out.len() >= TARGET_UNIQUE_PROCESSES {
                break 'outer;
            }
            out.push(format!("{modifier} {base}"));
        }
    }
    debug_assert_eq!(out.len(), TARGET_UNIQUE_PROCESSES);
    out
}

/// Long-tail ingredient names: a deterministic modifier × base grid,
/// filtered against `exclude` (the "real" signature/staple/pool names
/// already in use), truncated to `count`.
pub fn tail_ingredient_names(count: usize, exclude: &std::collections::HashSet<&str>) -> Vec<String> {
    let mut out = Vec::with_capacity(count);
    'outer: for base in TAIL_INGREDIENT_BASES {
        for modifier in TAIL_MODIFIERS {
            if out.len() >= count {
                break 'outer;
            }
            let name = format!("{modifier} {base}");
            if !exclude.contains(name.as_str()) {
                out.push(name);
            }
        }
    }
    assert!(
        out.len() >= count.min(TAIL_MODIFIERS.len() * TAIL_INGREDIENT_BASES.len()),
        "tail grid too small: got {}, wanted {count}",
        out.len()
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn process_names_hit_paper_count_exactly() {
        let names = process_names();
        assert_eq!(names.len(), 268);
        let set: HashSet<&String> = names.iter().collect();
        assert_eq!(set.len(), 268, "process names must be unique");
    }

    #[test]
    fn utensil_pool_hits_paper_count_exactly() {
        assert_eq!(UTENSILS.len(), 69);
        let set: HashSet<&&str> = UTENSILS.iter().collect();
        assert_eq!(set.len(), 69, "utensil names must be unique");
    }

    #[test]
    fn tail_grid_is_large_enough_for_paper_scale() {
        let grid = TAIL_MODIFIERS.len() * TAIL_INGREDIENT_BASES.len();
        assert!(
            grid >= TARGET_UNIQUE_INGREDIENTS,
            "grid {grid} must cover {TARGET_UNIQUE_INGREDIENTS}"
        );
    }

    #[test]
    fn tail_names_are_unique_and_respect_exclusions() {
        let mut exclude = HashSet::new();
        exclude.insert("dried parsnip");
        let names = tail_ingredient_names(500, &exclude);
        assert_eq!(names.len(), 500);
        assert!(!names.contains(&"dried parsnip".to_string()));
        let set: HashSet<&String> = names.iter().collect();
        assert_eq!(set.len(), 500);
    }

    #[test]
    fn every_pool_resolves_nonempty() {
        for pool in ALL_POOLS {
            assert!(!regional_pool(pool).is_empty(), "pool {pool} empty");
        }
        assert!(regional_pool("nonexistent").is_empty());
    }

    #[test]
    fn tail_bases_are_unique() {
        let set: HashSet<&&str> = TAIL_INGREDIENT_BASES.iter().collect();
        assert_eq!(set.len(), TAIL_INGREDIENT_BASES.len());
        let set: HashSet<&&str> = TAIL_MODIFIERS.iter().collect();
        assert_eq!(set.len(), TAIL_MODIFIERS.len());
    }
}
