//! Content digests for corpora.
//!
//! A corpus is identified by the SHA-256 of a *canonical byte stream* of
//! its semantic content — catalog names in id order, recipes in id order
//! with their item ids — rather than of any particular JSON encoding.
//! Two corpora that differ only in serialization incidentals (whitespace,
//! field order of a hand-written snapshot) therefore share a digest, and
//! the digest is stable across serialize → deserialize round trips. The
//! server uses it as the corpus id in its registry and cache key.
//!
//! SHA-256 is implemented here directly from FIPS 180-4 (pure `std`, no
//! dependencies); the test vectors below pin it to the published values.

use crate::store::RecipeDb;

/// Streaming SHA-256 (FIPS 180-4).
#[derive(Debug, Clone)]
pub struct Sha256 {
    state: [u32; 8],
    /// Unprocessed tail of the message, always < 64 bytes after update.
    buffer: Vec<u8>,
    /// Total message length in bytes.
    length: u64,
}

/// Initial hash values: the first 32 bits of the fractional parts of the
/// square roots of the first 8 primes.
const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// Round constants: the first 32 bits of the fractional parts of the cube
/// roots of the first 64 primes.
const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// A fresh hasher.
    pub fn new() -> Self {
        Sha256 {
            state: H0,
            buffer: Vec::with_capacity(64),
            length: 0,
        }
    }

    /// Absorb `data`.
    pub fn update(&mut self, data: &[u8]) {
        self.length = self.length.wrapping_add(data.len() as u64);
        self.buffer.extend_from_slice(data);
        let blocks = self.buffer.len() / 64;
        for i in 0..blocks {
            let block: &[u8; 64] = self.buffer[i * 64..(i + 1) * 64].try_into().unwrap();
            compress(&mut self.state, block);
        }
        self.buffer.drain(..blocks * 64);
    }

    /// Finish: pad per FIPS 180-4 and return the 32-byte digest.
    pub fn finalize(mut self) -> [u8; 32] {
        let bit_len = self.length.wrapping_mul(8);
        self.buffer.push(0x80);
        while self.buffer.len() % 64 != 56 {
            self.buffer.push(0);
        }
        self.buffer.extend_from_slice(&bit_len.to_be_bytes());
        for chunk in self.buffer.chunks_exact(64) {
            let block: &[u8; 64] = chunk.try_into().unwrap();
            compress(&mut self.state, block);
        }
        let mut out = [0u8; 32];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..(i + 1) * 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    /// One-shot digest of `data` as lowercase hex.
    pub fn hex_digest(data: &[u8]) -> String {
        let mut h = Sha256::new();
        h.update(data);
        to_hex(&h.finalize())
    }
}

fn compress(state: &mut [u32; 8], block: &[u8; 64]) {
    let mut w = [0u32; 64];
    for (i, chunk) in block.chunks_exact(4).enumerate() {
        w[i] = u32::from_be_bytes(chunk.try_into().unwrap());
    }
    for i in 16..64 {
        let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
        let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
        w[i] = w[i - 16]
            .wrapping_add(s0)
            .wrapping_add(w[i - 7])
            .wrapping_add(s1);
    }

    let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = *state;
    for i in 0..64 {
        let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
        let ch = (e & f) ^ (!e & g);
        let t1 = h
            .wrapping_add(s1)
            .wrapping_add(ch)
            .wrapping_add(K[i])
            .wrapping_add(w[i]);
        let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
        let maj = (a & b) ^ (a & c) ^ (b & c);
        let t2 = s0.wrapping_add(maj);
        h = g;
        g = f;
        f = e;
        e = d.wrapping_add(t1);
        d = c;
        c = b;
        b = a;
        a = t1.wrapping_add(t2);
    }

    state[0] = state[0].wrapping_add(a);
    state[1] = state[1].wrapping_add(b);
    state[2] = state[2].wrapping_add(c);
    state[3] = state[3].wrapping_add(d);
    state[4] = state[4].wrapping_add(e);
    state[5] = state[5].wrapping_add(f);
    state[6] = state[6].wrapping_add(g);
    state[7] = state[7].wrapping_add(h);
}

fn to_hex(bytes: &[u8]) -> String {
    const HEX: &[u8; 16] = b"0123456789abcdef";
    let mut s = String::with_capacity(bytes.len() * 2);
    for &b in bytes {
        s.push(HEX[(b >> 4) as usize] as char);
        s.push(HEX[(b & 0x0f) as usize] as char);
    }
    s
}

/// Version tag mixed into every corpus digest so the canonical encoding
/// can evolve without silently colliding with older digests.
const DIGEST_DOMAIN: &[u8] = b"recipedb-corpus-v1\0";

/// Content digest of a corpus: lowercase-hex SHA-256 over the canonical
/// byte stream of its catalogs and recipes.
///
/// The stream is length-prefixed throughout (no delimiter ambiguity):
/// catalog names per kind in id order, then recipes in id order as
/// `(name, cuisine index, ingredient ids, process ids, utensil ids)`.
/// Recipe ids and `by_cuisine` indices are *not* hashed — both are
/// derivable and validated, so hashing them would add nothing.
pub fn corpus_digest(db: &RecipeDb) -> String {
    let mut h = Sha256::new();
    h.update(DIGEST_DOMAIN);

    let catalog = db.catalog();
    for names in [
        catalog.ingredients().map(|(_, n)| n).collect::<Vec<_>>(),
        catalog.processes().map(|(_, n)| n).collect::<Vec<_>>(),
        catalog.utensils().map(|(_, n)| n).collect::<Vec<_>>(),
    ] {
        h.update(&(names.len() as u64).to_le_bytes());
        for name in names {
            h.update(&(name.len() as u64).to_le_bytes());
            h.update(name.as_bytes());
        }
    }

    h.update(&(db.recipe_count() as u64).to_le_bytes());
    for r in db.recipes() {
        h.update(&(r.name.len() as u64).to_le_bytes());
        h.update(r.name.as_bytes());
        h.update(&(r.cuisine.index() as u32).to_le_bytes());
        h.update(&(r.ingredients.len() as u64).to_le_bytes());
        for ing in &r.ingredients {
            h.update(&ing.0.to_le_bytes());
        }
        h.update(&(r.processes.len() as u64).to_le_bytes());
        for p in &r.processes {
            h.update(&p.0.to_le_bytes());
        }
        h.update(&(r.utensils.len() as u64).to_le_bytes());
        for u in &r.utensils {
            h.update(&u.0.to_le_bytes());
        }
    }

    to_hex(&h.finalize())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cuisine::Cuisine;
    use crate::store::RecipeDbBuilder;

    // FIPS 180-4 / NIST CAVS published vectors.
    #[test]
    fn sha256_empty_message() {
        assert_eq!(
            Sha256::hex_digest(b""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn sha256_abc() {
        assert_eq!(
            Sha256::hex_digest(b"abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn sha256_two_block_message() {
        assert_eq!(
            Sha256::hex_digest(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn sha256_million_a_streaming() {
        let mut h = Sha256::new();
        let chunk = [b'a'; 1000];
        for _ in 0..1000 {
            h.update(&chunk);
        }
        assert_eq!(
            to_hex(&h.finalize()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn sha256_incremental_equals_oneshot() {
        let data: Vec<u8> = (0..257u32).map(|i| (i % 251) as u8).collect();
        let oneshot = Sha256::hex_digest(&data);
        for split in [0, 1, 63, 64, 65, 128, 256] {
            let mut h = Sha256::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(to_hex(&h.finalize()), oneshot, "split at {split}");
        }
    }

    fn small_db() -> RecipeDb {
        let mut b = RecipeDbBuilder::new();
        let soy = b.catalog_mut().intern_ingredient("soy sauce");
        let rice = b.catalog_mut().intern_ingredient("rice");
        let heat = b.catalog_mut().intern_process("heat");
        let wok = b.catalog_mut().intern_utensil("wok");
        b.add_recipe(
            "r0",
            Cuisine::Japanese,
            vec![soy, rice],
            vec![heat],
            vec![wok],
        );
        b.add_recipe("r1", Cuisine::Thai, vec![rice], vec![], vec![]);
        b.build().unwrap()
    }

    #[test]
    fn corpus_digest_is_stable_across_json_roundtrip() {
        let db = small_db();
        let json = crate::io::to_json(&db).unwrap();
        let back = crate::io::from_json(&json).unwrap();
        assert_eq!(corpus_digest(&db), corpus_digest(&back));
        assert_eq!(corpus_digest(&db).len(), 64, "hex sha256");
    }

    #[test]
    fn corpus_digest_distinguishes_content() {
        let a = small_db();
        let mut b = RecipeDbBuilder::new();
        let soy = b.catalog_mut().intern_ingredient("soy sauce");
        let rice = b.catalog_mut().intern_ingredient("rice");
        let heat = b.catalog_mut().intern_process("heat");
        let wok = b.catalog_mut().intern_utensil("wok");
        b.add_recipe(
            "r0",
            Cuisine::Japanese,
            vec![soy, rice],
            vec![heat],
            vec![wok],
        );
        // Same items as small_db's r1, different cuisine.
        b.add_recipe("r1", Cuisine::Korean, vec![rice], vec![], vec![]);
        let changed = b.build().unwrap();
        assert_ne!(corpus_digest(&a), corpus_digest(&changed));
    }

    #[test]
    fn corpus_digest_of_empty_corpus_is_defined() {
        let empty = RecipeDbBuilder::new().build().unwrap();
        assert_eq!(corpus_digest(&empty).len(), 64);
    }
}
