//! The 26 geo-cultural cuisines of the paper, with the per-region recipe
//! counts of Table I and representative geographic centroids used by the
//! geographical validation tree (Figure 6).

use serde::{Deserialize, Serialize};

/// One of the paper's 26 geo-cultural cuisine regions (Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[allow(missing_docs)] // variant names are self-describing region names
pub enum Cuisine {
    Australian,
    Belgian,
    Canadian,
    Caribbean,
    CentralAmerican,
    ChineseAndMongolian,
    Deutschland,
    EasternEuropean,
    French,
    Greek,
    IndianSubcontinent,
    Irish,
    Italian,
    Japanese,
    Mexican,
    RestAfrica,
    SouthAmerican,
    SoutheastAsian,
    SpanishAndPortuguese,
    Thai,
    Korean,
    MiddleEastern,
    NorthernAfrica,
    Scandinavian,
    UK,
    US,
}

impl Cuisine {
    /// All 26 cuisines in the order Table I lists them.
    pub const ALL: [Cuisine; 26] = [
        Cuisine::Australian,
        Cuisine::Belgian,
        Cuisine::Canadian,
        Cuisine::Caribbean,
        Cuisine::CentralAmerican,
        Cuisine::ChineseAndMongolian,
        Cuisine::Deutschland,
        Cuisine::EasternEuropean,
        Cuisine::French,
        Cuisine::Greek,
        Cuisine::IndianSubcontinent,
        Cuisine::Irish,
        Cuisine::Italian,
        Cuisine::Japanese,
        Cuisine::Mexican,
        Cuisine::RestAfrica,
        Cuisine::SouthAmerican,
        Cuisine::SoutheastAsian,
        Cuisine::SpanishAndPortuguese,
        Cuisine::Thai,
        Cuisine::Korean,
        Cuisine::MiddleEastern,
        Cuisine::NorthernAfrica,
        Cuisine::Scandinavian,
        Cuisine::UK,
        Cuisine::US,
    ];

    /// Number of cuisines.
    pub const COUNT: usize = 26;

    /// Stable dense index in `0..26`, following the Table I order.
    pub fn index(self) -> usize {
        Cuisine::ALL
            .iter()
            .position(|&c| c == self)
            .expect("cuisine is in ALL")
    }

    /// Inverse of [`Cuisine::index`].
    pub fn from_index(i: usize) -> Option<Cuisine> {
        Cuisine::ALL.get(i).copied()
    }

    /// The region name exactly as Table I prints it.
    pub fn name(self) -> &'static str {
        match self {
            Cuisine::Australian => "Australian",
            Cuisine::Belgian => "Belgian",
            Cuisine::Canadian => "Canadian",
            Cuisine::Caribbean => "Caribbean",
            Cuisine::CentralAmerican => "Central American",
            Cuisine::ChineseAndMongolian => "Chinese and Mongolian",
            Cuisine::Deutschland => "Deutschland",
            Cuisine::EasternEuropean => "Eastern European",
            Cuisine::French => "French",
            Cuisine::Greek => "Greek",
            Cuisine::IndianSubcontinent => "Indian Subcontinent",
            Cuisine::Irish => "Irish",
            Cuisine::Italian => "Italian",
            Cuisine::Japanese => "Japanese",
            Cuisine::Mexican => "Mexican",
            Cuisine::RestAfrica => "Rest Africa",
            Cuisine::SouthAmerican => "South American",
            Cuisine::SoutheastAsian => "Southeast Asian",
            Cuisine::SpanishAndPortuguese => "Spanish and Portuguese",
            Cuisine::Thai => "Thai",
            Cuisine::Korean => "Korean",
            Cuisine::MiddleEastern => "Middle Eastern",
            Cuisine::NorthernAfrica => "Northern Africa",
            Cuisine::Scandinavian => "Scandinavian",
            Cuisine::UK => "UK",
            Cuisine::US => "US",
        }
    }

    /// Parse a Table I region name (exact match).
    pub fn from_name(name: &str) -> Option<Cuisine> {
        Cuisine::ALL.iter().copied().find(|c| c.name() == name)
    }

    /// The number of recipes Table I attributes to this region.
    pub fn paper_recipe_count(self) -> usize {
        match self {
            Cuisine::Australian => 5_823,
            Cuisine::Belgian => 1_060,
            Cuisine::Canadian => 6_700,
            Cuisine::Caribbean => 3_026,
            Cuisine::CentralAmerican => 460,
            Cuisine::ChineseAndMongolian => 5_896,
            Cuisine::Deutschland => 4_323,
            Cuisine::EasternEuropean => 2_503,
            Cuisine::French => 6_381,
            Cuisine::Greek => 4_185,
            Cuisine::IndianSubcontinent => 6_464,
            Cuisine::Irish => 2_532,
            Cuisine::Italian => 16_582,
            Cuisine::Japanese => 2_041,
            Cuisine::Mexican => 14_463,
            Cuisine::RestAfrica => 2_740,
            Cuisine::SouthAmerican => 7_176,
            Cuisine::SoutheastAsian => 1_940,
            Cuisine::SpanishAndPortuguese => 2_844,
            Cuisine::Thai => 2_605,
            Cuisine::Korean => 668,
            Cuisine::MiddleEastern => 3_905,
            Cuisine::NorthernAfrica => 1_611,
            Cuisine::Scandinavian => 2_811,
            Cuisine::UK => 4_401,
            Cuisine::US => 5_031,
        }
    }

    /// Total recipes across all regions per Table I.
    pub fn paper_total_recipes() -> usize {
        Cuisine::ALL.iter().map(|c| c.paper_recipe_count()).sum()
    }

    /// A representative geographic centroid `(latitude, longitude)` in
    /// degrees, used for the geographical validation clustering (Figure 6).
    /// Aggregate regions use the centroid of their dominant area.
    pub fn centroid(self) -> (f64, f64) {
        match self {
            Cuisine::Australian => (-25.3, 134.0),
            Cuisine::Belgian => (50.8, 4.5),
            Cuisine::Canadian => (56.1, -96.0),
            Cuisine::Caribbean => (18.2, -66.5),
            Cuisine::CentralAmerican => (12.8, -85.0),
            Cuisine::ChineseAndMongolian => (36.5, 104.0),
            Cuisine::Deutschland => (51.1, 10.4),
            Cuisine::EasternEuropean => (50.4, 30.5),
            Cuisine::French => (46.6, 2.2),
            Cuisine::Greek => (39.0, 22.0),
            Cuisine::IndianSubcontinent => (21.0, 78.0),
            Cuisine::Irish => (53.4, -8.2),
            Cuisine::Italian => (42.8, 12.8),
            Cuisine::Japanese => (36.2, 138.2),
            Cuisine::Mexican => (23.6, -102.5),
            Cuisine::RestAfrica => (-1.0, 21.0),
            Cuisine::SouthAmerican => (-15.6, -60.0),
            Cuisine::SoutheastAsian => (5.0, 110.0),
            Cuisine::SpanishAndPortuguese => (40.0, -4.7),
            Cuisine::Thai => (15.0, 101.0),
            Cuisine::Korean => (36.5, 127.9),
            Cuisine::MiddleEastern => (29.3, 45.0),
            Cuisine::NorthernAfrica => (28.0, 9.5),
            Cuisine::Scandinavian => (62.0, 15.0),
            Cuisine::UK => (54.0, -2.4),
            Cuisine::US => (39.8, -98.6),
        }
    }
}

impl std::fmt::Display for Cuisine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_has_26_distinct_cuisines() {
        let mut names: Vec<&str> = Cuisine::ALL.iter().map(|c| c.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 26);
        assert_eq!(Cuisine::COUNT, 26);
    }

    #[test]
    fn index_roundtrips() {
        for (i, &c) in Cuisine::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
            assert_eq!(Cuisine::from_index(i), Some(c));
        }
        assert_eq!(Cuisine::from_index(26), None);
    }

    #[test]
    fn name_roundtrips() {
        for &c in &Cuisine::ALL {
            assert_eq!(Cuisine::from_name(c.name()), Some(c));
        }
        assert_eq!(Cuisine::from_name("Atlantis"), None);
    }

    #[test]
    fn paper_total_matches_sum_of_table1() {
        // Table I's per-region counts. The paper's abstract reports a grand
        // total of 118,071 recipes across all sources; Table I's per-region
        // sum is what the mining pipeline actually consumes.
        let total = Cuisine::paper_total_recipes();
        assert_eq!(
            total,
            Cuisine::ALL
                .iter()
                .map(|c| c.paper_recipe_count())
                .sum::<usize>()
        );
        // Sanity: within a few percent of the abstract's figure.
        assert!((100_000..130_000).contains(&total), "total = {total}");
    }

    #[test]
    fn centroids_are_valid_coordinates() {
        for &c in &Cuisine::ALL {
            let (lat, lon) = c.centroid();
            assert!((-90.0..=90.0).contains(&lat), "{c}: lat {lat}");
            assert!((-180.0..=180.0).contains(&lon), "{c}: lon {lon}");
        }
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(
            Cuisine::ChineseAndMongolian.to_string(),
            "Chinese and Mongolian"
        );
    }
}
