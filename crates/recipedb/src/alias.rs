//! Ingredient alias normalization — the paper's future-work item
//! ("Among one of the limitations of this study, it neither considers the
//! state of ingredients nor their aliases").
//!
//! An [`AliasTable`] maps synonym ingredient names to a canonical name
//! ("green onion" and "scallion" are the same plant; "garlic clove" is a
//! unit of "garlic"). [`apply`] rewrites a corpus so each alias group
//! shares one ingredient id, which merges their supports — exactly the
//! effect alias-unaware mining misses. The `ext2` experiment measures how
//! much the cuisine trees move when aliases are merged.

use std::collections::HashMap;

use crate::cuisine::Cuisine;
use crate::model::IngredientId;
use crate::store::{RecipeDb, RecipeDbBuilder};

/// A synonym → canonical ingredient-name mapping.
#[derive(Debug, Clone, Default)]
pub struct AliasTable {
    /// alias name → canonical name.
    map: HashMap<String, String>,
}

impl AliasTable {
    /// An empty table (identity normalization).
    pub fn new() -> Self {
        Self::default()
    }

    /// A default table of common culinary aliases, several of which occur
    /// in the synthetic corpus's signature and pool vocabularies.
    pub fn culinary_defaults() -> Self {
        let mut t = AliasTable::new();
        for (alias, canonical) in [
            // Present in the synthetic corpus (motifs/pools):
            ("green onion", "scallion"),
            ("garlic clove", "garlic"),
            ("ghee butter", "ghee"),
            ("coconut cream", "coconut milk"),
            ("tomato paste", "tomato"),
            ("sun-dried tomato", "tomato"),
            ("rosemary sprig", "rosemary"),
            ("juniper berry", "juniper"),
            ("mozzarella ball", "mozzarella"),
            ("ricotta curd", "ricotta"),
            // Classic cross-cuisine synonyms:
            ("cilantro", "coriander leaf"),
            ("capsicum", "bell pepper"),
            ("aubergine", "eggplant"),
            ("courgette", "zucchini"),
            ("garbanzo beans", "chickpeas"),
            ("spring onion", "scallion"),
            ("corn starch", "cornstarch"),
            ("powdered sugar", "confectioners sugar"),
        ] {
            t.add(alias, canonical);
        }
        t
    }

    /// Register `alias → canonical`. Chains are flattened: if `canonical`
    /// is itself an alias, the final target is used.
    pub fn add(&mut self, alias: &str, canonical: &str) {
        let target = self.canonical(canonical).to_owned();
        assert_ne!(alias, target, "self-alias {alias:?}");
        // Flatten anything already pointing at `alias`.
        for v in self.map.values_mut() {
            if v == alias {
                v.clone_from(&target);
            }
        }
        self.map.insert(alias.to_owned(), target);
    }

    /// Resolve a name to its canonical form (identity for non-aliases).
    pub fn canonical<'a>(&'a self, name: &'a str) -> &'a str {
        self.map.get(name).map_or(name, String::as_str)
    }

    /// Whether `name` is a registered alias.
    pub fn is_alias(&self, name: &str) -> bool {
        self.map.contains_key(name)
    }

    /// Number of registered aliases.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterate `(alias, canonical)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.map.iter().map(|(a, c)| (a.as_str(), c.as_str()))
    }
}

/// Rewrite a corpus with aliases merged: every ingredient is replaced by
/// its canonical form (processes and utensils are untouched). Recipes keep
/// their ids, names and cuisines; merged duplicates within a recipe
/// collapse to one occurrence.
pub fn apply(db: &RecipeDb, aliases: &AliasTable) -> RecipeDb {
    let mut builder = RecipeDbBuilder::new();
    // Old ingredient id → new ingredient id under canonicalisation.
    let remap: HashMap<IngredientId, IngredientId> = db
        .catalog()
        .ingredients()
        .map(|(old_id, name)| {
            let canonical = aliases.canonical(name);
            (old_id, builder.catalog_mut().intern_ingredient(canonical))
        })
        .collect();
    // Processes/utensils copied verbatim (ids preserved because the
    // original interning order is replayed).
    let proc_names: Vec<String> = db
        .catalog()
        .processes()
        .map(|(_, n)| n.to_owned())
        .collect();
    for n in &proc_names {
        builder.catalog_mut().intern_process(n);
    }
    let ute_names: Vec<String> = db.catalog().utensils().map(|(_, n)| n.to_owned()).collect();
    for n in &ute_names {
        builder.catalog_mut().intern_utensil(n);
    }

    for recipe in db.recipes() {
        let ingredients: Vec<IngredientId> =
            recipe.ingredients.iter().map(|id| remap[id]).collect();
        builder.add_recipe(
            recipe.name.clone(),
            recipe.cuisine,
            ingredients,
            recipe.processes.clone(),
            recipe.utensils.clone(),
        );
    }
    builder.build().expect("alias rewrite preserves invariants")
}

/// How many recipes per cuisine contain each of an alias pair — useful
/// for reporting what a merge changed.
pub fn alias_impact(db: &RecipeDb, aliases: &AliasTable) -> Vec<(String, String, usize)> {
    let mut out = Vec::new();
    for (alias, canonical) in aliases.iter() {
        if let (Some(a), Some(_)) = (
            db.catalog().ingredient(alias),
            db.catalog().ingredient(canonical),
        ) {
            let affected: usize = Cuisine::ALL
                .iter()
                .map(|&c| db.recipes_containing(crate::model::Item::Ingredient(a), Some(c)))
                .sum();
            if affected > 0 {
                out.push((alias.to_owned(), canonical.to_owned(), affected));
            }
        }
    }
    out.sort_by_key(|x| std::cmp::Reverse(x.2));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{CorpusGenerator, GeneratorConfig};
    use crate::model::Item;

    #[test]
    fn canonical_resolution_and_chains() {
        let mut t = AliasTable::new();
        t.add("spring onion", "scallion");
        t.add("green onion", "spring onion"); // chain -> scallion
        assert_eq!(t.canonical("green onion"), "scallion");
        assert_eq!(t.canonical("spring onion"), "scallion");
        assert_eq!(t.canonical("scallion"), "scallion");
        assert_eq!(t.canonical("salt"), "salt");
        assert!(t.is_alias("green onion"));
        assert!(!t.is_alias("scallion"));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn chain_flattening_updates_existing_entries() {
        let mut t = AliasTable::new();
        t.add("a", "b");
        t.add("b", "c"); // "a" must now resolve to "c"
        assert_eq!(t.canonical("a"), "c");
        assert_eq!(t.canonical("b"), "c");
    }

    #[test]
    #[should_panic(expected = "self-alias")]
    fn self_alias_rejected() {
        let mut t = AliasTable::new();
        t.add("x", "x");
    }

    #[test]
    fn apply_merges_supports() {
        let mut cfg = GeneratorConfig::paper_scale(0.02).with_seed(5);
        cfg.min_recipes_per_cuisine = 200;
        let db = CorpusGenerator::new(cfg).generate();
        let merged = apply(&db, &AliasTable::culinary_defaults());

        assert_eq!(merged.recipe_count(), db.recipe_count());
        // "green onion" (Korean motif) and "scallion" (East-Asia pool) are
        // separate before and one item after.
        assert!(db.catalog().ingredient("green onion").is_some());
        assert!(db.catalog().ingredient("scallion").is_some());
        assert!(merged.catalog().ingredient("green onion").is_none());
        let scallion = merged
            .catalog()
            .ingredient("scallion")
            .expect("canonical kept");

        // Merged support >= each original support, and equals the count of
        // recipes containing either original.
        let c = Cuisine::Korean;
        let before_go = db.recipes_containing(
            Item::Ingredient(db.catalog().ingredient("green onion").unwrap()),
            Some(c),
        );
        let after = merged.recipes_containing(Item::Ingredient(scallion), Some(c));
        assert!(after >= before_go, "merging cannot lose recipes");

        // Ingredient universe shrinks by the number of in-use aliases.
        assert!(merged.catalog().ingredient_count() < db.catalog().ingredient_count());
    }

    #[test]
    fn apply_with_empty_table_is_identity_on_structure() {
        let mut cfg = GeneratorConfig::paper_scale(0.01).with_seed(5);
        cfg.min_recipes_per_cuisine = 60;
        let db = CorpusGenerator::new(cfg).generate();
        let same = apply(&db, &AliasTable::new());
        assert_eq!(same.recipe_count(), db.recipe_count());
        assert_eq!(
            same.catalog().ingredient_count(),
            db.catalog().ingredient_count()
        );
        for (a, b) in db.recipes().zip(same.recipes()) {
            assert_eq!(a.ingredients.len(), b.ingredients.len());
            assert_eq!(a.cuisine, b.cuisine);
        }
    }

    #[test]
    fn alias_impact_reports_in_use_aliases() {
        let mut cfg = GeneratorConfig::paper_scale(0.02).with_seed(5);
        cfg.min_recipes_per_cuisine = 200;
        let db = CorpusGenerator::new(cfg).generate();
        let impact = alias_impact(&db, &AliasTable::culinary_defaults());
        assert!(
            impact.iter().any(|(a, _, _)| a == "green onion"),
            "green onion is used by the Korean motif: {impact:?}"
        );
        // Sorted descending by affected recipes.
        for w in impact.windows(2) {
            assert!(w[0].2 >= w[1].2);
        }
    }
}
