//! A flavor-compound substrate in the spirit of Ahn et al.'s *Flavor
//! network and the principles of food pairing* (Scientific Reports 2011)
//! — the paper's reference [2] and the source of its authenticity metric.
//!
//! Ahn et al. attach to every ingredient the set of flavor compounds it
//! contains; two ingredients "pair" when they share compounds, and a
//! cuisine exhibits *positive food pairing* when its recipes combine
//! compound-sharing ingredients more than chance (North-American /
//! Western European cuisines) and *negative pairing* when they avoid it
//! (East Asian; Jain et al. 2015 found the same for Indian food).
//!
//! The real compound table (Fenaroli's handbook) is proprietary, so this
//! module synthesizes one deterministically: compounds are organized into
//! **flavor families** aligned with the corpus's regional pools, every
//! ingredient hashes to a family (its pool, when it has one) and draws a
//! deterministic subset of family compounds plus a few universal ones.
//! Because family membership follows the regional pools, the synthetic
//! table preserves the property the analyses need: ingredients that
//! co-occur within a culinary block share more compounds than random
//! cross-block pairs.

use std::collections::{HashMap, HashSet};

use crate::generator::pools;
use crate::model::IngredientId;
use crate::store::RecipeDb;

/// A flavor-compound identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CompoundId(pub u32);

/// Number of compounds per flavor family.
const FAMILY_SIZE: u32 = 50;
/// Universal compounds shared across all families (water-soluble basics).
const UNIVERSAL: u32 = 30;
/// Compounds drawn from the ingredient's family.
const PER_INGREDIENT_FAMILY: usize = 12;
/// Universal compounds drawn per ingredient.
const PER_INGREDIENT_UNIVERSAL: usize = 4;

/// Deterministic FNV-1a hash (stable across runs and platforms).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// The synthetic ingredient → compound-set table.
#[derive(Debug, Clone)]
pub struct FlavorTable {
    compounds: HashMap<IngredientId, Vec<CompoundId>>,
}

impl FlavorTable {
    /// Build the table for every ingredient of a corpus. Deterministic:
    /// depends only on ingredient names.
    pub fn synthesize(db: &RecipeDb) -> Self {
        // Family index per pool name; tail ingredients hash to a family.
        let family_of_pool: HashMap<&str, u32> = pools::ALL_POOLS
            .iter()
            .enumerate()
            .map(|(i, &p)| (p, i as u32))
            .collect();
        let n_families = pools::ALL_POOLS.len() as u32 + 6; // + generic families
                                                            // Reverse map: ingredient name -> its pool family (if pooled).
        let mut pool_member: HashMap<&str, u32> = HashMap::new();
        for &pool in pools::ALL_POOLS {
            for &name in pools::regional_pool(pool) {
                pool_member.insert(name, family_of_pool[pool]);
            }
        }
        // Signature (motif) ingredients inherit the flavor family of their
        // cuisine's primary pool: a cuisine's characteristic ingredients
        // share chemistry, which is what lets the pairing analyses detect
        // the motif structure (soy sauce and sesame oil both "east-asia").
        for spec in crate::generator::spec::all_specs() {
            let family = family_of_pool[spec.pools[0]];
            for (kind, name) in spec.mentioned_items() {
                if kind == crate::model::ItemKind::Ingredient {
                    pool_member.entry(name).or_insert(family);
                }
            }
        }

        let mut compounds = HashMap::new();
        for (id, name) in db.catalog().ingredients() {
            let h = fnv1a(name.as_bytes());
            let family = match pool_member.get(name) {
                Some(&f) => f,
                None => (h % n_families as u64) as u32,
            };
            let family_base = UNIVERSAL + family * FAMILY_SIZE;
            let mut set: HashSet<CompoundId> = HashSet::new();
            // Family compounds: a deterministic pseudo-random walk.
            let mut x = h | 1;
            while set.len() < PER_INGREDIENT_FAMILY {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                set.insert(CompoundId(family_base + (x % FAMILY_SIZE as u64) as u32));
            }
            // Universal compounds.
            let mut y = h.rotate_left(17) | 1;
            let mut added = 0;
            while added < PER_INGREDIENT_UNIVERSAL {
                y ^= y << 13;
                y ^= y >> 7;
                y ^= y << 17;
                if set.insert(CompoundId((y % UNIVERSAL as u64) as u32)) {
                    added += 1;
                }
            }
            let mut v: Vec<CompoundId> = set.into_iter().collect();
            v.sort_unstable();
            compounds.insert(id, v);
        }
        FlavorTable { compounds }
    }

    /// The compound set of an ingredient (empty if unknown).
    pub fn compounds(&self, ingredient: IngredientId) -> &[CompoundId] {
        self.compounds
            .get(&ingredient)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Number of compounds shared by two ingredients.
    pub fn shared(&self, a: IngredientId, b: IngredientId) -> usize {
        let (ca, cb) = (self.compounds(a), self.compounds(b));
        let (mut i, mut j, mut n) = (0, 0, 0);
        while i < ca.len() && j < cb.len() {
            match ca[i].cmp(&cb[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    n += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        n
    }

    /// Ahn et al.'s recipe pairing strength `N_s(R)`: the mean number of
    /// shared compounds over all ingredient pairs of a recipe (0 for
    /// recipes with fewer than two ingredients).
    pub fn recipe_pairing_strength(&self, ingredients: &[IngredientId]) -> f64 {
        let n = ingredients.len();
        if n < 2 {
            return 0.0;
        }
        let mut total = 0usize;
        for i in 0..n {
            for j in (i + 1)..n {
                total += self.shared(ingredients[i], ingredients[j]);
            }
        }
        total as f64 / (n * (n - 1) / 2) as f64
    }

    /// Number of ingredients with compound data.
    pub fn len(&self) -> usize {
        self.compounds.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.compounds.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{CorpusGenerator, GeneratorConfig};

    fn db() -> RecipeDb {
        let mut cfg = GeneratorConfig::paper_scale(0.01).with_seed(4);
        cfg.min_recipes_per_cuisine = 60;
        CorpusGenerator::new(cfg).generate()
    }

    #[test]
    fn every_ingredient_gets_a_compound_set() {
        let db = db();
        let t = FlavorTable::synthesize(&db);
        assert_eq!(t.len(), db.catalog().ingredient_count());
        for (id, name) in db.catalog().ingredients().take(200) {
            let c = t.compounds(id);
            assert!(
                c.len() >= PER_INGREDIENT_FAMILY,
                "{name}: only {} compounds",
                c.len()
            );
            // Sorted and distinct.
            assert!(c.windows(2).all(|w| w[0] < w[1]), "{name}");
        }
    }

    #[test]
    fn deterministic_across_builds() {
        let db = db();
        let t1 = FlavorTable::synthesize(&db);
        let t2 = FlavorTable::synthesize(&db);
        let soy = db.catalog().ingredient("soy sauce").unwrap();
        assert_eq!(t1.compounds(soy), t2.compounds(soy));
    }

    #[test]
    fn same_pool_ingredients_share_more_than_cross_pool() {
        let db = db();
        let t = FlavorTable::synthesize(&db);
        let get = |n: &str| db.catalog().ingredient(n).unwrap();
        // Same pool (east-asia): mirin & miso.
        let same = t.shared(get("mirin"), get("miso"));
        // Cross pool: mirin (east-asia) & thyme (europe).
        let cross = t.shared(get("mirin"), get("thyme"));
        assert!(
            same > cross,
            "same-family pair shares {same}, cross-family {cross}"
        );
    }

    #[test]
    fn shared_is_symmetric_and_self_is_full() {
        let db = db();
        let t = FlavorTable::synthesize(&db);
        let a = db.catalog().ingredient("salt").unwrap();
        let b = db.catalog().ingredient("butter").unwrap();
        assert_eq!(t.shared(a, b), t.shared(b, a));
        assert_eq!(t.shared(a, a), t.compounds(a).len());
    }

    #[test]
    fn pairing_strength_bounds() {
        let db = db();
        let t = FlavorTable::synthesize(&db);
        let r = db.recipes().next().unwrap();
        let s = t.recipe_pairing_strength(&r.ingredients);
        assert!(s >= 0.0);
        assert!(s <= (PER_INGREDIENT_FAMILY + PER_INGREDIENT_UNIVERSAL) as f64);
        // Degenerate recipes.
        assert_eq!(t.recipe_pairing_strength(&[]), 0.0);
        assert_eq!(t.recipe_pairing_strength(&r.ingredients[..1]), 0.0);
    }
}
