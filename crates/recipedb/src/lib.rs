//! # recipedb — a RecipeDB-compatible recipe data substrate
//!
//! The paper *Hierarchical Clustering of World Cuisines* (Sharma et al.,
//! ICDE 2020) analyses 118,071 recipes from RecipeDB, grouped into 26
//! geo-cultural cuisines. RecipeDB itself is a proprietary scrape that is no
//! longer publicly downloadable, so this crate provides two things:
//!
//! 1. An **in-memory recipe store** ([`store::RecipeDb`]) with interned
//!    ingredient / process / utensil catalogs, cuisine indices, query
//!    helpers, corpus statistics and JSON round-trip IO. Any corpus with the
//!    RecipeDB shape (recipes = unordered sets of ingredients, processes and
//!    utensils, each tagged with one of 26 regions) can be loaded into it.
//!
//! 2. A **calibrated synthetic corpus generator** ([`generator`]) that
//!    reproduces the published marginals of the RecipeDB snapshot used by
//!    the paper: the exact per-region recipe counts of Table I, ~20,280
//!    unique ingredients, 268 processes and 69 utensils, ~10 ingredients /
//!    ~12 processes / ~3 utensils per recipe, 14,601 recipes with no utensil
//!    information, and per-cuisine signature item bundles whose supports are
//!    tuned to the top patterns the paper reports (soy sauce for Japanese,
//!    fish sauce for Thai, olive oil for Greek, ...). The generator is fully
//!    deterministic given a seed.
//!
//! Downstream crates (`pattern-mining`, `clustering`, `cuisine-atlas`)
//! consume only co-occurrence statistics, so the calibrated synthetic corpus
//! exercises the exact code paths of the paper's pipeline and reproduces the
//! *shape* of its results.
//!
//! ## Quick start
//!
//! ```
//! use recipedb::generator::{CorpusGenerator, GeneratorConfig};
//!
//! // A 2% scale corpus for quick experiments (fully deterministic).
//! let config = GeneratorConfig::paper_scale(0.02).with_seed(42);
//! let db = CorpusGenerator::new(config).generate();
//! assert_eq!(db.cuisine_count(), 26);
//! let stats = db.stats();
//! assert!(stats.total_recipes > 1_000);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alias;
pub mod catalog;
pub mod cuisine;
pub mod digest;
pub mod error;
pub mod flavor;
pub mod generator;
pub mod io;
pub mod model;
pub mod query;
pub mod stats;
pub mod store;

pub use catalog::{Catalog, TokenId};
pub use cuisine::Cuisine;
pub use digest::corpus_digest;
pub use error::RecipeDbError;
pub use model::{IngredientId, Item, ItemKind, ProcessId, Recipe, RecipeId, UtensilId};
pub use stats::CorpusStats;
pub use store::RecipeDb;
