//! The in-memory recipe database: recipes + catalogs + cuisine indices.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::catalog::{Catalog, TokenId};
use crate::cuisine::Cuisine;
use crate::error::RecipeDbError;
use crate::model::{Item, Recipe, RecipeId};
use crate::stats::CorpusStats;

/// An immutable-after-build, indexed recipe corpus.
///
/// Build one with [`RecipeDbBuilder`] (or via
/// [`crate::generator::CorpusGenerator`]), then query it. Recipes are stored
/// densely; `RecipeId(i)` is the recipe at position `i`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RecipeDb {
    catalog: Catalog,
    recipes: Vec<Recipe>,
    /// recipe ids per cuisine, indexed by `Cuisine::index()`.
    by_cuisine: Vec<Vec<RecipeId>>,
}

impl RecipeDb {
    /// The item catalog of this corpus.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Total number of recipes.
    pub fn recipe_count(&self) -> usize {
        self.recipes.len()
    }

    /// Number of cuisines with at least one recipe.
    pub fn cuisine_count(&self) -> usize {
        self.by_cuisine.iter().filter(|v| !v.is_empty()).count()
    }

    /// Fetch a recipe by id.
    pub fn recipe(&self, id: RecipeId) -> Option<&Recipe> {
        self.recipes.get(id.0 as usize)
    }

    /// Iterate over every recipe.
    pub fn recipes(&self) -> impl Iterator<Item = &Recipe> {
        self.recipes.iter()
    }

    /// Number of recipes in one cuisine.
    pub fn recipes_in(&self, cuisine: Cuisine) -> usize {
        self.by_cuisine[cuisine.index()].len()
    }

    /// Iterate over the recipes of one cuisine.
    pub fn cuisine_recipes(&self, cuisine: Cuisine) -> impl Iterator<Item = &Recipe> {
        self.by_cuisine[cuisine.index()]
            .iter()
            .map(move |&id| &self.recipes[id.0 as usize])
    }

    /// Cuisines present in the corpus, in Table I order.
    pub fn cuisines(&self) -> impl Iterator<Item = Cuisine> + '_ {
        Cuisine::ALL
            .iter()
            .copied()
            .filter(|c| !self.by_cuisine[c.index()].is_empty())
    }

    /// Number of recipes (optionally restricted to a cuisine) containing
    /// the given item.
    pub fn recipes_containing(&self, item: Item, cuisine: Option<Cuisine>) -> usize {
        match cuisine {
            Some(c) => self.cuisine_recipes(c).filter(|r| r.contains(item)).count(),
            None => self.recipes.iter().filter(|r| r.contains(item)).count(),
        }
    }

    /// The support of `item` within `cuisine`: the fraction of that
    /// cuisine's recipes that contain the item.
    pub fn item_support(&self, item: Item, cuisine: Cuisine) -> f64 {
        let n = self.recipes_in(cuisine);
        if n == 0 {
            return 0.0;
        }
        self.recipes_containing(item, Some(cuisine)) as f64 / n as f64
    }

    /// Convert each recipe of `cuisine` into a sorted unified-token
    /// transaction (the exact input shape of the pattern miner: the paper
    /// concatenates ingredients, processes and utensils per recipe).
    pub fn transactions_for(&self, cuisine: Cuisine) -> Vec<Vec<TokenId>> {
        self.cuisine_recipes(cuisine)
            .map(|r| self.recipe_tokens(r))
            .collect()
    }

    /// Like [`RecipeDb::transactions_for`], but restricted to the given
    /// item kinds — the basis of the "to what extent do processes and
    /// utensils influence the relationships" ablation the paper leaves as
    /// future work.
    pub fn transactions_for_kinds(
        &self,
        cuisine: Cuisine,
        kinds: &[crate::model::ItemKind],
    ) -> Vec<Vec<TokenId>> {
        self.cuisine_recipes(cuisine)
            .map(|r| {
                let mut toks: Vec<TokenId> = r
                    .items()
                    .filter(|it| kinds.contains(&it.kind()))
                    .map(|it| self.catalog.token_of(it))
                    .collect();
                toks.sort_unstable();
                toks.dedup();
                toks
            })
            .collect()
    }

    /// Tokenize one recipe into the unified token space (sorted, distinct).
    pub fn recipe_tokens(&self, recipe: &Recipe) -> Vec<TokenId> {
        let mut toks: Vec<TokenId> = recipe.items().map(|it| self.catalog.token_of(it)).collect();
        toks.sort_unstable();
        toks.dedup();
        toks
    }

    /// Compute corpus-wide statistics.
    pub fn stats(&self) -> CorpusStats {
        CorpusStats::compute(self)
    }

    /// Per-cuisine item prevalence counts: for every token, in how many
    /// recipes of `cuisine` it appears.
    pub fn item_frequencies(&self, cuisine: Cuisine) -> HashMap<TokenId, u32> {
        let mut freq: HashMap<TokenId, u32> = HashMap::new();
        for r in self.cuisine_recipes(cuisine) {
            for tok in self.recipe_tokens(r) {
                *freq.entry(tok).or_insert(0) += 1;
            }
        }
        freq
    }

    /// Validate internal invariants (dense ids, in-range references,
    /// normalized item lists, and a consistent per-cuisine index). The
    /// builder and deserializer enforce this; exposed publicly for
    /// defensive use against externally-supplied snapshots.
    pub fn validate(&self) -> Result<(), RecipeDbError> {
        for (i, r) in self.recipes.iter().enumerate() {
            if r.id.0 as usize != i {
                return Err(RecipeDbError::InconsistentId {
                    expected: i as u32,
                    found: r.id.0,
                });
            }
            for item in r.items() {
                if self.catalog.name_of(item).is_none() {
                    return Err(RecipeDbError::DanglingReference {
                        recipe: r.id,
                        detail: format!("{item:?}"),
                    });
                }
            }
        }
        self.validate_index()
    }

    /// Check that `by_cuisine` is exactly the index the builder would
    /// derive: one list per cuisine, every listed id in range and of that
    /// cuisine, and every recipe indexed exactly once. An uploaded
    /// snapshot with a hand-edited index (e.g. a cuisine whose recipes
    /// exist but whose index list is empty) would otherwise silently
    /// corrupt every per-cuisine query.
    fn validate_index(&self) -> Result<(), RecipeDbError> {
        if self.by_cuisine.len() != Cuisine::COUNT {
            return Err(RecipeDbError::CorruptIndex {
                detail: format!(
                    "expected {} cuisine lists, found {}",
                    Cuisine::COUNT,
                    self.by_cuisine.len()
                ),
            });
        }
        let mut seen = vec![false; self.recipes.len()];
        for (c, ids) in self.by_cuisine.iter().enumerate() {
            let cuisine = Cuisine::ALL[c];
            for &id in ids {
                let Some(r) = self.recipes.get(id.0 as usize) else {
                    return Err(RecipeDbError::CorruptIndex {
                        detail: format!(
                            "cuisine {} indexes unknown recipe {}",
                            cuisine.name(),
                            id.0
                        ),
                    });
                };
                if r.cuisine != cuisine {
                    return Err(RecipeDbError::CorruptIndex {
                        detail: format!(
                            "recipe {} is {} but indexed under {}",
                            id.0,
                            r.cuisine.name(),
                            cuisine.name()
                        ),
                    });
                }
                if std::mem::replace(&mut seen[id.0 as usize], true) {
                    return Err(RecipeDbError::CorruptIndex {
                        detail: format!("recipe {} indexed more than once", id.0),
                    });
                }
            }
        }
        if let Some(missing) = seen.iter().position(|&s| !s) {
            return Err(RecipeDbError::CorruptIndex {
                detail: format!("recipe {missing} missing from the cuisine index"),
            });
        }
        Ok(())
    }

    /// Validation for externally-uploaded corpora: everything
    /// [`RecipeDb::validate`] checks, plus a non-empty store — an empty
    /// corpus makes every downstream artifact degenerate, so uploads
    /// reject it outright.
    pub fn validate_upload(&self) -> Result<(), RecipeDbError> {
        self.validate()?;
        if self.recipes.is_empty() {
            return Err(RecipeDbError::EmptyCorpus);
        }
        Ok(())
    }

    pub(crate) fn rebuild_after_deserialize(&mut self) {
        self.catalog.rebuild_indices();
    }
}

/// Incremental builder for a [`RecipeDb`].
#[derive(Debug, Default)]
pub struct RecipeDbBuilder {
    catalog: Catalog,
    recipes: Vec<Recipe>,
}

impl RecipeDbBuilder {
    /// Start an empty corpus.
    pub fn new() -> Self {
        Self::default()
    }

    /// Mutable access to the catalog for interning names.
    pub fn catalog_mut(&mut self) -> &mut Catalog {
        &mut self.catalog
    }

    /// Read-only access to the catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Number of recipes added so far.
    pub fn recipe_count(&self) -> usize {
        self.recipes.len()
    }

    /// Add a recipe from name, cuisine and item lists. Ids are assigned
    /// densely; item lists are normalized (sorted + deduplicated).
    pub fn add_recipe(
        &mut self,
        name: impl Into<String>,
        cuisine: Cuisine,
        ingredients: Vec<crate::model::IngredientId>,
        processes: Vec<crate::model::ProcessId>,
        utensils: Vec<crate::model::UtensilId>,
    ) -> RecipeId {
        let id = RecipeId(u32::try_from(self.recipes.len()).expect("recipe id overflow"));
        let mut recipe = Recipe {
            id,
            name: name.into(),
            cuisine,
            ingredients,
            processes,
            utensils,
        };
        recipe.normalize();
        self.recipes.push(recipe);
        id
    }

    /// Finish building: index by cuisine and validate invariants.
    pub fn build(self) -> Result<RecipeDb, RecipeDbError> {
        let mut by_cuisine: Vec<Vec<RecipeId>> = vec![Vec::new(); Cuisine::COUNT];
        for r in &self.recipes {
            by_cuisine[r.cuisine.index()].push(r.id);
        }
        let db = RecipeDb {
            catalog: self.catalog,
            recipes: self.recipes,
            by_cuisine,
        };
        db.validate()?;
        Ok(db)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_db() -> RecipeDb {
        let mut b = RecipeDbBuilder::new();
        let soy = b.catalog_mut().intern_ingredient("soy sauce");
        let rice = b.catalog_mut().intern_ingredient("rice");
        let heat = b.catalog_mut().intern_process("heat");
        let wok = b.catalog_mut().intern_utensil("wok");
        b.add_recipe(
            "r0",
            Cuisine::Japanese,
            vec![soy, rice],
            vec![heat],
            vec![wok],
        );
        b.add_recipe("r1", Cuisine::Japanese, vec![soy], vec![heat], vec![]);
        b.add_recipe("r2", Cuisine::Thai, vec![rice], vec![], vec![]);
        b.build().expect("valid db")
    }

    #[test]
    fn builder_assigns_dense_ids_and_indices() {
        let db = tiny_db();
        assert_eq!(db.recipe_count(), 3);
        assert_eq!(db.cuisine_count(), 2);
        assert_eq!(db.recipes_in(Cuisine::Japanese), 2);
        assert_eq!(db.recipes_in(Cuisine::Thai), 1);
        assert_eq!(db.recipes_in(Cuisine::French), 0);
        assert_eq!(db.recipe(RecipeId(1)).unwrap().name, "r1");
        assert!(db.recipe(RecipeId(9)).is_none());
    }

    #[test]
    fn item_support_is_fraction_of_cuisine_recipes() {
        let db = tiny_db();
        let soy = Item::Ingredient(db.catalog().ingredient("soy sauce").unwrap());
        assert!((db.item_support(soy, Cuisine::Japanese) - 1.0).abs() < 1e-12);
        assert_eq!(db.item_support(soy, Cuisine::Thai), 0.0);
        // Empty cuisine -> 0, no panic.
        assert_eq!(db.item_support(soy, Cuisine::French), 0.0);
    }

    #[test]
    fn transactions_are_sorted_distinct_tokens() {
        let db = tiny_db();
        let txs = db.transactions_for(Cuisine::Japanese);
        assert_eq!(txs.len(), 2);
        for t in &txs {
            let mut s = t.clone();
            s.sort_unstable();
            s.dedup();
            assert_eq!(&s, t, "transaction must be sorted and deduplicated");
        }
        // r0 has 4 items across kinds.
        assert_eq!(txs[0].len(), 4);
    }

    #[test]
    fn kind_restricted_transactions() {
        use crate::model::ItemKind;
        let db = tiny_db();
        let ing_only = db.transactions_for_kinds(Cuisine::Japanese, &[ItemKind::Ingredient]);
        assert_eq!(ing_only[0].len(), 2, "r0 has 2 ingredients");
        let full = db.transactions_for(Cuisine::Japanese);
        assert_eq!(full[0].len(), 4);
        let all_kinds = db.transactions_for_kinds(
            Cuisine::Japanese,
            &[ItemKind::Ingredient, ItemKind::Process, ItemKind::Utensil],
        );
        assert_eq!(all_kinds, full, "all kinds == unrestricted");
    }

    #[test]
    fn item_frequencies_count_recipes_not_occurrences() {
        let db = tiny_db();
        let soy_tok = db.catalog().token_of(Item::Ingredient(
            db.catalog().ingredient("soy sauce").unwrap(),
        ));
        let freq = db.item_frequencies(Cuisine::Japanese);
        assert_eq!(freq.get(&soy_tok), Some(&2));
    }

    #[test]
    fn cuisines_lists_nonempty_in_table_order() {
        let db = tiny_db();
        let cs: Vec<Cuisine> = db.cuisines().collect();
        assert_eq!(cs, vec![Cuisine::Japanese, Cuisine::Thai]);
    }

    #[test]
    fn recipes_containing_with_and_without_cuisine_filter() {
        let db = tiny_db();
        let rice = Item::Ingredient(db.catalog().ingredient("rice").unwrap());
        assert_eq!(db.recipes_containing(rice, None), 2);
        assert_eq!(db.recipes_containing(rice, Some(Cuisine::Thai)), 1);
    }

    #[test]
    fn validate_accepts_built_db() {
        assert!(tiny_db().validate().is_ok());
    }

    #[test]
    fn validate_rejects_corrupt_cuisine_index() {
        // Empty a cuisine's index list while its recipes still exist.
        let mut db = tiny_db();
        db.by_cuisine[Cuisine::Thai.index()].clear();
        assert!(matches!(
            db.validate(),
            Err(RecipeDbError::CorruptIndex { .. })
        ));

        // Index a recipe under the wrong cuisine.
        let mut db = tiny_db();
        let id = db.by_cuisine[Cuisine::Thai.index()].pop().unwrap();
        db.by_cuisine[Cuisine::French.index()].push(id);
        assert!(matches!(
            db.validate(),
            Err(RecipeDbError::CorruptIndex { .. })
        ));

        // Index the same recipe twice.
        let mut db = tiny_db();
        let id = db.by_cuisine[Cuisine::Thai.index()][0];
        db.by_cuisine[Cuisine::Thai.index()].push(id);
        assert!(matches!(
            db.validate(),
            Err(RecipeDbError::CorruptIndex { .. })
        ));

        // Wrong number of cuisine lists.
        let mut db = tiny_db();
        db.by_cuisine.pop();
        assert!(matches!(
            db.validate(),
            Err(RecipeDbError::CorruptIndex { .. })
        ));

        // Out-of-range recipe id in the index.
        let mut db = tiny_db();
        db.by_cuisine[Cuisine::Thai.index()].push(RecipeId(99));
        assert!(matches!(
            db.validate(),
            Err(RecipeDbError::CorruptIndex { .. })
        ));
    }

    #[test]
    fn validate_upload_rejects_empty_corpus() {
        let empty = RecipeDbBuilder::new().build().expect("empty db builds");
        assert!(empty.validate().is_ok(), "plain validate tolerates empty");
        assert!(matches!(
            empty.validate_upload(),
            Err(RecipeDbError::EmptyCorpus)
        ));
        assert!(tiny_db().validate_upload().is_ok());
    }
}
