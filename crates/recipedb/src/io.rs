//! Corpus (de)serialization: JSON round-trip and a compact CSV-like export
//! of recipe transactions for interoperability with external tooling.

use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::cuisine::Cuisine;
use crate::error::RecipeDbError;
use crate::store::{RecipeDb, RecipeDbBuilder};

/// Serialize a corpus to pretty JSON.
pub fn to_json(db: &RecipeDb) -> Result<String, RecipeDbError> {
    Ok(serde_json::to_string(db)?)
}

/// Deserialize a corpus from JSON produced by [`to_json`], rebuilding
/// internal indices and validating invariants.
pub fn from_json(json: &str) -> Result<RecipeDb, RecipeDbError> {
    let mut db: RecipeDb = serde_json::from_str(json)?;
    db.rebuild_after_deserialize();
    db.validate()?;
    Ok(db)
}

/// Write a corpus as JSON to a writer.
pub fn write_json<W: Write>(db: &RecipeDb, writer: W) -> Result<(), RecipeDbError> {
    let w = BufWriter::new(writer);
    serde_json::to_writer(w, db)?;
    Ok(())
}

/// Read a corpus as JSON from a reader.
pub fn read_json<R: Read>(reader: R) -> Result<RecipeDb, RecipeDbError> {
    let mut db: RecipeDb = serde_json::from_reader(BufReader::new(reader))?;
    db.rebuild_after_deserialize();
    db.validate()?;
    Ok(db)
}

/// Save a corpus to a JSON file.
pub fn save(db: &RecipeDb, path: impl AsRef<Path>) -> Result<(), RecipeDbError> {
    let f = std::fs::File::create(path)?;
    write_json(db, f)
}

/// Load a corpus from a JSON file.
pub fn load(path: impl AsRef<Path>) -> Result<RecipeDb, RecipeDbError> {
    let f = std::fs::File::open(path)?;
    read_json(f)
}

/// Export recipes as a flat transaction file: one line per recipe in the
/// form `cuisine<TAB>item1|item2|...` where each item is its display name.
/// This mirrors the pre-processing step of the paper ("Ingredients,
/// utensils and processes were concatenated").
pub fn export_transactions<W: Write>(db: &RecipeDb, writer: W) -> Result<(), RecipeDbError> {
    let mut w = BufWriter::new(writer);
    for r in db.recipes() {
        let names: Vec<&str> = r
            .items()
            .filter_map(|it| db.catalog().name_of(it))
            .collect();
        writeln!(w, "{}\t{}", r.cuisine.name(), names.join("|"))?;
    }
    w.flush()?;
    Ok(())
}

/// Import recipes from the flat transaction format written by
/// [`export_transactions`]. Item kinds are inferred from a `kind:` prefix
/// when present (`p:heat`, `u:bowl`), defaulting to ingredient. Plain
/// exports therefore re-import with every item treated as an ingredient —
/// lossy in kind, lossless in co-occurrence structure, which is all the
/// mining pipeline consumes.
pub fn import_transactions<R: Read>(reader: R) -> Result<RecipeDb, RecipeDbError> {
    let mut builder = RecipeDbBuilder::new();
    for (lineno, line) in BufReader::new(reader).lines().enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let (cuisine_name, rest) = line.split_once('\t').ok_or_else(|| {
            RecipeDbError::Io(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("line {}: missing TAB separator", lineno + 1),
            ))
        })?;
        let cuisine = Cuisine::from_name(cuisine_name).ok_or_else(|| {
            RecipeDbError::Io(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("line {}: unknown cuisine {cuisine_name:?}", lineno + 1),
            ))
        })?;
        let mut ingredients = Vec::new();
        let mut processes = Vec::new();
        let mut utensils = Vec::new();
        for raw in rest.split('|').filter(|s| !s.is_empty()) {
            if let Some(p) = raw.strip_prefix("p:") {
                processes.push(builder.catalog_mut().intern_process(p));
            } else if let Some(u) = raw.strip_prefix("u:") {
                utensils.push(builder.catalog_mut().intern_utensil(u));
            } else {
                let name = raw.strip_prefix("i:").unwrap_or(raw);
                ingredients.push(builder.catalog_mut().intern_ingredient(name));
            }
        }
        builder.add_recipe(
            format!("recipe-{}", lineno),
            cuisine,
            ingredients,
            processes,
            utensils,
        );
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Item;

    fn tiny_db() -> RecipeDb {
        let mut b = RecipeDbBuilder::new();
        let soy = b.catalog_mut().intern_ingredient("soy sauce");
        let heat = b.catalog_mut().intern_process("heat");
        let wok = b.catalog_mut().intern_utensil("wok");
        b.add_recipe("r0", Cuisine::Japanese, vec![soy], vec![heat], vec![wok]);
        b.add_recipe("r1", Cuisine::Thai, vec![soy], vec![], vec![]);
        b.build().unwrap()
    }

    #[test]
    fn json_roundtrip_preserves_everything() {
        let db = tiny_db();
        let json = to_json(&db).unwrap();
        let back = from_json(&json).unwrap();
        assert_eq!(back.recipe_count(), db.recipe_count());
        assert_eq!(back.catalog().ingredient_count(), 1);
        // Reverse index must be rebuilt: name lookup works after load.
        let soy = back.catalog().ingredient("soy sauce").unwrap();
        assert!(back
            .recipe(crate::model::RecipeId(0))
            .unwrap()
            .contains(Item::Ingredient(soy)));
        assert_eq!(back.recipes_in(Cuisine::Thai), 1);
    }

    #[test]
    fn transaction_export_format() {
        let db = tiny_db();
        let mut buf = Vec::new();
        export_transactions(&db, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("Japanese\t"));
        assert!(lines[0].contains("soy sauce"));
    }

    #[test]
    fn transaction_import_with_kind_prefixes() {
        let text = "Japanese\ti:soy sauce|p:heat|u:wok\nThai\tfish sauce\n";
        let db = import_transactions(text.as_bytes()).unwrap();
        assert_eq!(db.recipe_count(), 2);
        assert_eq!(db.catalog().ingredient_count(), 2);
        assert_eq!(db.catalog().process_count(), 1);
        assert_eq!(db.catalog().utensil_count(), 1);
        assert_eq!(db.recipes_in(Cuisine::Japanese), 1);
    }

    #[test]
    fn transaction_import_rejects_bad_lines() {
        assert!(import_transactions("no-tab-here".as_bytes()).is_err());
        assert!(import_transactions("Atlantis\tsalt".as_bytes()).is_err());
        // Blank lines are fine.
        assert!(import_transactions("\n\n".as_bytes()).is_ok());
    }

    #[test]
    fn malformed_json_is_an_error_not_a_panic() {
        assert!(from_json("{not json").is_err());
        assert!(from_json("{}").is_err(), "missing fields rejected");
        assert!(from_json("[1,2,3]").is_err());
    }

    #[test]
    fn json_with_inconsistent_ids_fails_validation() {
        let db = tiny_db();
        let mut v: serde_json::Value = serde_json::from_str(&to_json(&db).unwrap()).unwrap();
        // Corrupt the first recipe's id.
        v["recipes"][0]["id"] = serde_json::json!(99);
        let err = from_json(&v.to_string());
        assert!(err.is_err(), "id/position mismatch must be caught");
    }

    #[test]
    fn json_with_corrupt_cuisine_index_fails_validation() {
        let db = tiny_db();
        let mut v: serde_json::Value = serde_json::from_str(&to_json(&db).unwrap()).unwrap();
        // Empty every index list: the recipes exist but are indexed
        // nowhere, which per-cuisine queries would silently miss.
        v["by_cuisine"] = serde_json::Value::Array(vec![serde_json::Value::Array(Vec::new()); 26]);
        let err = from_json(&v.to_string());
        assert!(err.is_err(), "inconsistent cuisine index must be caught");
    }

    #[test]
    fn file_roundtrip() {
        let db = tiny_db();
        let dir = std::env::temp_dir().join("recipedb-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("corpus.json");
        save(&db, &path).unwrap();
        let back = load(&path).unwrap();
        assert_eq!(back.recipe_count(), 2);
        std::fs::remove_file(&path).ok();
    }
}
