//! Error type for recipe store and IO operations.

use std::fmt;

/// Errors produced by [`crate::store::RecipeDb`] operations and corpus IO.
#[derive(Debug)]
pub enum RecipeDbError {
    /// A recipe referenced an ingredient/process/utensil id that is not in
    /// the catalog.
    DanglingReference {
        /// The offending recipe.
        recipe: crate::model::RecipeId,
        /// Description of the missing reference.
        detail: String,
    },
    /// A recipe id did not match its position in the store.
    InconsistentId {
        /// Expected id (position in the store).
        expected: u32,
        /// Id found on the recipe.
        found: u32,
    },
    /// The per-cuisine index disagrees with the recipe list (wrong
    /// length, out-of-range id, cuisine mismatch, or a recipe indexed
    /// zero or multiple times). Only externally-supplied snapshots can
    /// trip this — the builder derives the index from the recipes.
    CorruptIndex {
        /// Description of the inconsistency.
        detail: String,
    },
    /// The corpus contains no recipes at all; rejected on upload because
    /// every downstream artifact is degenerate over an empty store.
    EmptyCorpus,
    /// Underlying IO failure.
    Io(std::io::Error),
    /// JSON (de)serialization failure.
    Json(serde_json::Error),
}

impl fmt::Display for RecipeDbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecipeDbError::DanglingReference { recipe, detail } => {
                write!(f, "recipe {} has a dangling reference: {detail}", recipe.0)
            }
            RecipeDbError::InconsistentId { expected, found } => {
                write!(
                    f,
                    "recipe id {found} does not match its position {expected}"
                )
            }
            RecipeDbError::CorruptIndex { detail } => {
                write!(f, "corrupt cuisine index: {detail}")
            }
            RecipeDbError::EmptyCorpus => write!(f, "corpus contains no recipes"),
            RecipeDbError::Io(e) => write!(f, "io error: {e}"),
            RecipeDbError::Json(e) => write!(f, "json error: {e}"),
        }
    }
}

impl std::error::Error for RecipeDbError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RecipeDbError::Io(e) => Some(e),
            RecipeDbError::Json(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for RecipeDbError {
    fn from(e: std::io::Error) -> Self {
        RecipeDbError::Io(e)
    }
}

impl From<serde_json::Error> for RecipeDbError {
    fn from(e: serde_json::Error) -> Self {
        RecipeDbError::Json(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::RecipeId;

    #[test]
    fn display_formats_are_informative() {
        let e = RecipeDbError::DanglingReference {
            recipe: RecipeId(3),
            detail: "ingredient 99".into(),
        };
        assert!(e.to_string().contains("recipe 3"));
        let e = RecipeDbError::InconsistentId {
            expected: 1,
            found: 2,
        };
        assert!(e.to_string().contains("position 1"));
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "nope");
        let e: RecipeDbError = io.into();
        assert!(matches!(e, RecipeDbError::Io(_)));
        assert!(std::error::Error::source(&e).is_some());
    }
}
