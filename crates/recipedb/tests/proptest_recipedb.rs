//! Property-based invariants of the recipe substrate: arbitrary corpora
//! round-trip through JSON and the transaction format, queries agree with
//! brute-force filtering, and alias rewriting preserves co-occurrence
//! structure.

use proptest::prelude::*;

use recipedb::alias::AliasTable;
use recipedb::model::Item;
use recipedb::query::RecipeQuery;
use recipedb::store::{RecipeDb, RecipeDbBuilder};
use recipedb::{io, Cuisine};

/// An arbitrary small corpus: up to 20 recipes over small item universes.
fn arb_db() -> impl Strategy<Value = RecipeDb> {
    let recipe = (
        0usize..26,                             // cuisine index
        prop::collection::vec(0usize..8, 0..6), // ingredient picks
        prop::collection::vec(0usize..4, 0..4), // process picks
        prop::collection::vec(0usize..3, 0..3), // utensil picks
    );
    prop::collection::vec(recipe, 1..20).prop_map(|rows| {
        let mut b = RecipeDbBuilder::new();
        let ings: Vec<_> = (0..8)
            .map(|i| b.catalog_mut().intern_ingredient(&format!("ing-{i}")))
            .collect();
        let procs: Vec<_> = (0..4)
            .map(|i| b.catalog_mut().intern_process(&format!("proc-{i}")))
            .collect();
        let utes: Vec<_> = (0..3)
            .map(|i| b.catalog_mut().intern_utensil(&format!("ute-{i}")))
            .collect();
        for (n, (c, ri, rp, ru)) in rows.into_iter().enumerate() {
            b.add_recipe(
                format!("r{n}"),
                Cuisine::from_index(c).unwrap(),
                ri.into_iter().map(|i| ings[i]).collect(),
                rp.into_iter().map(|i| procs[i]).collect(),
                ru.into_iter().map(|i| utes[i]).collect(),
            );
        }
        b.build().expect("valid corpus")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn json_roundtrip_is_lossless(db in arb_db()) {
        let json = io::to_json(&db).unwrap();
        let back = io::from_json(&json).unwrap();
        prop_assert_eq!(back.recipe_count(), db.recipe_count());
        prop_assert_eq!(back.catalog().token_count(), db.catalog().token_count());
        for (a, b) in db.recipes().zip(back.recipes()) {
            prop_assert_eq!(a, b);
        }
        // Name lookups survive (reverse index rebuilt).
        prop_assert_eq!(back.catalog().ingredient("ing-0"), db.catalog().ingredient("ing-0"));
    }

    #[test]
    fn json_roundtrip_preserves_corpus_digest(db in arb_db()) {
        // The digest is the server-side identity of an uploaded corpus:
        // serializing and re-parsing must never change it, or a
        // re-upload of the same corpus would register a second id.
        let digest = recipedb::corpus_digest(&db);
        let back = io::from_json(&io::to_json(&db).unwrap()).unwrap();
        prop_assert_eq!(recipedb::corpus_digest(&back), digest);
    }

    #[test]
    fn transactions_match_recipe_contents(db in arb_db()) {
        for &c in &Cuisine::ALL {
            let txs = db.transactions_for(c);
            let recipes: Vec<_> = db.cuisine_recipes(c).collect();
            prop_assert_eq!(txs.len(), recipes.len());
            for (tx, r) in txs.iter().zip(&recipes) {
                prop_assert_eq!(tx.len(), r.item_count(), "tokens == distinct items");
                for &tok in tx {
                    let item = db.catalog().item_of(tok).expect("token resolves");
                    prop_assert!(r.contains(item));
                }
            }
        }
    }

    #[test]
    fn query_agrees_with_brute_force(db in arb_db(), c in 0usize..26, ing in 0u32..8) {
        let cuisine = Cuisine::from_index(c).unwrap();
        let item = db.catalog().ingredient(&format!("ing-{ing}")).map(Item::Ingredient);
        prop_assume!(item.is_some());
        let item = item.unwrap();
        let q = RecipeQuery::new().cuisine(cuisine).containing(item);
        let brute = db
            .recipes()
            .filter(|r| r.cuisine == cuisine && r.contains(item))
            .count();
        prop_assert_eq!(q.count(&db), brute);
        prop_assert_eq!(q.execute(&db).len(), brute);
    }

    #[test]
    fn stats_are_internally_consistent(db in arb_db()) {
        let s = db.stats();
        prop_assert_eq!(s.total_recipes, db.recipe_count());
        prop_assert_eq!(
            s.recipes_per_cuisine.iter().sum::<usize>(),
            db.recipe_count()
        );
        let with_utensils = db.recipes().filter(|r| r.has_utensils()).count();
        prop_assert_eq!(s.recipes_without_utensils, db.recipe_count() - with_utensils);
    }

    #[test]
    fn alias_apply_preserves_recipe_count_and_merges_ids(db in arb_db()) {
        let mut t = AliasTable::new();
        t.add("ing-1", "ing-0");
        let merged = recipedb::alias::apply(&db, &t);
        prop_assert_eq!(merged.recipe_count(), db.recipe_count());
        prop_assert!(merged.catalog().ingredient("ing-1").is_none());
        // A recipe containing either ing-0 or ing-1 before now contains
        // the canonical id.
        let before_union = db
            .recipes()
            .filter(|r| {
                [0u32, 1].iter().any(|&i| {
                    db.catalog()
                        .ingredient(&format!("ing-{i}"))
                        .is_some_and(|id| r.contains(Item::Ingredient(id)))
                })
            })
            .count();
        let canon = merged.catalog().ingredient("ing-0");
        let after = match canon {
            Some(id) => merged
                .recipes()
                .filter(|r| r.contains(Item::Ingredient(id)))
                .count(),
            None => 0,
        };
        prop_assert_eq!(before_union, after);
    }

    #[test]
    fn transaction_export_import_preserves_cooccurrence(db in arb_db()) {
        // The flat format is lossy in kind but lossless in co-occurrence:
        // per-recipe distinct-item counts and cuisine assignment survive.
        let mut buf = Vec::new();
        io::export_transactions(&db, &mut buf).unwrap();
        let back = io::import_transactions(buf.as_slice()).unwrap();
        prop_assert_eq!(back.recipe_count(), db.recipe_count());
        for (a, b) in db.recipes().zip(back.recipes()) {
            prop_assert_eq!(a.cuisine, b.cuisine);
            prop_assert_eq!(a.item_count(), b.item_count());
        }
    }
}
