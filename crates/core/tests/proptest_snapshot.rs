//! Property-based damage resistance of the snapshot codec: every
//! truncation and every bit flip is rejected with a typed
//! [`SnapshotError`] — never a panic, never a silently wrong atlas —
//! and corpus snapshots round-trip arbitrary corpora losslessly.

use std::sync::{Arc, OnceLock};

use proptest::prelude::*;

use cuisine_atlas::pipeline::{AtlasConfig, CuisineAtlas};
use cuisine_atlas::snapshot::{
    decode_atlas, decode_corpus, encode_atlas, encode_corpus, peek_corpus, CorpusOrigin,
};
use recipedb::store::{RecipeDb, RecipeDbBuilder};
use recipedb::Cuisine;

/// A tiny deterministic corpus — three cuisines, four recipes each —
/// big enough for mining and clustering, small enough that the fixture
/// atlas build is effectively free.
fn tiny_db() -> RecipeDb {
    let mut b = RecipeDbBuilder::new();
    let ings: Vec<_> = (0..6)
        .map(|i| b.catalog_mut().intern_ingredient(&format!("ing-{i}")))
        .collect();
    let procs: Vec<_> = (0..3)
        .map(|i| b.catalog_mut().intern_process(&format!("proc-{i}")))
        .collect();
    for (ci, &cuisine) in Cuisine::ALL[..3].iter().enumerate() {
        for r in 0..4 {
            b.add_recipe(
                format!("r{ci}-{r}"),
                cuisine,
                vec![ings[ci], ings[(ci + r) % 6], ings[5 - ci]],
                vec![procs[(ci + r) % 3]],
                vec![],
            );
        }
    }
    b.build().expect("valid corpus")
}

struct Fixture {
    digest: String,
    db: Arc<RecipeDb>,
    atlas_bytes: Vec<u8>,
    corpus_bytes: Vec<u8>,
}

/// One shared fixture across every property: the atlas is built once.
fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let db = Arc::new(tiny_db());
        let digest = recipedb::corpus_digest(&db);
        let atlas = CuisineAtlas::from_shared(Arc::clone(&db), &AtlasConfig::quick(1));
        let atlas_bytes = encode_atlas(&atlas, &digest);
        let corpus_bytes = encode_corpus(&db, CorpusOrigin::Uploaded, 77).expect("encodable");
        Fixture {
            digest,
            db,
            atlas_bytes,
            corpus_bytes,
        }
    })
}

/// An arbitrary small corpus for the round-trip property.
fn arb_db() -> impl Strategy<Value = RecipeDb> {
    let recipe = (
        0usize..26,                             // cuisine index
        prop::collection::vec(0usize..8, 0..6), // ingredient picks
        prop::collection::vec(0usize..4, 0..4), // process picks
    );
    prop::collection::vec(recipe, 1..16).prop_map(|rows| {
        let mut b = RecipeDbBuilder::new();
        let ings: Vec<_> = (0..8)
            .map(|i| b.catalog_mut().intern_ingredient(&format!("ing-{i}")))
            .collect();
        let procs: Vec<_> = (0..4)
            .map(|i| b.catalog_mut().intern_process(&format!("proc-{i}")))
            .collect();
        for (n, (c, ri, rp)) in rows.into_iter().enumerate() {
            b.add_recipe(
                format!("r{n}"),
                Cuisine::from_index(c).unwrap(),
                ri.into_iter().map(|i| ings[i]).collect(),
                rp.into_iter().map(|i| procs[i]).collect(),
                Vec::new(),
            );
        }
        b.build().expect("valid corpus")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn truncated_atlas_snapshots_are_rejected(cut in 0usize..fixture().atlas_bytes.len()) {
        let f = fixture();
        let result = decode_atlas(&f.atlas_bytes[..cut], Arc::clone(&f.db), &f.digest, 1);
        prop_assert!(result.is_err(), "cut at {} must not decode", cut);
    }

    #[test]
    fn bit_flipped_atlas_snapshots_are_rejected(
        pos in 0usize..fixture().atlas_bytes.len(),
        bit in 0usize..8,
    ) {
        let f = fixture();
        let mut bad = f.atlas_bytes.clone();
        bad[pos] ^= 1 << bit;
        let result = decode_atlas(&bad, Arc::clone(&f.db), &f.digest, 1);
        prop_assert!(result.is_err(), "flip at byte {} bit {} must not decode", pos, bit);
    }

    #[test]
    fn truncated_corpus_snapshots_are_rejected(cut in 0usize..fixture().corpus_bytes.len()) {
        let f = fixture();
        prop_assert!(decode_corpus(&f.corpus_bytes[..cut]).is_err());
        prop_assert!(peek_corpus(&f.corpus_bytes[..cut]).is_err());
    }

    #[test]
    fn bit_flipped_corpus_snapshots_are_rejected(
        pos in 0usize..fixture().corpus_bytes.len(),
        bit in 0usize..8,
    ) {
        let f = fixture();
        let mut bad = f.corpus_bytes.clone();
        bad[pos] ^= 1 << bit;
        prop_assert!(decode_corpus(&bad).is_err(), "flip at byte {} bit {}", pos, bit);
    }

    #[test]
    fn corpus_snapshots_roundtrip_arbitrary_corpora(
        db in arb_db(),
        upload_bytes in 0u64..1_000_000,
    ) {
        let digest = recipedb::corpus_digest(&db);
        let bytes = encode_corpus(&db, CorpusOrigin::Uploaded, upload_bytes).unwrap();
        let peek = peek_corpus(&bytes).unwrap();
        prop_assert_eq!(&peek.digest, &digest);
        prop_assert_eq!(peek.upload_bytes, upload_bytes);
        let snap = decode_corpus(&bytes).unwrap();
        prop_assert_eq!(&snap.digest, &digest);
        prop_assert_eq!(snap.origin, CorpusOrigin::Uploaded);
        prop_assert_eq!(snap.upload_bytes, upload_bytes);
        prop_assert_eq!(recipedb::corpus_digest(&snap.db), digest);
        prop_assert_eq!(snap.db.recipe_count(), db.recipe_count());
    }
}
