//! One entry point per table/figure of the paper — the functions behind
//! the `repro` binary and the experiment index in DESIGN.md.
//!
//! | Id | Paper artifact | Function |
//! |----|----------------|----------|
//! | T1 | Table I        | [`table1`] |
//! | F1 | Figure 1 (elbow) | [`figure1_elbow`] |
//! | F2 | Figure 2 (HAC, Euclidean) | [`figure2_euclidean`] |
//! | F3 | Figure 3 (HAC, Cosine)    | [`figure3_cosine`] |
//! | F4 | Figure 4 (HAC, Jaccard)   | [`figure4_jaccard`] |
//! | F5 | Figure 5 (authenticity)   | [`figure5_authenticity`] |
//! | F6 | Figure 6 (geography)      | [`figure6_geography`] |
//! | Q1 | Validation & historical claims | [`validate`] |
//! | E1–E4 | §VIII future-work extensions | [`ext_all`] |

use clustering::kmeans::elbow_strength;
use clustering::Metric;

use crate::compare::{geo_agreement, historical_claims};
use crate::pipeline::CuisineAtlas;
use crate::report::{render_elbow, render_table1, render_tree};

/// T1 — regenerate Table I.
pub fn table1(atlas: &CuisineAtlas) -> String {
    render_table1(&atlas.table1())
}

/// F1 — regenerate the elbow analysis of Figure 1. Returns the rendered
/// curve plus the quantified elbow strength (the paper's point: no sharp
/// elbow exists on this data).
pub fn figure1_elbow(atlas: &CuisineAtlas) -> String {
    let curve = atlas.elbow_curve(16, 1);
    let mut out = render_elbow(&curve);
    if let Some((k, strength)) = elbow_strength(&curve) {
        out.push_str(&format!(
            "\nStrongest knee: k={k} with normalized strength {strength:.4} \
             (paper: 'no sharp edge or elbow like structure is obtained')\n"
        ));
    }
    out
}

/// F1b (extension) — corroborate Figure 1 with stronger k-selection
/// criteria: silhouette sweep, the gap statistic and a PAM (k-medoids)
/// cost sweep on the cuisine pattern vectors.
pub fn figure1_extended(atlas: &CuisineAtlas) -> String {
    use clustering::condensed::CondensedMatrix;
    use clustering::kmedoids::cost_sweep;
    use clustering::kselect::{best_silhouette, gap_select, gap_statistic, silhouette_sweep};

    let points = &atlas.features().binary;
    let mut out = String::new();
    out.push_str(
        "Figure 1 extended: silhouette / gap statistic / PAM on pattern vectors

",
    );

    out.push_str("silhouette by k:   ");
    for (k, s) in silhouette_sweep(points, 10, 1) {
        out.push_str(&format!("k={k}:{s:+.2}  "));
    }
    if let Some((k, s)) = best_silhouette(points, 10, 1) {
        out.push_str(&format!(
            "
  best: k={k} at {s:+.3} (clean blob data scores > +0.8)
"
        ));
    }

    let curve = gap_statistic(points, 10, 6, 1);
    out.push_str("gap statistic:     ");
    for p in &curve {
        out.push_str(&format!("k={}:{:+.2}  ", p.k, p.gap));
    }
    match gap_select(&curve) {
        Some(k) => out.push_str(&format!(
            "
  gap rule selects k={k}
"
        )),
        None => out.push_str(
            "
  gap rule selects nothing (no structure)
",
        ),
    }

    let dist = CondensedMatrix::pdist(points, clustering::Metric::Euclidean);
    let pam = cost_sweep(&dist, 10, 50);
    out.push_str("PAM cost by k:     ");
    for (i, c) in pam.iter().enumerate() {
        out.push_str(&format!("k={}:{c:.1}  ", i + 1));
    }
    out.push_str(
        "

All three criteria tell the same story as the paper's elbow plot:
         the 26 cuisine vectors have gradual, nested similarity structure
         rather than a flat k-cluster partition — hierarchical clustering is
         the right tool.
",
    );
    out
}

/// F2 — the Euclidean pattern dendrogram.
pub fn figure2_euclidean(atlas: &CuisineAtlas) -> String {
    render_tree(&atlas.pattern_tree(Metric::Euclidean))
}

/// F3 — the Cosine pattern dendrogram.
pub fn figure3_cosine(atlas: &CuisineAtlas) -> String {
    render_tree(&atlas.pattern_tree(Metric::Cosine))
}

/// F4 — the Jaccard pattern dendrogram.
pub fn figure4_jaccard(atlas: &CuisineAtlas) -> String {
    render_tree(&atlas.pattern_tree(Metric::Jaccard))
}

/// F5 — the authenticity-based dendrogram.
pub fn figure5_authenticity(atlas: &CuisineAtlas) -> String {
    render_tree(&atlas.authenticity_tree())
}

/// F6 — the geographic validation dendrogram.
pub fn figure6_geography(atlas: &CuisineAtlas) -> String {
    render_tree(&atlas.geographic_tree())
}

/// Q1 — the quantified validation of Section VII: every tree scored
/// against geography, plus the Canada–France and India–North-Africa
/// claims per tree.
pub fn validate(atlas: &CuisineAtlas) -> String {
    let geo = atlas.geographic_tree();
    let trees = vec![
        atlas.pattern_tree(Metric::Euclidean),
        atlas.pattern_tree(Metric::Cosine),
        atlas.pattern_tree(Metric::Jaccard),
        atlas.authenticity_tree(),
    ];
    let mut out = String::new();
    out.push_str("Validation against geography (Section VII)\n");
    out.push_str(&format!(
        "{:<36} {:>14} {:>14} {:>10} {:>10}\n",
        "tree", "corr(coph,geo)", "Baker's gamma", "CA~FR<US", "IN~NA<TH/SEA"
    ));
    for tree in &trees {
        let score = geo_agreement(tree, &geo);
        let claims = historical_claims(tree);
        out.push_str(&format!(
            "{:<36} {:>14.4} {:>14.4} {:>10} {:>12}\n",
            score.tree,
            score.cophenetic_vs_geo,
            score.bakers_gamma,
            claims.canada_closer_to_france_than_us,
            claims.india_closer_to_north_africa_than_neighbors
        ));
    }
    out.push_str(
        "\nPaper: Euclidean is the pattern metric closest to geography; the\n\
         authenticity tree is 'similar yet better'. Both historical claims\n\
         (Canada–France over Canada–US; India–NorthernAfrica over India's\n\
         Asian neighbours) must hold in every cuisine tree while geography\n\
         itself violates them.\n",
    );
    out
}

/// E1–E4 — the future-work extensions in one report (see
/// [`crate::extensions`]).
pub fn ext_all(atlas: &CuisineAtlas) -> String {
    let mut out = String::new();
    out.push_str(&crate::extensions::kinds_ablation(atlas));
    out.push('\n');
    out.push_str(&crate::extensions::alias_ablation(atlas));
    out.push('\n');
    out.push_str(&crate::extensions::bootstrap_report(atlas, 10, 7));
    out.push('\n');
    out.push_str(&crate::extensions::linkage_sensitivity(atlas));
    out.push('\n');
    out.push_str(&crate::flavor_pairing::report(atlas.db(), 3, 7));
    out
}

/// Run every experiment and concatenate the reports (the `repro -- all`
/// output).
pub fn run_all(atlas: &CuisineAtlas) -> String {
    let sections = [
        ("T1  Table I", table1(atlas)),
        ("F1  Figure 1 — elbow method", figure1_elbow(atlas)),
        (
            "F1b Figure 1 extended — silhouette / gap / PAM",
            figure1_extended(atlas),
        ),
        ("F2  Figure 2 — HAC euclidean", figure2_euclidean(atlas)),
        ("F3  Figure 3 — HAC cosine", figure3_cosine(atlas)),
        ("F4  Figure 4 — HAC jaccard", figure4_jaccard(atlas)),
        (
            "F5  Figure 5 — HAC authenticity",
            figure5_authenticity(atlas),
        ),
        ("F6  Figure 6 — HAC geography", figure6_geography(atlas)),
        ("Q1  Validation", validate(atlas)),
        ("E1-E4  Future-work extensions", ext_all(atlas)),
    ];
    let mut out = String::new();
    for (title, body) in sections {
        out.push_str(&format!(
            "\n{}\n{}\n{}\n",
            "=".repeat(96),
            title,
            "=".repeat(96)
        ));
        out.push_str(&body);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_experiment_renders_nonempty() {
        let atlas = crate::testutil::shared_atlas();
        for (name, text) in [
            ("table1", table1(atlas)),
            ("figure1", figure1_elbow(atlas)),
            ("figure2", figure2_euclidean(atlas)),
            ("figure3", figure3_cosine(atlas)),
            ("figure4", figure4_jaccard(atlas)),
            ("figure5", figure5_authenticity(atlas)),
            ("figure6", figure6_geography(atlas)),
            ("validate", validate(atlas)),
        ] {
            assert!(text.len() > 100, "{name} output too small");
        }
    }

    #[test]
    fn run_all_contains_every_section() {
        let atlas = crate::testutil::shared_atlas();
        let all = run_all(atlas);
        for tag in [
            "T1", "F1", "F2", "F3", "F4", "F5", "F6", "Q1", "Ext1", "Ext2", "Ext3", "Ext4",
        ] {
            assert!(all.contains(tag), "missing section {tag}");
        }
    }
}
