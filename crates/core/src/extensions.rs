//! Extensions beyond the paper — its §VIII future-work list, made
//! runnable:
//!
//! * [`kinds_ablation`] — "RecipeDB is a sparse dataset in terms of
//!   utensils and processes. Hence, to what extent do they influence the
//!   relationships among cuisines is yet to be answered": mine with
//!   ingredients only, ingredients+processes, and all three kinds, and
//!   measure how the cuisine tree moves.
//! * [`alias_ablation`] — "future analysis need to account for the
//!   aliases": merge ingredient aliases and measure the effect.
//! * [`bootstrap_claims`] — "it would also be interesting to identify
//!   more sophisticated validation metric": bootstrap-resample the corpus
//!   and report how stable the tree and the historical claims are.
//! * [`linkage_sensitivity`] — the clustering stage's main free parameter:
//!   rebuild the tree under every monotone linkage and compare topologies.

use clustering::condensed::CondensedMatrix;
use clustering::distance::jaccard_sets;
use clustering::hac::LinkageMethod;
use clustering::treecmp::{mean_bk, robinson_foulds_normalized};
use clustering::validation::bakers_gamma;
use clustering::Metric;
use pattern_mining::fpgrowth::FpGrowth;
use pattern_mining::transaction::TransactionDb;
use pattern_mining::Miner;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use recipedb::alias::{alias_impact, AliasTable};
use recipedb::{Cuisine, ItemKind, RecipeDb};

use crate::compare::historical_claims;
use crate::features::PatternFeatures;
use crate::patterns::CuisinePatterns;
use crate::pipeline::{AtlasConfig, CuisineAtlas, CuisineTree};

/// Mine one cuisine restricted to the given item kinds.
pub fn mine_cuisine_kinds(
    db: &RecipeDb,
    cuisine: Cuisine,
    min_support: f64,
    kinds: &[ItemKind],
) -> CuisinePatterns {
    let rows: Vec<Vec<u32>> = db
        .transactions_for_kinds(cuisine, kinds)
        .into_iter()
        .map(|tx| tx.into_iter().map(|t| t.0).collect())
        .collect();
    let n_recipes = rows.len();
    let tdb = TransactionDb::from_rows(rows);
    let itemsets = if n_recipes == 0 {
        Vec::new()
    } else {
        FpGrowth::new(min_support).mine(&tdb)
    };
    CuisinePatterns {
        cuisine,
        n_recipes,
        itemsets,
    }
}

/// Build the Jaccard pattern tree from kind-restricted mining.
pub fn pattern_tree_for_kinds(
    db: &RecipeDb,
    min_support: f64,
    kinds: &[ItemKind],
    linkage_method: LinkageMethod,
) -> CuisineTree {
    let all: Vec<CuisinePatterns> = Cuisine::ALL
        .iter()
        .map(|&c| mine_cuisine_kinds(db, c, min_support, kinds))
        .collect();
    let features = PatternFeatures::build(db, &all);
    let distances = CondensedMatrix::from_fn(Cuisine::COUNT, |i, j| {
        jaccard_sets(&features.pattern_sets[i], &features.pattern_sets[j])
    });
    let label = kinds
        .iter()
        .map(|k| k.label())
        .collect::<Vec<_>>()
        .join("+");
    CuisineTree::from_distances(
        format!("patterns[{label}]/jaccard/{linkage_method}"),
        distances,
        linkage_method,
    )
}

/// Ext1 — how much do processes and utensils shape the cuisine tree?
pub fn kinds_ablation(atlas: &CuisineAtlas) -> String {
    use ItemKind::*;
    let db = atlas.db();
    let ms = atlas.config().min_support;
    let lm = atlas.config().linkage;
    let variants: Vec<(&str, Vec<ItemKind>)> = vec![
        ("ingredients only", vec![Ingredient]),
        ("ingredients + processes", vec![Ingredient, Process]),
        (
            "ingredients + processes + utensils",
            vec![Ingredient, Process, Utensil],
        ),
    ];
    let trees: Vec<(&str, CuisineTree)> = variants
        .iter()
        .map(|(name, kinds)| (*name, pattern_tree_for_kinds(db, ms, kinds, lm)))
        .collect();
    let geo = atlas.geographic_tree();

    let mut out = String::new();
    out.push_str("Ext1 — item-kind ablation (paper §VIII: sparsity of processes/utensils)\n");
    out.push_str(&format!(
        "{:<38} {:>9} {:>9} {:>9} {:>8} {:>8}\n",
        "variant", "γ(vs geo)", "γ(vs all)", "RF(vs all)", "CA~FR", "IN~NA"
    ));
    let full = &trees.last().expect("three variants").1;
    for (name, tree) in &trees {
        let claims = historical_claims(tree);
        out.push_str(&format!(
            "{:<38} {:>9.3} {:>9.3} {:>10.3} {:>8} {:>8}\n",
            name,
            bakers_gamma(&tree.dendrogram, &geo.dendrogram),
            bakers_gamma(&tree.dendrogram, &full.dendrogram),
            robinson_foulds_normalized(&tree.dendrogram, &full.dendrogram),
            claims.canada_closer_to_france_than_us,
            claims.india_closer_to_north_africa_than_neighbors,
        ));
    }
    out.push_str(
        "\nReading: γ(vs all) near 1 / RF near 0 means the kind adds little\n\
         beyond ingredients — quantifying the paper's open question.\n",
    );
    out
}

/// Ext2 — alias normalization: merge synonym ingredients and re-run.
pub fn alias_ablation(atlas: &CuisineAtlas) -> String {
    let aliases = AliasTable::culinary_defaults();
    let impact = alias_impact(atlas.db(), &aliases);
    let merged_db = recipedb::alias::apply(atlas.db(), &aliases);
    let merged = CuisineAtlas::from_db(merged_db, atlas.config());

    let base_tree = atlas.pattern_tree(Metric::Jaccard);
    let merged_tree = merged.pattern_tree(Metric::Jaccard);
    let base_claims = historical_claims(&base_tree);
    let merged_claims = historical_claims(&merged_tree);

    let mut out = String::new();
    out.push_str("Ext2 — ingredient alias normalization (paper §VIII)\n");
    out.push_str("aliases in use (alias -> canonical, affected recipes):\n");
    for (alias, canonical, n) in impact.iter().take(8) {
        out.push_str(&format!("  {alias} -> {canonical}: {n}\n"));
    }
    out.push_str(&format!(
        "\ntree stability after merging: Baker's gamma {:.3}, normalized RF {:.3}, mean Bk {:.3}\n",
        bakers_gamma(&base_tree.dendrogram, &merged_tree.dendrogram),
        robinson_foulds_normalized(&base_tree.dendrogram, &merged_tree.dendrogram),
        mean_bk(&base_tree.dendrogram, &merged_tree.dendrogram, 12),
    ));
    out.push_str(&format!(
        "claims before: CA~FR {} / IN~NA {}; after: CA~FR {} / IN~NA {}\n",
        base_claims.canada_closer_to_france_than_us,
        base_claims.india_closer_to_north_africa_than_neighbors,
        merged_claims.canada_closer_to_france_than_us,
        merged_claims.india_closer_to_north_africa_than_neighbors,
    ));
    out
}

/// Summary of a bootstrap stability run.
#[derive(Debug, Clone)]
pub struct BootstrapSummary {
    /// Number of bootstrap resamples.
    pub n_resamples: usize,
    /// Fraction of resamples where Canada–France < Canada–US held.
    pub canada_france_rate: f64,
    /// Fraction of resamples where India–N.Africa < India–Thai/SEA held.
    pub india_nafrica_rate: f64,
    /// Mean Baker's gamma between each resample tree and the original.
    pub mean_gamma_to_original: f64,
}

/// Ext3 — bootstrap-resample recipes per cuisine, rebuild the Jaccard
/// pattern tree, and measure how stable the tree and the claims are.
pub fn bootstrap_claims(atlas: &CuisineAtlas, n_resamples: usize, seed: u64) -> BootstrapSummary {
    let db = atlas.db();
    let ms = atlas.config().min_support;
    let lm = atlas.config().linkage;
    let original = atlas.pattern_tree(Metric::Jaccard);

    // Pre-extract transactions per cuisine once.
    let base: Vec<Vec<Vec<u32>>> = Cuisine::ALL
        .iter()
        .map(|&c| {
            db.transactions_for(c)
                .into_iter()
                .map(|tx| tx.into_iter().map(|t| t.0).collect())
                .collect()
        })
        .collect();

    let mut ca_fr = 0usize;
    let mut in_na = 0usize;
    let mut gamma_sum = 0.0;
    for r in 0..n_resamples {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(r as u64));
        let all: Vec<CuisinePatterns> = Cuisine::ALL
            .iter()
            .map(|&c| {
                let rows = &base[c.index()];
                let resampled: Vec<Vec<u32>> = (0..rows.len())
                    .map(|_| rows[rng.gen_range(0..rows.len())].clone())
                    .collect();
                let n_recipes = resampled.len();
                let tdb = TransactionDb::from_rows(resampled);
                CuisinePatterns {
                    cuisine: c,
                    n_recipes,
                    itemsets: FpGrowth::new(ms).mine(&tdb),
                }
            })
            .collect();
        let features = PatternFeatures::build(db, &all);
        let distances = CondensedMatrix::from_fn(Cuisine::COUNT, |i, j| {
            jaccard_sets(&features.pattern_sets[i], &features.pattern_sets[j])
        });
        let tree = CuisineTree::from_distances(format!("bootstrap[{r}]"), distances, lm);
        let claims = historical_claims(&tree);
        ca_fr += claims.canada_closer_to_france_than_us as usize;
        in_na += claims.india_closer_to_north_africa_than_neighbors as usize;
        gamma_sum += bakers_gamma(&tree.dendrogram, &original.dendrogram);
    }
    BootstrapSummary {
        n_resamples,
        canada_france_rate: ca_fr as f64 / n_resamples as f64,
        india_nafrica_rate: in_na as f64 / n_resamples as f64,
        mean_gamma_to_original: gamma_sum / n_resamples as f64,
    }
}

/// Render a bootstrap summary.
pub fn bootstrap_report(atlas: &CuisineAtlas, n_resamples: usize, seed: u64) -> String {
    let s = bootstrap_claims(atlas, n_resamples, seed);
    format!(
        "Ext3 — bootstrap stability ({} resamples)\n\
         Canada–France claim holds in {:.0}% of resamples\n\
         India–N.Africa claim holds in {:.0}% of resamples\n\
         mean Baker's gamma to the original tree: {:.3}\n",
        s.n_resamples,
        s.canada_france_rate * 100.0,
        s.india_nafrica_rate * 100.0,
        s.mean_gamma_to_original,
    )
}

/// Ext4 — linkage-method sensitivity of the cuisine tree.
pub fn linkage_sensitivity(atlas: &CuisineAtlas) -> String {
    let methods = [
        LinkageMethod::Single,
        LinkageMethod::Complete,
        LinkageMethod::Average,
        LinkageMethod::Weighted,
        LinkageMethod::Ward,
    ];
    let trees: Vec<CuisineTree> = methods
        .iter()
        .map(|&m| {
            let cfg = AtlasConfig {
                linkage: m,
                ..atlas.config().clone()
            };
            let distances = atlas.pattern_tree(Metric::Jaccard).distances;
            CuisineTree::from_distances(format!("patterns/jaccard/{m}"), distances, cfg.linkage)
        })
        .collect();
    let geo = atlas.geographic_tree();
    let reference = &trees[2]; // average = the pipeline default

    let mut out = String::new();
    out.push_str("Ext4 — linkage sensitivity (Jaccard pattern distances)\n");
    out.push_str(&format!(
        "{:<12} {:>10} {:>12} {:>10} {:>8} {:>8}\n",
        "linkage", "γ(vs geo)", "γ(vs avg)", "RF(vs avg)", "CA~FR", "IN~NA"
    ));
    for (m, tree) in methods.iter().zip(&trees) {
        let claims = historical_claims(tree);
        out.push_str(&format!(
            "{:<12} {:>10.3} {:>12.3} {:>10.3} {:>8} {:>8}\n",
            m.name(),
            bakers_gamma(&tree.dendrogram, &geo.dendrogram),
            bakers_gamma(&tree.dendrogram, &reference.dendrogram),
            robinson_foulds_normalized(&tree.dendrogram, &reference.dendrogram),
            claims.canada_closer_to_france_than_us,
            claims.india_closer_to_north_africa_than_neighbors,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_ablation_runs_and_ingredient_tree_is_informative() {
        let atlas = crate::testutil::shared_atlas();
        let report = kinds_ablation(atlas);
        assert!(report.contains("ingredients only"));
        // The ingredient-only tree still supports the claims (signature
        // structure is ingredient-driven).
        let tree = pattern_tree_for_kinds(
            atlas.db(),
            0.2,
            &[ItemKind::Ingredient],
            LinkageMethod::Average,
        );
        let claims = historical_claims(&tree);
        assert!(claims.canada_closer_to_france_than_us);
    }

    #[test]
    fn kind_restricted_mining_is_a_subset_of_full_mining() {
        let atlas = crate::testutil::shared_atlas();
        let full = &atlas.patterns()[Cuisine::Japanese.index()];
        let ing = mine_cuisine_kinds(atlas.db(), Cuisine::Japanese, 0.2, &[ItemKind::Ingredient]);
        assert!(ing.pattern_count() < full.pattern_count());
        // Every ingredient-only itemset is also found by full mining.
        let full_set: std::collections::HashSet<&[u32]> =
            full.itemsets.iter().map(|f| f.items.items()).collect();
        for f in &ing.itemsets {
            assert!(full_set.contains(f.items.items()), "{} missing", f.items);
        }
    }

    #[test]
    fn alias_ablation_preserves_claims_and_tree_shape() {
        let atlas = crate::testutil::shared_atlas();
        let report = alias_ablation(atlas);
        assert!(report.contains("green onion -> scallion"));
        assert!(
            report.contains("after: CA~FR true / IN~NA true"),
            "{report}"
        );
    }

    #[test]
    fn bootstrap_claims_are_stable() {
        let atlas = crate::testutil::shared_atlas();
        let s = bootstrap_claims(atlas, 5, 99);
        assert_eq!(s.n_resamples, 5);
        assert!(s.canada_france_rate >= 0.8, "{s:?}");
        assert!(s.india_nafrica_rate >= 0.8, "{s:?}");
        assert!(s.mean_gamma_to_original > 0.6, "{s:?}");
    }

    #[test]
    fn linkage_sensitivity_reports_all_methods() {
        let atlas = crate::testutil::shared_atlas();
        let report = linkage_sensitivity(atlas);
        for m in ["single", "complete", "average", "weighted", "ward"] {
            assert!(report.contains(m), "missing {m}:\n{report}");
        }
        // The reference row (average vs itself) must be a perfect match.
        let avg_line = report.lines().find(|l| l.starts_with("average")).unwrap();
        assert!(avg_line.contains("1.000"), "{avg_line}");
    }
}
