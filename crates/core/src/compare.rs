//! Quantified tree-vs-geography validation (paper Section VII).
//!
//! The paper compares its cuisine trees to the geographic tree by eye;
//! here the comparison is measured: Pearson correlation between a tree's
//! cophenetic matrix and the raw geographic distances, Baker's gamma
//! between trees, and explicit checks of the paper's two headline
//! historical findings (Canada–France, India–Northern-Africa).

use clustering::validation::{bakers_gamma, matrix_correlation};
use recipedb::Cuisine;

use crate::pipeline::CuisineTree;

/// Agreement scores between a cuisine tree and the geographic truth.
#[derive(Debug, Clone)]
pub struct GeoAgreement {
    /// The tree's description string.
    pub tree: String,
    /// Pearson correlation of cophenetic distances vs geographic
    /// distances.
    pub cophenetic_vs_geo: f64,
    /// Baker's gamma against the geographic dendrogram.
    pub bakers_gamma: f64,
}

/// Score one tree against the geographic tree.
pub fn geo_agreement(tree: &CuisineTree, geo: &CuisineTree) -> GeoAgreement {
    GeoAgreement {
        tree: tree.description.clone(),
        cophenetic_vs_geo: matrix_correlation(&tree.dendrogram.cophenetic(), &geo.distances),
        bakers_gamma: bakers_gamma(&tree.dendrogram, &geo.dendrogram),
    }
}

/// The paper's qualitative findings, checked on a tree.
#[derive(Debug, Clone)]
pub struct HistoricalClaims {
    /// Canadian joins French below (closer than) Canadian–US, despite
    /// geographic proximity of Canada and the US.
    pub canada_closer_to_france_than_us: bool,
    /// Indian Subcontinent joins Northern Africa below Indian–Thai and
    /// Indian–Southeast-Asian.
    pub india_closer_to_north_africa_than_neighbors: bool,
    /// Cophenetic distances backing the booleans, for reports:
    /// (ca–fr, ca–us, in–nafr, in–thai, in–sea).
    pub evidence: [f64; 5],
}

/// Evaluate the paper's Canada–France and India–North-Africa claims on a
/// cuisine tree.
pub fn historical_claims(tree: &CuisineTree) -> HistoricalClaims {
    let coph = tree.dendrogram.cophenetic();
    // Leaf indices come from the tree's own cuisine list (== the global
    // index order only for full 26-cuisine trees).
    let idx = |c: Cuisine| {
        tree.cuisines
            .iter()
            .position(|&x| x == c)
            .unwrap_or_else(|| panic!("historical claims need cuisine {c} in the tree"))
    };
    let d = |a: Cuisine, b: Cuisine| coph.get(idx(a), idx(b));
    let ca_fr = d(Cuisine::Canadian, Cuisine::French);
    let ca_us = d(Cuisine::Canadian, Cuisine::US);
    let in_na = d(Cuisine::IndianSubcontinent, Cuisine::NorthernAfrica);
    let in_th = d(Cuisine::IndianSubcontinent, Cuisine::Thai);
    let in_se = d(Cuisine::IndianSubcontinent, Cuisine::SoutheastAsian);
    HistoricalClaims {
        canada_closer_to_france_than_us: ca_fr < ca_us,
        india_closer_to_north_africa_than_neighbors: in_na < in_th && in_na < in_se,
        evidence: [ca_fr, ca_us, in_na, in_th, in_se],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clustering::Metric;

    #[test]
    fn agreement_scores_are_in_range_and_self_consistent() {
        let atlas = crate::testutil::shared_atlas();
        let geo = atlas.geographic_tree();
        let self_score = geo_agreement(&geo, &geo);
        assert!(
            self_score.cophenetic_vs_geo > 0.5,
            "geo tree must track geo distances"
        );
        assert!((self_score.bakers_gamma - 1.0).abs() < 1e-9);

        let euclid = atlas.pattern_tree(Metric::Euclidean);
        let score = geo_agreement(&euclid, &geo);
        assert!((-1.0..=1.0).contains(&score.cophenetic_vs_geo));
        assert!((-1.0..=1.0).contains(&score.bakers_gamma));
    }

    #[test]
    fn geography_itself_fails_the_historical_claims() {
        // Sanity: in pure geography Canada is with the US and India with
        // its Asian neighbours — the claims must be false there, which is
        // precisely why the paper calls them historically interesting.
        let atlas = crate::testutil::shared_atlas();
        let geo = atlas.geographic_tree();
        let claims = historical_claims(&geo);
        assert!(!claims.canada_closer_to_france_than_us);
    }

    #[test]
    fn pattern_trees_support_the_historical_claims() {
        let atlas = crate::testutil::shared_atlas();
        for metric in [Metric::Euclidean, Metric::Cosine, Metric::Jaccard] {
            let tree = atlas.pattern_tree(metric);
            let claims = historical_claims(&tree);
            assert!(
                claims.canada_closer_to_france_than_us,
                "{metric}: Canada–France {} vs Canada–US {}",
                claims.evidence[0], claims.evidence[1]
            );
            assert!(
                claims.india_closer_to_north_africa_than_neighbors,
                "{metric}: India–NAfrica {} vs India–Thai {} / India–SEA {}",
                claims.evidence[2], claims.evidence[3], claims.evidence[4]
            );
        }
    }

    #[test]
    fn authenticity_tree_supports_the_claims() {
        let atlas = crate::testutil::shared_atlas();
        let tree = atlas.authenticity_tree();
        let claims = historical_claims(&tree);
        assert!(
            claims.canada_closer_to_france_than_us,
            "{:?}",
            claims.evidence
        );
        assert!(
            claims.india_closer_to_north_africa_than_neighbors,
            "{:?}",
            claims.evidence
        );
    }
}
