//! Food-pairing analysis — the research lineage behind the paper
//! (Ahn et al. 2011 "Flavor network and the principles of food pairing";
//! Jain, Rakhi & Bagler 2015 "Analysis of food pairing in regional
//! cuisines of India", references [2] and [8]).
//!
//! Pairing strength between two ingredients within a cuisine is measured
//! by **pointwise mutual information** over recipe co-occurrence:
//!
//! `PMI(a, b) = log2( P(a, b) / (P(a) · P(b)) )`
//!
//! positive for pairs used together more than chance (soy sauce + sesame
//! oil in Korean food), negative for pairs the cuisine avoids combining.
//! The per-cuisine mean PMI over its frequent pairs quantifies whether a
//! cuisine leans on strong pairings — the question Jain et al. asked of
//! Indian food.

use recipedb::catalog::TokenId;
use recipedb::query::CooccurrenceCounts;
use recipedb::{Cuisine, ItemKind, RecipeDb};

/// One scored ingredient pair.
#[derive(Debug, Clone)]
pub struct Pairing {
    /// First token (lower id).
    pub a: TokenId,
    /// Second token.
    pub b: TokenId,
    /// Recipes containing both.
    pub joint: u32,
    /// Pointwise mutual information (log₂).
    pub pmi: f64,
}

/// Pairing analysis of one cuisine.
#[derive(Debug, Clone)]
pub struct PairingAnalysis {
    /// The cuisine analysed.
    pub cuisine: Cuisine,
    /// Number of recipes.
    pub n_recipes: usize,
    /// All scored pairs (joint count ≥ the configured minimum).
    pub pairs: Vec<Pairing>,
}

impl PairingAnalysis {
    /// Score every ingredient pair of `cuisine` whose members each appear
    /// in at least `min_item_count` recipes and which co-occur in at least
    /// `min_joint` recipes.
    pub fn analyze(db: &RecipeDb, cuisine: Cuisine, min_item_count: u32, min_joint: u32) -> Self {
        let co = CooccurrenceCounts::for_cuisine(db, cuisine, min_item_count);
        let n = co.n_recipes.max(1) as f64;
        let mut pairs: Vec<Pairing> = co
            .pairs
            .iter()
            .filter(|&(&(a, b), &joint)| {
                joint >= min_joint
                    // Ingredients only: pairing is about food, not verbs.
                    && db.catalog().kind_of(a) == Some(ItemKind::Ingredient)
                    && db.catalog().kind_of(b) == Some(ItemKind::Ingredient)
            })
            .map(|(&(a, b), &joint)| {
                let pa = co.marginal(a) as f64 / n;
                let pb = co.marginal(b) as f64 / n;
                let pab = joint as f64 / n;
                Pairing {
                    a,
                    b,
                    joint,
                    pmi: (pab / (pa * pb)).log2(),
                }
            })
            .collect();
        pairs.sort_by(|x, y| {
            y.pmi
                .partial_cmp(&x.pmi)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        PairingAnalysis {
            cuisine,
            n_recipes: co.n_recipes,
            pairs,
        }
    }

    /// The `k` strongest positive pairings.
    pub fn strongest(&self, k: usize) -> &[Pairing] {
        &self.pairs[..k.min(self.pairs.len())]
    }

    /// The `k` most-avoided pairings (most negative PMI).
    pub fn most_avoided(&self, k: usize) -> Vec<&Pairing> {
        self.pairs.iter().rev().take(k).collect()
    }

    /// Mean PMI across scored pairs — the cuisine-level pairing-affinity
    /// score in the spirit of Jain et al.
    pub fn mean_pmi(&self) -> f64 {
        if self.pairs.is_empty() {
            return 0.0;
        }
        self.pairs.iter().map(|p| p.pmi).sum::<f64>() / self.pairs.len() as f64
    }

    /// Look up the PMI of a named ingredient pair, if scored.
    pub fn pmi_of(&self, db: &RecipeDb, a: &str, b: &str) -> Option<f64> {
        let ta = db
            .catalog()
            .token_of(recipedb::Item::Ingredient(db.catalog().ingredient(a)?));
        let tb = db
            .catalog()
            .token_of(recipedb::Item::Ingredient(db.catalog().ingredient(b)?));
        let key = if ta <= tb { (ta, tb) } else { (tb, ta) };
        self.pairs.iter().find(|p| (p.a, p.b) == key).map(|p| p.pmi)
    }

    /// Render the strongest pairings as a small report.
    pub fn report(&self, db: &RecipeDb, k: usize) -> String {
        let mut out = format!(
            "Food pairing in {} ({} recipes, {} scored pairs, mean PMI {:+.3})\n",
            self.cuisine,
            self.n_recipes,
            self.pairs.len(),
            self.mean_pmi()
        );
        for p in self.strongest(k) {
            out.push_str(&format!(
                "  {:+.2}  {} + {}  ({} recipes)\n",
                p.pmi,
                db.catalog().token_name(p.a).unwrap_or("?"),
                db.catalog().token_name(p.b).unwrap_or("?"),
                p.joint
            ));
        }
        out
    }
}

/// Mean pairing affinity for every cuisine — a world map of how strongly
/// each cuisine leans on signature combinations.
pub fn pairing_affinity_by_cuisine(
    db: &RecipeDb,
    min_item_count: u32,
    min_joint: u32,
) -> Vec<(Cuisine, f64)> {
    let mut out: Vec<(Cuisine, f64)> = Cuisine::ALL
        .iter()
        .map(|&c| {
            (
                c,
                PairingAnalysis::analyze(db, c, min_item_count, min_joint).mean_pmi(),
            )
        })
        .collect();
    out.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn atlas_db() -> &'static RecipeDb {
        crate::testutil::shared_atlas().db()
    }

    #[test]
    fn korean_soy_sesame_is_a_strong_pairing() {
        let db = atlas_db();
        let a = PairingAnalysis::analyze(db, Cuisine::Korean, 30, 10);
        let pmi = a
            .pmi_of(db, "soy sauce", "sesame oil")
            .expect("pair scored");
        assert!(pmi > 0.5, "motif pair must have high PMI, got {pmi}");
        // And it ranks among the strongest pairings.
        let top: Vec<(&str, &str)> = a
            .strongest(10)
            .iter()
            .map(|p| {
                (
                    db.catalog().token_name(p.a).unwrap(),
                    db.catalog().token_name(p.b).unwrap(),
                )
            })
            .collect();
        assert!(
            top.iter().any(|&(x, y)| {
                (x == "soy sauce" && y == "sesame oil") || (x == "sesame oil" && y == "soy sauce")
            }),
            "top pairs: {top:?}"
        );
    }

    #[test]
    fn independent_staples_have_near_zero_pmi() {
        let db = atlas_db();
        let a = PairingAnalysis::analyze(db, Cuisine::UK, 50, 20);
        // salt and water are sampled independently by construction.
        let pmi = a.pmi_of(db, "salt", "water").expect("pair scored");
        assert!(pmi.abs() < 0.35, "independent staples PMI ~0, got {pmi}");
    }

    #[test]
    fn pairs_are_sorted_and_ingredient_only() {
        let db = atlas_db();
        let a = PairingAnalysis::analyze(db, Cuisine::IndianSubcontinent, 30, 10);
        assert!(!a.pairs.is_empty());
        for w in a.pairs.windows(2) {
            assert!(w[0].pmi >= w[1].pmi);
        }
        for p in &a.pairs {
            assert_eq!(db.catalog().kind_of(p.a), Some(ItemKind::Ingredient));
            assert_eq!(db.catalog().kind_of(p.b), Some(ItemKind::Ingredient));
        }
        let avoided = a.most_avoided(3);
        assert!(avoided.len() <= 3);
        if let (Some(first), Some(last)) = (a.pairs.first(), avoided.first()) {
            assert!(first.pmi >= last.pmi);
        }
    }

    #[test]
    fn affinity_ranking_covers_all_cuisines() {
        let db = atlas_db();
        let ranking = pairing_affinity_by_cuisine(db, 50, 20);
        assert_eq!(ranking.len(), 26);
        for w in ranking.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }

    #[test]
    fn report_renders() {
        let db = atlas_db();
        let a = PairingAnalysis::analyze(db, Cuisine::Korean, 30, 10);
        let text = a.report(db, 5);
        assert!(text.contains("Korean"));
        assert!(text.contains("mean PMI"));
    }
}
