//! The end-to-end cuisine-atlas pipeline: corpus → mining → features →
//! trees. This is the programmatic API behind every table and figure.
//!
//! # Parallelism and determinism
//!
//! Every stage of [`CuisineAtlas::build`] fans out over
//! [`AtlasConfig::build_threads`] workers — corpus generation (one RNG
//! stream per cuisine, reassembled in fixed order), per-cuisine FP-Growth
//! mining (largest cuisines first, huge ones split across conditional
//! trees), pairwise-distance matrices (row-parallel `pdist`) and the
//! elbow sweep (one worker per k). Each parallel stage is **byte-identical
//! to its sequential counterpart**: thread count is a pure wall-clock
//! knob, never an input to any result (see DESIGN.md §"Determinism under
//! parallelism").

use std::sync::{Arc, OnceLock};
use std::time::Instant;

use clustering::condensed::CondensedMatrix;
use clustering::dendrogram::Dendrogram;
use clustering::distance::{jaccard_sets, Metric};
use clustering::hac::{linkage, LinkageMethod};
use clustering::kmeans::elbow_sweep_threads;
use recipedb::generator::{CorpusGenerator, GeneratorConfig};
use recipedb::{Cuisine, RecipeDb};
use serde::{Deserialize, Serialize};

use crate::authenticity::AuthenticityMatrix;
use crate::features::PatternFeatures;
use crate::patterns::{self, CuisinePatterns, SignificantPattern};

/// Configuration of the full pipeline.
#[derive(Debug, Clone)]
pub struct AtlasConfig {
    /// Corpus generation parameters (ignored when a corpus is supplied via
    /// [`CuisineAtlas::from_db`]).
    pub corpus: GeneratorConfig,
    /// Mining support threshold — 0.2 in the paper.
    pub min_support: f64,
    /// HAC linkage method for all trees.
    pub linkage: LinkageMethod,
    /// An item frequent in at least this fraction of cuisines is
    /// "generic" and cannot anchor a Table I significant pattern.
    pub generic_fraction: f64,
    /// Significant patterns listed per cuisine in Table I.
    pub top_k: usize,
    /// Worker threads for the build (corpus generation, mining, distance
    /// matrices, elbow sweep). `0` means all available parallelism.
    /// Purely a wall-clock knob: every thread count produces bit-for-bit
    /// identical corpora, patterns, features and trees.
    pub build_threads: usize,
}

impl AtlasConfig {
    /// The paper's settings over the full-scale corpus (118k recipes).
    pub fn paper() -> Self {
        AtlasConfig {
            corpus: GeneratorConfig::full_paper(),
            min_support: 0.2,
            linkage: LinkageMethod::Average,
            generic_fraction: 0.5,
            top_k: 3,
            build_threads: 0,
        }
    }

    /// A fast configuration for tests and examples: a 5%-scale corpus with
    /// a per-cuisine floor that keeps every calibrated support at least
    /// two standard errors away from the mining threshold.
    pub fn quick(seed: u64) -> Self {
        let mut corpus = GeneratorConfig::paper_scale(0.05).with_seed(seed);
        corpus.min_recipes_per_cuisine = 1000;
        AtlasConfig {
            corpus,
            ..Self::paper()
        }
    }

    /// Replace the linkage method.
    pub fn with_linkage(mut self, method: LinkageMethod) -> Self {
        self.linkage = method;
        self
    }

    /// Replace the build thread count (`0` = all available parallelism).
    pub fn with_build_threads(mut self, threads: usize) -> Self {
        self.build_threads = threads;
        self
    }

    /// The concrete worker count this config builds with.
    pub fn effective_build_threads(&self) -> usize {
        par::resolve(self.build_threads)
    }
}

/// A sink for named wall-clock spans emitted while the pipeline runs.
///
/// [`CuisineAtlas::build_with_sink`] reports every stage
/// (`stage/generate`, `stage/mine`, `stage/features`, `stage/pdist`)
/// and each cuisine's mining time (`mine/Italian`, ...) through this
/// trait, so callers — the server's metrics registry, `repro --json` —
/// aggregate build telemetry however they like instead of being limited
/// to the fixed [`BuildTimings`] summary. Sinks must be thread-safe:
/// parallel stages report from worker threads.
pub trait SpanSink: Send + Sync {
    /// Record that span `name` took `wall_ms` milliseconds.
    fn record_span(&self, name: &str, wall_ms: f64);
}

/// A [`SpanSink`] that discards every span.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl SpanSink for NullSink {
    fn record_span(&self, _name: &str, _wall_ms: f64) {}
}

/// Time `f`, report it to `sink` under `name`, and return the result
/// with the measured milliseconds.
pub(crate) fn spanned<T>(sink: &dyn SpanSink, name: &str, f: impl FnOnce() -> T) -> (T, f64) {
    let t = Instant::now();
    let value = f();
    let wall_ms = ms_since(t);
    sink.record_span(name, wall_ms);
    (value, wall_ms)
}

/// Wall-clock cost of each [`CuisineAtlas::build`] stage, in
/// milliseconds. Surfaced by the server's `/health` endpoint and the
/// `repro --bench-json` trajectory file. Assembled from the same
/// measurements that flow to the build's [`SpanSink`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct BuildTimings {
    /// Corpus generation.
    pub generate_ms: f64,
    /// Per-cuisine FP-Growth mining.
    pub mine_ms: f64,
    /// Pattern-string canonicalisation + feature encoding.
    pub features_ms: f64,
    /// Pairwise-distance matrices (three pattern metrics + authenticity).
    pub pdist_ms: f64,
}

impl BuildTimings {
    /// Sum of all stages.
    pub fn total_ms(&self) -> f64 {
        self.generate_ms + self.mine_ms + self.features_ms + self.pdist_ms
    }
}

fn ms_since(t: Instant) -> f64 {
    t.elapsed().as_secs_f64() * 1e3
}

/// Lazily-initialised distance matrices shared by every tree request
/// against one atlas (the server holds atlases in an LRU cache and grows
/// trees per request — without this, each request re-ran `pdist`).
#[derive(Debug, Default)]
struct DistanceCaches {
    euclidean: OnceLock<CondensedMatrix>,
    cosine: OnceLock<CondensedMatrix>,
    jaccard: OnceLock<CondensedMatrix>,
    authenticity: OnceLock<crate::authenticity::AuthenticityMatrix>,
    authenticity_dist: OnceLock<CondensedMatrix>,
}

impl DistanceCaches {
    fn pattern_slot(&self, metric: Metric) -> Option<&OnceLock<CondensedMatrix>> {
        match metric {
            Metric::Euclidean => Some(&self.euclidean),
            Metric::Cosine => Some(&self.cosine),
            Metric::Jaccard => Some(&self.jaccard),
            _ => None,
        }
    }
}

/// A cuisine dendrogram plus the distance matrix it was grown from.
///
/// `cuisines` names the leaves: leaf index `i` of the dendrogram is
/// `cuisines[i]`. The paper's trees cover all 26 cuisines; trees built
/// from an uploaded corpus cover whatever subset is present.
#[derive(Debug, Clone)]
pub struct CuisineTree {
    /// What the tree was built from (for reports).
    pub description: String,
    /// The leaf cuisines, in distance-matrix index order.
    pub cuisines: Vec<Cuisine>,
    /// The pairwise cuisine distances.
    pub distances: CondensedMatrix,
    /// The agglomerative merge tree over the cuisines.
    pub dendrogram: Dendrogram,
}

impl CuisineTree {
    /// Grow a tree over all 26 cuisines from a distance matrix (public
    /// for the extension experiments; the atlas methods below are the
    /// primary constructors).
    pub fn from_distances(
        description: String,
        distances: CondensedMatrix,
        method: LinkageMethod,
    ) -> Self {
        Self::grow(description, Cuisine::ALL.to_vec(), distances, method)
    }

    /// [`CuisineTree::from_distances`] with an explicit leaf-cuisine list
    /// matching the distance matrix.
    pub fn from_distances_over(
        description: String,
        cuisines: Vec<Cuisine>,
        distances: CondensedMatrix,
        method: LinkageMethod,
    ) -> Self {
        Self::grow(description, cuisines, distances, method)
    }

    fn grow(
        description: String,
        cuisines: Vec<Cuisine>,
        distances: CondensedMatrix,
        method: LinkageMethod,
    ) -> Self {
        assert_eq!(
            cuisines.len(),
            distances.len(),
            "leaf list must match the distance matrix"
        );
        let merges = linkage(&distances, method);
        let dendrogram = Dendrogram::from_merges(distances.len(), &merges);
        CuisineTree {
            description,
            cuisines,
            distances,
            dendrogram,
        }
    }

    /// Cophenetic (tree) distance between two cuisines.
    ///
    /// # Panics
    /// If either cuisine is not a leaf of this tree.
    pub fn cophenetic_between(&self, a: Cuisine, b: Cuisine) -> f64 {
        let coph = self.dendrogram.cophenetic();
        coph.get(self.leaf_index(a), self.leaf_index(b))
    }

    fn leaf_index(&self, cuisine: Cuisine) -> usize {
        self.cuisines
            .iter()
            .position(|&c| c == cuisine)
            .unwrap_or_else(|| panic!("cuisine {cuisine} is not a leaf of this tree"))
    }

    /// The cuisines in dendrogram display order.
    pub fn leaf_cuisines(&self) -> Vec<Cuisine> {
        self.dendrogram
            .leaf_order()
            .into_iter()
            .map(|i| self.cuisines[i])
            .collect()
    }
}

/// One row of the Table I report.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// The region.
    pub cuisine: Cuisine,
    /// Number of recipes mined.
    pub n_recipes: usize,
    /// Top significant patterns, best first.
    pub top_patterns: Vec<SignificantPattern>,
    /// Total frequent patterns at the support threshold.
    pub pattern_count: usize,
}

/// The Table I report.
#[derive(Debug, Clone)]
pub struct Table1 {
    /// One row per cuisine, Table I order.
    pub rows: Vec<Table1Row>,
    /// The support threshold used.
    pub min_support: f64,
}

/// The built atlas: corpus + mined patterns + feature space, with tree
/// constructors for every figure.
///
/// `cuisines` is the atlas's *active cuisine list*: every per-cuisine
/// artifact (patterns, feature rows, distance-matrix indices, tree
/// leaves) is in its order. A generated corpus activates all 26 cuisines
/// (the paper's setting); an atlas assembled from a supplied corpus via
/// [`CuisineAtlas::from_shared`] activates exactly the cuisines present.
pub struct CuisineAtlas {
    config: AtlasConfig,
    db: Arc<RecipeDb>,
    cuisines: Vec<Cuisine>,
    patterns: Vec<CuisinePatterns>,
    features: PatternFeatures,
    caches: DistanceCaches,
    timings: BuildTimings,
}

impl CuisineAtlas {
    /// Generate the corpus described by `config` and build the atlas,
    /// using [`AtlasConfig::build_threads`] workers for every stage.
    pub fn build(config: &AtlasConfig) -> Self {
        Self::build_with_sink(config, &NullSink)
    }

    /// [`CuisineAtlas::build`], reporting every stage and per-cuisine
    /// mining span to `sink` as it completes.
    pub fn build_with_sink(config: &AtlasConfig, sink: &dyn SpanSink) -> Self {
        let threads = config.effective_build_threads();
        let (db, generate_ms) = spanned(sink, "stage/generate", || {
            CorpusGenerator::new(config.corpus.clone()).generate_with_threads(threads)
        });
        Self::assemble_with_sink(
            Arc::new(db),
            Cuisine::ALL.to_vec(),
            config,
            generate_ms,
            sink,
        )
    }

    /// Build the atlas over an existing corpus (e.g. loaded from JSON).
    pub fn from_db(db: RecipeDb, config: &AtlasConfig) -> Self {
        Self::from_shared(Arc::new(db), config)
    }

    /// Build the atlas over a shared corpus without cloning it — the
    /// server path, where one uploaded corpus backs many atlases. Only
    /// the cuisines actually present in the corpus are activated.
    pub fn from_shared(db: Arc<RecipeDb>, config: &AtlasConfig) -> Self {
        Self::from_shared_with_sink(db, config, &NullSink)
    }

    /// [`CuisineAtlas::from_shared`], reporting stage spans to `sink`.
    pub fn from_shared_with_sink(
        db: Arc<RecipeDb>,
        config: &AtlasConfig,
        sink: &dyn SpanSink,
    ) -> Self {
        let cuisines: Vec<Cuisine> = db.cuisines().collect();
        Self::assemble_with_sink(db, cuisines, config, 0.0, sink)
    }

    /// Mine, encode, and warm the distance caches, recording per-stage
    /// wall-clock timings both in [`BuildTimings`] and through `sink`.
    fn assemble_with_sink(
        db: Arc<RecipeDb>,
        cuisines: Vec<Cuisine>,
        config: &AtlasConfig,
        generate_ms: f64,
        sink: &dyn SpanSink,
    ) -> Self {
        let threads = config.effective_build_threads();
        let (patterns, mine_ms) = spanned(sink, "stage/mine", || {
            patterns::mine_cuisines_threads_observed(
                &db,
                &cuisines,
                config.min_support,
                threads,
                sink,
            )
        });
        let (features, features_ms) = spanned(sink, "stage/features", || {
            PatternFeatures::build(&db, &patterns)
        });
        let mut atlas = CuisineAtlas {
            config: config.clone(),
            db,
            cuisines,
            patterns,
            features,
            caches: DistanceCaches::default(),
            timings: BuildTimings::default(),
        };
        let (_, pdist_ms) = spanned(sink, "stage/pdist", || atlas.warm_distance_caches());
        atlas.timings = BuildTimings {
            generate_ms,
            mine_ms,
            features_ms,
            pdist_ms,
        };
        atlas
    }

    /// Force every cached distance matrix (three pattern metrics + the
    /// authenticity fingerprints), so tree requests against this atlas
    /// only pay linkage growth.
    fn warm_distance_caches(&self) {
        for metric in [Metric::Euclidean, Metric::Cosine, Metric::Jaccard] {
            let _ = self.pattern_distances(metric);
        }
        let _ = self.authenticity_distances();
    }

    /// Per-stage wall-clock timings of this atlas's build.
    pub fn timings(&self) -> BuildTimings {
        self.timings
    }

    /// The corpus.
    pub fn db(&self) -> &RecipeDb {
        &self.db
    }

    /// The active cuisines of this atlas, in artifact-index order (all
    /// 26 for generated corpora; the subset present for supplied ones).
    pub fn cuisines(&self) -> &[Cuisine] {
        &self.cuisines
    }

    /// The configuration.
    pub fn config(&self) -> &AtlasConfig {
        &self.config
    }

    /// The per-cuisine mined patterns, Table I order.
    pub fn patterns(&self) -> &[CuisinePatterns] {
        &self.patterns
    }

    /// The encoded pattern feature space.
    pub fn features(&self) -> &PatternFeatures {
        &self.features
    }

    /// **Table I** — top significant patterns per cuisine.
    pub fn table1(&self) -> Table1 {
        let generic = patterns::generic_items(&self.patterns, self.config.generic_fraction);
        let rows = self
            .patterns
            .iter()
            .map(|cp| Table1Row {
                cuisine: cp.cuisine,
                n_recipes: cp.n_recipes,
                top_patterns: patterns::significant_patterns(
                    &self.db,
                    cp,
                    &generic,
                    self.config.top_k,
                ),
                pattern_count: cp.pattern_count(),
            })
            .collect();
        Table1 {
            rows,
            min_support: self.config.min_support,
        }
    }

    /// **Figures 2–4** — the pattern-based cuisine tree under a metric.
    /// Euclidean and Cosine run on the binary incidence vectors; Jaccard
    /// runs directly on the pattern sets (equivalent to the binary-vector
    /// form, cheaper). Distance matrices are computed row-parallel on
    /// first use and cached for the atlas's lifetime.
    pub fn pattern_tree(&self, metric: Metric) -> CuisineTree {
        let description = format!("patterns/{metric}/{}", self.config.linkage);
        CuisineTree::grow(
            description,
            self.cuisines.clone(),
            self.pattern_distances(metric),
            self.config.linkage,
        )
    }

    /// The (cached) pairwise cuisine distances under `metric`.
    fn pattern_distances(&self, metric: Metric) -> CondensedMatrix {
        let threads = self.config.effective_build_threads();
        let compute = || match metric {
            Metric::Jaccard => {
                CondensedMatrix::par_from_fn(self.cuisines.len(), threads, |i, j| {
                    jaccard_sets(
                        &self.features.pattern_sets[i],
                        &self.features.pattern_sets[j],
                    )
                })
            }
            _ => CondensedMatrix::par_pdist(&self.features.binary, metric, threads),
        };
        match self.caches.pattern_slot(metric) {
            Some(slot) => slot.get_or_init(compute).clone(),
            None => compute(),
        }
    }

    /// **Figure 5** — the authenticity-based tree over ingredient
    /// relative-prevalence fingerprints (Euclidean distance).
    pub fn authenticity_tree(&self) -> CuisineTree {
        CuisineTree::grow(
            format!("authenticity/euclidean/{}", self.config.linkage),
            self.cuisines.clone(),
            self.authenticity_distances(),
            self.config.linkage,
        )
    }

    fn authenticity_distances(&self) -> CondensedMatrix {
        self.caches
            .authenticity_dist
            .get_or_init(|| {
                CondensedMatrix::par_pdist(
                    &self.cached_authenticity().relative,
                    Metric::Euclidean,
                    self.config.effective_build_threads(),
                )
            })
            .clone()
    }

    fn cached_authenticity(&self) -> &AuthenticityMatrix {
        self.caches
            .authenticity
            .get_or_init(|| AuthenticityMatrix::ingredients_over(&self.db, &self.cuisines))
    }

    /// The authenticity matrix itself (fingerprint inspection).
    pub fn authenticity_matrix(&self) -> AuthenticityMatrix {
        self.cached_authenticity().clone()
    }

    /// **Figure 6** — the geographic validation tree (over the active
    /// cuisines).
    pub fn geographic_tree(&self) -> CuisineTree {
        let distances = crate::geo::geographic_distances_over(&self.cuisines);
        CuisineTree::grow(
            format!("geography/haversine/{}", self.config.linkage),
            self.cuisines.clone(),
            distances,
            self.config.linkage,
        )
    }

    /// **Figure 1** — the k-means elbow curve (WCSS for k = 1..=k_max)
    /// over the binary pattern vectors, one worker per k.
    pub fn elbow_curve(&self, k_max: usize, seed: u64) -> Vec<f64> {
        elbow_sweep_threads(
            &self.features.binary,
            k_max,
            seed,
            self.config.effective_build_threads(),
        )
    }

    /// Reassemble an atlas from decoded snapshot parts (the
    /// [`crate::snapshot`] restore path), pre-populating every distance
    /// cache so no pipeline stage re-runs. The caller (the snapshot
    /// decoder) is responsible for having validated that the parts are
    /// mutually consistent.
    pub(crate) fn from_restored(parts: RestoredAtlas) -> Self {
        let caches = DistanceCaches::default();
        let _ = caches.euclidean.set(parts.euclidean);
        let _ = caches.cosine.set(parts.cosine);
        let _ = caches.jaccard.set(parts.jaccard);
        let _ = caches.authenticity.set(parts.authenticity);
        let _ = caches.authenticity_dist.set(parts.authenticity_dist);
        CuisineAtlas {
            config: parts.config,
            db: parts.db,
            cuisines: parts.cuisines,
            patterns: parts.patterns,
            features: parts.features,
            caches,
            timings: parts.timings,
        }
    }
}

/// Decoded parts of a persisted atlas, consumed by
/// [`CuisineAtlas::from_restored`].
pub(crate) struct RestoredAtlas {
    pub config: AtlasConfig,
    pub db: Arc<RecipeDb>,
    pub cuisines: Vec<Cuisine>,
    pub patterns: Vec<CuisinePatterns>,
    pub features: PatternFeatures,
    pub euclidean: CondensedMatrix,
    pub cosine: CondensedMatrix,
    pub jaccard: CondensedMatrix,
    pub authenticity: AuthenticityMatrix,
    pub authenticity_dist: CondensedMatrix,
    pub timings: BuildTimings,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn atlas() -> &'static CuisineAtlas {
        crate::testutil::shared_atlas()
    }

    #[test]
    fn table1_has_26_populated_rows() {
        let t = atlas().table1();
        assert_eq!(t.rows.len(), 26);
        assert_eq!(t.min_support, 0.2);
        for row in &t.rows {
            assert!(
                !row.top_patterns.is_empty(),
                "{}: no significant patterns",
                row.cuisine
            );
            assert!(row.pattern_count >= row.top_patterns.len());
            assert!(
                row.top_patterns[0].support >= 0.2 - 0.03,
                "{}: top support {}",
                row.cuisine,
                row.top_patterns[0].support
            );
            for w in row.top_patterns.windows(2) {
                assert!(w[0].support >= w[1].support, "{}: unsorted", row.cuisine);
            }
        }
    }

    #[test]
    fn all_trees_cover_26_cuisines() {
        let a = atlas();
        for tree in [
            a.pattern_tree(Metric::Euclidean),
            a.pattern_tree(Metric::Cosine),
            a.pattern_tree(Metric::Jaccard),
            a.authenticity_tree(),
            a.geographic_tree(),
        ] {
            assert_eq!(tree.dendrogram.n_leaves(), 26, "{}", tree.description);
            let mut leaves = tree.dendrogram.leaf_order();
            leaves.sort_unstable();
            assert_eq!(leaves, (0..26).collect::<Vec<_>>(), "{}", tree.description);
        }
    }

    #[test]
    fn jaccard_tree_matches_binary_vector_jaccard() {
        // The set-based Jaccard shortcut must equal the vector form.
        let a = atlas();
        let set_tree = a.pattern_tree(Metric::Jaccard);
        let vec_d = CondensedMatrix::pdist(&a.features().binary, Metric::Jaccard);
        for (i, j, d) in set_tree.distances.iter_pairs() {
            assert!((d - vec_d.get(i, j)).abs() < 1e-12, "({i},{j})");
        }
    }

    #[test]
    fn elbow_curve_is_weakly_decreasing() {
        let a = atlas();
        let curve = a.elbow_curve(10, 5);
        assert_eq!(curve.len(), 10);
        for w in curve.windows(2) {
            assert!(w[1] <= w[0] * 1.05 + 1e-9, "{:?}", curve);
        }
    }

    #[test]
    fn from_db_roundtrip_builds_identical_patterns() {
        let cfg = AtlasConfig::quick(13);
        let a = CuisineAtlas::build(&cfg);
        let json = recipedb::io::to_json(a.db()).unwrap();
        let db2 = recipedb::io::from_json(&json).unwrap();
        let b = CuisineAtlas::from_db(db2, &cfg);
        assert_eq!(
            a.patterns()[0].pattern_count(),
            b.patterns()[0].pattern_count()
        );
        assert_eq!(a.features().vocab_size(), b.features().vocab_size());
    }
}
