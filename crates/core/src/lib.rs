//! # cuisine-atlas — hierarchical clustering of world cuisines
//!
//! End-to-end reproduction of *Hierarchical Clustering of World Cuisines*
//! (Sharma, Upadhyay, Kalra, Arora, Ahmad, Aggarwal & Bagler — ICDE 2020
//! workshops / arXiv:2004.12283), built on three from-scratch substrates:
//!
//! * [`recipedb`] — the corpus (a calibrated synthetic RecipeDB stand-in);
//! * [`pattern_mining`] — FP-Growth (+ Apriori / Eclat baselines);
//! * [`clustering`] — HAC, k-means, dendrograms, validation indices.
//!
//! The pipeline mirrors the paper section by section:
//!
//! 1. **Pattern mining** ([`patterns`]) — per-cuisine frequent itemsets
//!    over concatenated ingredients + processes + utensils at support 0.2;
//!    the Table I report surfaces each cuisine's top *significant*
//!    patterns (closed itemsets containing at least one cuisine-
//!    distinctive item).
//! 2. **Feature vectors** ([`features`]) — the paper's "string pattern"
//!    canonicalisation + label encoding + binary incidence vectorization.
//! 3. **Pattern-based trees** ([`pipeline`]) — pdist under Euclidean /
//!    Cosine / Jaccard + hierarchical agglomerative clustering
//!    (Figures 2–4), plus the k-means elbow analysis (Figure 1).
//! 4. **Authenticity-based tree** ([`authenticity`]) — Ahn et al.'s
//!    relative-prevalence fingerprints (Figure 5).
//! 5. **Geographic validation** ([`geo`], [`compare`]) — haversine
//!    distance tree (Figure 6) and quantified tree-vs-geography agreement,
//!    including the paper's Canada–France and India–North-Africa claims.
//! 6. **Future-work extensions** ([`extensions`]) — the paper's §VIII
//!    items made runnable: item-kind ablation, ingredient-alias merging,
//!    bootstrap claim stability, linkage sensitivity.
//!
//! ## Quick start
//!
//! ```
//! use cuisine_atlas::{AtlasConfig, CuisineAtlas};
//! use clustering::Metric;
//!
//! let atlas = CuisineAtlas::build(&AtlasConfig::quick(42));
//! // Table I: top significant patterns per cuisine.
//! let table = atlas.table1();
//! assert_eq!(table.rows.len(), 26);
//! // Figure 2: the Euclidean pattern dendrogram.
//! let tree = atlas.pattern_tree(Metric::Euclidean);
//! assert_eq!(tree.dendrogram.n_leaves(), 26);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod authenticity;
pub mod compare;
pub mod experiments;
pub mod extensions;
pub mod features;
pub mod flavor_pairing;
pub mod geo;
pub mod pairing;
pub mod patterns;
pub mod pipeline;
pub mod report;
pub mod snapshot;
pub mod views;

pub use pipeline::{AtlasConfig, CuisineAtlas, CuisineTree};

#[cfg(test)]
pub(crate) mod testutil {
    //! Shared fixtures: building a quick atlas takes ~2s, so tests share
    //! one instance per binary.
    use std::sync::OnceLock;

    use crate::pipeline::{AtlasConfig, CuisineAtlas};

    static ATLAS: OnceLock<CuisineAtlas> = OnceLock::new();

    /// The shared quick atlas (seed 23).
    pub(crate) fn shared_atlas() -> &'static CuisineAtlas {
        ATLAS.get_or_init(|| CuisineAtlas::build(&AtlasConfig::quick(23)))
    }
}
