//! The food-pairing hypothesis test (E5) — Ahn et al. 2011 / Jain et al.
//! 2015, the studies the paper's literature survey builds on.
//!
//! For each cuisine, compare the mean flavor-compound pairing strength
//! `N_s` of its real recipes against a **null model** that redistributes
//! the cuisine's ingredient tokens across recipes (preserving recipe
//! sizes and corpus-wide ingredient frequencies, Ahn's "frequency-
//! conserving" null). A positive `Δ N_s = real − null` means the cuisine
//! actively combines compound-sharing ingredients (positive food
//! pairing); negative means it avoids them — what Jain et al. found for
//! Indian food, driven by spices.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use recipedb::flavor::FlavorTable;
use recipedb::model::IngredientId;
use recipedb::{Cuisine, RecipeDb};

/// Food-pairing score of one cuisine.
#[derive(Debug, Clone)]
pub struct PairingHypothesis {
    /// The cuisine.
    pub cuisine: Cuisine,
    /// Mean `N_s` over real recipes.
    pub real_ns: f64,
    /// Mean `N_s` over the frequency-conserving null model.
    pub null_ns: f64,
    /// `real − null`: the food-pairing effect.
    pub delta: f64,
}

/// Evaluate the hypothesis for one cuisine. `n_null` controls how many
/// shuffled corpora the null averages over.
pub fn pairing_hypothesis(
    db: &RecipeDb,
    table: &FlavorTable,
    cuisine: Cuisine,
    n_null: usize,
    seed: u64,
) -> PairingHypothesis {
    let recipes: Vec<&recipedb::Recipe> = db.cuisine_recipes(cuisine).collect();
    let real_ns = mean_ns(table, recipes.iter().map(|r| r.ingredients.clone()));

    // Token pool: every ingredient occurrence in the cuisine.
    let pool: Vec<IngredientId> = recipes
        .iter()
        .flat_map(|r| r.ingredients.iter().copied())
        .collect();
    let sizes: Vec<usize> = recipes.iter().map(|r| r.ingredients.len()).collect();

    let mut null_total = 0.0;
    for trial in 0..n_null.max(1) {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(trial as u64));
        // Fisher–Yates shuffle of the token pool, then re-slice by sizes.
        let mut shuffled = pool.clone();
        for i in (1..shuffled.len()).rev() {
            let j = rng.gen_range(0..=i);
            shuffled.swap(i, j);
        }
        let mut offset = 0usize;
        let fake = sizes.iter().map(|&len| {
            // Deduplicate within the fake recipe: real recipes hold
            // distinct ingredients, and self-pairs (which share the full
            // compound set) would otherwise inflate the null.
            let mut slice = shuffled[offset..offset + len].to_vec();
            offset += len;
            slice.sort_unstable();
            slice.dedup();
            slice
        });
        null_total += mean_ns(table, fake);
    }
    let null_ns = null_total / n_null.max(1) as f64;
    PairingHypothesis {
        cuisine,
        real_ns,
        null_ns,
        delta: real_ns - null_ns,
    }
}

fn mean_ns(table: &FlavorTable, recipes: impl Iterator<Item = Vec<IngredientId>>) -> f64 {
    let mut total = 0.0;
    let mut n = 0usize;
    for ingredients in recipes {
        total += table.recipe_pairing_strength(&ingredients);
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        total / n as f64
    }
}

/// The full world map: pairing effect per cuisine, sorted by `delta`
/// descending.
pub fn pairing_world_map(db: &RecipeDb, n_null: usize, seed: u64) -> Vec<PairingHypothesis> {
    let table = FlavorTable::synthesize(db);
    let mut out: Vec<PairingHypothesis> = Cuisine::ALL
        .iter()
        .map(|&c| pairing_hypothesis(db, &table, c, n_null, seed))
        .collect();
    out.sort_by(|a, b| {
        b.delta
            .partial_cmp(&a.delta)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    out
}

/// Render the world map as the E5 report.
pub fn report(db: &RecipeDb, n_null: usize, seed: u64) -> String {
    let map = pairing_world_map(db, n_null, seed);
    let mut out = String::new();
    out.push_str("Ext5 — food-pairing hypothesis (Ahn et al. 2011 / Jain et al. 2015)\n");
    out.push_str(&format!(
        "{:<24} {:>9} {:>9} {:>9}\n",
        "cuisine", "real N_s", "null N_s", "ΔN_s"
    ));
    for h in &map {
        out.push_str(&format!(
            "{:<24} {:>9.3} {:>9.3} {:>+9.3}\n",
            h.cuisine.name(),
            h.real_ns,
            h.null_ns,
            h.delta
        ));
    }
    out.push_str(
        "\nΔN_s > 0: the cuisine combines compound-sharing ingredients more\n\
         than chance (positive food pairing); ΔN_s < 0: it avoids them.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_and_null_are_close_but_not_degenerate() {
        let atlas = crate::testutil::shared_atlas();
        let table = FlavorTable::synthesize(atlas.db());
        let h = pairing_hypothesis(atlas.db(), &table, Cuisine::Korean, 3, 7);
        assert!(h.real_ns > 0.0);
        assert!(h.null_ns > 0.0);
        assert!(h.delta.abs() < h.real_ns, "effect must be a perturbation");
    }

    #[test]
    fn null_model_preserves_mass() {
        // The null mean over many trials is stable (same token pool).
        let atlas = crate::testutil::shared_atlas();
        let table = FlavorTable::synthesize(atlas.db());
        let a = pairing_hypothesis(atlas.db(), &table, Cuisine::Japanese, 4, 1);
        let b = pairing_hypothesis(atlas.db(), &table, Cuisine::Japanese, 4, 99);
        assert!(
            (a.null_ns - b.null_ns).abs() < 0.1,
            "{} vs {}",
            a.null_ns,
            b.null_ns
        );
        assert_eq!(a.real_ns, b.real_ns, "real N_s is deterministic");
    }

    #[test]
    fn world_map_covers_all_cuisines_sorted() {
        let atlas = crate::testutil::shared_atlas();
        let map = pairing_world_map(atlas.db(), 2, 5);
        assert_eq!(map.len(), 26);
        for w in map.windows(2) {
            assert!(w[0].delta >= w[1].delta);
        }
    }

    #[test]
    fn report_renders_every_cuisine() {
        let atlas = crate::testutil::shared_atlas();
        let text = report(atlas.db(), 2, 5);
        for c in Cuisine::ALL {
            assert!(text.contains(c.name()), "missing {c}");
        }
    }
}
