//! Text renderers for the tables and figures: Table I, the elbow curve
//! (Figure 1) and the dendrograms (Figures 2–6).

use recipedb::Cuisine;

use crate::pipeline::{CuisineTree, Table1};

/// Render Table I in the paper's column layout.
pub fn render_table1(table: &Table1) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "SIGNIFICANT PATTERNS MINED FROM CUISINES ACROSS THE WORLD (min support {:.2})\n",
        table.min_support
    ));
    out.push_str(&format!(
        "{:<24} {:>8}  {:<42} {:>7}  {:>9}\n",
        "Region", "Recipes", "Pattern", "Support", "#Patterns"
    ));
    out.push_str(&"-".repeat(96));
    out.push('\n');
    for row in &table.rows {
        for (i, p) in row.top_patterns.iter().enumerate() {
            if i == 0 {
                out.push_str(&format!(
                    "{:<24} {:>8}  {:<42} {:>7.2}  {:>9}\n",
                    row.cuisine.name(),
                    row.n_recipes,
                    p.pattern,
                    p.support,
                    row.pattern_count
                ));
            } else {
                out.push_str(&format!(
                    "{:<24} {:>8}  {:<42} {:>7.2}  {:>9}\n",
                    "", "", p.pattern, p.support, ""
                ));
            }
        }
    }
    out
}

/// Render the elbow curve as an ASCII chart (WCSS vs k), the shape of
/// Figure 1.
pub fn render_elbow(wcss: &[f64]) -> String {
    let mut out = String::new();
    out.push_str("Elbow method: WCSS vs number of clusters k\n");
    let max = wcss.iter().cloned().fold(f64::MIN, f64::max).max(1e-12);
    for (i, &w) in wcss.iter().enumerate() {
        let bar_len = ((w / max) * 50.0).round() as usize;
        out.push_str(&format!(
            "k={:<3} {:>12.2} |{}\n",
            i + 1,
            w,
            "█".repeat(bar_len)
        ));
    }
    out
}

/// Render a cuisine dendrogram: the ASCII tree plus the leaf order (the
/// axis labels of the paper's figures).
pub fn render_tree(tree: &CuisineTree) -> String {
    let labels: Vec<String> = Cuisine::ALL.iter().map(|c| c.name().to_string()).collect();
    let mut out = String::new();
    out.push_str(&format!("Dendrogram [{}]\n", tree.description));
    out.push_str(&tree.dendrogram.render_ascii(&labels));
    out.push_str("\nLeaf order: ");
    let order: Vec<&str> = tree
        .dendrogram
        .leaf_order()
        .into_iter()
        .map(|i| Cuisine::ALL[i].name())
        .collect();
    out.push_str(&order.join(" | "));
    out.push('\n');
    out
}

/// Render Table I as a Markdown table (for READMEs / notebooks).
pub fn render_table1_markdown(table: &Table1) -> String {
    let mut out = String::new();
    out.push_str(
        "| Region | Recipes | Top patterns (support) | #Patterns |
",
    );
    out.push_str(
        "|---|---:|---|---:|
",
    );
    for row in &table.rows {
        let patterns: Vec<String> = row
            .top_patterns
            .iter()
            .map(|p| format!("{} ({:.2})", p.pattern, p.support))
            .collect();
        out.push_str(&format!(
            "| {} | {} | {} | {} |
",
            row.cuisine.name(),
            row.n_recipes,
            patterns.join("; "),
            row.pattern_count
        ));
    }
    out
}

/// Export Table I as CSV (one line per (cuisine, pattern) pair).
pub fn table1_to_csv(table: &Table1) -> String {
    let mut out = String::from(
        "region,recipes,rank,pattern,support,pattern_count
",
    );
    for row in &table.rows {
        for (rank, p) in row.top_patterns.iter().enumerate() {
            // Quote the two free-text fields defensively.
            out.push_str(&format!(
                "\"{}\",{},{},\"{}\",{:.4},{}
",
                row.cuisine.name(),
                row.n_recipes,
                rank + 1,
                p.pattern,
                p.support,
                row.pattern_count
            ));
        }
    }
    out
}

/// Render a horizontal, height-proportional dendrogram — the visual shape
/// of the paper's figures: one row per leaf (in dendrogram order), bar
/// length proportional to the height at which the leaf's cluster path
/// ascends.
pub fn render_tree_profile(tree: &CuisineTree, width: usize) -> String {
    let coph = tree.dendrogram.cophenetic();
    let order = tree.dendrogram.leaf_order();
    let max_h = tree.dendrogram.max_height().max(1e-12);
    let mut out = String::new();
    out.push_str(&format!(
        "Merge-height profile [{}] (bar = height at which the leaf joins its neighbour below)
",
        tree.description
    ));
    for (pos, &leaf) in order.iter().enumerate() {
        let join_height = if pos + 1 < order.len() {
            coph.get(leaf, order[pos + 1])
        } else {
            max_h
        };
        let bar = ((join_height / max_h) * width as f64).round() as usize;
        out.push_str(&format!(
            "{:<24} |{}
",
            Cuisine::ALL[leaf].name(),
            "▆".repeat(bar.min(width))
        ));
    }
    out
}

/// Render the pairwise cuisine-distance matrix as an ASCII heatmap
/// (shade = distance quintile; leaves in dendrogram order so the block
/// structure is visible along the diagonal).
pub fn render_heatmap(tree: &CuisineTree) -> String {
    const SHADES: [char; 5] = ['█', '▓', '▒', '░', ' '];
    let order = tree.dendrogram.leaf_order();
    let max_d = tree
        .distances
        .data()
        .iter()
        .cloned()
        .fold(f64::MIN, f64::max)
        .max(1e-12);
    let mut out = String::new();
    out.push_str(&format!(
        "Distance heatmap [{}] (darker = closer, rows/cols in dendrogram order)
",
        tree.description
    ));
    for &i in &order {
        out.push_str(&format!("{:<24} ", Cuisine::ALL[i].name()));
        for &j in &order {
            let d = tree.distances.get(i, j);
            let shade = ((d / max_d) * (SHADES.len() as f64 - 1.0)).round() as usize;
            out.push(SHADES[shade.min(SHADES.len() - 1)]);
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use clustering::Metric;

    #[test]
    fn table1_render_includes_every_region() {
        let atlas = crate::testutil::shared_atlas();
        let text = render_table1(&atlas.table1());
        for c in Cuisine::ALL {
            assert!(text.contains(c.name()), "missing {c}");
        }
        assert!(text.contains("Support"));
    }

    #[test]
    fn elbow_render_has_one_bar_per_k() {
        let text = render_elbow(&[100.0, 60.0, 40.0, 30.0]);
        assert_eq!(text.lines().count(), 5);
        assert!(text.contains("k=1"));
        assert!(text.contains("k=4"));
    }

    #[test]
    fn elbow_render_handles_zero_curve() {
        let text = render_elbow(&[0.0, 0.0]);
        assert!(text.contains("k=2"));
    }

    #[test]
    fn markdown_table_has_26_rows_plus_header() {
        let atlas = crate::testutil::shared_atlas();
        let md = render_table1_markdown(&atlas.table1());
        assert_eq!(md.lines().count(), 28);
        assert!(md.starts_with("| Region |"));
        assert!(md.contains("| UK |"));
    }

    #[test]
    fn csv_export_is_rectangular() {
        let atlas = crate::testutil::shared_atlas();
        let csv = table1_to_csv(&atlas.table1());
        let mut lines = csv.lines();
        let header = lines.next().unwrap();
        let cols = header.split(',').count();
        for line in lines {
            assert_eq!(line.split(',').count(), cols, "ragged row: {line}");
        }
        assert!(csv.contains("\"Japanese\""));
    }

    #[test]
    fn profile_render_has_one_bar_per_cuisine() {
        let atlas = crate::testutil::shared_atlas();
        let text = render_tree_profile(&atlas.pattern_tree(Metric::Euclidean), 40);
        assert_eq!(text.lines().count(), 27, "header + 26 leaves");
        assert!(text.contains('▆'));
    }

    #[test]
    fn heatmap_is_square_with_dark_diagonal() {
        let atlas = crate::testutil::shared_atlas();
        let tree = atlas.pattern_tree(Metric::Jaccard);
        let text = render_heatmap(&tree);
        let rows: Vec<&str> = text.lines().skip(1).collect();
        assert_eq!(rows.len(), 26);
        for row in &rows {
            // 24-char label + space + 26 cells.
            assert_eq!(row.chars().count(), 25 + 26, "row: {row}");
        }
        // The diagonal is self-distance 0 -> darkest shade.
        for (r, row) in rows.iter().enumerate() {
            let cell = row.chars().nth(25 + r).unwrap();
            assert_eq!(cell, '█', "diagonal row {r}");
        }
    }

    #[test]
    fn tree_render_lists_leaves_and_heights() {
        let atlas = crate::testutil::shared_atlas();
        let text = render_tree(&atlas.pattern_tree(Metric::Jaccard));
        for c in Cuisine::ALL {
            assert!(text.contains(c.name()), "missing {c}");
        }
        assert!(text.contains("Leaf order:"));
        assert!(text.contains("h="));
    }
}
