//! Versioned, checksummed snapshot codec for atlases and corpora.
//!
//! This is the serialization half of the `atlas-store` subsystem: a
//! built [`CuisineAtlas`] (mined patterns, feature space, all four
//! distance matrices, timings) or a corpus (`RecipeDb` JSON plus
//! provenance) is framed as
//!
//! ```text
//! magic "CUISSNAP" · version u32 · kind u8 · payload · SHA-256 trailer
//! ```
//!
//! with every integer little-endian and every `f64` written via
//! [`f64::to_bits`], so a decoded atlas is **bit-for-bit** the atlas
//! that was encoded — the store's warm-restart determinism guarantee
//! rests on this. The trailing SHA-256 covers everything before it;
//! decoding is fully bounds-checked and returns [`SnapshotError`] on
//! any damage (truncation, bit flips, wrong kind) — it never panics,
//! so a corrupt file degrades to a rebuild rather than a crash.
//!
//! Two self-checks run beyond the checksum:
//!
//! * an atlas snapshot records the corpus digest it was built from, and
//!   [`decode_atlas`] refuses to marry it to a different corpus;
//! * the four Newick tree serializations are stored alongside the
//!   distance matrices, and decode regrows each tree and compares —
//!   catching any drift in the linkage implementation between the
//!   writer and the reader.

use std::fmt;
use std::sync::Arc;

use clustering::condensed::CondensedMatrix;
use clustering::distance::Metric;
use clustering::hac::LinkageMethod;
use pattern_mining::itemset::{FrequentItemset, Itemset};
use recipedb::catalog::TokenId;
use recipedb::digest::{corpus_digest, Sha256};
use recipedb::generator::GeneratorConfig;
use recipedb::{Cuisine, RecipeDb};

use crate::authenticity::AuthenticityMatrix;
use crate::features::PatternFeatures;
use crate::patterns::CuisinePatterns;
use crate::pipeline::{AtlasConfig, BuildTimings, CuisineAtlas, CuisineTree, RestoredAtlas};

/// Magic bytes opening every snapshot file.
pub const MAGIC: [u8; 8] = *b"CUISSNAP";

/// Current codec version; bumped on any layout change.
pub const SNAPSHOT_VERSION: u32 = 1;

const CHECKSUM_LEN: usize = 32;
const HEADER_LEN: usize = MAGIC.len() + 4 + 1;

/// What a snapshot frame contains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapshotKind {
    /// A fully built [`CuisineAtlas`].
    Atlas,
    /// A corpus (`RecipeDb` JSON plus provenance).
    Corpus,
}

impl SnapshotKind {
    fn code(self) -> u8 {
        match self {
            SnapshotKind::Atlas => 1,
            SnapshotKind::Corpus => 2,
        }
    }

    fn from_code(code: u8) -> Option<Self> {
        match code {
            1 => Some(SnapshotKind::Atlas),
            2 => Some(SnapshotKind::Corpus),
            _ => None,
        }
    }
}

/// Where a persisted corpus came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorpusOrigin {
    /// Generated in-process from an [`AtlasConfig`]'s generator knobs.
    Generated,
    /// Uploaded through `POST /corpus`.
    Uploaded,
}

impl CorpusOrigin {
    fn code(self) -> u8 {
        match self {
            CorpusOrigin::Generated => 0,
            CorpusOrigin::Uploaded => 1,
        }
    }

    fn from_code(code: u8) -> Option<Self> {
        match code {
            0 => Some(CorpusOrigin::Generated),
            1 => Some(CorpusOrigin::Uploaded),
            _ => None,
        }
    }
}

/// Why a snapshot could not be decoded. Every variant is a recoverable
/// "rebuild instead" signal — decoding never panics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The byte stream ended before the structure it promised.
    Truncated,
    /// The file does not start with [`MAGIC`].
    BadMagic,
    /// The file's codec version is not [`SNAPSHOT_VERSION`].
    UnsupportedVersion(u32),
    /// The frame holds a different [`SnapshotKind`] than requested.
    WrongKind,
    /// The trailing SHA-256 does not match the content (bit rot, torn
    /// write, tampering).
    ChecksumMismatch,
    /// The checksum held but a field is structurally invalid.
    Malformed(String),
    /// The snapshot references a different corpus than the one supplied
    /// (atlas) or embeds a digest its own content does not hash to
    /// (corpus).
    CorpusMismatch {
        /// The digest the caller expected (or the embedded claim).
        expected: String,
        /// The digest actually found (or recomputed).
        got: String,
    },
    /// A tree regrown from the decoded distance matrices did not
    /// reproduce the stored Newick serialization.
    SelfCheckFailed(String),
}

impl SnapshotError {
    /// Whether this error means the file's *content* is damaged (torn
    /// write, bit rot, tampering) — the conditions a store should
    /// quarantine. The other variants describe a snapshot that is
    /// internally sound but unusable *by this reader* — a version or
    /// kind from a different build, or a corpus this process doesn't
    /// hold. When processes share a store directory, a sibling running
    /// a newer build may legitimately own such files; quarantining them
    /// would fight that sibling, so callers treat them as a miss and
    /// leave the file in place.
    pub fn is_corruption(&self) -> bool {
        match self {
            SnapshotError::Truncated
            | SnapshotError::BadMagic
            | SnapshotError::ChecksumMismatch
            | SnapshotError::Malformed(_)
            | SnapshotError::SelfCheckFailed(_) => true,
            SnapshotError::UnsupportedVersion(_)
            | SnapshotError::WrongKind
            | SnapshotError::CorpusMismatch { .. } => false,
        }
    }
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Truncated => write!(f, "snapshot truncated"),
            SnapshotError::BadMagic => write!(f, "not a snapshot file (bad magic)"),
            SnapshotError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported snapshot version {v} (expected {SNAPSHOT_VERSION})"
                )
            }
            SnapshotError::WrongKind => write!(f, "snapshot holds a different payload kind"),
            SnapshotError::ChecksumMismatch => write!(f, "snapshot checksum mismatch"),
            SnapshotError::Malformed(what) => write!(f, "malformed snapshot: {what}"),
            SnapshotError::CorpusMismatch { expected, got } => {
                write!(
                    f,
                    "snapshot corpus mismatch: expected {expected}, got {got}"
                )
            }
            SnapshotError::SelfCheckFailed(what) => {
                write!(f, "snapshot self-check failed: {what}")
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

// ---------------------------------------------------------------------
// Frame writer / reader
// ---------------------------------------------------------------------

struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn frame(kind: SnapshotKind) -> Self {
        let mut buf = Vec::with_capacity(4096);
        buf.extend_from_slice(&MAGIC);
        buf.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
        buf.push(kind.code());
        Writer { buf }
    }

    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    fn bytes(&mut self, v: &[u8]) {
        self.u64(v.len() as u64);
        self.buf.extend_from_slice(v);
    }

    fn str(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }

    fn f64s(&mut self, vs: &[f64]) {
        self.u64(vs.len() as u64);
        for &v in vs {
            self.f64(v);
        }
    }

    fn u32s(&mut self, vs: &[u32]) {
        self.u64(vs.len() as u64);
        for &v in vs {
            self.u32(v);
        }
    }

    fn seal(mut self) -> Vec<u8> {
        let mut hasher = Sha256::new();
        hasher.update(&self.buf);
        self.buf.extend_from_slice(&hasher.finalize());
        self.buf
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Validate magic, version, kind and the trailing checksum, and
    /// return a reader positioned at the payload.
    fn open(bytes: &'a [u8], kind: SnapshotKind) -> Result<Self, SnapshotError> {
        if bytes.len() < HEADER_LEN + CHECKSUM_LEN {
            return Err(SnapshotError::Truncated);
        }
        if bytes[..MAGIC.len()] != MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let version = u32::from_le_bytes(bytes[MAGIC.len()..MAGIC.len() + 4].try_into().unwrap());
        if version != SNAPSHOT_VERSION {
            return Err(SnapshotError::UnsupportedVersion(version));
        }
        let content = &bytes[..bytes.len() - CHECKSUM_LEN];
        let mut hasher = Sha256::new();
        hasher.update(content);
        if hasher.finalize() != bytes[bytes.len() - CHECKSUM_LEN..] {
            return Err(SnapshotError::ChecksumMismatch);
        }
        match SnapshotKind::from_code(bytes[HEADER_LEN - 1]) {
            Some(k) if k == kind => {}
            _ => return Err(SnapshotError::WrongKind),
        }
        Ok(Reader {
            buf: content,
            pos: HEADER_LEN,
        })
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        if self.remaining() < n {
            return Err(SnapshotError::Truncated);
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> Result<f64, SnapshotError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Read a length prefix and sanity-check it against the bytes left,
    /// so a bit-flipped length cannot trigger a huge allocation.
    fn len(&mut self, elem_size: usize, what: &str) -> Result<usize, SnapshotError> {
        let n = usize::try_from(self.u64()?)
            .map_err(|_| SnapshotError::Malformed(format!("{what} length overflows")))?;
        match n.checked_mul(elem_size) {
            Some(bytes) if bytes <= self.remaining() => Ok(n),
            _ => Err(SnapshotError::Malformed(format!(
                "{what} length {n} exceeds remaining payload"
            ))),
        }
    }

    fn bytes(&mut self, what: &str) -> Result<&'a [u8], SnapshotError> {
        let n = self.len(1, what)?;
        self.take(n)
    }

    fn str(&mut self, what: &str) -> Result<String, SnapshotError> {
        let raw = self.bytes(what)?;
        String::from_utf8(raw.to_vec())
            .map_err(|_| SnapshotError::Malformed(format!("{what} is not UTF-8")))
    }

    fn f64s(&mut self, what: &str) -> Result<Vec<f64>, SnapshotError> {
        let n = self.len(8, what)?;
        (0..n).map(|_| self.f64()).collect()
    }

    fn u32s(&mut self, what: &str) -> Result<Vec<u32>, SnapshotError> {
        let n = self.len(4, what)?;
        (0..n).map(|_| self.u32()).collect()
    }

    fn finish(self) -> Result<(), SnapshotError> {
        if self.remaining() != 0 {
            return Err(SnapshotError::Malformed(format!(
                "{} trailing payload bytes",
                self.remaining()
            )));
        }
        Ok(())
    }
}

fn linkage_from_name(name: &str) -> Result<LinkageMethod, SnapshotError> {
    LinkageMethod::ALL
        .into_iter()
        .find(|m| m.name() == name)
        .ok_or_else(|| SnapshotError::Malformed(format!("unknown linkage method {name:?}")))
}

// ---------------------------------------------------------------------
// Atlas snapshots
// ---------------------------------------------------------------------

/// The cheap-to-read prefix of an atlas snapshot.
#[derive(Debug, Clone)]
pub struct AtlasPeek {
    /// Digest of the corpus the atlas was built from.
    pub corpus_digest: String,
}

/// Serialize a built atlas. `corpus_digest` is the
/// [`corpus_digest`](recipedb::digest::corpus_digest) of the atlas's
/// corpus; it is the snapshot's corpus reference, checked again at
/// decode time.
pub fn encode_atlas(atlas: &CuisineAtlas, corpus_digest: &str) -> Vec<u8> {
    let mut w = Writer::frame(SnapshotKind::Atlas);
    w.str(corpus_digest);

    // Config: every generator knob plus the pipeline knobs — enough to
    // re-derive the cache key this snapshot answers for.
    let cfg = atlas.config();
    let g = &cfg.corpus;
    w.u64(g.seed);
    w.f64(g.scale);
    w.u64(g.min_recipes_per_cuisine as u64);
    w.f64(g.utensil_presence);
    w.u64(g.target_unique_ingredients as u64);
    w.f64(g.mean_ingredients);
    w.f64(g.mean_processes);
    w.f64(g.mean_utensils);
    w.u64(g.regional_draws as u64);
    w.f64(cfg.min_support);
    w.f64(cfg.generic_fraction);
    w.u64(cfg.top_k as u64);
    w.str(cfg.linkage.name());
    w.u64(cfg.build_threads as u64);

    // Active cuisines, artifact-index order.
    let cuisines = atlas.cuisines();
    w.u64(cuisines.len() as u64);
    for &c in cuisines {
        w.u32(c.index() as u32);
    }

    // Mined patterns, one block per active cuisine.
    for cp in atlas.patterns() {
        w.u32(cp.cuisine.index() as u32);
        w.u64(cp.n_recipes as u64);
        w.u64(cp.itemsets.len() as u64);
        for f in &cp.itemsets {
            w.u64(f.count);
            w.u32s(f.items.items());
        }
    }

    // Feature space.
    let feats = atlas.features();
    w.u64(feats.vocabulary.len() as u64);
    for s in &feats.vocabulary {
        w.str(s);
    }
    write_matrix(&mut w, &feats.binary);
    write_matrix(&mut w, &feats.weighted);
    w.u64(feats.pattern_sets.len() as u64);
    for set in &feats.pattern_sets {
        w.u32s(set);
    }

    // Distance matrices: the three pattern metrics plus authenticity.
    let trees = [
        atlas.pattern_tree(Metric::Euclidean),
        atlas.pattern_tree(Metric::Cosine),
        atlas.pattern_tree(Metric::Jaccard),
        atlas.authenticity_tree(),
    ];
    for tree in &trees {
        write_condensed(&mut w, &tree.distances);
    }

    // Authenticity fingerprints.
    let auth = atlas.authenticity_matrix();
    w.u64(auth.cuisines.len() as u64);
    for &c in &auth.cuisines {
        w.u32(c.index() as u32);
    }
    w.u64(auth.items.len() as u64);
    for &t in &auth.items {
        w.u32(t.0);
    }
    write_matrix(&mut w, &auth.prevalence);
    write_matrix(&mut w, &auth.relative);

    // Build timings (provenance; surfaced by /health after a restore).
    let t = atlas.timings();
    w.f64(t.generate_ms);
    w.f64(t.mine_ms);
    w.f64(t.features_ms);
    w.f64(t.pdist_ms);

    // Newick serializations, the decode-time self-check.
    let labels: Vec<String> = cuisines.iter().map(|c| c.name().to_string()).collect();
    for tree in &trees {
        w.str(&tree.dendrogram.to_newick(&labels));
    }

    w.seal()
}

/// Read only an atlas snapshot's corpus reference (after full frame
/// validation), so the store can locate the corpus before committing to
/// the full decode.
pub fn peek_atlas(bytes: &[u8]) -> Result<AtlasPeek, SnapshotError> {
    let mut r = Reader::open(bytes, SnapshotKind::Atlas)?;
    Ok(AtlasPeek {
        corpus_digest: r.str("corpus digest")?,
    })
}

/// Decode an atlas snapshot against the corpus it was built from.
///
/// `db` must be the corpus whose digest is `expected_digest` (the
/// caller has either just decoded it from a corpus snapshot or holds it
/// in the registry); the snapshot's own corpus reference must agree.
/// `build_threads` replaces the stored wall-clock knob so a restored
/// atlas uses the restoring server's parallelism (it never affects
/// results). The four trees are regrown from the decoded matrices and
/// compared to the stored Newick strings before anything is returned.
pub fn decode_atlas(
    bytes: &[u8],
    db: Arc<RecipeDb>,
    expected_digest: &str,
    build_threads: usize,
) -> Result<CuisineAtlas, SnapshotError> {
    let mut r = Reader::open(bytes, SnapshotKind::Atlas)?;

    let stored_digest = r.str("corpus digest")?;
    if stored_digest != expected_digest {
        return Err(SnapshotError::CorpusMismatch {
            expected: expected_digest.to_string(),
            got: stored_digest,
        });
    }

    let config = AtlasConfig {
        corpus: GeneratorConfig {
            seed: r.u64()?,
            scale: r.f64()?,
            min_recipes_per_cuisine: r.u64()? as usize,
            utensil_presence: r.f64()?,
            target_unique_ingredients: r.u64()? as usize,
            mean_ingredients: r.f64()?,
            mean_processes: r.f64()?,
            mean_utensils: r.f64()?,
            regional_draws: r.u64()? as usize,
        },
        min_support: r.f64()?,
        generic_fraction: r.f64()?,
        top_k: r.u64()? as usize,
        linkage: linkage_from_name(&r.str("linkage")?)?,
        build_threads,
    };
    // The stored wall-clock knob is superseded by `build_threads` but
    // still occupies its slot in the stream.
    let _ = r.u64()?;

    let n = r.len(4, "cuisine list")?;
    let mut cuisines = Vec::with_capacity(n);
    for _ in 0..n {
        let idx = r.u32()? as usize;
        cuisines.push(
            Cuisine::from_index(idx)
                .ok_or_else(|| SnapshotError::Malformed(format!("cuisine index {idx}")))?,
        );
    }
    if cuisines.is_empty() {
        return Err(SnapshotError::Malformed("empty cuisine list".into()));
    }

    let mut patterns = Vec::with_capacity(n);
    for &cuisine in &cuisines {
        let idx = r.u32()? as usize;
        if idx != cuisine.index() {
            return Err(SnapshotError::Malformed(format!(
                "pattern block for cuisine index {idx}, expected {}",
                cuisine.index()
            )));
        }
        let n_recipes = r.u64()? as usize;
        let n_itemsets = r.len(12, "itemset list")?;
        let mut itemsets = Vec::with_capacity(n_itemsets);
        for _ in 0..n_itemsets {
            let count = r.u64()?;
            let items = r.u32s("itemset")?;
            itemsets.push(FrequentItemset {
                items: Itemset::new(items),
                count,
            });
        }
        patterns.push(CuisinePatterns {
            cuisine,
            n_recipes,
            itemsets,
        });
    }

    let vocab_len = r.len(8, "vocabulary")?;
    let mut vocabulary = Vec::with_capacity(vocab_len);
    for _ in 0..vocab_len {
        vocabulary.push(r.str("vocabulary entry")?);
    }
    let binary = read_matrix(&mut r, n, vocab_len, "binary features")?;
    let weighted = read_matrix(&mut r, n, vocab_len, "weighted features")?;
    let n_sets = r.len(8, "pattern sets")?;
    if n_sets != n {
        return Err(SnapshotError::Malformed(format!(
            "{n_sets} pattern sets for {n} cuisines"
        )));
    }
    let mut pattern_sets = Vec::with_capacity(n);
    for _ in 0..n {
        pattern_sets.push(r.u32s("pattern set")?);
    }
    let features = PatternFeatures {
        vocabulary,
        binary,
        weighted,
        pattern_sets,
    };

    let euclidean = read_condensed(&mut r, n, "euclidean distances")?;
    let cosine = read_condensed(&mut r, n, "cosine distances")?;
    let jaccard = read_condensed(&mut r, n, "jaccard distances")?;
    let authenticity_dist = read_condensed(&mut r, n, "authenticity distances")?;

    let n_auth = r.len(4, "authenticity cuisines")?;
    if n_auth != n {
        return Err(SnapshotError::Malformed(format!(
            "authenticity matrix over {n_auth} cuisines, atlas has {n}"
        )));
    }
    for &cuisine in &cuisines {
        let idx = r.u32()? as usize;
        if idx != cuisine.index() {
            return Err(SnapshotError::Malformed(
                "authenticity cuisine order differs from atlas".into(),
            ));
        }
    }
    let items: Vec<TokenId> = r
        .u32s("authenticity items")?
        .into_iter()
        .map(TokenId)
        .collect();
    let prevalence = read_matrix(&mut r, n, items.len(), "prevalence matrix")?;
    let relative = read_matrix(&mut r, n, items.len(), "relative prevalence matrix")?;
    let authenticity = AuthenticityMatrix {
        cuisines: cuisines.clone(),
        items,
        prevalence,
        relative,
    };

    let timings = BuildTimings {
        generate_ms: r.f64()?,
        mine_ms: r.f64()?,
        features_ms: r.f64()?,
        pdist_ms: r.f64()?,
    };

    // Self-check: regrow each tree from the decoded matrices and compare
    // against the stored Newick serialization.
    let labels: Vec<String> = cuisines.iter().map(|c| c.name().to_string()).collect();
    let checks = [
        ("patterns/euclidean", &euclidean),
        ("patterns/cosine", &cosine),
        ("patterns/jaccard", &jaccard),
        ("authenticity/euclidean", &authenticity_dist),
    ];
    for (what, matrix) in checks {
        let stored = r.str("newick")?;
        let tree = CuisineTree::from_distances_over(
            what.to_string(),
            cuisines.clone(),
            (*matrix).clone(),
            config.linkage,
        );
        if tree.dendrogram.to_newick(&labels) != stored {
            return Err(SnapshotError::SelfCheckFailed(format!(
                "{what} tree does not reproduce its stored newick"
            )));
        }
    }

    r.finish()?;

    Ok(CuisineAtlas::from_restored(RestoredAtlas {
        config,
        db,
        cuisines,
        patterns,
        features,
        euclidean,
        cosine,
        jaccard,
        authenticity,
        authenticity_dist,
        timings,
    }))
}

fn write_matrix(w: &mut Writer, rows: &[Vec<f64>]) {
    w.u64(rows.len() as u64);
    w.u64(rows.first().map_or(0, |r| r.len()) as u64);
    for row in rows {
        for &v in row {
            w.f64(v);
        }
    }
}

fn read_matrix(
    r: &mut Reader<'_>,
    expect_rows: usize,
    expect_cols: usize,
    what: &str,
) -> Result<Vec<Vec<f64>>, SnapshotError> {
    let rows = r.u64()? as usize;
    let cols = r.u64()? as usize;
    if rows != expect_rows || cols != expect_cols {
        return Err(SnapshotError::Malformed(format!(
            "{what}: {rows}×{cols}, expected {expect_rows}×{expect_cols}"
        )));
    }
    if cols
        .checked_mul(rows)
        .and_then(|c| c.checked_mul(8))
        .is_none_or(|b| b > r.remaining())
    {
        return Err(SnapshotError::Malformed(format!(
            "{what}: dimensions exceed remaining payload"
        )));
    }
    let mut out = Vec::with_capacity(rows);
    for _ in 0..rows {
        let mut row = Vec::with_capacity(cols);
        for _ in 0..cols {
            row.push(r.f64()?);
        }
        out.push(row);
    }
    Ok(out)
}

fn write_condensed(w: &mut Writer, m: &CondensedMatrix) {
    w.u64(m.len() as u64);
    w.f64s(m.data());
}

fn read_condensed(
    r: &mut Reader<'_>,
    expect_n: usize,
    what: &str,
) -> Result<CondensedMatrix, SnapshotError> {
    let n = r.u64()? as usize;
    if n != expect_n {
        return Err(SnapshotError::Malformed(format!(
            "{what}: over {n} leaves, expected {expect_n}"
        )));
    }
    let data = r.f64s(what)?;
    if data.len() != n * (n - 1) / 2 {
        return Err(SnapshotError::Malformed(format!(
            "{what}: {} entries for {n} leaves",
            data.len()
        )));
    }
    Ok(CondensedMatrix::from_condensed(n, data))
}

// ---------------------------------------------------------------------
// Corpus snapshots
// ---------------------------------------------------------------------

/// A decoded corpus snapshot.
#[derive(Debug)]
pub struct CorpusSnapshot {
    /// The corpus's semantic digest (recomputed and verified on decode).
    pub digest: String,
    /// Where the corpus came from.
    pub origin: CorpusOrigin,
    /// Size of the original upload body in bytes (0 for generated
    /// corpora); restored into the registry's memory accounting.
    pub upload_bytes: u64,
    /// The corpus itself.
    pub db: RecipeDb,
}

/// The cheap-to-read prefix of a corpus snapshot.
#[derive(Debug, Clone)]
pub struct CorpusPeek {
    /// The corpus's semantic digest (as claimed by the file; the full
    /// decode verifies it).
    pub digest: String,
    /// Where the corpus came from.
    pub origin: CorpusOrigin,
    /// Size of the original upload body in bytes.
    pub upload_bytes: u64,
}

/// Serialize a corpus with its provenance. The embedded digest is
/// computed here from `db` itself, making the file self-describing.
pub fn encode_corpus(
    db: &RecipeDb,
    origin: CorpusOrigin,
    upload_bytes: u64,
) -> Result<Vec<u8>, SnapshotError> {
    let json = recipedb::io::to_json(db)
        .map_err(|e| SnapshotError::Malformed(format!("corpus serialization: {e}")))?;
    let mut w = Writer::frame(SnapshotKind::Corpus);
    w.str(&corpus_digest(db));
    w.u8(origin.code());
    w.u64(upload_bytes);
    w.bytes(json.as_bytes());
    Ok(w.seal())
}

/// Read a corpus snapshot's provenance without parsing the corpus JSON
/// (the frame checksum is still fully verified).
pub fn peek_corpus(bytes: &[u8]) -> Result<CorpusPeek, SnapshotError> {
    let mut r = Reader::open(bytes, SnapshotKind::Corpus)?;
    Ok(CorpusPeek {
        digest: r.str("corpus digest")?,
        origin: CorpusOrigin::from_code(r.u8()?)
            .ok_or_else(|| SnapshotError::Malformed("corpus origin".into()))?,
        upload_bytes: r.u64()?,
    })
}

/// Decode a corpus snapshot, recomputing its digest from the parsed
/// corpus and refusing the file if it does not match the embedded claim.
pub fn decode_corpus(bytes: &[u8]) -> Result<CorpusSnapshot, SnapshotError> {
    let mut r = Reader::open(bytes, SnapshotKind::Corpus)?;
    let digest = r.str("corpus digest")?;
    let origin = CorpusOrigin::from_code(r.u8()?)
        .ok_or_else(|| SnapshotError::Malformed("corpus origin".into()))?;
    let upload_bytes = r.u64()?;
    let json = r.bytes("corpus json")?;
    r.finish()?;
    let json = std::str::from_utf8(json)
        .map_err(|_| SnapshotError::Malformed("corpus json is not UTF-8".into()))?;
    let db = recipedb::io::from_json(json)
        .map_err(|e| SnapshotError::Malformed(format!("corpus parse: {e}")))?;
    let recomputed = corpus_digest(&db);
    if recomputed != digest {
        return Err(SnapshotError::CorpusMismatch {
            expected: digest,
            got: recomputed,
        });
    }
    Ok(CorpusSnapshot {
        digest,
        origin,
        upload_bytes,
        db,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use clustering::distance::Metric;

    fn atlas() -> &'static CuisineAtlas {
        crate::testutil::shared_atlas()
    }

    fn digest_of(a: &CuisineAtlas) -> String {
        corpus_digest(a.db())
    }

    #[test]
    fn atlas_roundtrip_is_bit_identical() {
        let a = atlas();
        let digest = digest_of(a);
        let bytes = encode_atlas(a, &digest);
        let db =
            Arc::new(recipedb::io::from_json(&recipedb::io::to_json(a.db()).unwrap()).unwrap());
        let b = decode_atlas(&bytes, db, &digest, 2).unwrap();

        assert_eq!(a.cuisines(), b.cuisines());
        assert_eq!(a.patterns().len(), b.patterns().len());
        for (pa, pb) in a.patterns().iter().zip(b.patterns()) {
            assert_eq!(pa.cuisine, pb.cuisine);
            assert_eq!(pa.n_recipes, pb.n_recipes);
            assert_eq!(pa.itemsets, pb.itemsets);
        }
        assert_eq!(a.features().vocabulary, b.features().vocabulary);
        assert_eq!(a.features().binary, b.features().binary);
        assert_eq!(a.features().weighted, b.features().weighted);
        assert_eq!(a.features().pattern_sets, b.features().pattern_sets);
        for metric in [Metric::Euclidean, Metric::Cosine, Metric::Jaccard] {
            assert_eq!(
                a.pattern_tree(metric).distances.data(),
                b.pattern_tree(metric).distances.data(),
                "{metric}"
            );
        }
        assert_eq!(
            a.authenticity_tree().distances.data(),
            b.authenticity_tree().distances.data()
        );
        let (ma, mb) = (a.authenticity_matrix(), b.authenticity_matrix());
        assert_eq!(ma.items, mb.items);
        assert_eq!(ma.relative, mb.relative);
        assert_eq!(a.timings(), b.timings());
        // The wall-clock knob is replaced by the caller's.
        assert_eq!(b.config().build_threads, 2);
    }

    #[test]
    fn atlas_snapshot_is_deterministic() {
        let a = atlas();
        let digest = digest_of(a);
        assert_eq!(encode_atlas(a, &digest), encode_atlas(a, &digest));
    }

    #[test]
    fn corpus_roundtrip_preserves_digest_and_provenance() {
        let a = atlas();
        let digest = digest_of(a);
        let bytes = encode_corpus(a.db(), CorpusOrigin::Uploaded, 123).unwrap();
        let peek = peek_corpus(&bytes).unwrap();
        assert_eq!(peek.digest, digest);
        assert_eq!(peek.origin, CorpusOrigin::Uploaded);
        assert_eq!(peek.upload_bytes, 123);
        let snap = decode_corpus(&bytes).unwrap();
        assert_eq!(snap.digest, digest);
        assert_eq!(corpus_digest(&snap.db), digest);
    }

    #[test]
    fn wrong_corpus_is_refused() {
        let a = atlas();
        let bytes = encode_atlas(a, &digest_of(a));
        let err = decode_atlas(&bytes, Arc::new(a.db().clone()), "sha256:other", 1)
            .err()
            .expect("mismatched digest must be refused");
        assert!(matches!(err, SnapshotError::CorpusMismatch { .. }));
    }

    #[test]
    fn damage_is_detected_never_panics() {
        let a = atlas();
        let digest = digest_of(a);
        let good = encode_atlas(a, &digest);
        let db = Arc::new(a.db().clone());

        // Truncations at every kind of boundary.
        for cut in [
            0,
            1,
            HEADER_LEN - 1,
            HEADER_LEN,
            good.len() / 2,
            good.len() - 1,
        ] {
            let err = decode_atlas(&good[..cut], db.clone(), &digest, 1)
                .err()
                .expect("truncated snapshot must be refused");
            assert!(
                matches!(
                    err,
                    SnapshotError::Truncated | SnapshotError::ChecksumMismatch
                ),
                "cut at {cut}: {err}"
            );
        }
        // A single flipped bit anywhere breaks the checksum (or the
        // magic/version prefix).
        for pos in [0, 9, HEADER_LEN, good.len() / 2, good.len() - 1] {
            let mut bad = good.clone();
            bad[pos] ^= 0x40;
            assert!(
                decode_atlas(&bad, db.clone(), &digest, 1).is_err(),
                "flip at {pos}"
            );
        }
        // Kind confusion both ways.
        let corpus = encode_corpus(a.db(), CorpusOrigin::Generated, 0).unwrap();
        assert_eq!(
            decode_atlas(&corpus, db.clone(), &digest, 1).err(),
            Some(SnapshotError::WrongKind)
        );
        assert_eq!(decode_corpus(&good).unwrap_err(), SnapshotError::WrongKind);
    }
}
