//! Geographic ground truth (paper Figure 6): haversine distances between
//! region centroids and the resulting validation dendrogram.

use clustering::condensed::CondensedMatrix;
use clustering::dendrogram::Dendrogram;
use clustering::distance::haversine_km;
use clustering::hac::{linkage, LinkageMethod};
use recipedb::Cuisine;

/// Pairwise great-circle distances (km) between the 26 region centroids,
/// in `Cuisine::index()` order.
pub fn geographic_distances() -> CondensedMatrix {
    geographic_distances_over(&Cuisine::ALL)
}

/// Pairwise great-circle distances (km) between the centroids of an
/// explicit cuisine list, in list order — for corpora covering only a
/// subset of the 26 regions.
pub fn geographic_distances_over(cuisines: &[Cuisine]) -> CondensedMatrix {
    CondensedMatrix::from_fn(cuisines.len(), |i, j| {
        haversine_km(cuisines[i].centroid(), cuisines[j].centroid())
    })
}

/// The geographic validation tree (Figure 6).
pub fn geographic_tree(method: LinkageMethod) -> Dendrogram {
    let d = geographic_distances();
    Dendrogram::from_merges(Cuisine::COUNT, &linkage(&d, method))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distances_are_plausible() {
        let d = geographic_distances();
        let get = |a: Cuisine, b: Cuisine| d.get(a.index(), b.index());
        // UK–Irish are neighbours; UK–Australian are antipodal-ish.
        assert!(get(Cuisine::UK, Cuisine::Irish) < 600.0);
        assert!(get(Cuisine::UK, Cuisine::Australian) > 12_000.0);
        // Japan–Korea close; Japan–Mexico far.
        assert!(get(Cuisine::Japanese, Cuisine::Korean) < 1_500.0);
        assert!(get(Cuisine::Japanese, Cuisine::Mexican) > 9_000.0);
    }

    #[test]
    fn geographic_tree_groups_neighbours() {
        let tree = geographic_tree(LinkageMethod::Average);
        let coph = tree.cophenetic();
        let c = |a: Cuisine, b: Cuisine| coph.get(a.index(), b.index());
        // In pure geography, Canada merges with the US far below France.
        assert!(
            c(Cuisine::Canadian, Cuisine::US) < c(Cuisine::Canadian, Cuisine::French),
            "geography must put Canada with US"
        );
        // Japan joins Korea before joining Scandinavia.
        assert!(
            c(Cuisine::Japanese, Cuisine::Korean) < c(Cuisine::Japanese, Cuisine::Scandinavian)
        );
        // UK and Irish are among the closest pairs in the tree.
        assert!(c(Cuisine::UK, Cuisine::Irish) <= c(Cuisine::UK, Cuisine::Greek));
    }

    #[test]
    fn leaf_order_covers_all_cuisines() {
        let tree = geographic_tree(LinkageMethod::Average);
        let mut order = tree.leaf_order();
        order.sort_unstable();
        assert_eq!(order, (0..26).collect::<Vec<_>>());
    }
}
