//! The paper's pattern-to-feature-vector step (Section VI.A).
//!
//! All per-cuisine patterns are canonicalised to "string patterns",
//! compiled into one unique vocabulary, label-encoded, and each cuisine
//! becomes a vector over that vocabulary — binary incidence by default
//! (did the cuisine exhibit the pattern?), or support-weighted.

use clustering::encode::{incidence_matrix, weighted_incidence_matrix, LabelEncoder};
use recipedb::RecipeDb;

use crate::patterns::CuisinePatterns;

/// The encoded pattern space: vocabulary + per-cuisine feature vectors.
#[derive(Debug, Clone)]
pub struct PatternFeatures {
    /// Pattern-string vocabulary in code order.
    pub vocabulary: Vec<String>,
    /// Binary incidence matrix, `n_cuisines × vocab`.
    pub binary: Vec<Vec<f64>>,
    /// Support-weighted matrix, `n_cuisines × vocab`.
    pub weighted: Vec<Vec<f64>>,
    /// Per-cuisine encoded pattern id lists (sorted), for set-based
    /// distances.
    pub pattern_sets: Vec<Vec<u32>>,
}

impl PatternFeatures {
    /// Build the feature space from all cuisines' mined patterns.
    pub fn build(db: &RecipeDb, all: &[CuisinePatterns]) -> Self {
        let mut encoder: LabelEncoder<String> = LabelEncoder::new();
        let mut rows_binary: Vec<Vec<usize>> = Vec::with_capacity(all.len());
        let mut rows_weighted: Vec<Vec<(usize, f64)>> = Vec::with_capacity(all.len());

        for cp in all {
            let mut codes = Vec::with_capacity(cp.itemsets.len());
            let mut weights = Vec::with_capacity(cp.itemsets.len());
            for f in &cp.itemsets {
                let s = CuisinePatterns::pattern_string(db, f);
                let code = encoder.fit_transform_one(&s);
                codes.push(code);
                weights.push((code, f.support(cp.n_recipes)));
            }
            rows_binary.push(codes);
            rows_weighted.push(weights);
        }

        let vocab = encoder.len();
        let binary = incidence_matrix(&rows_binary, vocab);
        let weighted = weighted_incidence_matrix(&rows_weighted, vocab);
        let pattern_sets = rows_binary
            .into_iter()
            .map(|mut codes| {
                codes.sort_unstable();
                codes.dedup();
                codes.into_iter().map(|c| c as u32).collect()
            })
            .collect();

        PatternFeatures {
            vocabulary: encoder.vocabulary().to_vec(),
            binary,
            weighted,
            pattern_sets,
        }
    }

    /// Vocabulary size.
    pub fn vocab_size(&self) -> usize {
        self.vocabulary.len()
    }

    /// Number of shared patterns between two cuisines (by index).
    pub fn shared_patterns(&self, a: usize, b: usize) -> usize {
        let (sa, sb) = (&self.pattern_sets[a], &self.pattern_sets[b]);
        let (mut i, mut j, mut n) = (0, 0, 0);
        while i < sa.len() && j < sb.len() {
            match sa[i].cmp(&sb[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    n += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recipedb::Cuisine;

    fn features() -> (&'static RecipeDb, &'static PatternFeatures) {
        let atlas = crate::testutil::shared_atlas();
        (atlas.db(), atlas.features())
    }

    #[test]
    fn shapes_are_consistent() {
        let (_, f) = features();
        assert_eq!(f.binary.len(), 26);
        assert_eq!(f.weighted.len(), 26);
        assert_eq!(f.pattern_sets.len(), 26);
        for row in &f.binary {
            assert_eq!(row.len(), f.vocab_size());
            assert!(row.iter().all(|&x| x == 0.0 || x == 1.0));
        }
        for row in &f.weighted {
            assert!(row.iter().all(|&x| (0.0..=1.0).contains(&x)));
        }
    }

    #[test]
    fn vocabulary_is_unique() {
        let (_, f) = features();
        let mut v = f.vocabulary.clone();
        v.sort();
        let before = v.len();
        v.dedup();
        assert_eq!(before, v.len(), "duplicate pattern strings in vocabulary");
        assert!(
            f.vocab_size() > 26,
            "cross-cuisine vocabulary should be rich"
        );
    }

    #[test]
    fn binary_row_weight_equals_pattern_count() {
        let (_, f) = features();
        for (i, row) in f.binary.iter().enumerate() {
            let ones = row.iter().filter(|&&x| x == 1.0).count();
            assert_eq!(ones, f.pattern_sets[i].len(), "cuisine {i}");
        }
    }

    #[test]
    fn canada_shares_more_with_france_than_us() {
        // The corpus encodes the paper's headline claim; the feature space
        // must carry it through.
        let (_, f) = features();
        let ca = Cuisine::Canadian.index();
        let fr = Cuisine::French.index();
        let us = Cuisine::US.index();
        assert!(
            f.shared_patterns(ca, fr) > f.shared_patterns(ca, us),
            "Canada∩France {} vs Canada∩US {}",
            f.shared_patterns(ca, fr),
            f.shared_patterns(ca, us)
        );
    }

    #[test]
    fn generic_patterns_are_shared_by_most_cuisines() {
        let (db, f) = features();
        let _ = db;
        // The 'salt' singleton pattern exists and is present in most rows.
        let salt_code = f
            .vocabulary
            .iter()
            .position(|p| p == "salt")
            .expect("salt pattern in vocabulary");
        let holders = f.binary.iter().filter(|row| row[salt_code] == 1.0).count();
        assert!(holders >= 20, "salt pattern held by {holders}/26 cuisines");
    }
}
