//! Authenticity-based cuisine fingerprints (paper Section V.B, Figure 5),
//! after Ahn et al., *Flavor network and the principles of food pairing*
//! (Scientific Reports, 2011).
//!
//! The prevalence of item `i` in cuisine `c` is the fraction of `c`'s
//! recipes containing `i` (the paper's equation 1 is ambiguous about the
//! normaliser; Ahn et al.'s per-cuisine normalisation is used, with the
//! corpus-wide variant available through
//! [`AuthenticityMatrix::with_normalizer`]). The **relative prevalence**
//! (authenticity) is `p_i^c = P_i^c − ⟨P_i^k⟩_{k≠c}` — positive for items
//! over-represented in `c`, negative for items conspicuously absent; both
//! tails carry signal, which is why the fingerprint keeps the sign.

use std::collections::HashMap;

use recipedb::catalog::TokenId;
use recipedb::{Cuisine, ItemKind, RecipeDb};

/// Which recipe count normalises prevalence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Normalizer {
    /// Per-cuisine recipe count (Ahn et al.; default).
    PerCuisine,
    /// Corpus-wide recipe count (the paper's literal equation 1).
    CorpusWide,
}

/// Cuisines × items prevalence and relative-prevalence matrices.
///
/// Rows are in `cuisines` order — `Cuisine::ALL` for the paper's corpus,
/// or the subset actually present in an uploaded one, so a cuisine's row
/// index is its *position in `cuisines`*, not `Cuisine::index()`.
#[derive(Debug, Clone)]
pub struct AuthenticityMatrix {
    /// The cuisines covered, in row order.
    pub cuisines: Vec<Cuisine>,
    /// Item universe (token ids), in column order.
    pub items: Vec<TokenId>,
    /// `prevalence[c][j]` = P of item `items[j]` in cuisine `cuisines[c]`.
    pub prevalence: Vec<Vec<f64>>,
    /// `relative[c][j]` = prevalence − mean prevalence over other cuisines.
    pub relative: Vec<Vec<f64>>,
}

impl AuthenticityMatrix {
    /// Build over the ingredients of the corpus (the paper's Figure 5 is
    /// "dominantly based on ingredients"), per-cuisine normalised.
    pub fn ingredients(db: &RecipeDb) -> Self {
        Self::with_normalizer(db, &[ItemKind::Ingredient], Normalizer::PerCuisine)
    }

    /// [`AuthenticityMatrix::ingredients`] restricted to an explicit
    /// cuisine list (rows in list order) — for corpora covering only a
    /// subset of the 26 cuisines.
    pub fn ingredients_over(db: &RecipeDb, cuisines: &[Cuisine]) -> Self {
        Self::with_normalizer_over(
            db,
            cuisines,
            &[ItemKind::Ingredient],
            Normalizer::PerCuisine,
        )
    }

    /// Build over any subset of item kinds with an explicit normaliser.
    pub fn with_normalizer(db: &RecipeDb, kinds: &[ItemKind], norm: Normalizer) -> Self {
        Self::with_normalizer_over(db, &Cuisine::ALL, kinds, norm)
    }

    /// [`AuthenticityMatrix::with_normalizer`] over an explicit cuisine
    /// list. With `cuisines == Cuisine::ALL` the result is identical to
    /// the unrestricted form; for a single-cuisine corpus there are no
    /// "other cuisines", so relative prevalence equals prevalence rather
    /// than dividing by zero.
    pub fn with_normalizer_over(
        db: &RecipeDb,
        cuisines: &[Cuisine],
        kinds: &[ItemKind],
        norm: Normalizer,
    ) -> Self {
        let n_cuisines = cuisines.len();
        let corpus_total = db.recipe_count().max(1) as f64;

        // Count, per cuisine, in how many recipes each token occurs.
        let mut columns: HashMap<TokenId, usize> = HashMap::new();
        let mut counts: Vec<HashMap<TokenId, u32>> = Vec::with_capacity(n_cuisines);
        for &c in cuisines {
            let freq = db.item_frequencies(c);
            for (&tok, _) in freq.iter() {
                let kind = db.catalog().kind_of(tok).expect("token in catalog");
                if kinds.contains(&kind) {
                    let next = columns.len();
                    columns.entry(tok).or_insert(next);
                }
            }
            counts.push(freq);
        }
        let mut items: Vec<(TokenId, usize)> = columns.into_iter().collect();
        items.sort_by_key(|&(tok, _)| tok);
        let col_of: HashMap<TokenId, usize> = items
            .iter()
            .enumerate()
            .map(|(j, &(tok, _))| (tok, j))
            .collect();
        let items: Vec<TokenId> = items.into_iter().map(|(t, _)| t).collect();

        let mut prevalence = vec![vec![0.0; items.len()]; n_cuisines];
        for (row, (&cuisine, freq)) in prevalence.iter_mut().zip(cuisines.iter().zip(&counts)) {
            let denom = match norm {
                Normalizer::PerCuisine => db.recipes_in(cuisine).max(1) as f64,
                Normalizer::CorpusWide => corpus_total,
            };
            for (&tok, &n) in freq {
                if let Some(&j) = col_of.get(&tok) {
                    row[j] = n as f64 / denom;
                }
            }
        }

        // Relative prevalence: subtract the mean over the *other* cuisines.
        let mut relative = vec![vec![0.0; items.len()]; n_cuisines];
        for j in 0..items.len() {
            let total: f64 = prevalence.iter().map(|row| row[j]).sum();
            for c in 0..n_cuisines {
                let others = if n_cuisines > 1 {
                    (total - prevalence[c][j]) / (n_cuisines as f64 - 1.0)
                } else {
                    0.0
                };
                relative[c][j] = prevalence[c][j] - others;
            }
        }

        AuthenticityMatrix {
            cuisines: cuisines.to_vec(),
            items,
            prevalence,
            relative,
        }
    }

    /// Number of item columns.
    pub fn n_items(&self) -> usize {
        self.items.len()
    }

    /// Row index of a cuisine, if the matrix covers it.
    pub fn index_of(&self, cuisine: Cuisine) -> Option<usize> {
        self.cuisines.iter().position(|&c| c == cuisine)
    }

    fn row_of(&self, cuisine: Cuisine) -> &[f64] {
        let idx = self
            .index_of(cuisine)
            .unwrap_or_else(|| panic!("cuisine {cuisine} not covered by this matrix"));
        &self.relative[idx]
    }

    /// The fingerprint vector of a cuisine (its relative-prevalence row).
    ///
    /// # Panics
    /// If the matrix does not cover `cuisine` (see
    /// [`AuthenticityMatrix::index_of`]).
    pub fn fingerprint(&self, cuisine: Cuisine) -> &[f64] {
        self.row_of(cuisine)
    }

    /// The `k` most-authentic (largest relative prevalence) items of a
    /// cuisine, as `(token, relative_prevalence)` descending.
    pub fn most_authentic(&self, cuisine: Cuisine, k: usize) -> Vec<(TokenId, f64)> {
        let row = self.row_of(cuisine);
        let mut pairs: Vec<(TokenId, f64)> = self
            .items
            .iter()
            .copied()
            .zip(row.iter().copied())
            .collect();
        pairs.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        pairs.truncate(k);
        pairs
    }

    /// The `k` least-authentic (most conspicuously absent) items.
    pub fn least_authentic(&self, cuisine: Cuisine, k: usize) -> Vec<(TokenId, f64)> {
        let row = self.row_of(cuisine);
        let mut pairs: Vec<(TokenId, f64)> = self
            .items
            .iter()
            .copied()
            .zip(row.iter().copied())
            .collect();
        pairs.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
        pairs.truncate(k);
        pairs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recipedb::generator::{CorpusGenerator, GeneratorConfig};

    fn db() -> RecipeDb {
        CorpusGenerator::new(GeneratorConfig::paper_scale(0.03).with_seed(3)).generate()
    }

    #[test]
    fn prevalence_rows_are_probabilities() {
        let m = AuthenticityMatrix::ingredients(&db());
        assert!(m.n_items() > 100);
        for row in &m.prevalence {
            assert!(row.iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
    }

    #[test]
    fn relative_prevalence_sums_to_zero_per_column() {
        // Σ_c (P_c − mean_{k≠c} P_k) = Σ_c P_c − Σ_c (T − P_c)/(n−1)
        //   = T − (nT − T)/(n−1) = 0.
        let m = AuthenticityMatrix::ingredients(&db());
        for j in (0..m.n_items()).step_by(97) {
            let s: f64 = m.relative.iter().map(|row| row[j]).sum();
            assert!(s.abs() < 1e-9, "column {j} sums to {s}");
        }
    }

    #[test]
    fn soy_sauce_is_most_authentic_to_east_asia() {
        let db = db();
        let m = AuthenticityMatrix::ingredients(&db);
        let soy = db.catalog().token_of(recipedb::Item::Ingredient(
            db.catalog().ingredient("soy sauce").unwrap(),
        ));
        let col = m.items.iter().position(|&t| t == soy).expect("soy column");
        let jp = m.relative[Cuisine::Japanese.index()][col];
        let uk = m.relative[Cuisine::UK.index()][col];
        assert!(jp > 0.3, "soy authentic to Japan, got {jp}");
        assert!(uk < 0.0, "soy counter-authentic to UK, got {uk}");
        // And it shows up in Japan's top-5 fingerprint.
        let top: Vec<TokenId> = m
            .most_authentic(Cuisine::Japanese, 5)
            .into_iter()
            .map(|(t, _)| t)
            .collect();
        assert!(top.contains(&soy));
    }

    #[test]
    fn least_authentic_is_negative_for_signature_items_elsewhere() {
        let db = db();
        let m = AuthenticityMatrix::ingredients(&db);
        let least = m.least_authentic(Cuisine::UK, 10);
        assert!(least.iter().all(|&(_, v)| v < 0.0));
    }

    #[test]
    fn corpus_wide_normalizer_scales_down_small_cuisines() {
        let db = db();
        let per = AuthenticityMatrix::with_normalizer(
            &db,
            &[ItemKind::Ingredient],
            Normalizer::PerCuisine,
        );
        let corpus = AuthenticityMatrix::with_normalizer(
            &db,
            &[ItemKind::Ingredient],
            Normalizer::CorpusWide,
        );
        // Corpus-wide prevalence never exceeds per-cuisine prevalence.
        for (rp, rc) in per.prevalence.iter().zip(&corpus.prevalence) {
            for (&p, &c) in rp.iter().zip(rc) {
                assert!(c <= p + 1e-12);
            }
        }
    }

    #[test]
    fn over_all_cuisines_is_identical_to_unrestricted() {
        let db = db();
        let full = AuthenticityMatrix::ingredients(&db);
        let over = AuthenticityMatrix::ingredients_over(&db, &Cuisine::ALL);
        assert_eq!(full.items, over.items);
        assert_eq!(full.prevalence, over.prevalence);
        assert_eq!(full.relative, over.relative);
        assert_eq!(
            over.index_of(Cuisine::Japanese),
            Some(Cuisine::Japanese.index())
        );
    }

    #[test]
    fn single_cuisine_matrix_has_finite_relative_prevalence() {
        // One cuisine means no "other cuisines" to average over; relative
        // prevalence must degrade to prevalence, never divide by zero.
        let mut b = recipedb::store::RecipeDbBuilder::new();
        let s = b.catalog_mut().intern_ingredient("salt");
        b.add_recipe("r", Cuisine::UK, vec![s], vec![], vec![]);
        let db = b.build().unwrap();
        let m = AuthenticityMatrix::ingredients_over(&db, &[Cuisine::UK]);
        assert_eq!(m.cuisines, vec![Cuisine::UK]);
        assert!(m.relative.iter().flatten().all(|v| v.is_finite()));
        assert_eq!(m.fingerprint(Cuisine::UK), m.prevalence[0].as_slice());
        assert_eq!(m.index_of(Cuisine::Thai), None);
    }

    #[test]
    fn kinds_filter_restricts_columns() {
        let db = db();
        let ing = AuthenticityMatrix::ingredients(&db);
        let all = AuthenticityMatrix::with_normalizer(
            &db,
            &[ItemKind::Ingredient, ItemKind::Process, ItemKind::Utensil],
            Normalizer::PerCuisine,
        );
        assert!(all.n_items() > ing.n_items());
        for &tok in &ing.items {
            assert_eq!(
                db.catalog().kind_of(tok),
                Some(ItemKind::Ingredient),
                "non-ingredient leaked into ingredient matrix"
            );
        }
    }
}
