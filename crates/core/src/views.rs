//! Serializable JSON views of the paper artifacts.
//!
//! Every consumer that emits machine-readable output — the `atlas-server`
//! endpoints and `repro --json` alike — goes through these types instead
//! of hand-formatting, so the wire format is defined once. Views are
//! plain data (`String` cuisine names, flat merge lists) rather than the
//! internal id-heavy structures, and they round-trip through
//! `serde_json`.

use clustering::dendrogram::Node;
use recipedb::Cuisine;
use serde::{Deserialize, Serialize};

use crate::authenticity::AuthenticityMatrix;
use crate::compare::{GeoAgreement, HistoricalClaims};
use crate::pipeline::{CuisineTree, Table1, Table1Row};

/// One agglomerative merge, scipy `Z`-matrix semantics: `a` and `b` are
/// node ids where ids `0..n_leaves` are leaves and `n_leaves + t` is the
/// cluster created by merge `t`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MergeView {
    /// First merged node id.
    pub a: usize,
    /// Second merged node id.
    pub b: usize,
    /// Merge height (cophenetic distance of the joined clusters).
    pub height: f64,
    /// Leaves under the new cluster.
    pub size: usize,
}

/// A cuisine dendrogram as Newick plus an explicit merge list.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TreeView {
    /// What the tree was built from, e.g. `patterns/euclidean/average`.
    pub description: String,
    /// Number of leaves (26 for the paper's trees).
    pub n_leaves: usize,
    /// Cuisine names in dendrogram display order.
    pub leaves: Vec<String>,
    /// The tree in Newick format with branch lengths.
    pub newick: String,
    /// The merge sequence, heights ascending for monotone linkages.
    pub merges: Vec<MergeView>,
    /// Height of the root merge.
    pub max_height: f64,
}

impl TreeView {
    /// Project a [`CuisineTree`] to its wire form.
    pub fn from_tree(tree: &CuisineTree) -> Self {
        let d = &tree.dendrogram;
        let n = d.n_leaves();
        let merges = (n..n + n.saturating_sub(1))
            .map(|id| match *d.node(id) {
                Node::Internal {
                    left,
                    right,
                    height,
                    count,
                } => MergeView {
                    a: left,
                    b: right,
                    height,
                    size: count,
                },
                Node::Leaf { .. } => unreachable!("arena ids >= n_leaves are merges"),
            })
            .collect();
        // Labels must match the tree's own leaf list — a subset-corpus
        // tree has fewer than 26 leaves.
        let labels: Vec<String> = tree.cuisines.iter().map(|c| c.name().to_string()).collect();
        TreeView {
            description: tree.description.clone(),
            n_leaves: n,
            leaves: tree
                .leaf_cuisines()
                .iter()
                .map(|c| c.name().to_string())
                .collect(),
            newick: d.to_newick(&labels),
            merges,
            max_height: d.max_height(),
        }
    }
}

/// One significant pattern of a Table I row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PatternView {
    /// Canonical `a+b+c` pattern string (sorted item names).
    pub pattern: String,
    /// Relative support within the cuisine.
    pub support: f64,
    /// Number of items in the pattern.
    pub len: usize,
}

/// One row of Table I.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table1RowView {
    /// Region name.
    pub cuisine: String,
    /// Recipes mined.
    pub n_recipes: usize,
    /// Frequent patterns at the support threshold.
    pub pattern_count: usize,
    /// Top significant patterns, best first.
    pub top_patterns: Vec<PatternView>,
}

/// The full Table I report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table1View {
    /// Support threshold used for mining.
    pub min_support: f64,
    /// One row per cuisine, Table I order.
    pub rows: Vec<Table1RowView>,
}

impl Table1View {
    /// Project a [`Table1`] to its wire form.
    pub fn from_table(t: &Table1) -> Self {
        Table1View {
            min_support: t.min_support,
            rows: t.rows.iter().map(Table1RowView::from_row).collect(),
        }
    }
}

impl Table1RowView {
    fn from_row(r: &Table1Row) -> Self {
        Table1RowView {
            cuisine: r.cuisine.name().to_string(),
            n_recipes: r.n_recipes,
            pattern_count: r.pattern_count,
            top_patterns: r
                .top_patterns
                .iter()
                .map(|p| PatternView {
                    pattern: p.pattern.clone(),
                    support: p.support,
                    len: p.len,
                })
                .collect(),
        }
    }
}

/// One scored ingredient of an authenticity fingerprint.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AuthenticityEntry {
    /// Ingredient display name.
    pub item: String,
    /// Relative prevalence score (higher = more authentic).
    pub score: f64,
}

/// A cuisine's authenticity fingerprint, reduced to its extreme items
/// (the full vector spans the whole ingredient universe).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FingerprintView {
    /// Region name.
    pub cuisine: String,
    /// Dimensionality of the full fingerprint vector.
    pub n_items: usize,
    /// Top-`k` most authentic ingredients, best first.
    pub most_authentic: Vec<AuthenticityEntry>,
    /// Bottom-`k` least authentic (most borrowed) ingredients.
    pub least_authentic: Vec<AuthenticityEntry>,
}

impl FingerprintView {
    /// Project one cuisine's fingerprint, keeping `k` items per extreme.
    pub fn from_matrix(
        matrix: &AuthenticityMatrix,
        db: &recipedb::RecipeDb,
        cuisine: Cuisine,
        k: usize,
    ) -> Self {
        let name_of = |t: recipedb::catalog::TokenId| {
            db.catalog()
                .token_name(t)
                .unwrap_or("<unknown>")
                .to_string()
        };
        FingerprintView {
            cuisine: cuisine.name().to_string(),
            n_items: matrix.fingerprint(cuisine).len(),
            most_authentic: matrix
                .most_authentic(cuisine, k)
                .into_iter()
                .map(|(t, score)| AuthenticityEntry {
                    item: name_of(t),
                    score,
                })
                .collect(),
            least_authentic: matrix
                .least_authentic(cuisine, k)
                .into_iter()
                .map(|(t, score)| AuthenticityEntry {
                    item: name_of(t),
                    score,
                })
                .collect(),
        }
    }
}

/// The k-means elbow curve (Figure 1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ElbowView {
    /// Largest k evaluated.
    pub k_max: usize,
    /// Seed of the k-means restarts.
    pub seed: u64,
    /// WCSS for k = 1..=k_max.
    pub wcss: Vec<f64>,
}

/// A tree's agreement with geography plus the paper's historical claims
/// (Section VII).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AgreementView {
    /// Description of the scored tree.
    pub tree: String,
    /// Pearson correlation of cophenetic vs geographic distances.
    pub cophenetic_vs_geo: f64,
    /// Baker's gamma against the geographic dendrogram.
    pub bakers_gamma: f64,
    /// Canada joins France below Canada–US.
    pub canada_closer_to_france_than_us: bool,
    /// India joins Northern Africa below its geographic neighbours.
    pub india_closer_to_north_africa_than_neighbors: bool,
    /// Cophenetic evidence: (ca–fr, ca–us, in–nafr, in–thai, in–sea).
    pub evidence: [f64; 5],
}

impl AgreementView {
    /// Combine an agreement score and claims check into one wire record.
    pub fn from_parts(agreement: &GeoAgreement, claims: &HistoricalClaims) -> Self {
        AgreementView {
            tree: agreement.tree.clone(),
            cophenetic_vs_geo: agreement.cophenetic_vs_geo,
            bakers_gamma: agreement.bakers_gamma,
            canada_closer_to_france_than_us: claims.canada_closer_to_france_than_us,
            india_closer_to_north_africa_than_neighbors: claims
                .india_closer_to_north_africa_than_neighbors,
            evidence: claims.evidence,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compare::{geo_agreement, historical_claims};
    use clustering::Metric;

    fn atlas() -> &'static crate::pipeline::CuisineAtlas {
        crate::testutil::shared_atlas()
    }

    #[test]
    fn tree_view_roundtrips_and_matches_tree() {
        let tree = atlas().pattern_tree(Metric::Euclidean);
        let view = TreeView::from_tree(&tree);
        assert_eq!(view.n_leaves, 26);
        assert_eq!(view.leaves.len(), 26);
        assert_eq!(view.merges.len(), 25);
        assert_eq!(view.merges.last().unwrap().size, 26);
        assert!(view.newick.ends_with(';'));
        for c in Cuisine::ALL {
            // Newick export replaces metacharacters in labels with `_`.
            let label = c.name().replace([' ', ','], "_");
            assert!(view.newick.contains(&label), "newick missing {c}");
        }
        assert!((view.max_height - tree.dendrogram.max_height()).abs() < 1e-12);

        let json = serde_json::to_string(&view).unwrap();
        let back: TreeView = serde_json::from_str(&json).unwrap();
        assert_eq!(back, view);
    }

    #[test]
    fn table1_view_roundtrips() {
        let view = Table1View::from_table(&atlas().table1());
        assert_eq!(view.rows.len(), 26);
        assert!(view.rows.iter().all(|r| !r.top_patterns.is_empty()));
        let json = serde_json::to_string_pretty(&view).unwrap();
        let back: Table1View = serde_json::from_str(&json).unwrap();
        assert_eq!(back, view);
    }

    #[test]
    fn fingerprint_view_roundtrips_with_named_items() {
        let a = atlas();
        let m = a.authenticity_matrix();
        let view = FingerprintView::from_matrix(&m, a.db(), Cuisine::Japanese, 5);
        assert_eq!(view.cuisine, "Japanese");
        assert_eq!(view.most_authentic.len(), 5);
        assert_eq!(view.least_authentic.len(), 5);
        assert!(view.n_items > 0);
        assert!(view.most_authentic.iter().all(|e| e.item != "<unknown>"));
        // Scores sorted best-first.
        for w in view.most_authentic.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
        let json = serde_json::to_string(&view).unwrap();
        let back: FingerprintView = serde_json::from_str(&json).unwrap();
        assert_eq!(back, view);
    }

    #[test]
    fn agreement_and_elbow_views_roundtrip() {
        let a = atlas();
        let geo = a.geographic_tree();
        let tree = a.authenticity_tree();
        let view =
            AgreementView::from_parts(&geo_agreement(&tree, &geo), &historical_claims(&tree));
        let json = serde_json::to_string(&view).unwrap();
        let back: AgreementView = serde_json::from_str(&json).unwrap();
        assert_eq!(back, view);

        let elbow = ElbowView {
            k_max: 8,
            seed: 5,
            wcss: a.elbow_curve(8, 5),
        };
        assert_eq!(elbow.wcss.len(), 8);
        let json = serde_json::to_string(&elbow).unwrap();
        let back: ElbowView = serde_json::from_str(&json).unwrap();
        assert_eq!(back, elbow);
    }

    #[test]
    fn missing_fields_are_rejected() {
        assert!(serde_json::from_str::<TreeView>("{}").is_err());
        assert!(serde_json::from_str::<Table1View>(r#"{"min_support":0.2}"#).is_err());
    }
}
