//! Per-cuisine frequent-pattern mining and the Table I significant-pattern
//! report.
//!
//! The paper runs FP-Growth per cuisine at support 0.2 over each recipe's
//! concatenated ingredients/processes/utensils, then reports the "topmost
//! significant patterns" per cuisine. Its Table I rows are clearly not the
//! raw highest-support itemsets (those would all be generic `salt`/`add`
//! combinations — the paper itself notes the mined patterns are "highly
//! skewed" towards such items). We make the selection rule explicit and
//! reproducible:
//!
//! * a pattern is **significant** if it is *closed* (no superset with equal
//!   support — collapses the subset lattice of each signature bundle onto
//!   the bundle itself) and contains at least one **distinctive** item;
//! * an item is *distinctive* if it clears the support threshold in fewer
//!   than half of the cuisines (`salt`, `add`, `heat`, ... are thereby
//!   generic, matching the paper's remark).

use std::collections::{HashMap, HashSet};

use pattern_mining::filter::closed;
use pattern_mining::fpgrowth::FpGrowth;
use pattern_mining::itemset::FrequentItemset;
use pattern_mining::parallel::ParallelFpGrowth;
use pattern_mining::transaction::TransactionDb;
use pattern_mining::Miner;
use recipedb::catalog::TokenId;
use recipedb::{Cuisine, RecipeDb};

/// Cuisines with at least this many recipes additionally split their own
/// FP-Growth run across threads (the per-cuisine fan-out alone leaves the
/// largest conditional trees of a huge cuisine as the critical path).
const LARGE_CUISINE_RECIPES: usize = 4096;
/// Inner-thread cap for one large cuisine's [`ParallelFpGrowth`].
const MAX_INNER_MINE_THREADS: usize = 4;

/// The mined frequent itemsets of one cuisine.
#[derive(Debug, Clone)]
pub struct CuisinePatterns {
    /// Which cuisine.
    pub cuisine: Cuisine,
    /// Number of recipes mined.
    pub n_recipes: usize,
    /// Every frequent itemset at the configured support (token-id space).
    pub itemsets: Vec<FrequentItemset>,
}

impl CuisinePatterns {
    /// Mine one cuisine from the corpus with FP-Growth.
    pub fn mine(db: &RecipeDb, cuisine: Cuisine, min_support: f64) -> Self {
        Self::mine_with_threads(db, cuisine, min_support, 1)
    }

    /// Mine one cuisine, splitting the FP-Growth conditional-tree work
    /// across `threads` workers when `threads > 1`. The parallel miner
    /// reproduces the sequential miner's output exactly (itemsets, counts
    /// *and* order), so results never depend on the thread count.
    pub fn mine_with_threads(
        db: &RecipeDb,
        cuisine: Cuisine,
        min_support: f64,
        threads: usize,
    ) -> Self {
        let rows: Vec<Vec<u32>> = db
            .transactions_for(cuisine)
            .into_iter()
            .map(|tx| tx.into_iter().map(|t| t.0).collect())
            .collect();
        let n_recipes = rows.len();
        let tdb = TransactionDb::from_rows(rows);
        let itemsets = if n_recipes == 0 {
            Vec::new()
        } else if threads > 1 {
            ParallelFpGrowth::new(min_support, threads).mine(&tdb)
        } else {
            FpGrowth::new(min_support).mine(&tdb)
        };
        CuisinePatterns {
            cuisine,
            n_recipes,
            itemsets,
        }
    }

    /// Number of frequent patterns (the Table I "Number of patterns"
    /// column).
    pub fn pattern_count(&self) -> usize {
        self.itemsets.len()
    }

    /// The canonical "string pattern" of an itemset: sorted item display
    /// names joined with `+` (the paper's string canonicalisation).
    pub fn pattern_string(db: &RecipeDb, itemset: &FrequentItemset) -> String {
        let mut names: Vec<&str> = itemset
            .items
            .items()
            .iter()
            .filter_map(|&t| db.catalog().token_name(TokenId(t)))
            .collect();
        names.sort_unstable();
        names.join("+")
    }

    /// All pattern strings of this cuisine.
    pub fn pattern_strings(&self, db: &RecipeDb) -> Vec<String> {
        self.itemsets
            .iter()
            .map(|f| Self::pattern_string(db, f))
            .collect()
    }
}

/// Mine every cuisine in Table I order.
pub fn mine_all(db: &RecipeDb, min_support: f64) -> Vec<CuisinePatterns> {
    mine_all_threads(db, min_support, 1)
}

/// [`mine_all_threads`] with per-cuisine wall-clock spans
/// (`mine/Italian`, ...) reported to `sink` as each cuisine finishes.
/// Timing is observation only — output is identical to [`mine_all`].
pub fn mine_all_threads_observed(
    db: &RecipeDb,
    min_support: f64,
    threads: usize,
    sink: &dyn crate::pipeline::SpanSink,
) -> Vec<CuisinePatterns> {
    mine_cuisines_threads_observed(db, &Cuisine::ALL, min_support, threads, sink)
}

/// Mine an explicit cuisine list (results in list order) — the entry
/// point for uploaded corpora that may cover only a subset of the 26
/// cuisines. With `cuisines == Cuisine::ALL` this is exactly
/// [`mine_all_threads_observed`].
pub fn mine_cuisines_threads_observed(
    db: &RecipeDb,
    cuisines: &[Cuisine],
    min_support: f64,
    threads: usize,
    sink: &dyn crate::pipeline::SpanSink,
) -> Vec<CuisinePatterns> {
    let mine_one = |cuisine: Cuisine, inner: usize| {
        let (mined, _) =
            crate::pipeline::spanned(sink, &format!("mine/{}", cuisine.name()), || {
                CuisinePatterns::mine_with_threads(db, cuisine, min_support, inner)
            });
        mined
    };
    if threads <= 1 {
        return cuisines.iter().map(|&c| mine_one(c, 1)).collect();
    }
    let costs: Vec<u64> = cuisines.iter().map(|&c| db.recipes_in(c) as u64).collect();
    let claim_order = par::descending_cost_order(&costs);
    par::map_claiming(threads, &claim_order, |i| {
        let cuisine = cuisines[i];
        let inner = if db.recipes_in(cuisine) >= LARGE_CUISINE_RECIPES {
            threads.min(MAX_INNER_MINE_THREADS)
        } else {
            1
        };
        mine_one(cuisine, inner)
    })
}

/// Mine every cuisine in Table I order, fanned out over `threads`
/// workers. Cuisines are claimed largest-first (recipe counts span
/// Korean's 668 to Italian's 16k at full scale), and cuisines above
/// [`LARGE_CUISINE_RECIPES`] recipes additionally run the multi-threaded
/// FP-Growth so the biggest mining job cannot dominate the critical path.
/// Output is identical to [`mine_all`] for any thread count.
pub fn mine_all_threads(db: &RecipeDb, min_support: f64, threads: usize) -> Vec<CuisinePatterns> {
    mine_all_threads_observed(db, min_support, threads, &crate::pipeline::NullSink)
}

/// Items that clear the support threshold in at least
/// `generic_fraction × n_cuisines` cuisines — the "generic" stop-set
/// (`salt`, `onion`-level ubiquity). Computed from the mined singletons.
pub fn generic_items(all: &[CuisinePatterns], generic_fraction: f64) -> HashSet<u32> {
    let mut cuisine_hits: HashMap<u32, usize> = HashMap::new();
    for cp in all {
        for f in cp.itemsets.iter().filter(|f| f.items.len() == 1) {
            *cuisine_hits.entry(f.items.items()[0]).or_insert(0) += 1;
        }
    }
    let cutoff = (generic_fraction * all.len() as f64).ceil() as usize;
    cuisine_hits
        .into_iter()
        .filter(|&(_, hits)| hits >= cutoff)
        .map(|(item, _)| item)
        .collect()
}

/// A significant pattern surfaced for Table I.
#[derive(Debug, Clone)]
pub struct SignificantPattern {
    /// The canonical pattern string.
    pub pattern: String,
    /// Relative support within the cuisine.
    pub support: f64,
    /// Number of items in the pattern.
    pub len: usize,
}

/// Select the top-`k` significant patterns of one cuisine: closed frequent
/// itemsets containing at least one non-generic item, ranked by support
/// (ties: longer first, then lexicographic).
pub fn significant_patterns(
    db: &RecipeDb,
    cp: &CuisinePatterns,
    generic: &HashSet<u32>,
    k: usize,
) -> Vec<SignificantPattern> {
    let closed_sets = closed(&cp.itemsets);
    let mut candidates: Vec<SignificantPattern> = closed_sets
        .iter()
        .filter(|f| f.items.items().iter().any(|i| !generic.contains(i)))
        .map(|f| SignificantPattern {
            pattern: CuisinePatterns::pattern_string(db, f),
            support: f.support(cp.n_recipes),
            len: f.items.len(),
        })
        .collect();
    candidates.sort_by(|a, b| {
        b.support
            .partial_cmp(&a.support)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(b.len.cmp(&a.len))
            .then(a.pattern.cmp(&b.pattern))
    });
    candidates.truncate(k);
    candidates
}

#[cfg(test)]
mod tests {
    use super::*;
    use recipedb::generator::{CorpusGenerator, GeneratorConfig};

    fn small_db() -> RecipeDb {
        let mut cfg = GeneratorConfig::paper_scale(0.03).with_seed(1);
        cfg.min_recipes_per_cuisine = 150;
        CorpusGenerator::new(cfg).generate()
    }

    #[test]
    fn mining_every_cuisine_produces_patterns() {
        let db = small_db();
        let all = mine_all(&db, 0.2);
        assert_eq!(all.len(), 26);
        for cp in &all {
            assert!(cp.n_recipes > 0, "{}", cp.cuisine);
            assert!(
                cp.pattern_count() >= 10,
                "{}: only {} patterns",
                cp.cuisine,
                cp.pattern_count()
            );
            assert!(
                cp.pattern_count() <= 400,
                "{}: pattern explosion: {}",
                cp.cuisine,
                cp.pattern_count()
            );
        }
    }

    #[test]
    fn mine_all_threads_is_identical_to_sequential() {
        let db = small_db();
        let seq = mine_all(&db, 0.2);
        for threads in [2, 8] {
            let par = mine_all_threads(&db, 0.2, threads);
            assert_eq!(seq.len(), par.len());
            for (a, b) in seq.iter().zip(&par) {
                assert_eq!(a.cuisine, b.cuisine);
                assert_eq!(a.n_recipes, b.n_recipes);
                assert_eq!(a.itemsets, b.itemsets, "{}: threads {threads}", a.cuisine);
            }
        }
    }

    #[test]
    fn pattern_strings_are_sorted_plus_joined() {
        let db = small_db();
        let cp = CuisinePatterns::mine(&db, Cuisine::Japanese, 0.2);
        for (f, s) in cp.itemsets.iter().zip(cp.pattern_strings(&db)) {
            assert_eq!(s.split('+').count(), f.items.len());
            let parts: Vec<&str> = s.split('+').collect();
            let mut sorted = parts.clone();
            sorted.sort_unstable();
            assert_eq!(parts, sorted, "pattern string must be sorted: {s}");
        }
    }

    #[test]
    fn generic_items_include_salt_and_add() {
        let db = small_db();
        let all = mine_all(&db, 0.2);
        let generic = generic_items(&all, 0.5);
        let salt = db.catalog().token_of(recipedb::Item::Ingredient(
            db.catalog().ingredient("salt").unwrap(),
        ));
        let add = db.catalog().token_of(recipedb::Item::Process(
            db.catalog().process("add").unwrap(),
        ));
        assert!(generic.contains(&salt.0), "salt must be generic");
        assert!(generic.contains(&add.0), "add must be generic");
        // Soy sauce is frequent only in the Asian block -> distinctive.
        let soy = db.catalog().token_of(recipedb::Item::Ingredient(
            db.catalog().ingredient("soy sauce").unwrap(),
        ));
        assert!(!generic.contains(&soy.0), "soy sauce must be distinctive");
    }

    #[test]
    fn japanese_top_pattern_is_soy_sauce() {
        let db = small_db();
        let all = mine_all(&db, 0.2);
        let generic = generic_items(&all, 0.5);
        let jp = &all[Cuisine::Japanese.index()];
        let top = significant_patterns(&db, jp, &generic, 3);
        assert!(!top.is_empty());
        assert_eq!(top[0].pattern, "soy sauce", "got {:?}", top);
        assert!(
            (top[0].support - 0.45).abs() < 0.08,
            "support {}",
            top[0].support
        );
    }

    #[test]
    fn empty_cuisine_is_handled() {
        // A hand-built corpus with a single cuisine leaves others empty.
        let mut b = recipedb::store::RecipeDbBuilder::new();
        let s = b.catalog_mut().intern_ingredient("salt");
        b.add_recipe("r", Cuisine::UK, vec![s], vec![], vec![]);
        let db = b.build().unwrap();
        let cp = CuisinePatterns::mine(&db, Cuisine::Thai, 0.2);
        assert_eq!(cp.n_recipes, 0);
        assert!(cp.itemsets.is_empty());
        assert!(significant_patterns(&db, &cp, &HashSet::new(), 3).is_empty());
    }
}
