//! Deterministic scoped parallelism for the workspace.
//!
//! Every parallel stage of the atlas build — corpus generation, per-cuisine
//! mining, pairwise-distance rows, elbow-sweep k values — is a *map over an
//! index range* whose per-index results are pure functions of the index.
//! This crate provides exactly that shape on crossbeam scoped threads:
//!
//! * results come back **in index order** regardless of which worker
//!   computed what, so a parallel map is drop-in byte-identical to its
//!   sequential counterpart;
//! * workers **claim indices from a shared atomic counter**, optionally
//!   through a caller-supplied priority order so the costliest indices
//!   start first (longest-processing-time-first scheduling — the claim
//!   order changes wall-clock, never results);
//! * `threads <= 1` (or a single index) short-circuits to a plain
//!   sequential loop with no thread spawns at all.
//!
//! The scheduling guarantee callers rely on: **the output of [`map`] and
//! [`map_claiming`] depends only on `f` and the index range, never on the
//! thread count or the claim order.**

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicUsize, Ordering};

/// The machine's available parallelism (1 when it cannot be determined).
pub fn available() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Resolve a user-facing thread knob: `0` means "use all available
/// parallelism", anything else is taken as-is (minimum 1).
pub fn resolve(requested: usize) -> usize {
    if requested == 0 {
        available()
    } else {
        requested
    }
}

/// Parallel map over `0..n`: returns `[f(0), f(1), ..., f(n-1)]` in index
/// order. Indices are claimed ascending; see [`map_claiming`] to start the
/// costliest indices first.
pub fn map<T, F>(threads: usize, n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let order: Vec<usize> = (0..n).collect();
    map_claiming(threads, &order, f)
}

/// Parallel map over the index set in `claim_order` (a permutation of
/// `0..n`): workers claim positions of `claim_order` from an atomic
/// counter, so earlier entries start first, but the returned vector is
/// always `[f(0), ..., f(n-1)]` in index order — identical to the
/// sequential result for any thread count and any claim order.
///
/// # Panics
/// If `claim_order` is not a permutation of `0..claim_order.len()`, or a
/// worker panics (the panic is propagated).
pub fn map_claiming<T, F>(threads: usize, claim_order: &[usize], f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let n = claim_order.len();
    // Validate before spawning anything, so a bad claim order panics on
    // the calling thread with a diagnosable message instead of surfacing
    // as a wrapped worker/scope panic.
    let mut seen = vec![false; n];
    for &idx in claim_order {
        assert!(
            idx < n && !std::mem::replace(&mut seen[idx], true),
            "claim_order must be a permutation of 0..{n}"
        );
    }
    let threads = threads.max(1).min(n.max(1));
    if threads <= 1 || n <= 1 {
        // Sequential fast path: index order (the claim order is a
        // scheduling hint only and must not affect results).
        return (0..n).map(f).collect();
    }

    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
    crossbeam::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let next = &next;
                let f = &f;
                scope.spawn(move |_| {
                    let mut local: Vec<(usize, T)> = Vec::new();
                    loop {
                        let pos = next.fetch_add(1, Ordering::Relaxed);
                        if pos >= n {
                            break;
                        }
                        let idx = claim_order[pos];
                        local.push((idx, f(idx)));
                    }
                    local
                })
            })
            .collect();
        for handle in handles {
            for (idx, value) in handle.join().expect("par worker panicked") {
                debug_assert!(slots[idx].is_none(), "index {idx} claimed twice");
                slots[idx] = Some(value);
            }
        }
    })
    .expect("par scope panicked");

    slots
        .into_iter()
        .map(|s| s.expect("claim_order must cover every index"))
        .collect()
}

/// Indices `0..costs.len()` sorted by descending cost (ties by ascending
/// index): the canonical claim order for [`map_claiming`] when per-index
/// costs are known or estimable.
pub fn descending_cost_order<C: Ord + Copy>(costs: &[C]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..costs.len()).collect();
    order.sort_by(|&a, &b| costs[b].cmp(&costs[a]).then(a.cmp(&b)));
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn map_returns_index_order_for_any_thread_count() {
        let expect: Vec<usize> = (0..37).map(|i| i * i).collect();
        for threads in [0, 1, 2, 3, 8, 64] {
            assert_eq!(map(threads, 37, |i| i * i), expect, "threads={threads}");
        }
    }

    #[test]
    fn claim_order_never_changes_results() {
        let reversed: Vec<usize> = (0..20).rev().collect();
        let expect: Vec<usize> = (0..20).map(|i| i + 100).collect();
        for threads in [1, 2, 7] {
            assert_eq!(map_claiming(threads, &reversed, |i| i + 100), expect);
        }
    }

    #[test]
    fn every_index_runs_exactly_once() {
        let calls = AtomicUsize::new(0);
        let out = map(4, 100, |i| {
            calls.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(out.len(), 100);
        assert_eq!(calls.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn empty_and_single_inputs() {
        assert!(map(4, 0, |i| i).is_empty());
        assert_eq!(map(4, 1, |i| i + 1), vec![1]);
    }

    #[test]
    fn descending_cost_order_sorts_with_stable_ties() {
        assert_eq!(descending_cost_order(&[3u64, 9, 1, 9]), vec![1, 3, 0, 2]);
        assert!(descending_cost_order::<u64>(&[]).is_empty());
    }

    #[test]
    fn resolve_zero_means_available() {
        assert_eq!(resolve(0), available());
        assert_eq!(resolve(5), 5);
        assert!(available() >= 1);
    }

    #[test]
    #[should_panic(expected = "permutation")]
    fn duplicate_claim_indices_rejected() {
        let _ = map_claiming(2, &[0, 0, 1], |i| i);
    }
}
