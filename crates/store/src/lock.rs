//! Advisory cross-process locking for the snapshot store.
//!
//! Two `atlas-serve` processes pointed at one `--data-dir` must not
//! race a persist's commit rename against a sibling's evicting unlink.
//! The store serializes its *mutations* (persist, evict, quarantine,
//! remove) behind a short-held write lock: a `store.lock` file in the
//! store root, acquired with `O_CREAT|O_EXCL` semantics
//! (`OpenOptions::create_new`) — the one atomic "create if absent"
//! primitive std exposes on every platform without vendoring libc for
//! `flock(2)`. The read path never takes it (readers tolerate renames
//! because they are atomic, and tolerate unlinks by degrading to a
//! rebuild), and read-only stores never create it at all.
//!
//! The lock file records its owner — `{pid, boot_id, acquired_at}` —
//! so a lock abandoned by a crashed process can be detected and broken:
//! an owner whose pid no longer exists (or whose boot id is from a
//! previous boot, so its pid is meaningless) is stale. Breaking renames
//! the lock file aside before unlinking it, so when two processes
//! decide to break the same stale lock, exactly one rename wins and the
//! loser simply retries acquisition; a freshly re-acquired lock is
//! never unlinked by a slow breaker. Every break is counted
//! ([`StoreLock::steals`]) and surfaced through `/metrics`.

use std::fs::{self, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

/// The lock file's name inside the store root.
pub const LOCK_FILE: &str = "store.lock";

/// How long an acquirer sleeps between attempts while the lock is held.
const POLL: Duration = Duration::from_millis(2);

/// A lock file that cannot be parsed (a crash between creating it and
/// writing the owner record) is treated as stale once older than this.
const UNPARSABLE_GRACE: Duration = Duration::from_secs(1);

/// The owner record inside a lock file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockOwner {
    /// The owning process id.
    pub pid: u32,
    /// The boot id the owner was running under (`"unknown"` where the
    /// platform offers none).
    pub boot_id: String,
    /// When the lock was acquired, in Unix milliseconds.
    pub acquired_at_ms: u64,
}

impl LockOwner {
    fn current() -> LockOwner {
        LockOwner {
            pid: std::process::id(),
            boot_id: current_boot_id(),
            acquired_at_ms: SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .map(|d| d.as_millis() as u64)
                .unwrap_or(0),
        }
    }

    fn render(&self) -> String {
        format!(
            "pid={}\nboot_id={}\nacquired_at_ms={}\n",
            self.pid, self.boot_id, self.acquired_at_ms
        )
    }

    fn parse(text: &str) -> Option<LockOwner> {
        let mut pid = None;
        let mut boot_id = None;
        let mut acquired_at_ms = None;
        for line in text.lines() {
            match line.split_once('=') {
                Some(("pid", v)) => pid = v.trim().parse().ok(),
                Some(("boot_id", v)) => boot_id = Some(v.trim().to_string()),
                Some(("acquired_at_ms", v)) => acquired_at_ms = v.trim().parse().ok(),
                _ => {}
            }
        }
        Some(LockOwner {
            pid: pid?,
            boot_id: boot_id?,
            acquired_at_ms: acquired_at_ms?,
        })
    }

    /// Whether this owner can no longer be holding the lock: it ran
    /// under a previous boot (its pid means nothing now), or its pid is
    /// dead on the current boot.
    fn is_stale(&self, current_boot: &str) -> bool {
        if self.boot_id != "unknown" && current_boot != "unknown" && self.boot_id != current_boot {
            return true;
        }
        !pid_alive(self.pid)
    }
}

/// The store's write lock: per-store, short-held, stale-breaking.
#[derive(Debug)]
pub struct StoreLock {
    path: PathBuf,
    timeout: Duration,
    boot_id: String,
    acquisitions: AtomicU64,
    steals: AtomicU64,
    contentions: AtomicU64,
    grave_seq: AtomicU64,
}

impl StoreLock {
    /// A lock handle for the store rooted at `root`. Nothing touches
    /// the filesystem until [`StoreLock::acquire`].
    pub fn new(root: &Path, timeout: Duration) -> StoreLock {
        StoreLock {
            path: root.join(LOCK_FILE),
            timeout,
            boot_id: current_boot_id(),
            acquisitions: AtomicU64::new(0),
            steals: AtomicU64::new(0),
            contentions: AtomicU64::new(0),
            grave_seq: AtomicU64::new(0),
        }
    }

    /// The lock file's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Successful acquisitions so far.
    pub fn acquisitions(&self) -> u64 {
        self.acquisitions.load(Ordering::Relaxed)
    }

    /// Stale locks broken (dead pid, previous boot, or unparsable past
    /// the grace period).
    pub fn steals(&self) -> u64 {
        self.steals.load(Ordering::Relaxed)
    }

    /// Acquisitions that found the lock live-held and had to wait.
    pub fn contentions(&self) -> u64 {
        self.contentions.load(Ordering::Relaxed)
    }

    /// Acquire the lock, breaking stale holders, waiting up to the
    /// configured timeout behind live ones. The returned guard unlinks
    /// the lock file on drop.
    pub fn acquire(&self) -> io::Result<LockGuard<'_>> {
        let deadline = Instant::now() + self.timeout;
        let mut contended = false;
        loop {
            match OpenOptions::new()
                .write(true)
                .create_new(true)
                .open(&self.path)
            {
                Ok(mut file) => {
                    // Owner record and fsync are best-effort: an
                    // unwritten lock file still excludes, it just
                    // ages into "unparsable ⇒ stale" if we die here.
                    let _ = file.write_all(LockOwner::current().render().as_bytes());
                    let _ = file.sync_all();
                    self.acquisitions.fetch_add(1, Ordering::Relaxed);
                    return Ok(LockGuard { lock: self });
                }
                Err(e) if e.kind() == io::ErrorKind::AlreadyExists => {
                    if self.try_break_stale() {
                        continue; // broken (or vanished) — retry immediately
                    }
                    if !contended {
                        contended = true;
                        self.contentions.fetch_add(1, Ordering::Relaxed);
                    }
                    if Instant::now() >= deadline {
                        let holder = fs::read_to_string(&self.path)
                            .ok()
                            .and_then(|t| LockOwner::parse(&t));
                        return Err(io::Error::new(
                            io::ErrorKind::TimedOut,
                            format!(
                                "store lock {} held by {holder:?} past the {:?} timeout",
                                self.path.display(),
                                self.timeout
                            ),
                        ));
                    }
                    std::thread::sleep(POLL);
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// If the current lock file is stale, break it. Returns `true` when
    /// the caller should retry `create_new` immediately (the lock was
    /// broken, already gone, or changed hands under us), `false` when a
    /// live owner holds it.
    fn try_break_stale(&self) -> bool {
        let Ok(raw) = fs::read(&self.path) else {
            return true; // vanished between create_new and read — retry
        };
        let stale = match LockOwner::parse(&String::from_utf8_lossy(&raw)) {
            Some(owner) => owner.is_stale(&self.boot_id),
            // No readable owner record: stale only once old enough that
            // a crash mid-create (not a racing writer) explains it.
            None => fs::metadata(&self.path)
                .and_then(|m| m.modified())
                .ok()
                .and_then(|m| SystemTime::now().duration_since(m).ok())
                .is_some_and(|age| age > UNPARSABLE_GRACE),
        };
        if !stale {
            return false;
        }
        // Re-read: if the file changed since we judged it stale, the
        // lock changed hands and our verdict is void.
        match fs::read(&self.path) {
            Ok(recheck) if recheck == raw => {}
            Ok(_) => return true,
            Err(_) => return true,
        }
        // Break by rename-then-unlink: of N processes breaking the same
        // stale lock, exactly one rename succeeds; the others see it
        // vanish and retry acquisition. Unlinking the renamed grave can
        // never hit a freshly re-acquired lock.
        let grave = self.path.with_file_name(format!(
            "{LOCK_FILE}.stale.{}.{}",
            std::process::id(),
            self.grave_seq.fetch_add(1, Ordering::Relaxed),
        ));
        if fs::rename(&self.path, &grave).is_ok() {
            let _ = fs::remove_file(&grave);
            self.steals.fetch_add(1, Ordering::Relaxed);
        }
        true
    }
}

/// Holds the store's write lock; unlinks the lock file on drop.
#[derive(Debug)]
pub struct LockGuard<'a> {
    lock: &'a StoreLock,
}

impl Drop for LockGuard<'_> {
    fn drop(&mut self) {
        let _ = fs::remove_file(&self.lock.path);
    }
}

/// Whether a pid currently exists. On Linux this is a `/proc` probe —
/// no syscall wrapper, no libc. Elsewhere pids are conservatively
/// assumed alive (locks there go stale only via boot-id mismatch or an
/// unparsable record), trading liveness for never breaking a live lock.
#[cfg(target_os = "linux")]
pub(crate) fn pid_alive(pid: u32) -> bool {
    Path::new("/proc").join(pid.to_string()).exists()
}

#[cfg(not(target_os = "linux"))]
pub(crate) fn pid_alive(_pid: u32) -> bool {
    true
}

/// The machine's boot id, so pids recorded before a reboot are never
/// mistaken for live processes that happen to share the number.
fn current_boot_id() -> String {
    fs::read_to_string("/proc/sys/kernel/random/boot_id")
        .ok()
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    static DIR_SEQ: AtomicUsize = AtomicUsize::new(0);

    struct Scratch(PathBuf);

    impl Scratch {
        fn new() -> Scratch {
            let dir = std::env::temp_dir().join(format!(
                "atlas-lock-test-{}-{}",
                std::process::id(),
                DIR_SEQ.fetch_add(1, Ordering::Relaxed)
            ));
            fs::create_dir_all(&dir).unwrap();
            Scratch(dir)
        }
    }

    impl Drop for Scratch {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.0);
        }
    }

    /// A pid that is guaranteed dead: a just-reaped child's.
    fn dead_pid() -> u32 {
        let mut child = std::process::Command::new("true")
            .spawn()
            .expect("spawn true");
        let pid = child.id();
        child.wait().expect("reap");
        pid
    }

    #[test]
    fn acquire_creates_the_lock_file_and_release_removes_it() {
        let scratch = Scratch::new();
        let lock = StoreLock::new(&scratch.0, Duration::from_secs(1));
        {
            let _guard = lock.acquire().unwrap();
            let text = fs::read_to_string(lock.path()).unwrap();
            let owner = LockOwner::parse(&text).expect("owner record");
            assert_eq!(owner.pid, std::process::id());
            assert!(owner.acquired_at_ms > 0);
        }
        assert!(!lock.path().exists(), "guard drop must unlink the lock");
        assert_eq!(lock.acquisitions(), 1);
        assert_eq!((lock.steals(), lock.contentions()), (0, 0));
    }

    #[test]
    fn contended_acquire_waits_for_the_live_holder() {
        let scratch = Scratch::new();
        // Leaked so the guard moved into the holder thread is 'static.
        let a: &'static StoreLock =
            Box::leak(Box::new(StoreLock::new(&scratch.0, Duration::from_secs(5))));
        let b = StoreLock::new(&scratch.0, Duration::from_secs(5));
        let guard = a.acquire().unwrap();
        let release = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(100));
            drop(guard);
        });
        let started = Instant::now();
        let _guard = b.acquire().unwrap();
        assert!(
            started.elapsed() >= Duration::from_millis(50),
            "must have waited for the holder"
        );
        assert_eq!(b.contentions(), 1);
        // steals()==0 proves the lock was released to us, never broken.
        assert_eq!(b.steals(), 0, "a live lock is never stolen");
        release.join().unwrap();
    }

    #[test]
    fn live_holder_times_out_other_acquirers() {
        let scratch = Scratch::new();
        let a = StoreLock::new(&scratch.0, Duration::from_secs(1));
        let b = StoreLock::new(&scratch.0, Duration::from_millis(60));
        let _guard = a.acquire().unwrap();
        let err = b.acquire().expect_err("must time out");
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
        assert!(
            err.to_string().contains(&std::process::id().to_string()),
            "timeout names the holder: {err}"
        );
        assert!(a.path().exists(), "the held lock must survive");
    }

    #[test]
    fn dead_pid_locks_are_broken_and_counted() {
        let scratch = Scratch::new();
        let lock = StoreLock::new(&scratch.0, Duration::from_millis(200));
        let stale = LockOwner {
            pid: dead_pid(),
            boot_id: current_boot_id(),
            acquired_at_ms: 1,
        };
        fs::write(lock.path(), stale.render()).unwrap();
        let _guard = lock.acquire().expect("stale lock must be broken");
        assert_eq!(lock.steals(), 1);
        assert_eq!(lock.acquisitions(), 1);
        let owner = LockOwner::parse(&fs::read_to_string(lock.path()).unwrap()).unwrap();
        assert_eq!(owner.pid, std::process::id());
    }

    #[test]
    fn previous_boot_locks_are_stale_even_with_a_live_pid() {
        let scratch = Scratch::new();
        let lock = StoreLock::new(&scratch.0, Duration::from_millis(200));
        let stale = LockOwner {
            pid: std::process::id(), // alive — but from "another boot"
            boot_id: "not-this-boot".to_string(),
            acquired_at_ms: 1,
        };
        fs::write(lock.path(), stale.render()).unwrap();
        if current_boot_id() == "unknown" {
            return; // platform without boot ids: rule can't apply
        }
        let _guard = lock.acquire().expect("cross-boot lock must be broken");
        assert_eq!(lock.steals(), 1);
    }

    #[test]
    fn unparsable_lock_files_break_only_after_the_grace_period() {
        let scratch = Scratch::new();
        let lock = StoreLock::new(&scratch.0, Duration::from_millis(60));
        fs::write(lock.path(), b"garbage").unwrap();
        // Fresh garbage could be a racing writer mid-create: wait.
        let err = lock.acquire().expect_err("fresh unparsable file holds");
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
        // Age the file past the grace period; now it is a crash residue.
        let old = SystemTime::now() - (UNPARSABLE_GRACE + Duration::from_secs(1));
        fs::File::options()
            .write(true)
            .open(lock.path())
            .unwrap()
            .set_modified(old)
            .unwrap();
        let _guard = lock.acquire().expect("aged unparsable file is stale");
        assert_eq!(lock.steals(), 1);
    }

    #[test]
    fn owner_record_round_trips() {
        let owner = LockOwner {
            pid: 4242,
            boot_id: "b00t-1d".to_string(),
            acquired_at_ms: 1_700_000_000_000,
        };
        assert_eq!(LockOwner::parse(&owner.render()), Some(owner));
        assert_eq!(LockOwner::parse(""), None);
        assert_eq!(
            LockOwner::parse("pid=nope\nboot_id=x\nacquired_at_ms=1"),
            None
        );
    }
}
