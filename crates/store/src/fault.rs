//! Deterministic fault injection for store I/O.
//!
//! Every filesystem mutation the store performs — tmp-file create, the
//! payload write, the fsync, the commit rename, and eviction unlinks —
//! first consults a [`FaultPlan`]. A plan is a list of injections of
//! the form "the Nth operation of this kind fails with this
//! `io::ErrorKind`" (or stalls, for crash tests that SIGKILL the
//! process mid-write). The default plan is empty and its check compiles
//! down to a branch on a `None`, so production pays one predictable
//! branch per I/O site.
//!
//! Plans can also be parsed from an environment variable
//! ([`FaultPlan::from_env`]), which is how the crash-consistency
//! harness injects faults into *real* `atlas-serve` child processes it
//! spawns and kills:
//!
//! ```text
//! ATLAS_STORE_FAULT=write:2:stall      # stall the 2nd payload write forever
//! ATLAS_STORE_FAULT=rename:1:notfound  # fail the 1st commit rename
//! ATLAS_STORE_FAULT=sync:1:other,unlink:1:denied
//! ```

use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Which store I/O primitive a fault targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultOp {
    /// Creating the `.tmp` file of an atomic write.
    Create,
    /// Writing the snapshot payload into the `.tmp` file.
    Write,
    /// Fsyncing the `.tmp` file before the commit rename.
    Sync,
    /// Renaming the `.tmp` file over the final path.
    Rename,
    /// Unlinking a snapshot file (eviction, removal).
    Unlink,
}

impl FaultOp {
    /// Every injectable operation, in counter order.
    pub const ALL: [FaultOp; 5] = [
        FaultOp::Create,
        FaultOp::Write,
        FaultOp::Sync,
        FaultOp::Rename,
        FaultOp::Unlink,
    ];

    /// The spec name used in `ATLAS_STORE_FAULT`.
    pub fn name(self) -> &'static str {
        match self {
            FaultOp::Create => "create",
            FaultOp::Write => "write",
            FaultOp::Sync => "sync",
            FaultOp::Rename => "rename",
            FaultOp::Unlink => "unlink",
        }
    }

    fn from_name(s: &str) -> Option<FaultOp> {
        FaultOp::ALL.into_iter().find(|op| op.name() == s)
    }

    fn index(self) -> usize {
        self as usize
    }
}

/// What happens when an injection fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// The I/O site returns this error.
    Fail(io::ErrorKind),
    /// The I/O site blocks — the crash harness SIGKILLs the process
    /// while it sits here, leaving whatever is on disk torn. Bounded at
    /// [`STALL_CAP`] so a leaked test process eventually unwedges.
    Stall,
}

/// Longest a [`FaultAction::Stall`] blocks before giving up and
/// continuing normally (the harness kills the process long before).
pub const STALL_CAP: Duration = Duration::from_secs(600);

#[derive(Debug, Clone, Copy)]
struct Injection {
    op: FaultOp,
    /// 1-based occurrence of `op` that fires the fault.
    nth: u64,
    action: FaultAction,
}

#[derive(Debug)]
struct PlanState {
    injections: Vec<Injection>,
    /// Per-op occurrence counters, indexed by [`FaultOp::index`].
    counters: [AtomicU64; 5],
    fired: AtomicU64,
}

/// A deterministic fault plan threaded through every store I/O site.
///
/// Clones share counters, so one plan can be handed to a
/// [`StoreConfig`](crate::StoreConfig) and still be inspected by the
/// test that built it.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    state: Option<Arc<PlanState>>,
}

impl FaultPlan {
    /// The no-op plan: every check passes.
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// A plan failing the `nth` (1-based) `op` with `kind`.
    pub fn failing(op: FaultOp, nth: u64, kind: io::ErrorKind) -> FaultPlan {
        FaultPlan::with_injections(vec![Injection {
            op,
            nth,
            action: FaultAction::Fail(kind),
        }])
    }

    /// A plan stalling the `nth` (1-based) `op` until the process dies.
    pub fn stalling(op: FaultOp, nth: u64) -> FaultPlan {
        FaultPlan::with_injections(vec![Injection {
            op,
            nth,
            action: FaultAction::Stall,
        }])
    }

    fn with_injections(injections: Vec<Injection>) -> FaultPlan {
        FaultPlan {
            state: Some(Arc::new(PlanState {
                injections,
                counters: Default::default(),
                fired: AtomicU64::new(0),
            })),
        }
    }

    /// Parse a plan from the environment variable `var` (unset or empty
    /// means [`FaultPlan::none`]). Exits loudly on a malformed spec —
    /// a typo'd fault var silently running faultless would invalidate
    /// the test that set it.
    pub fn from_env(var: &str) -> FaultPlan {
        match std::env::var(var) {
            Ok(spec) if !spec.trim().is_empty() => match FaultPlan::parse(&spec) {
                Ok(plan) => plan,
                Err(e) => panic!("bad {var}={spec:?}: {e}"),
            },
            _ => FaultPlan::none(),
        }
    }

    /// Parse a comma-separated list of `op:nth:action` specs, where
    /// `op` is one of `create|write|sync|rename|unlink`, `nth` is a
    /// 1-based occurrence, and `action` is `stall` or an error-kind
    /// name (`notfound|denied|interrupted|timedout|wouldblock|other`).
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut injections = Vec::new();
        for part in spec.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let fields: Vec<&str> = part.split(':').collect();
            let [op, nth, action] = fields.as_slice() else {
                return Err(format!("expected op:nth:action, got {part:?}"));
            };
            let op =
                FaultOp::from_name(op).ok_or_else(|| format!("unknown op {op:?} in {part:?}"))?;
            let nth: u64 = nth
                .parse()
                .ok()
                .filter(|&n| n >= 1)
                .ok_or_else(|| format!("nth must be a 1-based count, got {nth:?}"))?;
            let action = match *action {
                "stall" => FaultAction::Stall,
                "notfound" => FaultAction::Fail(io::ErrorKind::NotFound),
                "denied" => FaultAction::Fail(io::ErrorKind::PermissionDenied),
                "interrupted" => FaultAction::Fail(io::ErrorKind::Interrupted),
                "timedout" => FaultAction::Fail(io::ErrorKind::TimedOut),
                "wouldblock" => FaultAction::Fail(io::ErrorKind::WouldBlock),
                "other" => FaultAction::Fail(io::ErrorKind::Other),
                other => return Err(format!("unknown action {other:?} in {part:?}")),
            };
            injections.push(Injection { op, nth, action });
        }
        if injections.is_empty() {
            return Err("empty fault spec".to_string());
        }
        Ok(FaultPlan::with_injections(injections))
    }

    /// Whether any injection is armed (false for the default plan).
    pub fn is_active(&self) -> bool {
        self.state.is_some()
    }

    /// How many injections have fired so far.
    pub fn fired(&self) -> u64 {
        self.state
            .as_ref()
            .map_or(0, |s| s.fired.load(Ordering::Relaxed))
    }

    /// Count one occurrence of `op` and fire a matching injection:
    /// `Err` for [`FaultAction::Fail`], a (capped) block for
    /// [`FaultAction::Stall`]. The hot path for the default plan is a
    /// single `None` branch.
    pub fn check(&self, op: FaultOp) -> io::Result<()> {
        let Some(state) = &self.state else {
            return Ok(());
        };
        let seen = state.counters[op.index()].fetch_add(1, Ordering::SeqCst) + 1;
        for inj in &state.injections {
            if inj.op != op || inj.nth != seen {
                continue;
            }
            state.fired.fetch_add(1, Ordering::SeqCst);
            match inj.action {
                FaultAction::Fail(kind) => {
                    return Err(io::Error::new(
                        kind,
                        format!("injected fault: {} #{seen}", op.name()),
                    ));
                }
                FaultAction::Stall => {
                    let started = std::time::Instant::now();
                    while started.elapsed() < STALL_CAP {
                        std::thread::sleep(Duration::from_millis(50));
                    }
                    return Ok(());
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_never_fires() {
        let plan = FaultPlan::none();
        assert!(!plan.is_active());
        for op in FaultOp::ALL {
            for _ in 0..10 {
                plan.check(op).unwrap();
            }
        }
        assert_eq!(plan.fired(), 0);
    }

    #[test]
    fn nth_occurrence_fails_with_the_chosen_kind() {
        let plan = FaultPlan::failing(FaultOp::Write, 3, io::ErrorKind::PermissionDenied);
        plan.check(FaultOp::Write).unwrap();
        plan.check(FaultOp::Create).unwrap(); // other ops don't advance the write counter
        plan.check(FaultOp::Write).unwrap();
        let err = plan.check(FaultOp::Write).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::PermissionDenied);
        assert_eq!(plan.fired(), 1);
        // The fault is one-shot: occurrence 4 passes.
        plan.check(FaultOp::Write).unwrap();
    }

    #[test]
    fn clones_share_counters() {
        let plan = FaultPlan::failing(FaultOp::Rename, 2, io::ErrorKind::Other);
        let clone = plan.clone();
        plan.check(FaultOp::Rename).unwrap();
        assert!(clone.check(FaultOp::Rename).is_err());
        assert_eq!(plan.fired(), 1);
    }

    #[test]
    fn parse_round_trips_the_documented_grammar() {
        let plan = FaultPlan::parse("write:2:stall").unwrap();
        assert!(plan.is_active());
        let plan = FaultPlan::parse("sync:1:other, unlink:3:denied").unwrap();
        plan.check(FaultOp::Sync).unwrap_err();
        plan.check(FaultOp::Unlink).unwrap();
        plan.check(FaultOp::Unlink).unwrap();
        let err = plan.check(FaultOp::Unlink).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::PermissionDenied);

        assert!(FaultPlan::parse("").is_err());
        assert!(FaultPlan::parse("write:0:stall").is_err(), "nth is 1-based");
        assert!(FaultPlan::parse("chmod:1:other").is_err(), "unknown op");
        assert!(
            FaultPlan::parse("write:1:explode").is_err(),
            "unknown action"
        );
        assert!(FaultPlan::parse("write:1").is_err(), "missing action");
    }

    #[test]
    fn from_env_defaults_to_none_when_unset() {
        assert!(!FaultPlan::from_env("ATLAS_STORE_FAULT_TEST_UNSET").is_active());
    }
}
