//! `atlas-store` — a content-addressed disk store for cuisine-atlas
//! snapshots.
//!
//! The store owns one directory (the server's `--data-dir`) with three
//! children:
//!
//! ```text
//! <root>/atlases/<store-id>.atlas     one file per built atlas
//! <root>/corpora/<digest>.corpus      one file per corpus
//! <root>/quarantine/                  damaged files, kept for forensics
//! ```
//!
//! Files are **content-addressed**: a corpus file is named by its
//! semantic [`corpus digest`](recipedb::digest::corpus_digest) and an
//! atlas file by the server's cache-key id, so identical content lands
//! on identical paths and a re-persist is a no-op. Writes are atomic
//! (`.tmp` + fsync + rename) — a crash mid-persist leaves a `.tmp`
//! orphan that the next [`SnapshotStore::open`] sweeps away, never a
//! half-written live file. Files that fail validation (at the boot scan
//! or on a later load/decode) are moved to `quarantine/` and counted,
//! so the serving layer falls back to a rebuild instead of crashing.
//!
//! A disk budget (`max_disk_bytes`, 0 = unbounded) is enforced after
//! every write by evicting least-recently-used atlases first, then
//! least-recently-used corpora that no remaining atlas references —
//! never a corpus that stored atlases still need to decode.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashMap;
use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::SystemTime;

use cuisine_atlas::snapshot::{self, CorpusOrigin};

const ATLAS_EXT: &str = "atlas";
const CORPUS_EXT: &str = "corpus";
const TMP_EXT: &str = "tmp";

/// Store configuration.
#[derive(Debug, Clone)]
pub struct StoreConfig {
    /// Directory holding the store (created if absent).
    pub root: PathBuf,
    /// Disk budget in bytes across atlases + corpora; `0` disables the
    /// budget.
    pub max_disk_bytes: u64,
    /// Serve warm reads but never write, evict, or quarantine-on-load
    /// (the server's `--no-persist` flag).
    pub read_only: bool,
}

/// Counter and gauge snapshot of the store, rendered into `/metrics`
/// and `/health`.
#[derive(Debug, Clone, Copy, Default)]
pub struct StoreStats {
    /// Snapshot loads that found a file.
    pub hits: u64,
    /// Snapshot loads that found nothing.
    pub misses: u64,
    /// Snapshot files written.
    pub writes: u64,
    /// Files quarantined as damaged (boot scan + load/decode failures).
    pub corrupt: u64,
    /// Files evicted to stay under the disk budget.
    pub evictions: u64,
    /// Atlas snapshot files currently stored.
    pub atlas_files: u64,
    /// Corpus snapshot files currently stored.
    pub corpus_files: u64,
    /// Bytes in atlas snapshot files.
    pub atlas_bytes: u64,
    /// Bytes in corpus snapshot files.
    pub corpus_bytes: u64,
    /// The configured disk budget (0 = unbounded).
    pub max_disk_bytes: u64,
}

impl StoreStats {
    /// Total bytes currently stored.
    pub fn total_bytes(&self) -> u64 {
        self.atlas_bytes + self.corpus_bytes
    }
}

/// One persisted corpus, as listed by [`SnapshotStore::corpora`] for
/// the warm-restart registry restore.
#[derive(Debug, Clone)]
pub struct StoredCorpus {
    /// The corpus digest (also the file stem).
    pub digest: String,
    /// Snapshot file size in bytes.
    pub bytes: u64,
    /// Provenance recorded in the snapshot.
    pub origin: CorpusOrigin,
    /// File modification time — stands in for the original registration
    /// time after a restart (drives the corpus TTL).
    pub modified: SystemTime,
}

/// Disk footprint of one corpus and its dependent atlases.
#[derive(Debug, Clone, Copy, Default)]
pub struct CorpusDiskUsage {
    /// Bytes of the corpus snapshot itself (0 if not persisted).
    pub corpus_bytes: u64,
    /// Bytes across atlas snapshots built from this corpus.
    pub atlas_bytes: u64,
    /// Number of atlas snapshots built from this corpus.
    pub atlas_count: u64,
}

#[derive(Debug)]
struct AtlasEntry {
    bytes: u64,
    corpus: String,
    last_used: u64,
}

#[derive(Debug)]
struct CorpusEntry {
    bytes: u64,
    origin: CorpusOrigin,
    modified: SystemTime,
    last_used: u64,
}

#[derive(Debug, Default)]
struct Index {
    atlases: HashMap<String, AtlasEntry>,
    corpora: HashMap<String, CorpusEntry>,
    clock: u64,
}

impl Index {
    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    fn total_bytes(&self) -> u64 {
        self.atlases.values().map(|e| e.bytes).sum::<u64>()
            + self.corpora.values().map(|e| e.bytes).sum::<u64>()
    }
}

/// The content-addressed snapshot store.
#[derive(Debug)]
pub struct SnapshotStore {
    config: StoreConfig,
    index: Mutex<Index>,
    hits: AtomicU64,
    misses: AtomicU64,
    writes: AtomicU64,
    corrupt: AtomicU64,
    evictions: AtomicU64,
}

impl SnapshotStore {
    /// Open (creating if needed) the store at `config.root`, sweeping
    /// crash leftovers and quarantining any file that fails validation.
    ///
    /// Every existing snapshot is checksum-verified here — the boot
    /// scan is what makes a warm restart trustworthy — and the LRU
    /// clock is seeded from file modification times, so eviction order
    /// survives restarts.
    pub fn open(config: StoreConfig) -> io::Result<Self> {
        fs::create_dir_all(config.root.join("atlases"))?;
        fs::create_dir_all(config.root.join("corpora"))?;
        fs::create_dir_all(config.root.join("quarantine"))?;

        let store = SnapshotStore {
            config,
            index: Mutex::new(Index::default()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            corrupt: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        };
        store.scan()?;
        if !store.config.read_only {
            let mut index = store.index.lock().unwrap();
            store.enforce_budget(&mut index);
        }
        Ok(store)
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.config.root
    }

    /// Whether the store is in read-only (`--no-persist`) mode.
    pub fn read_only(&self) -> bool {
        self.config.read_only
    }

    fn atlas_path(&self, store_id: &str) -> PathBuf {
        self.config
            .root
            .join("atlases")
            .join(format!("{store_id}.{ATLAS_EXT}"))
    }

    fn corpus_path(&self, digest: &str) -> PathBuf {
        self.config
            .root
            .join("corpora")
            .join(format!("{digest}.{CORPUS_EXT}"))
    }

    /// Scan both snapshot directories: drop `.tmp` orphans, quarantine
    /// invalid files, index the rest in mtime order (oldest first) so
    /// the LRU clock reflects pre-restart recency.
    fn scan(&self) -> io::Result<()> {
        let mut found: Vec<(SystemTime, PathBuf, bool)> = Vec::new();
        for (dir, is_atlas) in [("atlases", true), ("corpora", false)] {
            for entry in fs::read_dir(self.config.root.join(dir))? {
                let path = entry?.path();
                if !path.is_file() {
                    continue;
                }
                let ext = path.extension().and_then(|e| e.to_str());
                if ext == Some(TMP_EXT) {
                    let _ = fs::remove_file(&path);
                    continue;
                }
                if ext != Some(if is_atlas { ATLAS_EXT } else { CORPUS_EXT }) {
                    continue;
                }
                let modified = fs::metadata(&path)
                    .and_then(|m| m.modified())
                    .unwrap_or(SystemTime::UNIX_EPOCH);
                found.push((modified, path, is_atlas));
            }
        }
        found.sort_by(|a, b| (a.0, &a.1).cmp(&(b.0, &b.1)));

        let mut index = self.index.lock().unwrap();
        for (modified, path, is_atlas) in found {
            let Some(stem) = path.file_stem().and_then(|s| s.to_str()).map(String::from) else {
                self.quarantine_file(&path);
                continue;
            };
            let Ok(bytes) = fs::read(&path) else {
                self.quarantine_file(&path);
                continue;
            };
            if is_atlas {
                match snapshot::peek_atlas(&bytes) {
                    Ok(peek) => {
                        let last_used = index.tick();
                        index.atlases.insert(
                            stem,
                            AtlasEntry {
                                bytes: bytes.len() as u64,
                                corpus: peek.corpus_digest,
                                last_used,
                            },
                        );
                    }
                    Err(_) => self.quarantine_file(&path),
                }
            } else {
                match snapshot::peek_corpus(&bytes) {
                    Ok(peek) if peek.digest == stem => {
                        let last_used = index.tick();
                        index.corpora.insert(
                            stem,
                            CorpusEntry {
                                bytes: bytes.len() as u64,
                                origin: peek.origin,
                                modified,
                                last_used,
                            },
                        );
                    }
                    _ => self.quarantine_file(&path),
                }
            }
        }
        Ok(())
    }

    // -- atlases ------------------------------------------------------

    /// Whether an atlas snapshot is stored under `store_id`.
    pub fn contains_atlas(&self, store_id: &str) -> bool {
        self.index.lock().unwrap().atlases.contains_key(store_id)
    }

    /// Read an atlas snapshot's bytes, counting a hit or miss. An
    /// unreadable file is quarantined on the spot (unless read-only)
    /// and reported as a miss.
    pub fn load_atlas(&self, store_id: &str) -> Option<Vec<u8>> {
        self.load(store_id, true)
    }

    /// Persist an atlas snapshot under `store_id`, recording which
    /// corpus it depends on (the budget never evicts a corpus out from
    /// under its atlases). Returns `false` without writing when the
    /// store is read-only or the file already exists.
    pub fn persist_atlas(
        &self,
        store_id: &str,
        corpus_digest: &str,
        bytes: &[u8],
    ) -> io::Result<bool> {
        if self.config.read_only {
            return Ok(false);
        }
        let mut index = self.index.lock().unwrap();
        if index.atlases.contains_key(store_id) {
            return Ok(false);
        }
        write_atomic(&self.atlas_path(store_id), bytes)?;
        let last_used = index.tick();
        index.atlases.insert(
            store_id.to_string(),
            AtlasEntry {
                bytes: bytes.len() as u64,
                corpus: corpus_digest.to_string(),
                last_used,
            },
        );
        self.writes.fetch_add(1, Ordering::Relaxed);
        self.enforce_budget(&mut index);
        Ok(true)
    }

    /// Quarantine a stored atlas snapshot that failed to decode.
    pub fn quarantine_atlas(&self, store_id: &str) {
        let mut index = self.index.lock().unwrap();
        index.atlases.remove(store_id);
        self.quarantine_file(&self.atlas_path(store_id));
    }

    /// Remove every stored atlas built from `corpus_digest`; returns
    /// how many were removed.
    pub fn remove_atlases_for_corpus(&self, corpus_digest: &str) -> usize {
        let mut index = self.index.lock().unwrap();
        let doomed: Vec<String> = index
            .atlases
            .iter()
            .filter(|(_, e)| e.corpus == corpus_digest)
            .map(|(id, _)| id.clone())
            .collect();
        for id in &doomed {
            index.atlases.remove(id);
            let _ = fs::remove_file(self.atlas_path(id));
        }
        doomed.len()
    }

    // -- corpora ------------------------------------------------------

    /// Whether a corpus snapshot is stored under `digest`.
    pub fn contains_corpus(&self, digest: &str) -> bool {
        self.index.lock().unwrap().corpora.contains_key(digest)
    }

    /// Read a corpus snapshot's bytes, counting a hit or miss.
    pub fn load_corpus(&self, digest: &str) -> Option<Vec<u8>> {
        self.load(digest, false)
    }

    /// Persist a corpus snapshot under its digest. Returns `false`
    /// without writing when the store is read-only or the file already
    /// exists (content-addressing makes re-persists no-ops).
    pub fn persist_corpus(
        &self,
        digest: &str,
        origin: CorpusOrigin,
        bytes: &[u8],
    ) -> io::Result<bool> {
        if self.config.read_only {
            return Ok(false);
        }
        let mut index = self.index.lock().unwrap();
        if index.corpora.contains_key(digest) {
            return Ok(false);
        }
        write_atomic(&self.corpus_path(digest), bytes)?;
        let last_used = index.tick();
        index.corpora.insert(
            digest.to_string(),
            CorpusEntry {
                bytes: bytes.len() as u64,
                origin,
                modified: SystemTime::now(),
                last_used,
            },
        );
        self.writes.fetch_add(1, Ordering::Relaxed);
        self.enforce_budget(&mut index);
        Ok(true)
    }

    /// Quarantine a stored corpus snapshot that failed to decode.
    pub fn quarantine_corpus(&self, digest: &str) {
        let mut index = self.index.lock().unwrap();
        index.corpora.remove(digest);
        self.quarantine_file(&self.corpus_path(digest));
    }

    /// Remove a stored corpus snapshot (the `DELETE /corpus/{digest}`
    /// path — callers remove its atlases too). Returns whether a file
    /// was removed.
    pub fn remove_corpus(&self, digest: &str) -> bool {
        let mut index = self.index.lock().unwrap();
        let had = index.corpora.remove(digest).is_some();
        if had {
            let _ = fs::remove_file(self.corpus_path(digest));
        }
        had
    }

    /// Every stored corpus, for the boot-time registry restore.
    pub fn corpora(&self) -> Vec<StoredCorpus> {
        let index = self.index.lock().unwrap();
        let mut out: Vec<StoredCorpus> = index
            .corpora
            .iter()
            .map(|(digest, e)| StoredCorpus {
                digest: digest.clone(),
                bytes: e.bytes,
                origin: e.origin,
                modified: e.modified,
            })
            .collect();
        out.sort_by(|a, b| a.digest.cmp(&b.digest));
        out
    }

    /// Disk footprint of one corpus: its own snapshot plus every atlas
    /// snapshot built from it.
    pub fn disk_usage_for(&self, corpus_digest: &str) -> CorpusDiskUsage {
        let index = self.index.lock().unwrap();
        let mut usage = CorpusDiskUsage {
            corpus_bytes: index.corpora.get(corpus_digest).map_or(0, |e| e.bytes),
            ..CorpusDiskUsage::default()
        };
        for e in index.atlases.values() {
            if e.corpus == corpus_digest {
                usage.atlas_bytes += e.bytes;
                usage.atlas_count += 1;
            }
        }
        usage
    }

    // -- shared internals ---------------------------------------------

    fn load(&self, id: &str, is_atlas: bool) -> Option<Vec<u8>> {
        let mut index = self.index.lock().unwrap();
        let present = if is_atlas {
            index.atlases.contains_key(id)
        } else {
            index.corpora.contains_key(id)
        };
        if !present {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let path = if is_atlas {
            self.atlas_path(id)
        } else {
            self.corpus_path(id)
        };
        match fs::read(&path) {
            Ok(bytes) => {
                let tick = index.tick();
                if is_atlas {
                    index.atlases.get_mut(id).unwrap().last_used = tick;
                } else {
                    index.corpora.get_mut(id).unwrap().last_used = tick;
                }
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(bytes)
            }
            Err(_) => {
                if is_atlas {
                    index.atlases.remove(id);
                } else {
                    index.corpora.remove(id);
                }
                self.quarantine_file(&path);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Move a damaged file into `quarantine/` (kept, not deleted, so a
    /// torn write can be examined) and count it.
    fn quarantine_file(&self, path: &Path) {
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or("unnamed");
        let mut target = self.config.root.join("quarantine").join(name);
        let mut n = 0u32;
        while target.exists() {
            n += 1;
            target = self
                .config
                .root
                .join("quarantine")
                .join(format!("{name}.{n}"));
        }
        if fs::rename(path, &target).is_err() {
            let _ = fs::remove_file(path);
        }
        self.corrupt.fetch_add(1, Ordering::Relaxed);
    }

    /// Evict least-recently-used files until under the budget: atlases
    /// first (rebuildable from their corpus), then corpora no remaining
    /// atlas references.
    fn enforce_budget(&self, index: &mut Index) {
        if self.config.max_disk_bytes == 0 {
            return;
        }
        while index.total_bytes() > self.config.max_disk_bytes {
            if let Some(id) = lru_key(index.atlases.iter().map(|(k, e)| (k, e.last_used))) {
                index.atlases.remove(&id);
                let _ = fs::remove_file(self.atlas_path(&id));
                self.evictions.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            let unreferenced = index
                .corpora
                .iter()
                .filter(|(d, _)| index.atlases.values().all(|a| &a.corpus != *d))
                .map(|(d, e)| (d, e.last_used));
            let Some(digest) = lru_key(unreferenced) else {
                break;
            };
            index.corpora.remove(&digest);
            let _ = fs::remove_file(self.corpus_path(&digest));
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Current counters and gauges.
    pub fn stats(&self) -> StoreStats {
        let index = self.index.lock().unwrap();
        StoreStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            corrupt: self.corrupt.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            atlas_files: index.atlases.len() as u64,
            corpus_files: index.corpora.len() as u64,
            atlas_bytes: index.atlases.values().map(|e| e.bytes).sum(),
            corpus_bytes: index.corpora.values().map(|e| e.bytes).sum(),
            max_disk_bytes: self.config.max_disk_bytes,
        }
    }
}

fn lru_key<'a>(entries: impl Iterator<Item = (&'a String, u64)>) -> Option<String> {
    entries
        .min_by_key(|&(k, used)| (used, k.clone()))
        .map(|(k, _)| k.clone())
}

/// Write `bytes` to `path` atomically: a sibling `.tmp` file is
/// written, fsynced, then renamed over the final path (the directory
/// is fsynced best-effort afterwards). Readers either see the old file
/// or the complete new one, never a torn write.
fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let file_name = path
        .file_name()
        .and_then(|n| n.to_str())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "bad snapshot path"))?;
    let parent = path
        .parent()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "bad snapshot path"))?;
    let tmp = parent.join(format!("{file_name}.{TMP_EXT}"));
    {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    fs::rename(&tmp, path)?;
    if let Ok(dir) = fs::File::open(parent) {
        let _ = dir.sync_all();
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    static DIR_SEQ: AtomicUsize = AtomicUsize::new(0);

    /// A unique scratch directory, removed when dropped.
    struct Scratch(PathBuf);

    impl Scratch {
        fn new() -> Self {
            let dir = std::env::temp_dir().join(format!(
                "atlas-store-test-{}-{}",
                std::process::id(),
                DIR_SEQ.fetch_add(1, Ordering::Relaxed)
            ));
            fs::create_dir_all(&dir).unwrap();
            Scratch(dir)
        }

        fn store(&self, max_disk_bytes: u64) -> SnapshotStore {
            SnapshotStore::open(StoreConfig {
                root: self.0.clone(),
                max_disk_bytes,
                read_only: false,
            })
            .unwrap()
        }
    }

    impl Drop for Scratch {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.0);
        }
    }

    /// A minimal valid corpus snapshot (tiny hand-built corpus).
    fn corpus_bytes() -> (String, Vec<u8>) {
        use recipedb::store::RecipeDbBuilder;
        use recipedb::Cuisine;
        let mut b = RecipeDbBuilder::new();
        let salt = b.catalog_mut().intern_ingredient("salt");
        let rice = b.catalog_mut().intern_ingredient("rice");
        let boil = b.catalog_mut().intern_process("boil");
        let pan = b.catalog_mut().intern_utensil("pan");
        b.add_recipe(
            "dish",
            Cuisine::ALL[0],
            vec![salt, rice],
            vec![boil],
            vec![pan],
        );
        let db = b.build().unwrap();
        let digest = recipedb::corpus_digest(&db);
        let bytes = snapshot::encode_corpus(&db, CorpusOrigin::Uploaded, 42).unwrap();
        (digest, bytes)
    }

    #[test]
    fn persist_load_roundtrip_and_counters() {
        let scratch = Scratch::new();
        let store = scratch.store(0);
        let (digest, bytes) = corpus_bytes();

        assert!(store.load_corpus(&digest).is_none());
        assert!(store
            .persist_corpus(&digest, CorpusOrigin::Uploaded, &bytes)
            .unwrap());
        // Re-persisting identical content is a no-op.
        assert!(!store
            .persist_corpus(&digest, CorpusOrigin::Uploaded, &bytes)
            .unwrap());
        assert_eq!(store.load_corpus(&digest).unwrap(), bytes);

        let stats = store.stats();
        assert_eq!((stats.hits, stats.misses, stats.writes), (1, 1, 1));
        assert_eq!(stats.corpus_files, 1);
        assert_eq!(stats.corpus_bytes, bytes.len() as u64);
    }

    #[test]
    fn reopen_restores_the_index() {
        let scratch = Scratch::new();
        let (digest, bytes) = corpus_bytes();
        {
            let store = scratch.store(0);
            store
                .persist_corpus(&digest, CorpusOrigin::Uploaded, &bytes)
                .unwrap();
            store
                .persist_atlas("aaaa", &digest, b"not-checked-here")
                .ok();
        }
        // "aaaa" is not a valid snapshot — the reopen scan must
        // quarantine it and keep the valid corpus.
        let store = scratch.store(0);
        assert!(store.contains_corpus(&digest));
        assert!(!store.contains_atlas("aaaa"));
        let stats = store.stats();
        assert_eq!(stats.corrupt, 1);
        assert!(scratch.0.join("quarantine").join("aaaa.atlas").exists());
        let listed = store.corpora();
        assert_eq!(listed.len(), 1);
        assert_eq!(listed[0].digest, digest);
        assert_eq!(listed[0].origin, CorpusOrigin::Uploaded);
    }

    #[test]
    fn tmp_leftovers_are_swept_on_open() {
        let scratch = Scratch::new();
        let store = scratch.store(0);
        let torn = scratch.0.join("atlases").join("torn.atlas.tmp");
        fs::write(&torn, b"half a snapshot").unwrap();
        drop(store);

        let store = scratch.store(0);
        assert!(!torn.exists(), "tmp orphan must be swept at open");
        assert_eq!(store.stats().corrupt, 0, "a tmp sweep is not corruption");
    }

    #[test]
    fn corrupted_corpus_is_quarantined_on_reopen() {
        let scratch = Scratch::new();
        let (digest, bytes) = corpus_bytes();
        {
            let store = scratch.store(0);
            store
                .persist_corpus(&digest, CorpusOrigin::Uploaded, &bytes)
                .unwrap();
        }
        // Flip one byte in place.
        let path = scratch.0.join("corpora").join(format!("{digest}.corpus"));
        let mut damaged = fs::read(&path).unwrap();
        let mid = damaged.len() / 2;
        damaged[mid] ^= 0x01;
        fs::write(&path, &damaged).unwrap();

        let store = scratch.store(0);
        assert!(!store.contains_corpus(&digest));
        assert_eq!(store.stats().corrupt, 1);
        assert!(!path.exists());
    }

    #[test]
    fn budget_evicts_lru_atlases_before_corpora() {
        let scratch = Scratch::new();
        let (digest, bytes) = corpus_bytes();
        let store = scratch.store((bytes.len() + 220) as u64);
        store
            .persist_corpus(&digest, CorpusOrigin::Uploaded, &bytes)
            .unwrap();
        // Three 100-byte atlases; budget holds the corpus + two.
        store.persist_atlas("a1", &digest, &[1u8; 100]).unwrap();
        store.persist_atlas("a2", &digest, &[2u8; 100]).unwrap();
        assert!(store.load_atlas("a1").is_some()); // a2 is now LRU
        store.persist_atlas("a3", &digest, &[3u8; 100]).unwrap();

        assert!(store.contains_atlas("a1"));
        assert!(!store.contains_atlas("a2"), "LRU atlas must be evicted");
        assert!(store.contains_atlas("a3"));
        assert!(
            store.contains_corpus(&digest),
            "referenced corpus must stay"
        );
        assert_eq!(store.stats().evictions, 1);
        assert!(store.stats().total_bytes() <= store.stats().max_disk_bytes);
    }

    #[test]
    fn budget_evicts_unreferenced_corpus_last() {
        let scratch = Scratch::new();
        let (digest, bytes) = corpus_bytes();
        let store = scratch.store(0);
        store
            .persist_corpus(&digest, CorpusOrigin::Uploaded, &bytes)
            .unwrap();
        store.persist_atlas("big", &digest, &[0u8; 4096]).unwrap();
        drop(store);

        // Reopen with a budget smaller than anything stored. The bogus
        // atlas bytes fail the boot scan's validation (quarantined, not
        // evicted), which leaves the corpus unreferenced — so the
        // budget may now evict it too.
        let store = SnapshotStore::open(StoreConfig {
            root: scratch.0.clone(),
            max_disk_bytes: 10,
            read_only: false,
        })
        .unwrap();
        assert_eq!(store.stats().atlas_files, 0);
        assert_eq!(store.stats().corpus_files, 0);
        assert_eq!(store.stats().corrupt, 1);
        assert_eq!(store.stats().evictions, 1);
    }

    #[test]
    fn read_only_mode_reads_but_never_writes() {
        let scratch = Scratch::new();
        let (digest, bytes) = corpus_bytes();
        scratch
            .store(0)
            .persist_corpus(&digest, CorpusOrigin::Uploaded, &bytes)
            .unwrap();

        let store = SnapshotStore::open(StoreConfig {
            root: scratch.0.clone(),
            max_disk_bytes: 0,
            read_only: true,
        })
        .unwrap();
        assert_eq!(store.load_corpus(&digest).unwrap(), bytes);
        assert!(!store.persist_atlas("x", &digest, b"data").unwrap());
        assert!(!store.contains_atlas("x"));
        assert_eq!(store.stats().writes, 0);
    }

    #[test]
    fn remove_corpus_and_dependent_atlases() {
        let scratch = Scratch::new();
        let (digest, bytes) = corpus_bytes();
        let store = scratch.store(0);
        store
            .persist_corpus(&digest, CorpusOrigin::Uploaded, &bytes)
            .unwrap();
        store.persist_atlas("a1", &digest, &[1u8; 10]).unwrap();
        store.persist_atlas("a2", &digest, &[2u8; 10]).unwrap();
        store
            .persist_atlas("other", "feedbeef", &[3u8; 10])
            .unwrap();

        let usage = store.disk_usage_for(&digest);
        assert_eq!(usage.corpus_bytes, bytes.len() as u64);
        assert_eq!((usage.atlas_bytes, usage.atlas_count), (20, 2));

        assert_eq!(store.remove_atlases_for_corpus(&digest), 2);
        assert!(store.remove_corpus(&digest));
        assert!(!store.remove_corpus(&digest));
        assert!(store.contains_atlas("other"));
        assert_eq!(store.stats().corpus_files, 0);
        assert_eq!(store.stats().atlas_files, 1);
    }
}
