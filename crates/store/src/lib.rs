//! `atlas-store` — a content-addressed disk store for cuisine-atlas
//! snapshots.
//!
//! The store owns one directory (the server's `--data-dir`) with three
//! children:
//!
//! ```text
//! <root>/atlases/<store-id>.atlas     one file per built atlas
//! <root>/corpora/<digest>.corpus      one file per corpus
//! <root>/quarantine/                  damaged files, kept for forensics
//! <root>/store.lock                   advisory write lock (while held)
//! ```
//!
//! Files are **content-addressed**: a corpus file is named by its
//! semantic [`corpus digest`](recipedb::digest::corpus_digest) and an
//! atlas file by the server's cache-key id, so identical content lands
//! on identical paths and a re-persist is a no-op. Writes are atomic
//! (pid-tagged `.tmp` + fsync + rename) — a crash mid-persist leaves a
//! `.tmp` orphan that the next [`SnapshotStore::open`] sweeps away,
//! never a half-written live file. Files that fail validation (at the
//! boot scan or on a later load/decode) are moved to `quarantine/` and
//! counted, so the serving layer falls back to a rebuild instead of
//! crashing.
//!
//! **Multiple processes may share one store.** Mutations (persist,
//! evict, quarantine, remove) are serialized behind a short-held
//! advisory [`lock`] — a `store.lock` file acquired with
//! `O_CREAT|O_EXCL` semantics, broken when its recorded owner is dead —
//! while the read path stays lock-free: an index miss re-probes the
//! filesystem (a sibling may have persisted the snapshot after our boot
//! scan) and a `NotFound` on an indexed file degrades to a miss (a
//! sibling evicted it; the caller rebuilds). Read-only stores never
//! take the lock and never mutate the directory, not even at boot.
//!
//! A disk budget (`max_disk_bytes`, 0 = unbounded) is enforced after
//! every write by evicting least-recently-used atlases first, then
//! least-recently-used corpora that no remaining atlas references —
//! never a corpus that stored atlases still need to decode.
//!
//! Every I/O mutation first consults a [`fault::FaultPlan`], so tests
//! (and the crash-consistency harness, via `ATLAS_STORE_FAULT`) can
//! fail or stall the Nth create/write/fsync/rename/unlink and prove
//! that every partial-failure path lands in the `.tmp` sweep or
//! `quarantine/` — never a torn visible snapshot.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fault;
pub mod lock;

use std::collections::HashMap;
use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, SystemTime};

use cuisine_atlas::snapshot::{self, CorpusOrigin};

pub use fault::{FaultOp, FaultPlan};
pub use lock::{LockOwner, StoreLock};

const ATLAS_EXT: &str = "atlas";
const CORPUS_EXT: &str = "corpus";
const TMP_EXT: &str = "tmp";

/// Default time a mutation waits for the advisory write lock before
/// giving up (the server's `--lock-timeout-ms`).
pub const DEFAULT_LOCK_TIMEOUT: Duration = Duration::from_secs(5);

/// Store configuration.
#[derive(Debug, Clone)]
pub struct StoreConfig {
    /// Directory holding the store (created if absent).
    pub root: PathBuf,
    /// Disk budget in bytes across atlases + corpora; `0` disables the
    /// budget.
    pub max_disk_bytes: u64,
    /// Serve warm reads but never write, evict, quarantine, or lock
    /// (the server's `--no-persist` flag).
    pub read_only: bool,
    /// How long a mutation waits for the advisory write lock held by a
    /// live sibling process before erroring with `TimedOut`.
    pub lock_timeout: Duration,
    /// Fault injections applied to every store I/O site (tests only;
    /// the default plan is free).
    pub faults: FaultPlan,
}

impl StoreConfig {
    /// A read-write store at `root` with no disk budget, the default
    /// lock timeout, and no fault injections.
    pub fn new(root: PathBuf) -> StoreConfig {
        StoreConfig {
            root,
            max_disk_bytes: 0,
            read_only: false,
            lock_timeout: DEFAULT_LOCK_TIMEOUT,
            faults: FaultPlan::none(),
        }
    }
}

/// Counter and gauge snapshot of the store, rendered into `/metrics`
/// and `/health`.
#[derive(Debug, Clone, Copy, Default)]
pub struct StoreStats {
    /// Snapshot loads that found a file.
    pub hits: u64,
    /// Snapshot loads that found nothing.
    pub misses: u64,
    /// Snapshot files written.
    pub writes: u64,
    /// Files quarantined as damaged (boot scan + load/decode failures).
    pub corrupt: u64,
    /// Files evicted to stay under the disk budget.
    pub evictions: u64,
    /// Times the index was corrected against the filesystem: a miss
    /// re-probed into a sibling's snapshot, a sibling's write adopted
    /// at persist time, or an entry dropped after a sibling's unlink.
    pub rescans: u64,
    /// Advisory write-lock acquisitions.
    pub lock_acquisitions: u64,
    /// Stale sibling locks broken (dead pid / previous boot).
    pub lock_steals: u64,
    /// Lock acquisitions that found a live holder and had to wait.
    pub lock_contentions: u64,
    /// Atlas snapshot files currently stored.
    pub atlas_files: u64,
    /// Corpus snapshot files currently stored.
    pub corpus_files: u64,
    /// Bytes in atlas snapshot files.
    pub atlas_bytes: u64,
    /// Bytes in corpus snapshot files.
    pub corpus_bytes: u64,
    /// The configured disk budget (0 = unbounded).
    pub max_disk_bytes: u64,
}

impl StoreStats {
    /// Total bytes currently stored.
    pub fn total_bytes(&self) -> u64 {
        self.atlas_bytes + self.corpus_bytes
    }
}

/// One persisted corpus, as listed by [`SnapshotStore::corpora`] for
/// the warm-restart registry restore.
#[derive(Debug, Clone)]
pub struct StoredCorpus {
    /// The corpus digest (also the file stem).
    pub digest: String,
    /// Snapshot file size in bytes.
    pub bytes: u64,
    /// Provenance recorded in the snapshot.
    pub origin: CorpusOrigin,
    /// File modification time — stands in for the original registration
    /// time after a restart (drives the corpus TTL).
    pub modified: SystemTime,
}

/// Disk footprint of one corpus and its dependent atlases.
#[derive(Debug, Clone, Copy, Default)]
pub struct CorpusDiskUsage {
    /// Bytes of the corpus snapshot itself (0 if not persisted).
    pub corpus_bytes: u64,
    /// Bytes across atlas snapshots built from this corpus.
    pub atlas_bytes: u64,
    /// Number of atlas snapshots built from this corpus.
    pub atlas_count: u64,
}

#[derive(Debug)]
struct AtlasEntry {
    bytes: u64,
    corpus: String,
    last_used: u64,
}

#[derive(Debug)]
struct CorpusEntry {
    bytes: u64,
    origin: CorpusOrigin,
    modified: SystemTime,
    last_used: u64,
}

#[derive(Debug, Default)]
struct Index {
    atlases: HashMap<String, AtlasEntry>,
    corpora: HashMap<String, CorpusEntry>,
    clock: u64,
}

impl Index {
    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    fn total_bytes(&self) -> u64 {
        self.atlases.values().map(|e| e.bytes).sum::<u64>()
            + self.corpora.values().map(|e| e.bytes).sum::<u64>()
    }
}

/// The content-addressed snapshot store.
#[derive(Debug)]
pub struct SnapshotStore {
    config: StoreConfig,
    index: Mutex<Index>,
    /// The advisory write lock; `None` in read-only mode, which never
    /// mutates and therefore never excludes anyone.
    lock: Option<StoreLock>,
    hits: AtomicU64,
    misses: AtomicU64,
    writes: AtomicU64,
    corrupt: AtomicU64,
    evictions: AtomicU64,
    rescans: AtomicU64,
}

impl SnapshotStore {
    /// Open (creating if needed) the store at `config.root`, sweeping
    /// crash leftovers and quarantining any file that fails validation.
    ///
    /// Every existing snapshot is checksum-verified here — the boot
    /// scan is what makes a warm restart trustworthy — and the LRU
    /// clock is seeded from file modification times (ties broken on
    /// the store id/digest, so eviction order is independent of
    /// `read_dir` order), so eviction order survives restarts.
    pub fn open(config: StoreConfig) -> io::Result<Self> {
        fs::create_dir_all(config.root.join("atlases"))?;
        fs::create_dir_all(config.root.join("corpora"))?;
        fs::create_dir_all(config.root.join("quarantine"))?;

        let lock = if config.read_only {
            None
        } else {
            Some(StoreLock::new(&config.root, config.lock_timeout))
        };
        let store = SnapshotStore {
            config,
            index: Mutex::new(Index::default()),
            lock,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            corrupt: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            rescans: AtomicU64::new(0),
        };
        store.scan()?;
        if !store.config.read_only {
            let mut index = store.index.lock().unwrap();
            // Budget enforcement is a mutation: take the write lock. A
            // wedged sibling must not block startup, so a lock timeout
            // defers enforcement to the next write.
            if let Ok(_guard) = store.write_guard() {
                store.enforce_budget(&mut index);
            }
        }
        Ok(store)
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.config.root
    }

    /// Whether the store is in read-only (`--no-persist`) mode.
    pub fn read_only(&self) -> bool {
        self.config.read_only
    }

    fn atlas_path(&self, store_id: &str) -> PathBuf {
        self.config
            .root
            .join("atlases")
            .join(format!("{store_id}.{ATLAS_EXT}"))
    }

    fn corpus_path(&self, digest: &str) -> PathBuf {
        self.config
            .root
            .join("corpora")
            .join(format!("{digest}.{CORPUS_EXT}"))
    }

    /// Acquire the advisory write lock (no-op handle in read-only
    /// mode, which never calls this with a mutation in hand).
    fn write_guard(&self) -> io::Result<Option<lock::LockGuard<'_>>> {
        self.lock.as_ref().map(|l| l.acquire()).transpose()
    }

    /// Scan both snapshot directories: drop dead writers' `.tmp`
    /// orphans, quarantine invalid files, index the rest in
    /// `(mtime, stem)` order — oldest first, ties broken on the store
    /// id/digest — so the LRU clock reflects pre-restart recency and
    /// never depends on `read_dir` order. Read-only stores index
    /// without mutating anything.
    fn scan(&self) -> io::Result<()> {
        let mut found: Vec<(SystemTime, String, PathBuf, bool)> = Vec::new();
        for (dir, is_atlas) in [("atlases", true), ("corpora", false)] {
            for entry in fs::read_dir(self.config.root.join(dir))? {
                let path = entry?.path();
                if !path.is_file() {
                    continue;
                }
                let ext = path.extension().and_then(|e| e.to_str());
                if ext == Some(TMP_EXT) {
                    // Sweep tmp files unless a live sibling is still
                    // writing them (tmp names carry the writer's pid).
                    if !self.config.read_only && !tmp_writer_alive(&path) {
                        let _ = fs::remove_file(&path);
                    }
                    continue;
                }
                if ext != Some(if is_atlas { ATLAS_EXT } else { CORPUS_EXT }) {
                    continue;
                }
                let Some(stem) = path.file_stem().and_then(|s| s.to_str()).map(String::from) else {
                    self.quarantine_file(&path);
                    continue;
                };
                let modified = fs::metadata(&path)
                    .and_then(|m| m.modified())
                    .unwrap_or(SystemTime::UNIX_EPOCH);
                found.push((modified, stem, path, is_atlas));
            }
        }
        found.sort_by(|a, b| (a.0, &a.1).cmp(&(b.0, &b.1)));

        let mut index = self.index.lock().unwrap();
        for (modified, stem, path, is_atlas) in found {
            let Ok(bytes) = fs::read(&path) else {
                self.quarantine_file(&path);
                continue;
            };
            if is_atlas {
                match snapshot::peek_atlas(&bytes) {
                    Ok(peek) => {
                        let last_used = index.tick();
                        index.atlases.insert(
                            stem,
                            AtlasEntry {
                                bytes: bytes.len() as u64,
                                corpus: peek.corpus_digest,
                                last_used,
                            },
                        );
                    }
                    Err(e) => self.reject_file(&path, &e),
                }
            } else {
                match snapshot::peek_corpus(&bytes) {
                    Ok(peek) if peek.digest == stem => {
                        let last_used = index.tick();
                        index.corpora.insert(
                            stem,
                            CorpusEntry {
                                bytes: bytes.len() as u64,
                                origin: peek.origin,
                                modified,
                                last_used,
                            },
                        );
                    }
                    // A valid frame whose embedded digest disagrees
                    // with its filename is misplaced content — damage.
                    Ok(_) => self.quarantine_file(&path),
                    Err(e) => self.reject_file(&path, &e),
                }
            }
        }
        Ok(())
    }

    /// Handle a file that failed snapshot validation: *corruption*
    /// (checksum/structure damage) is quarantined; anything else — a
    /// version or kind this build does not speak, possibly written by a
    /// sibling process running a different build — is left in place,
    /// unindexed, so we never fight the sibling that owns it.
    fn reject_file(&self, path: &Path, err: &snapshot::SnapshotError) {
        if err.is_corruption() {
            self.quarantine_file(path);
        }
    }

    // -- atlases ------------------------------------------------------

    /// Whether an atlas snapshot is stored under `store_id`.
    pub fn contains_atlas(&self, store_id: &str) -> bool {
        self.index.lock().unwrap().atlases.contains_key(store_id)
    }

    /// Read an atlas snapshot's bytes, counting a hit or miss. An index
    /// miss re-probes the filesystem (a sibling process may have
    /// persisted it since our boot scan); a vanished file (sibling
    /// eviction) degrades to a miss; an unreadable or invalid file is
    /// quarantined on the spot (never in read-only mode) and reported
    /// as a miss.
    pub fn load_atlas(&self, store_id: &str) -> Option<Vec<u8>> {
        self.load(store_id, true)
    }

    /// Persist an atlas snapshot under `store_id`, recording which
    /// corpus it depends on (the budget never evicts a corpus out from
    /// under its atlases). Returns `false` without writing when the
    /// store is read-only or the file already exists — including one a
    /// sibling process persisted after our boot scan, which is adopted
    /// into the index instead of rewritten (identical name means
    /// identical content under content addressing; a damaged impostor
    /// is caught and quarantined at load time).
    pub fn persist_atlas(
        &self,
        store_id: &str,
        corpus_digest: &str,
        bytes: &[u8],
    ) -> io::Result<bool> {
        if self.config.read_only {
            return Ok(false);
        }
        let mut index = self.index.lock().unwrap();
        if index.atlases.contains_key(store_id) {
            return Ok(false);
        }
        let path = self.atlas_path(store_id);
        if let Ok(meta) = fs::metadata(&path) {
            let last_used = index.tick();
            index.atlases.insert(
                store_id.to_string(),
                AtlasEntry {
                    bytes: meta.len(),
                    corpus: corpus_digest.to_string(),
                    last_used,
                },
            );
            self.rescans.fetch_add(1, Ordering::Relaxed);
            return Ok(false);
        }
        let _guard = self.write_guard()?;
        write_atomic(&path, bytes, &self.config.faults)?;
        let last_used = index.tick();
        index.atlases.insert(
            store_id.to_string(),
            AtlasEntry {
                bytes: bytes.len() as u64,
                corpus: corpus_digest.to_string(),
                last_used,
            },
        );
        self.writes.fetch_add(1, Ordering::Relaxed);
        self.enforce_budget(&mut index);
        Ok(true)
    }

    /// Quarantine a stored atlas snapshot that failed to decode.
    pub fn quarantine_atlas(&self, store_id: &str) {
        let mut index = self.index.lock().unwrap();
        index.atlases.remove(store_id);
        let guard = self.write_guard();
        self.quarantine_file(&self.atlas_path(store_id));
        drop(guard);
    }

    /// Remove every stored atlas built from `corpus_digest`; returns
    /// how many were removed.
    pub fn remove_atlases_for_corpus(&self, corpus_digest: &str) -> usize {
        let mut index = self.index.lock().unwrap();
        // Removal is idempotent and must not be blocked forever by a
        // wedged sibling: lock if possible, proceed regardless.
        let guard = self.write_guard();
        let doomed: Vec<String> = index
            .atlases
            .iter()
            .filter(|(_, e)| e.corpus == corpus_digest)
            .map(|(id, _)| id.clone())
            .collect();
        for id in &doomed {
            index.atlases.remove(id);
            let _ = self.unlink(&self.atlas_path(id));
        }
        drop(guard);
        doomed.len()
    }

    // -- corpora ------------------------------------------------------

    /// Whether a corpus snapshot is stored under `digest`.
    pub fn contains_corpus(&self, digest: &str) -> bool {
        self.index.lock().unwrap().corpora.contains_key(digest)
    }

    /// Read a corpus snapshot's bytes, counting a hit or miss. Index
    /// misses re-probe the filesystem, exactly like
    /// [`SnapshotStore::load_atlas`].
    pub fn load_corpus(&self, digest: &str) -> Option<Vec<u8>> {
        self.load(digest, false)
    }

    /// Persist a corpus snapshot under its digest. Returns `false`
    /// without writing when the store is read-only or the file already
    /// exists — content-addressing makes re-persists no-ops, including
    /// of snapshots a sibling process persisted after our boot scan.
    pub fn persist_corpus(
        &self,
        digest: &str,
        origin: CorpusOrigin,
        bytes: &[u8],
    ) -> io::Result<bool> {
        if self.config.read_only {
            return Ok(false);
        }
        let mut index = self.index.lock().unwrap();
        if index.corpora.contains_key(digest) {
            return Ok(false);
        }
        let path = self.corpus_path(digest);
        if let Ok(meta) = fs::metadata(&path) {
            let modified = meta.modified().unwrap_or_else(|_| SystemTime::now());
            let last_used = index.tick();
            index.corpora.insert(
                digest.to_string(),
                CorpusEntry {
                    bytes: meta.len(),
                    origin,
                    modified,
                    last_used,
                },
            );
            self.rescans.fetch_add(1, Ordering::Relaxed);
            return Ok(false);
        }
        let _guard = self.write_guard()?;
        write_atomic(&path, bytes, &self.config.faults)?;
        let last_used = index.tick();
        index.corpora.insert(
            digest.to_string(),
            CorpusEntry {
                bytes: bytes.len() as u64,
                origin,
                modified: SystemTime::now(),
                last_used,
            },
        );
        self.writes.fetch_add(1, Ordering::Relaxed);
        self.enforce_budget(&mut index);
        Ok(true)
    }

    /// Quarantine a stored corpus snapshot that failed to decode.
    pub fn quarantine_corpus(&self, digest: &str) {
        let mut index = self.index.lock().unwrap();
        index.corpora.remove(digest);
        let guard = self.write_guard();
        self.quarantine_file(&self.corpus_path(digest));
        drop(guard);
    }

    /// Remove a stored corpus snapshot (the `DELETE /corpus/{digest}`
    /// path — callers remove its atlases too). Returns whether a file
    /// was removed.
    pub fn remove_corpus(&self, digest: &str) -> bool {
        let mut index = self.index.lock().unwrap();
        let had = index.corpora.remove(digest).is_some();
        if had {
            let guard = self.write_guard();
            let _ = self.unlink(&self.corpus_path(digest));
            drop(guard);
        }
        had
    }

    /// Every stored corpus, for the boot-time registry restore.
    pub fn corpora(&self) -> Vec<StoredCorpus> {
        let index = self.index.lock().unwrap();
        let mut out: Vec<StoredCorpus> = index
            .corpora
            .iter()
            .map(|(digest, e)| StoredCorpus {
                digest: digest.clone(),
                bytes: e.bytes,
                origin: e.origin,
                modified: e.modified,
            })
            .collect();
        out.sort_by(|a, b| a.digest.cmp(&b.digest));
        out
    }

    /// Disk footprint of one corpus: its own snapshot plus every atlas
    /// snapshot built from it.
    pub fn disk_usage_for(&self, corpus_digest: &str) -> CorpusDiskUsage {
        let index = self.index.lock().unwrap();
        let mut usage = CorpusDiskUsage {
            corpus_bytes: index.corpora.get(corpus_digest).map_or(0, |e| e.bytes),
            ..CorpusDiskUsage::default()
        };
        for e in index.atlases.values() {
            if e.corpus == corpus_digest {
                usage.atlas_bytes += e.bytes;
                usage.atlas_count += 1;
            }
        }
        usage
    }

    // -- shared internals ---------------------------------------------

    fn load(&self, id: &str, is_atlas: bool) -> Option<Vec<u8>> {
        let mut index = self.index.lock().unwrap();
        let present = if is_atlas {
            index.atlases.contains_key(id)
        } else {
            index.corpora.contains_key(id)
        };
        let path = if is_atlas {
            self.atlas_path(id)
        } else {
            self.corpus_path(id)
        };
        if !present {
            return self.reprobe(&mut index, id, &path, is_atlas);
        }
        match fs::read(&path) {
            Ok(bytes) => {
                let tick = index.tick();
                if is_atlas {
                    index.atlases.get_mut(id).unwrap().last_used = tick;
                } else {
                    index.corpora.get_mut(id).unwrap().last_used = tick;
                }
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(bytes)
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                // A sibling process evicted or removed this snapshot
                // after we indexed it. Nothing is damaged — drop the
                // stale entry and report a miss so the caller rebuilds.
                if is_atlas {
                    index.atlases.remove(id);
                } else {
                    index.corpora.remove(id);
                }
                self.rescans.fetch_add(1, Ordering::Relaxed);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
            Err(_) => {
                if is_atlas {
                    index.atlases.remove(id);
                } else {
                    index.corpora.remove(id);
                }
                let guard = self.write_guard();
                self.quarantine_file(&path);
                drop(guard);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// An index miss re-probes the filesystem: a sibling process may
    /// have persisted this snapshot after our boot scan. Anything found
    /// is validated (full checksum via the peek) before being adopted
    /// into the index and served as a hit.
    fn reprobe(&self, index: &mut Index, id: &str, path: &Path, is_atlas: bool) -> Option<Vec<u8>> {
        let Ok(bytes) = fs::read(path) else {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        };
        let adopted = if is_atlas {
            match snapshot::peek_atlas(&bytes) {
                Ok(peek) => {
                    let last_used = index.tick();
                    index.atlases.insert(
                        id.to_string(),
                        AtlasEntry {
                            bytes: bytes.len() as u64,
                            corpus: peek.corpus_digest,
                            last_used,
                        },
                    );
                    true
                }
                Err(e) => {
                    let guard = self.write_guard();
                    self.reject_file(path, &e);
                    drop(guard);
                    false
                }
            }
        } else {
            match snapshot::peek_corpus(&bytes) {
                Ok(peek) if peek.digest == id => {
                    let modified = fs::metadata(path)
                        .and_then(|m| m.modified())
                        .unwrap_or_else(|_| SystemTime::now());
                    let last_used = index.tick();
                    index.corpora.insert(
                        id.to_string(),
                        CorpusEntry {
                            bytes: bytes.len() as u64,
                            origin: peek.origin,
                            modified,
                            last_used,
                        },
                    );
                    true
                }
                Ok(_) => {
                    let guard = self.write_guard();
                    self.quarantine_file(path);
                    drop(guard);
                    false
                }
                Err(e) => {
                    let guard = self.write_guard();
                    self.reject_file(path, &e);
                    drop(guard);
                    false
                }
            }
        };
        if adopted {
            self.rescans.fetch_add(1, Ordering::Relaxed);
            self.hits.fetch_add(1, Ordering::Relaxed);
            Some(bytes)
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
            None
        }
    }

    /// Move a damaged file into `quarantine/` (kept, not deleted, so a
    /// torn write can be examined) and count it. Read-only stores count
    /// without touching the file.
    fn quarantine_file(&self, path: &Path) {
        self.corrupt.fetch_add(1, Ordering::Relaxed);
        if self.config.read_only {
            return;
        }
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or("unnamed");
        let mut target = self.config.root.join("quarantine").join(name);
        let mut n = 0u32;
        while target.exists() {
            n += 1;
            target = self
                .config
                .root
                .join("quarantine")
                .join(format!("{name}.{n}"));
        }
        if fs::rename(path, &target).is_err() {
            let _ = fs::remove_file(path);
        }
    }

    /// Unlink a snapshot file through the fault plan. A file a sibling
    /// already removed counts as success.
    fn unlink(&self, path: &Path) -> io::Result<()> {
        self.config.faults.check(FaultOp::Unlink)?;
        match fs::remove_file(path) {
            Err(e) if e.kind() != io::ErrorKind::NotFound => Err(e),
            _ => Ok(()),
        }
    }

    /// Evict least-recently-used files until under the budget: atlases
    /// first (rebuildable from their corpus), then corpora no remaining
    /// atlas references. Callers hold the write lock. A failed unlink
    /// stops eviction (the entry stays indexed, the budget re-checks at
    /// the next write) rather than looping on the same victim.
    fn enforce_budget(&self, index: &mut Index) {
        if self.config.max_disk_bytes == 0 {
            return;
        }
        while index.total_bytes() > self.config.max_disk_bytes {
            if let Some(id) = lru_key(index.atlases.iter().map(|(k, e)| (k, e.last_used))) {
                if self.unlink(&self.atlas_path(&id)).is_err() {
                    return;
                }
                index.atlases.remove(&id);
                self.evictions.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            let unreferenced = index
                .corpora
                .iter()
                .filter(|(d, _)| index.atlases.values().all(|a| &a.corpus != *d))
                .map(|(d, e)| (d, e.last_used));
            let Some(digest) = lru_key(unreferenced) else {
                break;
            };
            if self.unlink(&self.corpus_path(&digest)).is_err() {
                return;
            }
            index.corpora.remove(&digest);
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Current counters and gauges.
    pub fn stats(&self) -> StoreStats {
        let index = self.index.lock().unwrap();
        StoreStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            corrupt: self.corrupt.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            rescans: self.rescans.load(Ordering::Relaxed),
            lock_acquisitions: self.lock.as_ref().map_or(0, |l| l.acquisitions()),
            lock_steals: self.lock.as_ref().map_or(0, |l| l.steals()),
            lock_contentions: self.lock.as_ref().map_or(0, |l| l.contentions()),
            atlas_files: index.atlases.len() as u64,
            corpus_files: index.corpora.len() as u64,
            atlas_bytes: index.atlases.values().map(|e| e.bytes).sum(),
            corpus_bytes: index.corpora.values().map(|e| e.bytes).sum(),
            max_disk_bytes: self.config.max_disk_bytes,
        }
    }
}

fn lru_key<'a>(entries: impl Iterator<Item = (&'a String, u64)>) -> Option<String> {
    entries
        .min_by_key(|&(k, used)| (used, k.clone()))
        .map(|(k, _)| k.clone())
}

/// Whether a `.tmp` file belongs to a live sibling's in-flight write.
/// Tmp names carry the writer's pid (`<name>.<ext>.<pid>.tmp`); an
/// unparsable pid, a dead pid, or our own pid (we have no in-flight
/// writes while scanning at open) all mean "sweep it".
fn tmp_writer_alive(path: &Path) -> bool {
    let Some(stem) = path.file_stem().and_then(|s| s.to_str()) else {
        return false;
    };
    let Some(pid) = stem.rsplit('.').next().and_then(|p| p.parse::<u32>().ok()) else {
        return false;
    };
    pid != std::process::id() && lock::pid_alive(pid)
}

/// Write `bytes` to `path` atomically: a sibling pid-tagged `.tmp` file
/// is written, fsynced, then renamed over the final path (the directory
/// is fsynced best-effort afterwards). Readers either see the old file
/// or the complete new one, never a torn write; two processes writing
/// the same content-addressed path use distinct tmp names, and whichever
/// rename lands last wins with identical bytes. On failure the tmp file
/// is removed best-effort (a crash leaves it for the boot sweep).
fn write_atomic(path: &Path, bytes: &[u8], faults: &FaultPlan) -> io::Result<()> {
    let file_name = path
        .file_name()
        .and_then(|n| n.to_str())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "bad snapshot path"))?;
    let parent = path
        .parent()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "bad snapshot path"))?;
    let tmp = parent.join(format!("{file_name}.{}.{TMP_EXT}", std::process::id()));
    let result = (|| {
        faults.check(FaultOp::Create)?;
        let mut f = fs::File::create(&tmp)?;
        // The payload lands in two halves around the fault check, so an
        // injected write fault (or a SIGKILL during a stalled one)
        // leaves a genuinely torn tmp file for the sweep to prove
        // itself against.
        let mid = bytes.len() / 2;
        f.write_all(&bytes[..mid])?;
        faults.check(FaultOp::Write)?;
        f.write_all(&bytes[mid..])?;
        faults.check(FaultOp::Sync)?;
        f.sync_all()?;
        faults.check(FaultOp::Rename)?;
        fs::rename(&tmp, path)
    })();
    match result {
        Ok(()) => {
            if let Ok(dir) = fs::File::open(parent) {
                let _ = dir.sync_all();
            }
            Ok(())
        }
        Err(e) => {
            let _ = fs::remove_file(&tmp);
            Err(e)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    static DIR_SEQ: AtomicUsize = AtomicUsize::new(0);

    /// A unique scratch directory, removed when dropped.
    struct Scratch(PathBuf);

    impl Scratch {
        fn new() -> Self {
            let dir = std::env::temp_dir().join(format!(
                "atlas-store-test-{}-{}",
                std::process::id(),
                DIR_SEQ.fetch_add(1, Ordering::Relaxed)
            ));
            fs::create_dir_all(&dir).unwrap();
            Scratch(dir)
        }

        fn store(&self, max_disk_bytes: u64) -> SnapshotStore {
            SnapshotStore::open(StoreConfig {
                max_disk_bytes,
                ..StoreConfig::new(self.0.clone())
            })
            .unwrap()
        }
    }

    impl Drop for Scratch {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.0);
        }
    }

    /// A minimal valid corpus snapshot (tiny hand-built corpus). `tag`
    /// varies the content, so distinct tags yield distinct digests.
    fn corpus_bytes_tagged(tag: &str) -> (String, Vec<u8>) {
        use recipedb::store::RecipeDbBuilder;
        use recipedb::Cuisine;
        let mut b = RecipeDbBuilder::new();
        let salt = b.catalog_mut().intern_ingredient("salt");
        let rice = b.catalog_mut().intern_ingredient(tag);
        let boil = b.catalog_mut().intern_process("boil");
        let pan = b.catalog_mut().intern_utensil("pan");
        b.add_recipe(
            "dish",
            Cuisine::ALL[0],
            vec![salt, rice],
            vec![boil],
            vec![pan],
        );
        let db = b.build().unwrap();
        let digest = recipedb::corpus_digest(&db);
        let bytes = snapshot::encode_corpus(&db, CorpusOrigin::Uploaded, 42).unwrap();
        (digest, bytes)
    }

    fn corpus_bytes() -> (String, Vec<u8>) {
        corpus_bytes_tagged("rice")
    }

    #[test]
    fn persist_load_roundtrip_and_counters() {
        let scratch = Scratch::new();
        let store = scratch.store(0);
        let (digest, bytes) = corpus_bytes();

        assert!(store.load_corpus(&digest).is_none());
        assert!(store
            .persist_corpus(&digest, CorpusOrigin::Uploaded, &bytes)
            .unwrap());
        // Re-persisting identical content is a no-op.
        assert!(!store
            .persist_corpus(&digest, CorpusOrigin::Uploaded, &bytes)
            .unwrap());
        assert_eq!(store.load_corpus(&digest).unwrap(), bytes);

        let stats = store.stats();
        assert_eq!((stats.hits, stats.misses, stats.writes), (1, 1, 1));
        assert_eq!(stats.corpus_files, 1);
        assert_eq!(stats.corpus_bytes, bytes.len() as u64);
        assert!(
            stats.lock_acquisitions >= 1,
            "the persist must have taken the write lock"
        );
        assert_eq!(stats.lock_steals, 0);
        assert!(
            !scratch.0.join(lock::LOCK_FILE).exists(),
            "the short-held lock must be released"
        );
    }

    #[test]
    fn reopen_restores_the_index() {
        let scratch = Scratch::new();
        let (digest, bytes) = corpus_bytes();
        {
            let store = scratch.store(0);
            store
                .persist_corpus(&digest, CorpusOrigin::Uploaded, &bytes)
                .unwrap();
            store
                .persist_atlas("aaaa", &digest, b"not-checked-here")
                .ok();
        }
        // "aaaa" is not a valid snapshot — the reopen scan must
        // quarantine it and keep the valid corpus.
        let store = scratch.store(0);
        assert!(store.contains_corpus(&digest));
        assert!(!store.contains_atlas("aaaa"));
        let stats = store.stats();
        assert_eq!(stats.corrupt, 1);
        assert!(scratch.0.join("quarantine").join("aaaa.atlas").exists());
        let listed = store.corpora();
        assert_eq!(listed.len(), 1);
        assert_eq!(listed[0].digest, digest);
        assert_eq!(listed[0].origin, CorpusOrigin::Uploaded);
    }

    #[test]
    fn tmp_leftovers_are_swept_on_open() {
        let scratch = Scratch::new();
        let store = scratch.store(0);
        // No pid in the name (legacy/garbage) and a dead writer's pid
        // both sweep; a live sibling's in-flight tmp is left alone.
        let torn = scratch.0.join("atlases").join("torn.atlas.tmp");
        fs::write(&torn, b"half a snapshot").unwrap();
        let dead = {
            let mut child = std::process::Command::new("true").spawn().unwrap();
            let pid = child.id();
            child.wait().unwrap();
            scratch.0.join("atlases").join(format!("x.atlas.{pid}.tmp"))
        };
        fs::write(&dead, b"dead writer").unwrap();
        drop(store);

        let store = scratch.store(0);
        assert!(!torn.exists(), "tmp orphan must be swept at open");
        assert!(!dead.exists(), "dead writer's tmp must be swept at open");
        assert_eq!(store.stats().corrupt, 0, "a tmp sweep is not corruption");
    }

    #[test]
    fn live_sibling_tmp_files_survive_the_sweep() {
        let scratch = Scratch::new();
        // A long-lived child stands in for a sibling process mid-write.
        let mut child = std::process::Command::new("sleep")
            .arg("30")
            .spawn()
            .unwrap();
        let live = scratch
            .0
            .join("atlases")
            .join(format!("y.atlas.{}.tmp", child.id()));
        fs::create_dir_all(scratch.0.join("atlases")).unwrap();
        fs::write(&live, b"in flight").unwrap();

        let _store = scratch.store(0);
        assert!(live.exists(), "a live sibling's tmp must not be swept");
        child.kill().unwrap();
        child.wait().unwrap();
    }

    #[test]
    fn corrupted_corpus_is_quarantined_on_reopen() {
        let scratch = Scratch::new();
        let (digest, bytes) = corpus_bytes();
        {
            let store = scratch.store(0);
            store
                .persist_corpus(&digest, CorpusOrigin::Uploaded, &bytes)
                .unwrap();
        }
        // Flip one byte in place.
        let path = scratch.0.join("corpora").join(format!("{digest}.corpus"));
        let mut damaged = fs::read(&path).unwrap();
        let mid = damaged.len() / 2;
        damaged[mid] ^= 0x01;
        fs::write(&path, &damaged).unwrap();

        let store = scratch.store(0);
        assert!(!store.contains_corpus(&digest));
        assert_eq!(store.stats().corrupt, 1);
        assert!(!path.exists());
    }

    #[test]
    fn budget_evicts_lru_atlases_before_corpora() {
        let scratch = Scratch::new();
        let (digest, bytes) = corpus_bytes();
        let store = scratch.store((bytes.len() + 220) as u64);
        store
            .persist_corpus(&digest, CorpusOrigin::Uploaded, &bytes)
            .unwrap();
        // Three 100-byte atlases; budget holds the corpus + two.
        store.persist_atlas("a1", &digest, &[1u8; 100]).unwrap();
        store.persist_atlas("a2", &digest, &[2u8; 100]).unwrap();
        assert!(store.load_atlas("a1").is_some()); // a2 is now LRU
        store.persist_atlas("a3", &digest, &[3u8; 100]).unwrap();

        assert!(store.contains_atlas("a1"));
        assert!(!store.contains_atlas("a2"), "LRU atlas must be evicted");
        assert!(store.contains_atlas("a3"));
        assert!(
            store.contains_corpus(&digest),
            "referenced corpus must stay"
        );
        assert_eq!(store.stats().evictions, 1);
        assert!(store.stats().total_bytes() <= store.stats().max_disk_bytes);
    }

    #[test]
    fn budget_evicts_unreferenced_corpus_last() {
        let scratch = Scratch::new();
        let (digest, bytes) = corpus_bytes();
        let store = scratch.store(0);
        store
            .persist_corpus(&digest, CorpusOrigin::Uploaded, &bytes)
            .unwrap();
        store.persist_atlas("big", &digest, &[0u8; 4096]).unwrap();
        drop(store);

        // Reopen with a budget smaller than anything stored. The bogus
        // atlas bytes fail the boot scan's validation (quarantined, not
        // evicted), which leaves the corpus unreferenced — so the
        // budget may now evict it too.
        let store = SnapshotStore::open(StoreConfig {
            max_disk_bytes: 10,
            ..StoreConfig::new(scratch.0.clone())
        })
        .unwrap();
        assert_eq!(store.stats().atlas_files, 0);
        assert_eq!(store.stats().corpus_files, 0);
        assert_eq!(store.stats().corrupt, 1);
        assert_eq!(store.stats().evictions, 1);
    }

    #[test]
    fn boot_scan_lru_seeding_breaks_mtime_ties_on_digest() {
        // Two corpora written with identical mtimes: the eviction order
        // must come from the digest tie-break, not read_dir order.
        let scratch = Scratch::new();
        let (d1, b1) = corpus_bytes_tagged("alpha");
        let (d2, b2) = corpus_bytes_tagged("beta");
        {
            let store = scratch.store(0);
            store
                .persist_corpus(&d1, CorpusOrigin::Uploaded, &b1)
                .unwrap();
            store
                .persist_corpus(&d2, CorpusOrigin::Uploaded, &b2)
                .unwrap();
        }
        let t = SystemTime::UNIX_EPOCH + Duration::from_secs(1_700_000_000);
        for digest in [&d1, &d2] {
            fs::File::options()
                .write(true)
                .open(scratch.0.join("corpora").join(format!("{digest}.corpus")))
                .unwrap()
                .set_modified(t)
                .unwrap();
        }
        // Reopen with a budget that holds exactly one corpus: the
        // lexicographically smaller digest is older in the seeded LRU
        // clock and must be the one evicted — deterministically.
        let survivor = if d1 < d2 { &d2 } else { &d1 };
        let evicted = if d1 < d2 { &d1 } else { &d2 };
        for _ in 0..3 {
            let store = SnapshotStore::open(StoreConfig {
                max_disk_bytes: b1.len().max(b2.len()) as u64,
                ..StoreConfig::new(scratch.0.clone())
            })
            .unwrap();
            assert!(
                store.contains_corpus(survivor),
                "tie-break must keep the larger digest"
            );
            assert!(!store.contains_corpus(evicted));
            drop(store);
            // Re-create the evicted file for the next round.
            let (d, b) = if evicted == &d1 {
                (&d1, &b1)
            } else {
                (&d2, &b2)
            };
            let path = scratch.0.join("corpora").join(format!("{d}.corpus"));
            fs::write(&path, b).unwrap();
            for digest in [&d1, &d2] {
                let p = scratch.0.join("corpora").join(format!("{digest}.corpus"));
                fs::File::options()
                    .write(true)
                    .open(p)
                    .unwrap()
                    .set_modified(t)
                    .unwrap();
            }
        }
    }

    #[test]
    fn read_only_mode_reads_but_never_writes() {
        let scratch = Scratch::new();
        let (digest, bytes) = corpus_bytes();
        scratch
            .store(0)
            .persist_corpus(&digest, CorpusOrigin::Uploaded, &bytes)
            .unwrap();

        let store = SnapshotStore::open(StoreConfig {
            read_only: true,
            ..StoreConfig::new(scratch.0.clone())
        })
        .unwrap();
        assert_eq!(store.load_corpus(&digest).unwrap(), bytes);
        assert!(!store.persist_atlas("x", &digest, b"data").unwrap());
        assert!(!store.contains_atlas("x"));
        let stats = store.stats();
        assert_eq!(stats.writes, 0);
        assert_eq!(
            stats.lock_acquisitions, 0,
            "read-only mode never takes the lock"
        );
        assert!(!scratch.0.join(lock::LOCK_FILE).exists());
    }

    #[test]
    fn read_only_boot_scan_never_mutates_the_directory() {
        let scratch = Scratch::new();
        let atlases = scratch.0.join("atlases");
        fs::create_dir_all(&atlases).unwrap();
        fs::write(atlases.join("torn.atlas.tmp"), b"half").unwrap();
        fs::write(atlases.join("bogus.atlas"), b"damaged").unwrap();

        let store = SnapshotStore::open(StoreConfig {
            read_only: true,
            ..StoreConfig::new(scratch.0.clone())
        })
        .unwrap();
        assert!(
            atlases.join("torn.atlas.tmp").exists(),
            "read-only boot must not sweep"
        );
        assert!(
            atlases.join("bogus.atlas").exists(),
            "read-only boot must not quarantine"
        );
        assert_eq!(
            store.stats().corrupt,
            1,
            "damage is still counted, just not moved"
        );
        assert!(!store.contains_atlas("bogus"));
    }

    #[test]
    fn remove_corpus_and_dependent_atlases() {
        let scratch = Scratch::new();
        let (digest, bytes) = corpus_bytes();
        let store = scratch.store(0);
        store
            .persist_corpus(&digest, CorpusOrigin::Uploaded, &bytes)
            .unwrap();
        store.persist_atlas("a1", &digest, &[1u8; 10]).unwrap();
        store.persist_atlas("a2", &digest, &[2u8; 10]).unwrap();
        store
            .persist_atlas("other", "feedbeef", &[3u8; 10])
            .unwrap();

        let usage = store.disk_usage_for(&digest);
        assert_eq!(usage.corpus_bytes, bytes.len() as u64);
        assert_eq!((usage.atlas_bytes, usage.atlas_count), (20, 2));

        assert_eq!(store.remove_atlases_for_corpus(&digest), 2);
        assert!(store.remove_corpus(&digest));
        assert!(!store.remove_corpus(&digest));
        assert!(store.contains_atlas("other"));
        assert_eq!(store.stats().corpus_files, 0);
        assert_eq!(store.stats().atlas_files, 1);
    }

    // -- multi-process behaviour (two stores, one directory) ----------

    #[test]
    fn index_miss_reprobes_a_sibling_processes_write() {
        let scratch = Scratch::new();
        let a = scratch.store(0);
        let b = scratch.store(0); // boots on the same (empty) dir
        let (digest, bytes) = corpus_bytes();
        a.persist_corpus(&digest, CorpusOrigin::Uploaded, &bytes)
            .unwrap();

        // B never saw the persist — its boot scan predates it. The read
        // path must find the file anyway.
        assert!(!b.contains_corpus(&digest));
        assert_eq!(b.load_corpus(&digest).unwrap(), bytes);
        assert!(b.contains_corpus(&digest), "re-probe adopts the snapshot");
        let stats = b.stats();
        assert_eq!((stats.hits, stats.misses), (1, 0));
        assert_eq!(stats.rescans, 1);
        assert_eq!(stats.corrupt, 0);
    }

    #[test]
    fn sibling_eviction_degrades_to_a_miss_not_an_error() {
        let scratch = Scratch::new();
        let a = scratch.store(0);
        let (digest, bytes) = corpus_bytes();
        a.persist_corpus(&digest, CorpusOrigin::Uploaded, &bytes)
            .unwrap();
        a.persist_atlas("shared", &digest, &bytes).ok();

        let b = scratch.store(0); // indexes the corpus file at boot
        assert!(b.contains_corpus(&digest));
        // A (the "sibling process") removes it behind B's back.
        assert!(a.remove_corpus(&digest));

        // B's load must degrade to a miss — no quarantine, no panic —
        // so the serving layer rebuilds instead of erroring.
        assert!(b.load_corpus(&digest).is_none());
        let stats = b.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.corrupt, 0, "a vanished file is not corruption");
        assert!(stats.rescans >= 1, "the stale entry was dropped");
        assert!(!b.contains_corpus(&digest));
        // And B can persist it again afterwards.
        assert!(b
            .persist_corpus(&digest, CorpusOrigin::Uploaded, &bytes)
            .unwrap());
    }

    #[test]
    fn persist_adopts_a_sibling_processes_snapshot_without_rewriting() {
        let scratch = Scratch::new();
        let a = scratch.store(0);
        let b = scratch.store(0);
        let (digest, bytes) = corpus_bytes();
        a.persist_corpus(&digest, CorpusOrigin::Uploaded, &bytes)
            .unwrap();

        // B re-persists the same content: no duplicate write, but the
        // index adopts the file so accounting and loads work.
        assert!(!b
            .persist_corpus(&digest, CorpusOrigin::Uploaded, &bytes)
            .unwrap());
        assert_eq!(b.stats().writes, 0);
        assert_eq!(b.stats().rescans, 1);
        assert!(b.contains_corpus(&digest));
        assert_eq!(b.stats().corpus_bytes, bytes.len() as u64);
    }

    // -- fault injection ----------------------------------------------

    #[test]
    fn faulted_persists_error_without_leaving_visible_files() {
        let (digest, bytes) = corpus_bytes();
        for op in [
            FaultOp::Create,
            FaultOp::Write,
            FaultOp::Sync,
            FaultOp::Rename,
        ] {
            let scratch = Scratch::new();
            let store = SnapshotStore::open(StoreConfig {
                faults: FaultPlan::failing(op, 1, io::ErrorKind::Other),
                ..StoreConfig::new(scratch.0.clone())
            })
            .unwrap();
            let err = store
                .persist_corpus(&digest, CorpusOrigin::Uploaded, &bytes)
                .expect_err("injected fault must surface");
            assert_eq!(err.kind(), io::ErrorKind::Other, "{op:?}");
            assert!(
                !store.contains_corpus(&digest),
                "{op:?}: failed persist must not be indexed"
            );
            let visible: Vec<_> = fs::read_dir(scratch.0.join("corpora"))
                .unwrap()
                .flatten()
                .map(|e| e.path())
                .filter(|p| p.extension().and_then(|e| e.to_str()) == Some(CORPUS_EXT))
                .collect();
            assert!(
                visible.is_empty(),
                "{op:?}: no visible snapshot may appear: {visible:?}"
            );
            assert!(
                !scratch.0.join(lock::LOCK_FILE).exists(),
                "{op:?}: the lock must be released on the error path"
            );
            // The store stays usable: a clean retry succeeds.
            assert!(store
                .persist_corpus(&digest, CorpusOrigin::Uploaded, &bytes)
                .unwrap());
            assert_eq!(store.load_corpus(&digest).unwrap(), bytes);
        }
    }

    #[test]
    fn faulted_eviction_unlink_stops_cleanly() {
        let scratch = Scratch::new();
        let (digest, bytes) = corpus_bytes();
        let store = SnapshotStore::open(StoreConfig {
            max_disk_bytes: (bytes.len() + 120) as u64,
            faults: FaultPlan::failing(FaultOp::Unlink, 1, io::ErrorKind::PermissionDenied),
            ..StoreConfig::new(scratch.0.clone())
        })
        .unwrap();
        store
            .persist_corpus(&digest, CorpusOrigin::Uploaded, &bytes)
            .unwrap();
        store.persist_atlas("a1", &digest, &[1u8; 100]).unwrap();
        // Over budget; the eviction unlink faults. The victim must stay
        // indexed (its file is still on disk) and nothing may loop.
        store.persist_atlas("a2", &digest, &[2u8; 100]).unwrap();
        assert_eq!(store.stats().evictions, 0);
        assert!(store.contains_atlas("a1"));
        assert!(store.load_atlas("a1").is_some());
        // The next budget pass (fault exhausted) evicts normally.
        store.persist_atlas("a3", &digest, &[3u8; 100]).unwrap();
        assert!(store.stats().evictions >= 1);
    }
}
