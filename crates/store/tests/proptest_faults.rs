//! Property test: single-fault schedules across the persist pipeline.
//!
//! For an arbitrary injected fault — any store I/O primitive (tmp-file
//! create, payload write, fsync, commit rename, eviction unlink), any
//! occurrence position, any `io::ErrorKind` — drive a persist workload
//! through the fault and assert the store's durability invariant after
//! every step:
//!
//! > Visible snapshots always decode clean; damaged residue is only
//! > ever a `.tmp` file or inside `quarantine/` — and a clean reopen
//! > of the directory always recovers to a fully working store.
//!
//! The case count defaults to 64 and is raised in CI's fault-injection
//! smoke job via `ATLAS_FAULT_CASES`.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

use atlas_store::{FaultOp, FaultPlan, SnapshotStore, StoreConfig};
use cuisine_atlas::pipeline::{AtlasConfig, CuisineAtlas};
use cuisine_atlas::snapshot::{self, CorpusOrigin};
use proptest::prelude::*;

static DIR_SEQ: AtomicUsize = AtomicUsize::new(0);

struct Scratch(PathBuf);

impl Scratch {
    fn new() -> Scratch {
        let dir = std::env::temp_dir().join(format!(
            "atlas-store-prop-{}-{}",
            std::process::id(),
            DIR_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        fs::create_dir_all(&dir).unwrap();
        Scratch(dir)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

/// Real, checksummed snapshot bytes — the invariant is "visible files
/// decode clean", so the inputs must be genuine frames, built once.
struct Fixture {
    digest: String,
    corpus: Vec<u8>,
    atlas: Vec<u8>,
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        use recipedb::store::RecipeDbBuilder;
        use recipedb::Cuisine;
        // Three cuisines, four recipes each: big enough to cluster,
        // small enough that the one-time atlas build is nearly free.
        let mut b = RecipeDbBuilder::new();
        let ings: Vec<_> = (0..6)
            .map(|i| b.catalog_mut().intern_ingredient(&format!("ing-{i}")))
            .collect();
        let procs: Vec<_> = (0..3)
            .map(|i| b.catalog_mut().intern_process(&format!("proc-{i}")))
            .collect();
        for (ci, &cuisine) in Cuisine::ALL[..3].iter().enumerate() {
            for r in 0..4 {
                b.add_recipe(
                    format!("r{ci}-{r}"),
                    cuisine,
                    vec![ings[ci], ings[(ci + r) % 6], ings[5 - ci]],
                    vec![procs[(ci + r) % 3]],
                    vec![],
                );
            }
        }
        let db = Arc::new(b.build().unwrap());
        let digest = recipedb::corpus_digest(&db);
        let corpus = snapshot::encode_corpus(&db, CorpusOrigin::Uploaded, 7).unwrap();
        let atlas_obj = CuisineAtlas::from_shared(Arc::clone(&db), &AtlasConfig::quick(1));
        let atlas = snapshot::encode_atlas(&atlas_obj, &digest);
        Fixture {
            digest,
            corpus,
            atlas,
        }
    })
}

/// The durability invariant, checked between every pipeline step:
/// every *visible* snapshot file decodes clean; everything else in the
/// snapshot directories is `.tmp` residue (swept at the next boot).
fn assert_invariants(root: &Path) {
    for dir in ["atlases", "corpora"] {
        for entry in fs::read_dir(root.join(dir)).unwrap() {
            let path = entry.unwrap().path();
            let ext = path.extension().and_then(|e| e.to_str());
            match ext {
                Some("tmp") => {} // crash residue, swept at boot
                Some("atlas") => {
                    let bytes = fs::read(&path).unwrap();
                    snapshot::peek_atlas(&bytes)
                        .unwrap_or_else(|e| panic!("torn visible atlas {}: {e}", path.display()));
                }
                Some("corpus") => {
                    let bytes = fs::read(&path).unwrap();
                    let peek = snapshot::peek_corpus(&bytes)
                        .unwrap_or_else(|e| panic!("torn visible corpus {}: {e}", path.display()));
                    let stem = path.file_stem().unwrap().to_str().unwrap();
                    assert_eq!(
                        peek.digest,
                        stem,
                        "visible corpus misnamed: {}",
                        path.display()
                    );
                }
                _ => panic!("unexpected residue {}", path.display()),
            }
        }
    }
}

fn open(root: &Path, max_disk_bytes: u64, faults: FaultPlan) -> SnapshotStore {
    SnapshotStore::open(StoreConfig {
        max_disk_bytes,
        faults,
        ..StoreConfig::new(root.to_path_buf())
    })
    .expect("open never hits injected faults on an empty/clean dir")
}

fn op_strategy() -> impl Strategy<Value = FaultOp> {
    prop_oneof![
        Just(FaultOp::Create),
        Just(FaultOp::Write),
        Just(FaultOp::Sync),
        Just(FaultOp::Rename),
        Just(FaultOp::Unlink),
    ]
}

fn kind_strategy() -> impl Strategy<Value = io::ErrorKind> {
    prop_oneof![
        Just(io::ErrorKind::NotFound),
        Just(io::ErrorKind::PermissionDenied),
        Just(io::ErrorKind::Interrupted),
        Just(io::ErrorKind::TimedOut),
        Just(io::ErrorKind::Other),
    ]
}

/// Case count, raised in CI via `ATLAS_FAULT_CASES` (the vendored
/// proptest has no env handling of its own).
fn fault_cases() -> u32 {
    std::env::var("ATLAS_FAULT_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(fault_cases()))]

    #[test]
    fn any_single_fault_never_tears_a_visible_snapshot(
        op in op_strategy(),
        nth in 1u64..=3,
        kind in kind_strategy(),
    ) {
        let fx = fixture();
        let scratch = Scratch::new();
        // Budget: the corpus plus one atlas fits, two atlases don't —
        // so persisting "a2" forces an eviction (an unlink site).
        let budget = (fx.corpus.len() + fx.atlas.len() + fx.atlas.len() / 2) as u64;
        let plan = FaultPlan::failing(op, nth, kind);
        let store = open(&scratch.0, budget, plan.clone());

        type Step<'a> = &'a dyn Fn(&SnapshotStore) -> io::Result<bool>;
        let steps: [Step<'_>; 3] = [
            &|s| s.persist_corpus(&fx.digest, CorpusOrigin::Uploaded, &fx.corpus),
            &|s| s.persist_atlas("a1", &fx.digest, &fx.atlas),
            &|s| s.persist_atlas("a2", &fx.digest, &fx.atlas),
        ];
        for step in steps {
            match step(&store) {
                Ok(_) => {}
                Err(e) => prop_assert_eq!(
                    e.kind(), kind,
                    "only the injected fault may surface"
                ),
            }
            assert_invariants(&scratch.0);
        }
        drop(store);

        // A clean reopen recovers completely: residue is swept, every
        // surviving file indexes, and the full workload re-persists.
        let store = open(&scratch.0, 0, FaultPlan::none());
        assert_invariants(&scratch.0);
        prop_assert_eq!(store.stats().corrupt, 0, "no torn file may reach the scan");
        store.persist_corpus(&fx.digest, CorpusOrigin::Uploaded, &fx.corpus).unwrap();
        store.persist_atlas("a1", &fx.digest, &fx.atlas).unwrap();
        store.persist_atlas("a2", &fx.digest, &fx.atlas).unwrap();
        prop_assert_eq!(store.load_corpus(&fx.digest).unwrap(), fx.corpus.clone());
        prop_assert_eq!(store.load_atlas("a1").unwrap(), fx.atlas.clone());
        prop_assert_eq!(store.load_atlas("a2").unwrap(), fx.atlas.clone());
        assert_invariants(&scratch.0);
    }
}
