//! Multi-threaded FP-Growth.
//!
//! The frequent-itemset search space partitions cleanly by the *last* item
//! (in frequency-rank order) of each itemset: patterns ending at rank `r`
//! are exactly the patterns found by mining `r`'s conditional tree under
//! suffix `{r}`. The global FP-tree is built once (sequentially — it is a
//! single linear pass) and shared read-only; worker threads then claim
//! ranks round-robin and mine their conditional trees independently.
//!
//! The output is the same complete collection [`crate::fpgrowth::FpGrowth`]
//! produces (asserted by the cross-check tests), in unspecified order.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU32, Ordering};

use crate::fpgrowth::{conditional_tree, mine_tree, FpTree};
use crate::itemset::{FrequentItemset, ItemId, Itemset};
use crate::transaction::TransactionDb;
use crate::{min_count, Miner};

/// Parallel FP-Growth over `n_threads` workers.
#[derive(Debug, Clone)]
pub struct ParallelFpGrowth {
    min_support: f64,
    n_threads: usize,
}

impl ParallelFpGrowth {
    /// Create a miner with a relative minimum support and a thread count
    /// (clamped to at least 1).
    pub fn new(min_support: f64, n_threads: usize) -> Self {
        assert!(
            min_support > 0.0 && min_support <= 1.0,
            "min_support must be in (0, 1], got {min_support}"
        );
        ParallelFpGrowth { min_support, n_threads: n_threads.max(1) }
    }

    /// A miner sized to the machine's available parallelism.
    pub fn with_available_parallelism(min_support: f64) -> Self {
        let n = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        Self::new(min_support, n)
    }
}

impl Miner for ParallelFpGrowth {
    fn mine(&self, db: &TransactionDb) -> Vec<FrequentItemset> {
        if db.is_empty() {
            return Vec::new();
        }
        let min_cnt = min_count(self.min_support, db.len());

        let counts = db.item_counts();
        let mut frequent: Vec<(ItemId, u64)> =
            counts.into_iter().filter(|&(_, c)| c >= min_cnt).collect();
        frequent.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        if frequent.is_empty() {
            return Vec::new();
        }
        let rank: HashMap<ItemId, u32> = frequent
            .iter()
            .enumerate()
            .map(|(i, &(item, _))| (item, i as u32))
            .collect();
        let items_by_rank: Vec<ItemId> = frequent.iter().map(|&(it, _)| it).collect();

        let mut tree = FpTree::new(frequent.len());
        let mut encoded: Vec<u32> = Vec::new();
        for row in db.rows() {
            encoded.clear();
            encoded.extend(row.iter().filter_map(|it| rank.get(it).copied()));
            encoded.sort_unstable();
            tree.insert(&encoded, 1);
        }

        let n_ranks = frequent.len() as u32;
        let next_rank = AtomicU32::new(0);
        let tree_ref = &tree;
        let items_ref = &items_by_rank;

        let mut chunks: Vec<Vec<FrequentItemset>> = Vec::new();
        crossbeam::scope(|scope| {
            let handles: Vec<_> = (0..self.n_threads)
                .map(|_| {
                    let next = &next_rank;
                    scope.spawn(move |_| {
                        let mut local: Vec<FrequentItemset> = Vec::new();
                        let mut suffix: Vec<u32> = Vec::new();
                        loop {
                            let r = next.fetch_add(1, Ordering::Relaxed);
                            if r >= n_ranks {
                                break;
                            }
                            let total = tree_ref.totals[r as usize];
                            if total < min_cnt {
                                continue;
                            }
                            suffix.clear();
                            suffix.push(r);
                            let mut emit = |ranks: &[u32], count: u64| {
                                let mut items: Vec<ItemId> = ranks
                                    .iter()
                                    .map(|&rr| items_ref[rr as usize])
                                    .collect();
                                items.sort_unstable();
                                local.push(FrequentItemset {
                                    items: Itemset::from_sorted(items),
                                    count,
                                });
                            };
                            emit(&suffix, total);
                            if let Some(cond) = conditional_tree(tree_ref, r, min_cnt) {
                                mine_tree(&cond, min_cnt, None, &mut suffix, &mut emit);
                            }
                        }
                        local
                    })
                })
                .collect();
            for h in handles {
                chunks.push(h.join().expect("worker panicked"));
            }
        })
        .expect("crossbeam scope");

        chunks.into_iter().flatten().collect()
    }

    fn min_support(&self) -> f64 {
        self.min_support
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fpgrowth::FpGrowth;
    use crate::itemset::sort_canonical;

    fn random_db(seed: u64, n: usize, universe: u32, avg_len: usize) -> TransactionDb {
        // Tiny xorshift so the test needs no extra dev-dependency here.
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let rows = (0..n)
            .map(|_| {
                let len = (next() as usize % (2 * avg_len)).max(1);
                (0..len).map(|_| (next() % universe as u64) as u32).collect()
            })
            .collect();
        TransactionDb::from_rows(rows)
    }

    #[test]
    fn matches_sequential_fpgrowth() {
        for seed in [1u64, 42, 1234] {
            let db = random_db(seed, 300, 20, 6);
            let mut seq = FpGrowth::new(0.1).mine(&db);
            let mut par = ParallelFpGrowth::new(0.1, 4).mine(&db);
            sort_canonical(&mut seq);
            sort_canonical(&mut par);
            assert_eq!(seq, par, "seed {seed}");
        }
    }

    #[test]
    fn single_thread_degenerates_gracefully() {
        let db = random_db(7, 100, 10, 4);
        let mut seq = FpGrowth::new(0.2).mine(&db);
        let mut par = ParallelFpGrowth::new(0.2, 1).mine(&db);
        sort_canonical(&mut seq);
        sort_canonical(&mut par);
        assert_eq!(seq, par);
    }

    #[test]
    fn more_threads_than_items_is_fine() {
        let db = TransactionDb::from_rows(vec![vec![1, 2], vec![1, 2], vec![2]]);
        let mut par = ParallelFpGrowth::new(0.5, 32).mine(&db);
        sort_canonical(&mut par);
        assert_eq!(par.len(), 3); // {1}, {2}, {1,2}
    }

    #[test]
    fn empty_db_yields_nothing() {
        assert!(ParallelFpGrowth::new(0.5, 4).mine(&TransactionDb::default()).is_empty());
    }

    #[test]
    fn zero_threads_clamped_to_one() {
        let m = ParallelFpGrowth::new(0.5, 0);
        let db = TransactionDb::from_rows(vec![vec![1], vec![1]]);
        assert_eq!(m.mine(&db).len(), 1);
    }
}
