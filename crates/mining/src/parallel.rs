//! Multi-threaded FP-Growth.
//!
//! The frequent-itemset search space partitions cleanly by the *last* item
//! (in frequency-rank order) of each itemset: patterns ending at rank `r`
//! are exactly the patterns found by mining `r`'s conditional tree under
//! suffix `{r}`. The global FP-tree is built once (sequentially — it is a
//! single linear pass) and shared read-only; worker threads then claim
//! ranks and mine their conditional trees independently.
//!
//! Two properties matter beyond raw speed:
//!
//! * **Determinism** — per-rank results land in per-rank slots and are
//!   concatenated in the order the sequential miner visits ranks, so the
//!   output is *exactly* [`crate::fpgrowth::FpGrowth`]'s output — same
//!   itemsets, same counts, same order — for any thread count (asserted
//!   by the cross-check tests). Downstream feature encodings can therefore
//!   swap miners freely without perturbing a single byte.
//! * **Load balance** — conditional-tree cost is highly skewed: rare
//!   (high-rank) items sit deep in the tree with long prefix paths, so a
//!   naive ascending claim order starts the heaviest trees *last* and ends
//!   the run with one straggler thread grinding through them alone.
//!   Ranks are instead claimed in descending estimated cost
//!   ([`FpTree::rank_costs`]: total conditional-base path length), the
//!   classic longest-processing-time-first heuristic. The claim order
//!   affects wall-clock only, never the result.

use crate::fpgrowth::{conditional_tree, mine_tree, FpGrowth, FpTree};
use crate::itemset::{FrequentItemset, ItemId, Itemset};
use crate::transaction::TransactionDb;
use crate::{min_count, Miner};

/// Parallel FP-Growth over `n_threads` workers.
#[derive(Debug, Clone)]
pub struct ParallelFpGrowth {
    min_support: f64,
    n_threads: usize,
}

impl ParallelFpGrowth {
    /// Create a miner with a relative minimum support and a thread count
    /// (clamped to at least 1).
    pub fn new(min_support: f64, n_threads: usize) -> Self {
        assert!(
            min_support > 0.0 && min_support <= 1.0,
            "min_support must be in (0, 1], got {min_support}"
        );
        ParallelFpGrowth {
            min_support,
            n_threads: n_threads.max(1),
        }
    }

    /// A miner sized to the machine's available parallelism.
    pub fn with_available_parallelism(min_support: f64) -> Self {
        Self::new(min_support, par::available())
    }
}

impl Miner for ParallelFpGrowth {
    fn mine(&self, db: &TransactionDb) -> Vec<FrequentItemset> {
        if db.is_empty() {
            return Vec::new();
        }
        let min_cnt = min_count(self.min_support, db.len());

        let counts = db.item_counts();
        let mut frequent: Vec<(ItemId, u64)> =
            counts.into_iter().filter(|&(_, c)| c >= min_cnt).collect();
        frequent.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        if frequent.is_empty() {
            return Vec::new();
        }
        let rank: std::collections::HashMap<ItemId, u32> = frequent
            .iter()
            .enumerate()
            .map(|(i, &(item, _))| (item, i as u32))
            .collect();
        let items_by_rank: Vec<ItemId> = frequent.iter().map(|&(it, _)| it).collect();

        let mut tree = FpTree::new(frequent.len());
        let mut encoded: Vec<u32> = Vec::new();
        for row in db.rows() {
            encoded.clear();
            encoded.extend(row.iter().filter_map(|it| rank.get(it).copied()));
            encoded.sort_unstable();
            tree.insert(&encoded, 1);
        }

        // A degenerate single-path tree is emitted via the sequential
        // miner's subset shortcut, which visits combinations in a
        // different order than the per-rank partition below; delegate so
        // the output order stays identical to FpGrowth's.
        if tree.single_path().is_some() {
            return FpGrowth::new(self.min_support).mine(db);
        }

        // One slot per rank, claimed heaviest-first.
        let claim_order = par::descending_cost_order(&tree.rank_costs());
        let tree_ref = &tree;
        let items_ref = &items_by_rank;
        let per_rank: Vec<Vec<FrequentItemset>> =
            par::map_claiming(self.n_threads, &claim_order, |r| {
                let r = r as u32;
                let total = tree_ref.totals[r as usize];
                if total < min_cnt {
                    return Vec::new();
                }
                let mut local: Vec<FrequentItemset> = Vec::new();
                let mut suffix: Vec<u32> = vec![r];
                let mut emit = |ranks: &[u32], count: u64| {
                    let mut items: Vec<ItemId> =
                        ranks.iter().map(|&rr| items_ref[rr as usize]).collect();
                    items.sort_unstable();
                    local.push(FrequentItemset {
                        items: Itemset::from_sorted(items),
                        count,
                    });
                };
                emit(&suffix, total);
                if let Some(cond) = conditional_tree(tree_ref, r, min_cnt) {
                    mine_tree(&cond, min_cnt, None, &mut suffix, &mut emit);
                }
                local
            });

        // Sequential FP-Growth visits ranks in descending order at the
        // top level; concatenating the slots the same way reproduces its
        // exact emission order.
        per_rank.into_iter().rev().flatten().collect()
    }

    fn min_support(&self) -> f64 {
        self.min_support
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fpgrowth::FpGrowth;
    use crate::itemset::sort_canonical;

    fn random_db(seed: u64, n: usize, universe: u32, avg_len: usize) -> TransactionDb {
        // Tiny xorshift so the test needs no extra dev-dependency here.
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let rows = (0..n)
            .map(|_| {
                let len = (next() as usize % (2 * avg_len)).max(1);
                (0..len)
                    .map(|_| (next() % universe as u64) as u32)
                    .collect()
            })
            .collect();
        TransactionDb::from_rows(rows)
    }

    /// A deliberately skewed database: a handful of near-universal items
    /// plus a long zipf-ish tail, so conditional-tree costs differ by
    /// orders of magnitude across ranks.
    fn skewed_db(n: usize) -> TransactionDb {
        let rows = (0..n)
            .map(|i| {
                let mut row: Vec<ItemId> = vec![0, 1];
                for item in 2..40u32 {
                    if i % (item as usize) == 0 {
                        row.push(item);
                    }
                }
                row
            })
            .collect();
        TransactionDb::from_rows(rows)
    }

    #[test]
    fn matches_sequential_fpgrowth() {
        for seed in [1u64, 42, 1234] {
            let db = random_db(seed, 300, 20, 6);
            let mut seq = FpGrowth::new(0.1).mine(&db);
            let mut par = ParallelFpGrowth::new(0.1, 4).mine(&db);
            sort_canonical(&mut seq);
            sort_canonical(&mut par);
            assert_eq!(seq, par, "seed {seed}");
        }
    }

    #[test]
    fn emission_order_is_exactly_sequential() {
        // Stronger than set equality: the parallel miner must reproduce
        // FpGrowth's output byte-for-byte, *including order*, so feature
        // encoders downstream see identical streams.
        for seed in [3u64, 99] {
            let db = random_db(seed, 400, 25, 7);
            let seq = FpGrowth::new(0.08).mine(&db);
            for threads in [1, 2, 3, 8] {
                let par = ParallelFpGrowth::new(0.08, threads).mine(&db);
                assert_eq!(seq, par, "seed {seed} threads {threads}");
            }
        }
    }

    #[test]
    fn thread_count_never_changes_result_on_skewed_database() {
        // The load-balance fix (descending-cost claiming) must be purely
        // a scheduling change: on a database with wildly uneven
        // conditional-tree sizes, every thread count yields the exact
        // sequential output.
        let db = skewed_db(2520);
        let seq = FpGrowth::new(0.02).mine(&db);
        assert!(
            seq.len() > 100,
            "skewed db should be pattern-rich, got {}",
            seq.len()
        );
        for threads in [1, 2, 3, 5, 16] {
            let par = ParallelFpGrowth::new(0.02, threads).mine(&db);
            assert_eq!(seq, par, "threads {threads}");
        }
    }

    #[test]
    fn single_thread_degenerates_gracefully() {
        let db = random_db(7, 100, 10, 4);
        let mut seq = FpGrowth::new(0.2).mine(&db);
        let mut par = ParallelFpGrowth::new(0.2, 1).mine(&db);
        sort_canonical(&mut seq);
        sort_canonical(&mut par);
        assert_eq!(seq, par);
    }

    #[test]
    fn more_threads_than_items_is_fine() {
        let db = TransactionDb::from_rows(vec![vec![1, 2], vec![1, 2], vec![2]]);
        let mut par = ParallelFpGrowth::new(0.5, 32).mine(&db);
        sort_canonical(&mut par);
        assert_eq!(par.len(), 3); // {1}, {2}, {1,2}
    }

    #[test]
    fn single_path_database_matches_sequential_order() {
        // All transactions identical -> the global tree is one path; the
        // parallel miner must still emit FpGrowth's exact order.
        let db = TransactionDb::from_rows(vec![vec![1, 2, 3]; 4]);
        let seq = FpGrowth::new(0.5).mine(&db);
        let par = ParallelFpGrowth::new(0.5, 4).mine(&db);
        assert_eq!(seq, par);
        assert_eq!(par.len(), 7, "2^3 - 1 subsets");
    }

    #[test]
    fn empty_db_yields_nothing() {
        assert!(ParallelFpGrowth::new(0.5, 4)
            .mine(&TransactionDb::default())
            .is_empty());
    }

    #[test]
    fn zero_threads_clamped_to_one() {
        let m = ParallelFpGrowth::new(0.5, 0);
        let db = TransactionDb::from_rows(vec![vec![1], vec![1]]);
        assert_eq!(m.mine(&db).len(), 1);
    }
}
