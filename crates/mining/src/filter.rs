//! Post-processing of mined itemsets: **maximal** and **closed** filtering.
//!
//! * An itemset is *maximal* if no proper superset of it is frequent.
//! * An itemset is *closed* if no proper superset has the same support.
//!
//! The cuisine-atlas Table I report surfaces the top **closed** patterns:
//! with the corpus's motif structure, a signature bundle is exactly the
//! closed set its sub-patterns collapse into (see `recipedb::generator`).

use std::collections::HashMap;

use crate::itemset::{FrequentItemset, ItemId};

/// Index itemsets by length for superset probing.
fn by_length(itemsets: &[FrequentItemset]) -> HashMap<usize, Vec<&FrequentItemset>> {
    let mut map: HashMap<usize, Vec<&FrequentItemset>> = HashMap::new();
    for f in itemsets {
        map.entry(f.items.len()).or_default().push(f);
    }
    map
}

/// Keep only maximal itemsets: those with no frequent proper superset.
pub fn maximal(itemsets: &[FrequentItemset]) -> Vec<FrequentItemset> {
    let index = by_length(itemsets);
    let max_len = index.keys().max().copied().unwrap_or(0);
    itemsets
        .iter()
        .filter(|f| {
            let len = f.items.len();
            // Any strictly longer frequent itemset containing f?
            !(len + 1..=max_len).any(|l| {
                index
                    .get(&l)
                    .is_some_and(|cands| cands.iter().any(|c| f.items.is_subset_of(&c.items)))
            })
        })
        .cloned()
        .collect()
}

/// Keep only closed itemsets: those with no proper superset of equal
/// support.
pub fn closed(itemsets: &[FrequentItemset]) -> Vec<FrequentItemset> {
    let index = by_length(itemsets);
    let max_len = index.keys().max().copied().unwrap_or(0);
    itemsets
        .iter()
        .filter(|f| {
            let len = f.items.len();
            !(len + 1..=max_len).any(|l| {
                index.get(&l).is_some_and(|cands| {
                    cands
                        .iter()
                        .any(|c| c.count == f.count && f.items.is_subset_of(&c.items))
                })
            })
        })
        .cloned()
        .collect()
}

/// Keep itemsets containing at least one item from `allowed`.
pub fn containing_any(
    itemsets: &[FrequentItemset],
    allowed: &dyn Fn(ItemId) -> bool,
) -> Vec<FrequentItemset> {
    itemsets
        .iter()
        .filter(|f| f.items.items().iter().any(|&i| allowed(i)))
        .cloned()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::itemset::Itemset;

    fn fi(items: Vec<ItemId>, count: u64) -> FrequentItemset {
        FrequentItemset {
            items: Itemset::new(items),
            count,
        }
    }

    #[test]
    fn maximal_drops_subsets_of_frequent_sets() {
        let sets = vec![
            fi(vec![1], 5),
            fi(vec![2], 4),
            fi(vec![1, 2], 3),
            fi(vec![3], 3),
        ];
        let max = maximal(&sets);
        let items: Vec<&[ItemId]> = max.iter().map(|f| f.items.items()).collect();
        assert!(items.contains(&&[1u32, 2][..]));
        assert!(items.contains(&&[3u32][..]));
        assert!(!items.contains(&&[1u32][..]));
        assert_eq!(max.len(), 2);
    }

    #[test]
    fn closed_keeps_sets_with_strictly_larger_support_than_supersets() {
        let sets = vec![
            fi(vec![1], 5),    // closed: superset {1,2} has lower support
            fi(vec![2], 3),    // NOT closed: {1,2} has equal support
            fi(vec![1, 2], 3), // closed (maximal)
        ];
        let cl = closed(&sets);
        let items: Vec<&[ItemId]> = cl.iter().map(|f| f.items.items()).collect();
        assert!(items.contains(&&[1u32][..]));
        assert!(items.contains(&&[1u32, 2][..]));
        assert!(!items.contains(&&[2u32][..]));
    }

    #[test]
    fn maximal_subset_of_closed() {
        // Every maximal itemset is closed.
        let sets = vec![
            fi(vec![1], 5),
            fi(vec![2], 5),
            fi(vec![1, 2], 5),
            fi(vec![3], 2),
        ];
        let max = maximal(&sets);
        let cl = closed(&sets);
        for m in &max {
            assert!(
                cl.iter().any(|c| c.items == m.items),
                "maximal {} missing from closed",
                m.items
            );
        }
        // And here {1} and {2} are not closed ({1,2} has equal support).
        assert_eq!(cl.len(), 2);
    }

    #[test]
    fn empty_input_passes_through() {
        assert!(maximal(&[]).is_empty());
        assert!(closed(&[]).is_empty());
    }

    #[test]
    fn containing_any_filters_by_item_predicate() {
        let sets = vec![fi(vec![1, 2], 3), fi(vec![2], 4), fi(vec![3], 2)];
        let kept = containing_any(&sets, &|i| i == 1 || i == 3);
        assert_eq!(kept.len(), 2);
    }
}
