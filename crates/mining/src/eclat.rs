//! Eclat (Zaki, 1997/2000) — depth-first frequent-itemset mining over the
//! vertical database layout (per-item transaction-id lists).
//!
//! Each itemset's support is the length of the intersection of its items'
//! tid-lists; the search extends a prefix with items greater than its last
//! item, intersecting tid-lists as it descends. Serves as a second
//! independent baseline against FP-Growth.

use crate::itemset::{FrequentItemset, ItemId, Itemset};
use crate::transaction::TransactionDb;
use crate::{min_count, Miner};

/// The Eclat miner. See the module docs.
#[derive(Debug, Clone)]
pub struct Eclat {
    min_support: f64,
}

impl Eclat {
    /// Create a miner with a relative minimum support in `(0, 1]`.
    pub fn new(min_support: f64) -> Self {
        assert!(
            min_support > 0.0 && min_support <= 1.0,
            "min_support must be in (0, 1], got {min_support}"
        );
        Eclat { min_support }
    }
}

/// Sorted-list intersection.
fn intersect(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

fn dfs(
    prefix: &mut Vec<ItemId>,
    candidates: &[(ItemId, Vec<u32>)],
    min_cnt: u64,
    out: &mut Vec<FrequentItemset>,
) {
    for (idx, (item, tids)) in candidates.iter().enumerate() {
        prefix.push(*item);
        out.push(FrequentItemset {
            items: Itemset::from_sorted(prefix.clone()),
            count: tids.len() as u64,
        });
        // Extensions: items after this one, with intersected tid-lists.
        let mut next: Vec<(ItemId, Vec<u32>)> = Vec::new();
        for (other, other_tids) in &candidates[idx + 1..] {
            let joined = intersect(tids, other_tids);
            if joined.len() as u64 >= min_cnt {
                next.push((*other, joined));
            }
        }
        if !next.is_empty() {
            dfs(prefix, &next, min_cnt, out);
        }
        prefix.pop();
    }
}

impl Miner for Eclat {
    fn mine(&self, db: &TransactionDb) -> Vec<FrequentItemset> {
        if db.is_empty() {
            return Vec::new();
        }
        let min_cnt = min_count(self.min_support, db.len());
        let mut roots: Vec<(ItemId, Vec<u32>)> = db
            .tid_lists()
            .into_iter()
            .filter(|(_, tids)| tids.len() as u64 >= min_cnt)
            .collect();
        roots.sort_by_key(|&(item, _)| item);
        let mut out = Vec::new();
        let mut prefix = Vec::new();
        dfs(&mut prefix, &roots, min_cnt, &mut out);
        out
    }

    fn min_support(&self) -> f64 {
        self.min_support
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fpgrowth::FpGrowth;
    use crate::itemset::sort_canonical;

    #[test]
    fn intersect_merges_sorted_lists() {
        assert_eq!(intersect(&[1, 3, 5], &[2, 3, 5, 7]), vec![3, 5]);
        assert_eq!(intersect(&[], &[1]), Vec::<u32>::new());
        assert_eq!(intersect(&[1, 2], &[1, 2]), vec![1, 2]);
    }

    #[test]
    fn matches_fpgrowth_on_textbook_data() {
        let rows = vec![
            vec![1, 2, 5],
            vec![2, 4],
            vec![2, 3],
            vec![1, 2, 4],
            vec![1, 3],
            vec![2, 3],
            vec![1, 3],
            vec![1, 2, 3, 5],
            vec![1, 2, 3],
        ];
        let db = TransactionDb::from_rows(rows);
        let mut e = Eclat::new(2.0 / 9.0).mine(&db);
        let mut f = FpGrowth::new(2.0 / 9.0).mine(&db);
        sort_canonical(&mut e);
        sort_canonical(&mut f);
        assert_eq!(e, f);
    }

    #[test]
    fn empty_db_yields_nothing() {
        assert!(Eclat::new(0.3).mine(&TransactionDb::default()).is_empty());
    }

    #[test]
    fn deep_itemsets_found() {
        let db = TransactionDb::from_rows(vec![vec![1, 2, 3, 4]; 5]);
        let out = Eclat::new(1.0).mine(&db);
        assert_eq!(out.len(), 15, "2^4 - 1 subsets");
        assert!(out.iter().all(|f| f.count == 5));
    }

    #[test]
    #[should_panic(expected = "min_support must be in (0, 1]")]
    fn rejects_negative_support() {
        let _ = Eclat::new(-0.1);
    }
}
