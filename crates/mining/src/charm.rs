//! CHARM (Zaki & Hsiao, SDM 2002) — mining **closed** frequent itemsets
//! directly, without enumerating the full frequent lattice.
//!
//! The cuisine-atlas Table I report consumes closed itemsets (a signature
//! bundle is the closed set its subset lattice collapses onto); the
//! baseline path mines everything with FP-Growth and post-filters with
//! [`crate::filter::closed`]. CHARM instead explores an itemset–tidset
//! tree and applies the four tidset properties to jump straight between
//! closures:
//!
//! 1. `t(Xi) = t(Xj)` — `Xj` can never appear without `Xi`: absorb `Xj`
//!    into `Xi` and drop `Xj`'s subtree;
//! 2. `t(Xi) ⊂ t(Xj)` — absorb `Xj` into `Xi` but keep `Xj`'s subtree;
//!    3/4. otherwise — `Xi ∪ Xj` opens a new subtree.
//!
//! A final subsumption check (same support + superset already emitted)
//! guarantees exact closedness. Output is cross-checked against
//! `filter::closed(FpGrowth)` in the tests and the property suite.

use std::collections::HashMap;

use crate::itemset::{FrequentItemset, ItemId, Itemset};
use crate::min_count;
use crate::transaction::TransactionDb;

/// The CHARM closed-itemset miner.
#[derive(Debug, Clone)]
pub struct Charm {
    min_support: f64,
}

impl Charm {
    /// Create a miner with a relative minimum support in `(0, 1]`.
    pub fn new(min_support: f64) -> Self {
        assert!(
            min_support > 0.0 && min_support <= 1.0,
            "min_support must be in (0, 1], got {min_support}"
        );
        Charm { min_support }
    }
}

/// Accumulates closed sets with subsumption checking.
#[derive(Default)]
struct ClosedSets {
    by_count: HashMap<u64, Vec<Itemset>>,
}

impl ClosedSets {
    /// Insert unless an already-stored set of equal support subsumes it.
    fn insert(&mut self, items: Itemset, count: u64) {
        let bucket = self.by_count.entry(count).or_default();
        if bucket.iter().any(|c| items.is_subset_of(c)) {
            return;
        }
        // Drop previously stored sets this one subsumes (can happen when a
        // larger closure is discovered later).
        bucket.retain(|c| !c.is_subset_of(&items));
        bucket.push(items);
    }

    fn into_vec(self) -> Vec<FrequentItemset> {
        self.by_count
            .into_iter()
            .flat_map(|(count, sets)| {
                sets.into_iter()
                    .map(move |items| FrequentItemset { items, count })
            })
            .collect()
    }
}

fn intersect(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

/// Is `a ⊆ b` for sorted tid lists?
fn is_subset(a: &[u32], b: &[u32]) -> bool {
    if a.len() > b.len() {
        return false;
    }
    let mut bi = b.iter();
    'outer: for &x in a {
        for &y in bi.by_ref() {
            match y.cmp(&x) {
                std::cmp::Ordering::Less => continue,
                std::cmp::Ordering::Equal => continue 'outer,
                std::cmp::Ordering::Greater => return false,
            }
        }
        return false;
    }
    true
}

#[derive(Clone)]
struct Node {
    items: Itemset,
    tids: Vec<u32>,
}

fn charm_extend(nodes: &mut [Node], min_cnt: u64, closed: &mut ClosedSets) {
    // Process in increasing tidset size (standard CHARM order).
    nodes.sort_by_key(|n| n.tids.len());
    let mut consumed = vec![false; nodes.len()];
    for i in 0..nodes.len() {
        if consumed[i] {
            continue;
        }
        let mut xi = nodes[i].items.clone();
        let ti = nodes[i].tids.clone();
        let mut children: Vec<Node> = Vec::new();
        for j in (i + 1)..nodes.len() {
            if consumed[j] {
                continue;
            }
            let tj = &nodes[j].tids;
            if ti.len() == tj.len() && is_subset(&ti, tj) {
                // Property 1: identical tidsets — absorb and drop j.
                xi = xi.union(&nodes[j].items);
                consumed[j] = true;
            } else if is_subset(&ti, tj) {
                // Property 2: ti ⊂ tj — absorb, keep j's own subtree.
                xi = xi.union(&nodes[j].items);
            } else {
                let t = intersect(&ti, tj);
                if t.len() as u64 >= min_cnt {
                    // Properties 3/4: open a child.
                    children.push(Node {
                        items: xi.union(&nodes[j].items),
                        tids: t,
                    });
                }
            }
        }
        // Items absorbed after a child was created are still valid for it:
        // child.tids ⊆ ti ⊆ tid(absorbed item), so union them in.
        for c in &mut children {
            c.items = c.items.union(&xi);
        }
        if !children.is_empty() {
            charm_extend(&mut children, min_cnt, closed);
        }
        closed.insert(xi, ti.len() as u64);
    }
}

impl Charm {
    /// Mine all **closed** frequent itemsets. Deliberately *not* an
    /// implementation of [`crate::Miner`]: that trait's contract is the
    /// complete frequent collection, and closed sets are a strict subset
    /// (compare against `filter::closed(FpGrowth::mine(..))`).
    pub fn mine(&self, db: &TransactionDb) -> Vec<FrequentItemset> {
        if db.is_empty() {
            return Vec::new();
        }
        let min_cnt = min_count(self.min_support, db.len());
        let mut roots: Vec<Node> = db
            .tid_lists()
            .into_iter()
            .filter(|(_, tids)| tids.len() as u64 >= min_cnt)
            .map(|(item, tids)| Node {
                items: Itemset::singleton(item as ItemId),
                tids,
            })
            .collect();
        if roots.is_empty() {
            return Vec::new();
        }
        let mut closed = ClosedSets::default();
        charm_extend(&mut roots, min_cnt, &mut closed);
        closed.into_vec()
    }

    /// The relative minimum support threshold.
    pub fn min_support(&self) -> f64 {
        self.min_support
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter;
    use crate::fpgrowth::FpGrowth;
    use crate::itemset::sort_canonical;
    use crate::Miner;

    fn reference_closed(db: &TransactionDb, s: f64) -> Vec<FrequentItemset> {
        let mut out = filter::closed(&FpGrowth::new(s).mine(db));
        sort_canonical(&mut out);
        out
    }

    fn charm_closed(db: &TransactionDb, s: f64) -> Vec<FrequentItemset> {
        let mut out = Charm::new(s).mine(db);
        sort_canonical(&mut out);
        out
    }

    #[test]
    fn textbook_example_matches_filtered_fpgrowth() {
        let db = TransactionDb::from_rows(vec![
            vec![1, 2, 5],
            vec![2, 4],
            vec![2, 3],
            vec![1, 2, 4],
            vec![1, 3],
            vec![2, 3],
            vec![1, 3],
            vec![1, 2, 3, 5],
            vec![1, 2, 3],
        ]);
        assert_eq!(
            charm_closed(&db, 2.0 / 9.0),
            reference_closed(&db, 2.0 / 9.0)
        );
    }

    #[test]
    fn identical_transactions_collapse_to_one_closure() {
        let db = TransactionDb::from_rows(vec![vec![1, 2, 3]; 5]);
        let out = charm_closed(&db, 0.5);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].items.items(), &[1, 2, 3]);
        assert_eq!(out[0].count, 5);
    }

    #[test]
    fn random_dbs_match_reference() {
        let mut state = 0xDEAD_BEEFu64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for trial in 0..20 {
            let rows: Vec<Vec<u32>> = (0..40)
                .map(|_| {
                    let len = (next() % 6) as usize;
                    (0..len).map(|_| (next() % 8) as u32).collect()
                })
                .collect();
            let db = TransactionDb::from_rows(rows);
            for s in [0.1, 0.25, 0.5] {
                assert_eq!(
                    charm_closed(&db, s),
                    reference_closed(&db, s),
                    "trial {trial} support {s}"
                );
            }
        }
    }

    #[test]
    fn empty_and_infrequent_inputs() {
        assert!(Charm::new(0.5).mine(&TransactionDb::default()).is_empty());
        let db = TransactionDb::from_rows(vec![vec![1], vec![2], vec![3], vec![4]]);
        assert!(Charm::new(0.5).mine(&db).is_empty());
    }

    #[test]
    #[should_panic(expected = "min_support must be in (0, 1]")]
    fn rejects_bad_support() {
        let _ = Charm::new(0.0);
    }
}
