//! FP-Growth (Han, Pei & Yin, SIGMOD 2000): frequent-pattern mining
//! without candidate generation.
//!
//! The algorithm compresses the database into an **FP-tree** — a prefix
//! tree over transactions with items ordered by descending global
//! frequency — and then mines it recursively: for each item (bottom-up in
//! the frequency order), the set of prefix paths leading to its nodes form
//! a *conditional pattern base*, which is itself compressed into a
//! conditional FP-tree and mined for patterns ending in that item.
//!
//! Two standard optimizations are implemented:
//! * infrequent items are pruned and transactions re-sorted before
//!   insertion, which keeps the tree small;
//! * a **single-path shortcut**: when a (conditional) tree degenerates to
//!   one path, all `2^k − 1` item combinations along the path are emitted
//!   directly instead of recursing.

use std::collections::HashMap;

use crate::itemset::{FrequentItemset, ItemId, Itemset};
use crate::transaction::TransactionDb;
use crate::{min_count, Miner};

/// The FP-Growth miner. See the module docs.
#[derive(Debug, Clone)]
pub struct FpGrowth {
    min_support: f64,
    /// Optional cap on emitted itemset length (None = unbounded).
    max_len: Option<usize>,
}

impl FpGrowth {
    /// Create a miner with a relative minimum support in `(0, 1]`.
    pub fn new(min_support: f64) -> Self {
        assert!(
            min_support > 0.0 && min_support <= 1.0,
            "min_support must be in (0, 1], got {min_support}"
        );
        FpGrowth {
            min_support,
            max_len: None,
        }
    }

    /// Limit the length of emitted itemsets (useful for feature
    /// extraction where only short patterns are wanted).
    pub fn with_max_len(mut self, max_len: usize) -> Self {
        assert!(max_len >= 1);
        self.max_len = Some(max_len);
        self
    }
}

impl Miner for FpGrowth {
    fn mine(&self, db: &TransactionDb) -> Vec<FrequentItemset> {
        if db.is_empty() {
            return Vec::new();
        }
        let min_cnt = min_count(self.min_support, db.len());

        // Global item frequencies; keep frequent ones, ranked by
        // descending count (ties by ascending id) for the tree order.
        let counts = db.item_counts();
        let mut frequent: Vec<(ItemId, u64)> =
            counts.into_iter().filter(|&(_, c)| c >= min_cnt).collect();
        frequent.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        let rank: HashMap<ItemId, u32> = frequent
            .iter()
            .enumerate()
            .map(|(i, &(item, _))| (item, i as u32))
            .collect();
        if frequent.is_empty() {
            return Vec::new();
        }

        // Build the initial tree over rank-encoded transactions.
        let mut tree = FpTree::new(frequent.len());
        let mut encoded: Vec<u32> = Vec::new();
        for row in db.rows() {
            encoded.clear();
            encoded.extend(row.iter().filter_map(|it| rank.get(it).copied()));
            encoded.sort_unstable();
            tree.insert(&encoded, 1);
        }

        // Mine, translating ranks back to item ids at emission.
        let items_by_rank: Vec<ItemId> = frequent.iter().map(|&(it, _)| it).collect();
        let mut out = Vec::new();
        let mut suffix: Vec<u32> = Vec::new();
        mine_tree(
            &tree,
            min_cnt,
            self.max_len,
            &mut suffix,
            &mut |ranks, count| {
                let mut items: Vec<ItemId> =
                    ranks.iter().map(|&r| items_by_rank[r as usize]).collect();
                items.sort_unstable();
                out.push(FrequentItemset {
                    items: Itemset::from_sorted(items),
                    count,
                });
            },
        );
        out
    }

    fn min_support(&self) -> f64 {
        self.min_support
    }
}

/// A node-array FP-tree. `children` uses a per-node map from rank to node
/// index; `header` threads all nodes of the same rank together for
/// conditional-base extraction (the "header table").
pub(crate) struct FpTree {
    parent: Vec<u32>,
    item: Vec<u32>, // rank of the item at this node (u32::MAX at root)
    count: Vec<u64>,
    children: Vec<HashMap<u32, u32>>,
    /// header\[rank\] = indices of all nodes holding this rank.
    pub(crate) header: Vec<Vec<u32>>,
    /// total count per rank inside this tree.
    pub(crate) totals: Vec<u64>,
}

impl FpTree {
    pub(crate) fn new(n_ranks: usize) -> Self {
        FpTree {
            parent: vec![u32::MAX],
            item: vec![u32::MAX],
            count: vec![0],
            children: vec![HashMap::new()],
            header: vec![Vec::new(); n_ranks],
            totals: vec![0; n_ranks],
        }
    }

    /// Insert a rank-sorted transaction with multiplicity `add`.
    pub(crate) fn insert(&mut self, ranks: &[u32], add: u64) {
        let mut node = 0u32;
        for &r in ranks {
            let next = match self.children[node as usize].get(&r) {
                Some(&c) => c,
                None => {
                    let idx = self.parent.len() as u32;
                    self.parent.push(node);
                    self.item.push(r);
                    self.count.push(0);
                    self.children.push(HashMap::new());
                    self.children[node as usize].insert(r, idx);
                    self.header[r as usize].push(idx);
                    idx
                }
            };
            self.count[next as usize] += add;
            self.totals[r as usize] += add;
            node = next;
        }
    }

    /// Whether the tree consists of a single path from the root.
    pub(crate) fn single_path(&self) -> Option<Vec<(u32, u64)>> {
        let mut path = Vec::new();
        let mut node = 0u32;
        loop {
            let kids = &self.children[node as usize];
            match kids.len() {
                0 => return Some(path),
                1 => {
                    let &child = kids.values().next().expect("one child");
                    path.push((self.item[child as usize], self.count[child as usize]));
                    node = child;
                }
                _ => return None,
            }
        }
    }

    /// Per-rank mining-cost estimate: the total prefix-path length of the
    /// rank's conditional pattern base (the work to extract and re-insert
    /// it). Rare items sit deep in the tree, so cost grows with rank —
    /// this quantifies the skew so parallel mining can schedule the
    /// heaviest conditional trees first.
    pub(crate) fn rank_costs(&self) -> Vec<u64> {
        // Nodes are appended parent-before-child, so one forward pass
        // resolves every depth.
        let mut depth = vec![0u64; self.parent.len()];
        for i in 1..self.parent.len() {
            depth[i] = depth[self.parent[i] as usize] + 1;
        }
        self.header
            .iter()
            .map(|nodes| nodes.iter().map(|&n| depth[n as usize] - 1).sum())
            .collect()
    }

    /// The prefix-path conditional pattern base of `rank`: for each node of
    /// `rank`, the path of ranks from its parent up to the root, weighted
    /// by the node count.
    pub(crate) fn conditional_base(&self, rank: u32) -> Vec<(Vec<u32>, u64)> {
        let mut base = Vec::new();
        for &node in &self.header[rank as usize] {
            let cnt = self.count[node as usize];
            let mut path = Vec::new();
            let mut cur = self.parent[node as usize];
            while cur != u32::MAX && self.item[cur as usize] != u32::MAX {
                path.push(self.item[cur as usize]);
                cur = self.parent[cur as usize];
            }
            path.reverse();
            base.push((path, cnt));
        }
        base
    }
}

/// Recursively mine `tree`, calling `emit(suffix_ranks, count)` for every
/// frequent itemset. `suffix` holds the ranks conditioned on so far.
pub(crate) fn mine_tree(
    tree: &FpTree,
    min_cnt: u64,
    max_len: Option<usize>,
    suffix: &mut Vec<u32>,
    emit: &mut impl FnMut(&[u32], u64),
) {
    if let Some(limit) = max_len {
        if suffix.len() >= limit {
            return;
        }
    }

    // Single-path shortcut: emit every combination along the path.
    if let Some(path) = tree.single_path() {
        emit_path_combinations(&path, min_cnt, max_len, suffix, emit);
        return;
    }

    // General case: iterate ranks bottom-up (ascending support order is
    // not required for correctness; any order visits each item once).
    for rank in (0..tree.header.len() as u32).rev() {
        let total = tree.totals[rank as usize];
        if total < min_cnt {
            continue;
        }
        suffix.push(rank);
        emit(suffix, total);

        let proceed = max_len.is_none_or(|limit| suffix.len() < limit);
        if proceed {
            if let Some(cond) = conditional_tree(tree, rank, min_cnt) {
                mine_tree(&cond, min_cnt, max_len, suffix, emit);
            }
        }
        suffix.pop();
    }
}

/// Build the conditional FP-tree of `rank` within `tree`, pruning items
/// that fall under `min_cnt` in the conditional base. Returns `None` when
/// the conditional tree would be empty.
pub(crate) fn conditional_tree(tree: &FpTree, rank: u32, min_cnt: u64) -> Option<FpTree> {
    let base = tree.conditional_base(rank);
    let mut cond_counts: HashMap<u32, u64> = HashMap::new();
    for (path, cnt) in &base {
        for &r in path {
            *cond_counts.entry(r).or_insert(0) += cnt;
        }
    }
    let keep: std::collections::HashSet<u32> = cond_counts
        .iter()
        .filter(|&(_, &c)| c >= min_cnt)
        .map(|(&r, _)| r)
        .collect();
    if keep.is_empty() {
        return None;
    }
    let mut cond = FpTree::new(tree.header.len());
    let mut filtered: Vec<u32> = Vec::new();
    for (path, cnt) in &base {
        filtered.clear();
        filtered.extend(path.iter().copied().filter(|r| keep.contains(r)));
        // Paths are already in ascending rank order.
        cond.insert(&filtered, *cnt);
    }
    Some(cond)
}

/// Emit all non-empty combinations of the single path's items, each with
/// the minimum count along the chosen items, unioned with the suffix.
pub(crate) fn emit_path_combinations(
    path: &[(u32, u64)],
    min_cnt: u64,
    max_len: Option<usize>,
    suffix: &mut Vec<u32>,
    emit: &mut impl FnMut(&[u32], u64),
) {
    // Counts along a root-to-leaf path are non-increasing, so the count of
    // a combination is the count of its deepest item; prune items below
    // min_cnt up front.
    let eligible: Vec<(u32, u64)> = path
        .iter()
        .copied()
        .take_while(|&(_, c)| c >= min_cnt)
        .collect();
    let n = eligible.len();
    if n == 0 {
        return;
    }
    let budget = max_len.map(|limit| limit.saturating_sub(suffix.len()));
    // Enumerate subsets via bitmask; n is small in practice (tree depth).
    assert!(n < 64, "single path too long for subset enumeration");
    for mask in 1u64..(1u64 << n) {
        let popcount = mask.count_ones() as usize;
        if let Some(b) = budget {
            if popcount > b {
                continue;
            }
        }
        let mut count = u64::MAX;
        let before = suffix.len();
        for (i, &(rank, c)) in eligible.iter().enumerate() {
            if mask & (1 << i) != 0 {
                suffix.push(rank);
                count = count.min(c);
            }
        }
        emit(suffix, count);
        suffix.truncate(before);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::itemset::sort_canonical;

    fn mine(rows: Vec<Vec<ItemId>>, min_support: f64) -> Vec<FrequentItemset> {
        let db = TransactionDb::from_rows(rows);
        let mut out = FpGrowth::new(min_support).mine(&db);
        sort_canonical(&mut out);
        out
    }

    #[test]
    fn empty_db_yields_nothing() {
        assert!(mine(vec![], 0.5).is_empty());
    }

    #[test]
    fn textbook_example() {
        // Classic FP-growth example (Han et al., simplified).
        let rows = vec![
            vec![1, 2, 5],
            vec![2, 4],
            vec![2, 3],
            vec![1, 2, 4],
            vec![1, 3],
            vec![2, 3],
            vec![1, 3],
            vec![1, 2, 3, 5],
            vec![1, 2, 3],
        ];
        let out = mine(rows, 2.0 / 9.0);
        let get = |items: &[ItemId]| -> Option<u64> {
            out.iter()
                .find(|f| f.items.items() == items)
                .map(|f| f.count)
        };
        assert_eq!(get(&[1]), Some(6));
        assert_eq!(get(&[2]), Some(7));
        assert_eq!(get(&[3]), Some(6));
        assert_eq!(get(&[4]), Some(2));
        assert_eq!(get(&[5]), Some(2));
        assert_eq!(get(&[1, 2]), Some(4));
        assert_eq!(get(&[1, 3]), Some(4));
        assert_eq!(get(&[2, 3]), Some(4));
        assert_eq!(get(&[1, 2, 3]), Some(2));
        assert_eq!(get(&[1, 2, 5]), Some(2));
        assert_eq!(get(&[2, 5]), Some(2));
        assert_eq!(get(&[1, 5]), Some(2));
        assert_eq!(get(&[2, 4]), Some(2));
        // {4,5}, {3,5}, {1,4} etc. are below threshold.
        assert_eq!(get(&[3, 5]), None);
        assert_eq!(get(&[1, 4]), None);
    }

    #[test]
    fn single_transaction_emits_all_subsets() {
        let out = mine(vec![vec![1, 2, 3]], 1.0);
        assert_eq!(out.len(), 7, "2^3 - 1 subsets");
        assert!(out.iter().all(|f| f.count == 1));
    }

    #[test]
    fn identical_transactions_single_path() {
        let out = mine(vec![vec![1, 2], vec![1, 2], vec![1, 2]], 0.5);
        assert_eq!(out.len(), 3);
        assert!(out.iter().all(|f| f.count == 3));
    }

    #[test]
    fn threshold_one_keeps_only_universal_items() {
        let out = mine(vec![vec![1, 2], vec![1, 3], vec![1]], 1.0);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].items.items(), &[1]);
        assert_eq!(out[0].count, 3);
    }

    #[test]
    fn max_len_caps_itemset_size() {
        let db = TransactionDb::from_rows(vec![vec![1, 2, 3], vec![1, 2, 3]]);
        let mut out = FpGrowth::new(0.5).with_max_len(2).mine(&db);
        sort_canonical(&mut out);
        assert!(out.iter().all(|f| f.items.len() <= 2));
        assert_eq!(out.len(), 6, "3 singletons + 3 pairs");
    }

    #[test]
    fn downward_closure_holds() {
        // Every subset of a frequent itemset is frequent with >= count.
        let rows: Vec<Vec<ItemId>> = (0..40)
            .map(|i| {
                (0..6)
                    .filter(|&j| (i + j) % (j + 2) == 0)
                    .map(|j| j as ItemId)
                    .collect()
            })
            .collect();
        let db = TransactionDb::from_rows(rows);
        let out = FpGrowth::new(0.1).mine(&db);
        let lookup: std::collections::HashMap<&[ItemId], u64> =
            out.iter().map(|f| (f.items.items(), f.count)).collect();
        for f in &out {
            for sub in f.items.proper_subsets_one_smaller() {
                if sub.is_empty() {
                    continue;
                }
                let sup = lookup
                    .get(sub.items())
                    .unwrap_or_else(|| panic!("subset {sub} of {} missing", f.items));
                assert!(*sup >= f.count);
            }
        }
    }

    #[test]
    #[should_panic(expected = "min_support must be in (0, 1]")]
    fn rejects_zero_support() {
        let _ = FpGrowth::new(0.0);
    }
}
