//! Top-k frequent itemset mining — find the `k` most frequent itemsets
//! without choosing a support threshold up front.
//!
//! The paper fixes support at 0.2 as a noise/coverage trade-off; top-k
//! mining is the standard alternative when the right threshold is unknown
//! (in the spirit of Han et al., "Mining top-k frequent closed patterns
//! without minimum support", ICDM 2002 — here over all itemsets, with an
//! optional minimum-length filter). The search is an Eclat-style DFS over
//! tid-lists with a dynamically *rising* internal threshold: once `k`
//! itemsets are held, a branch whose tid-list is no larger than the
//! current k-th best count cannot improve the result and is pruned.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::itemset::{FrequentItemset, ItemId, Itemset};
use crate::transaction::TransactionDb;

/// Heap entry: min-heap by count; among equal counts the *largest*
/// tie-break key (longer / lexicographically later itemset) is evicted
/// first, so the kept set is deterministic.
#[derive(PartialEq, Eq, PartialOrd, Ord)]
struct Entry {
    count: u64,
    tie: Reverse<(usize, Vec<ItemId>)>,
}

type Heap = BinaryHeap<Reverse<Entry>>;

/// Top-k miner. See the module docs.
#[derive(Debug, Clone)]
pub struct TopK {
    k: usize,
    min_len: usize,
}

impl TopK {
    /// Mine the `k` most frequent itemsets.
    ///
    /// # Panics
    /// If `k` is 0.
    pub fn new(k: usize) -> Self {
        assert!(k >= 1, "k must be at least 1");
        TopK { k, min_len: 1 }
    }

    /// Only consider itemsets with at least `min_len` items (e.g. 2 to
    /// skip the trivially frequent singletons).
    ///
    /// # Panics
    /// If `min_len` is 0.
    pub fn with_min_len(mut self, min_len: usize) -> Self {
        assert!(min_len >= 1);
        self.min_len = min_len;
        self
    }

    /// Run the search. Results are sorted by descending count, ties by
    /// length then items ascending. Returns fewer than `k` itemsets when
    /// the database doesn't contain that many (with `count ≥ 1`).
    pub fn mine(&self, db: &TransactionDb) -> Vec<FrequentItemset> {
        if db.is_empty() {
            return Vec::new();
        }
        // Dense-first candidate order: exploring high-support branches
        // first fills the heap quickly, which raises the pruning bound
        // before the sparse tail is visited (ties broken by item id for
        // determinism).
        let mut roots: Vec<(ItemId, Vec<u32>)> = db.tid_lists().into_iter().collect();
        roots.sort_by(|a, b| b.1.len().cmp(&a.1.len()).then(a.0.cmp(&b.0)));

        let mut heap: Heap = BinaryHeap::new();
        // Seed the bound with the singletons up front (they are the
        // cheapest itemsets to score and include the global top-1).
        if self.min_len == 1 {
            for (item, tids) in &roots {
                offer(&mut heap, self.k, vec![*item], tids.len() as u64);
            }
        }
        let mut prefix: Vec<ItemId> = Vec::new();
        dfs(&roots, &mut prefix, self.k, self.min_len, &mut heap);

        let mut out: Vec<FrequentItemset> = heap
            .into_iter()
            .map(
                |Reverse(Entry {
                     count,
                     tie: Reverse((_, items)),
                 })| FrequentItemset {
                    items: Itemset::from_sorted(items),
                    count,
                },
            )
            .collect();
        out.sort_by(|a, b| {
            b.count
                .cmp(&a.count)
                .then(a.items.len().cmp(&b.items.len()))
                .then(a.items.items().cmp(b.items.items()))
        });
        out
    }
}

/// The rising bound: once the heap holds `k` entries, only counts strictly
/// above the weakest kept entry can improve the result.
fn bound(heap: &Heap, k: usize) -> u64 {
    if heap.len() < k {
        1
    } else {
        heap.peek().map_or(1, |Reverse(e)| e.count)
    }
}

fn offer(heap: &mut Heap, k: usize, mut items: Vec<ItemId>, count: u64) {
    // Canonical form: the DFS explores in dense-first (not id) order, so
    // prefixes arrive unsorted; the tie-break and output need sorted items.
    items.sort_unstable();
    let entry = Entry {
        count,
        tie: Reverse((items.len(), items)),
    };
    if heap.len() < k {
        heap.push(Reverse(entry));
    } else if let Some(Reverse(weakest)) = heap.peek() {
        // Replace when strictly better under the heap's total order.
        if entry > *weakest {
            heap.pop();
            heap.push(Reverse(entry));
        }
    }
}

fn intersect(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

fn dfs(
    candidates: &[(ItemId, Vec<u32>)],
    prefix: &mut Vec<ItemId>,
    k: usize,
    min_len: usize,
    heap: &mut Heap,
) {
    for (idx, (item, tids)) in candidates.iter().enumerate() {
        let count = tids.len() as u64;
        // Prune: neither this itemset nor any superset (supports only
        // shrink) can beat the current k-th best.
        if count < bound(heap, k) {
            continue;
        }
        prefix.push(*item);
        // Singletons were seeded before the DFS when min_len == 1; offering
        // them again would duplicate heap entries.
        if prefix.len() >= min_len && !(min_len == 1 && prefix.len() == 1) {
            offer(heap, k, prefix.clone(), count);
        }
        let mut next: Vec<(ItemId, Vec<u32>)> = Vec::new();
        for (other, other_tids) in &candidates[idx + 1..] {
            let joined = intersect(tids, other_tids);
            if joined.len() as u64 >= bound(heap, k).max(1) {
                next.push((*other, joined));
            }
        }
        if !next.is_empty() {
            dfs(&next, prefix, k, min_len, heap);
        }
        prefix.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fpgrowth::FpGrowth;
    use crate::Miner;

    fn db() -> TransactionDb {
        TransactionDb::from_rows(vec![
            vec![1, 2, 3],
            vec![1, 2],
            vec![1, 2],
            vec![1, 3],
            vec![2, 3],
            vec![4],
        ])
    }

    /// Brute-force reference: mine everything at support ~0, sort the
    /// same way, take the first k.
    fn brute_topk(db: &TransactionDb, k: usize, min_len: usize) -> Vec<FrequentItemset> {
        let mut all: Vec<FrequentItemset> = FpGrowth::new(1e-9)
            .mine(db)
            .into_iter()
            .filter(|f| f.items.len() >= min_len)
            .collect();
        all.sort_by(|a, b| {
            b.count
                .cmp(&a.count)
                .then(a.items.len().cmp(&b.items.len()))
                .then(a.items.items().cmp(b.items.items()))
        });
        all.truncate(k);
        all
    }

    #[test]
    fn matches_brute_force_on_fixed_db() {
        let db = db();
        for k in [1, 2, 3, 5, 10, 50] {
            assert_eq!(TopK::new(k).mine(&db), brute_topk(&db, k, 1), "k={k}");
        }
    }

    #[test]
    fn min_len_filter() {
        let db = db();
        let got = TopK::new(3).with_min_len(2).mine(&db);
        assert_eq!(got, brute_topk(&db, 3, 2));
        assert!(got.iter().all(|f| f.items.len() >= 2));
        // The strongest pair is {1,2} with count 3.
        assert_eq!(got[0].items.items(), &[1, 2]);
        assert_eq!(got[0].count, 3);
    }

    #[test]
    fn top1_is_most_frequent_item() {
        let got = TopK::new(1).mine(&db());
        assert_eq!(got.len(), 1);
        // Items 1 and 2 both have count 4; tie-break prefers item 1.
        assert_eq!(got[0].items.items(), &[1]);
        assert_eq!(got[0].count, 4);
    }

    #[test]
    fn fewer_results_than_k_when_db_is_small() {
        let tiny = TransactionDb::from_rows(vec![vec![1]]);
        let got = TopK::new(10).mine(&tiny);
        assert_eq!(got.len(), 1);
        assert!(TopK::new(3).mine(&TransactionDb::default()).is_empty());
    }

    #[test]
    fn randomised_cross_check() {
        // Deterministic pseudo-random db, cross-checked against brute force.
        let mut state = 0xBEEFu64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let rows: Vec<Vec<u32>> = (0..60)
            .map(|_| {
                let len = (next() % 5 + 1) as usize;
                (0..len).map(|_| (next() % 9) as u32).collect()
            })
            .collect();
        let db = TransactionDb::from_rows(rows);
        for k in [1, 4, 12, 30] {
            assert_eq!(TopK::new(k).mine(&db), brute_topk(&db, k, 1), "k={k}");
            assert_eq!(
                TopK::new(k).with_min_len(2).mine(&db),
                brute_topk(&db, k, 2),
                "k={k} min_len=2"
            );
        }
    }

    #[test]
    #[should_panic(expected = "k must be at least 1")]
    fn zero_k_rejected() {
        let _ = TopK::new(0);
    }
}
