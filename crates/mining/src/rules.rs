//! Association-rule induction from frequent itemsets (Agrawal et al.,
//! "Fast algorithms for mining association rules", VLDB 1994 — reference
//! [1] of the paper).
//!
//! For every frequent itemset `Z` and every non-trivial split
//! `Z = A ∪ B`, the rule `A ⇒ B` is scored by:
//!
//! * **confidence** `supp(Z) / supp(A)`;
//! * **lift** `conf / supp(B)` (how much more often than independence);
//! * **leverage** `supp(Z) − supp(A)·supp(B)`;
//! * **conviction** `(1 − supp(B)) / (1 − conf)` (∞ for exact rules).

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::itemset::{FrequentItemset, ItemId, Itemset};

/// One association rule `antecedent ⇒ consequent` with its metrics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AssociationRule {
    /// Left-hand side.
    pub antecedent: Itemset,
    /// Right-hand side (disjoint from the antecedent).
    pub consequent: Itemset,
    /// Relative support of the union.
    pub support: f64,
    /// `supp(A∪B) / supp(A)`.
    pub confidence: f64,
    /// `confidence / supp(B)`.
    pub lift: f64,
    /// `supp(A∪B) − supp(A)·supp(B)`.
    pub leverage: f64,
    /// `(1 − supp(B)) / (1 − confidence)`; `f64::INFINITY` when
    /// confidence is 1.
    pub conviction: f64,
}

/// Configuration for rule induction.
#[derive(Debug, Clone)]
pub struct RuleConfig {
    /// Minimum confidence for an emitted rule.
    pub min_confidence: f64,
    /// Minimum lift for an emitted rule (1.0 = no filter beyond
    /// independence).
    pub min_lift: f64,
}

impl Default for RuleConfig {
    fn default() -> Self {
        RuleConfig {
            min_confidence: 0.5,
            min_lift: 0.0,
        }
    }
}

/// Induce rules from a complete set of frequent itemsets.
///
/// `n_transactions` converts counts to relative supports. Itemsets whose
/// subsets are missing from `itemsets` (i.e. an incomplete collection) are
/// skipped rather than mis-scored.
pub fn induce_rules(
    itemsets: &[FrequentItemset],
    n_transactions: usize,
    config: &RuleConfig,
) -> Vec<AssociationRule> {
    if n_transactions == 0 {
        return Vec::new();
    }
    let support_of: HashMap<&[ItemId], u64> = itemsets
        .iter()
        .map(|f| (f.items.items(), f.count))
        .collect();
    let n = n_transactions as f64;
    let mut rules = Vec::new();

    for f in itemsets.iter().filter(|f| f.items.len() >= 2) {
        let union_supp = f.count as f64 / n;
        let items = f.items.items();
        // Enumerate proper, non-empty antecedent subsets by bitmask.
        let k = items.len();
        debug_assert!(k < 32, "itemset too large for rule enumeration");
        for mask in 1u32..((1u32 << k) - 1) {
            let mut ante = Vec::new();
            let mut cons = Vec::new();
            for (i, &item) in items.iter().enumerate() {
                if mask & (1 << i) != 0 {
                    ante.push(item);
                } else {
                    cons.push(item);
                }
            }
            let (Some(&ante_cnt), Some(&cons_cnt)) = (
                support_of.get(ante.as_slice()),
                support_of.get(cons.as_slice()),
            ) else {
                continue; // incomplete input collection
            };
            let ante_supp = ante_cnt as f64 / n;
            let cons_supp = cons_cnt as f64 / n;
            let confidence = union_supp / ante_supp;
            if confidence < config.min_confidence {
                continue;
            }
            let lift = confidence / cons_supp;
            if lift < config.min_lift {
                continue;
            }
            let leverage = union_supp - ante_supp * cons_supp;
            let conviction = if (1.0 - confidence).abs() < 1e-12 {
                f64::INFINITY
            } else {
                (1.0 - cons_supp) / (1.0 - confidence)
            };
            rules.push(AssociationRule {
                antecedent: Itemset::from_sorted(ante),
                consequent: Itemset::from_sorted(cons),
                support: union_supp,
                confidence,
                lift,
                leverage,
                conviction,
            });
        }
    }
    rules.sort_by(|a, b| {
        b.confidence
            .partial_cmp(&a.confidence)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| {
                b.lift
                    .partial_cmp(&a.lift)
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
    });
    rules
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fpgrowth::FpGrowth;
    use crate::transaction::TransactionDb;
    use crate::Miner;

    fn rules_for(rows: Vec<Vec<ItemId>>, min_conf: f64) -> (Vec<AssociationRule>, usize) {
        let db = TransactionDb::from_rows(rows);
        let itemsets = FpGrowth::new(0.25).mine(&db);
        let cfg = RuleConfig {
            min_confidence: min_conf,
            min_lift: 0.0,
        };
        (induce_rules(&itemsets, db.len(), &cfg), db.len())
    }

    #[test]
    fn perfect_implication_has_confidence_one_and_infinite_conviction() {
        // 2 always follows 1.
        let (rules, _) = rules_for(vec![vec![1, 2], vec![1, 2], vec![2], vec![3]], 0.9);
        let r = rules
            .iter()
            .find(|r| r.antecedent.items() == [1] && r.consequent.items() == [2])
            .expect("rule 1 => 2");
        assert!((r.confidence - 1.0).abs() < 1e-12);
        assert!(r.conviction.is_infinite());
        // supp(2) = 3/4, lift = 1 / 0.75
        assert!((r.lift - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn confidence_filter_applies() {
        let (high, _) = rules_for(vec![vec![1, 2], vec![1], vec![1], vec![1]], 0.9);
        assert!(high.iter().all(|r| r.confidence >= 0.9));
        // 1 => 2 has confidence 0.25 and is excluded at 0.9 ...
        assert!(!high
            .iter()
            .any(|r| r.antecedent.items() == [1] && r.consequent.items() == [2]));
        // ... and included at 0.2.
        let (low, _) = rules_for(vec![vec![1, 2], vec![1], vec![1], vec![1]], 0.2);
        assert!(low
            .iter()
            .any(|r| r.antecedent.items() == [1] && r.consequent.items() == [2]));
    }

    #[test]
    fn independence_has_lift_one_and_zero_leverage() {
        // 1 and 2 occur independently: supp(1)=.5, supp(2)=.5, supp(12)=.25.
        let rows = vec![vec![1, 2], vec![1], vec![2], vec![]];
        let (rules, _) = rules_for(rows, 0.1);
        let r = rules
            .iter()
            .find(|r| r.antecedent.items() == [1] && r.consequent.items() == [2])
            .expect("rule");
        assert!((r.lift - 1.0).abs() < 1e-12);
        assert!(r.leverage.abs() < 1e-12);
        assert!((r.conviction - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rules_come_out_sorted_by_confidence() {
        let (rules, _) = rules_for(vec![vec![1, 2], vec![1, 2], vec![2, 3], vec![3]], 0.1);
        for w in rules.windows(2) {
            assert!(w[0].confidence >= w[1].confidence - 1e-12);
        }
    }

    #[test]
    fn empty_inputs() {
        assert!(induce_rules(&[], 10, &RuleConfig::default()).is_empty());
        assert!(induce_rules(&[], 0, &RuleConfig::default()).is_empty());
    }

    #[test]
    fn three_item_sets_generate_all_splits() {
        let rows = vec![vec![1, 2, 3]; 4];
        let db = TransactionDb::from_rows(rows);
        let itemsets = FpGrowth::new(0.5).mine(&db);
        let rules = induce_rules(&itemsets, db.len(), &RuleConfig::default());
        // {1,2} has 2 splits, {1,3} 2, {2,3} 2, {1,2,3} 6 -> 12 rules.
        assert_eq!(rules.len(), 12);
        assert!(rules.iter().all(|r| (r.confidence - 1.0).abs() < 1e-12));
    }
}
