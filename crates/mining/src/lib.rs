//! # pattern-mining — frequent itemset mining from scratch
//!
//! Hand-written implementations of the mining algorithms the paper relies
//! on (it uses FP-Growth; Agrawal's Apriori and Zaki's Eclat are provided
//! as cross-checking baselines and for the ablation benchmarks):
//!
//! * [`fpgrowth::FpGrowth`] — Han, Pei & Yin, *Mining frequent patterns
//!   without candidate generation*, SIGMOD 2000. The paper's miner.
//! * [`apriori::Apriori`] — Agrawal & Srikant, VLDB 1994. Level-wise
//!   candidate generation with downward-closure pruning.
//! * [`eclat::Eclat`] — vertical tid-list intersection, depth-first.
//!
//! All miners consume a [`transaction::TransactionDb`] (dense `u32` item
//! ids; the `recipedb` catalog maps names to ids) and produce the complete
//! set of frequent itemsets at a relative support threshold. The three
//! implementations are exhaustively cross-checked against each other in the
//! property-test suite: on any input they must return identical itemsets
//! with identical support counts.
//!
//! On top of raw itemsets the crate offers association-rule induction
//! ([`rules`]) with confidence / lift / leverage / conviction, and
//! maximal / closed filtering ([`filter`]) used by the cuisine-atlas
//! Table I report, threshold-free top-k mining ([`topk`]), and direct
//! closed-itemset mining with CHARM ([`charm`]).
//! [`parallel::ParallelFpGrowth`] is a multi-threaded FP-Growth that
//! partitions the search space by header-table item.
//!
//! ```
//! use pattern_mining::transaction::TransactionDb;
//! use pattern_mining::fpgrowth::FpGrowth;
//! use pattern_mining::Miner;
//!
//! let db = TransactionDb::from_rows(vec![
//!     vec![0, 1, 2],
//!     vec![0, 1],
//!     vec![0, 3],
//!     vec![1, 2],
//! ]);
//! let found = FpGrowth::new(0.5).mine(&db);
//! // {0}, {1}, {2}, {0,1}, {1,2} are frequent at 50%.
//! assert_eq!(found.len(), 5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod apriori;
pub mod charm;
pub mod eclat;
pub mod filter;
pub mod fpgrowth;
pub mod itemset;
pub mod parallel;
pub mod rules;
pub mod topk;
pub mod transaction;

pub use itemset::{FrequentItemset, ItemId, Itemset};
pub use transaction::TransactionDb;

/// A complete frequent-itemset miner.
///
/// Implementations must return **every** itemset whose support count is at
/// least `ceil(min_support × |db|)` (with the convention that a relative
/// threshold `t` means `count ≥ t · n`, matching the paper's "support of
/// 0.2"), each with its exact support count. Order is unspecified;
/// [`itemset::sort_canonical`] gives a canonical order for comparison.
pub trait Miner {
    /// Mine all frequent itemsets from `db`.
    fn mine(&self, db: &TransactionDb) -> Vec<FrequentItemset>;

    /// The relative minimum support threshold in `(0, 1]`.
    fn min_support(&self) -> f64;
}

/// Convert a relative support threshold into an absolute count for a
/// database of `n` transactions: the smallest count `c` with `c ≥ t·n`,
/// and at least 1.
pub fn min_count(min_support: f64, n: usize) -> u64 {
    let raw = (min_support * n as f64).ceil() as u64;
    raw.max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn min_count_rounds_up_and_floors_at_one() {
        assert_eq!(min_count(0.2, 10), 2);
        assert_eq!(min_count(0.2, 11), 3); // 2.2 -> 3
        assert_eq!(min_count(0.0, 10), 1);
        assert_eq!(min_count(1.0, 7), 7);
        assert_eq!(min_count(0.5, 0), 1);
    }
}
