//! The transaction database every miner consumes.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::itemset::ItemId;

/// An immutable database of transactions. Each transaction is stored as a
/// sorted, duplicate-free list of item ids.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TransactionDb {
    rows: Vec<Vec<ItemId>>,
}

impl TransactionDb {
    /// Build from rows; each row is normalized (sorted + deduplicated).
    pub fn from_rows(rows: Vec<Vec<ItemId>>) -> Self {
        let rows = rows
            .into_iter()
            .map(|mut r| {
                r.sort_unstable();
                r.dedup();
                r
            })
            .collect();
        TransactionDb { rows }
    }

    /// Number of transactions.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the database is empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The transactions.
    pub fn rows(&self) -> &[Vec<ItemId>] {
        &self.rows
    }

    /// One transaction.
    pub fn row(&self, i: usize) -> &[ItemId] {
        &self.rows[i]
    }

    /// Per-item support counts.
    pub fn item_counts(&self) -> HashMap<ItemId, u64> {
        let mut counts = HashMap::new();
        for row in &self.rows {
            for &item in row {
                *counts.entry(item).or_insert(0u64) += 1;
            }
        }
        counts
    }

    /// The largest item id present, if any.
    pub fn max_item(&self) -> Option<ItemId> {
        self.rows.iter().filter_map(|r| r.last()).max().copied()
    }

    /// Total number of item occurrences.
    pub fn total_items(&self) -> usize {
        self.rows.iter().map(Vec::len).sum()
    }

    /// Vertical representation: item → sorted list of transaction indices.
    /// This is the input format of Eclat.
    pub fn tid_lists(&self) -> HashMap<ItemId, Vec<u32>> {
        let mut lists: HashMap<ItemId, Vec<u32>> = HashMap::new();
        for (tid, row) in self.rows.iter().enumerate() {
            for &item in row {
                lists.entry(item).or_default().push(tid as u32);
            }
        }
        lists
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_are_normalized() {
        let db = TransactionDb::from_rows(vec![vec![3, 1, 3], vec![]]);
        assert_eq!(db.row(0), &[1, 3]);
        assert_eq!(db.row(1), &[] as &[ItemId]);
        assert_eq!(db.len(), 2);
        assert!(!db.is_empty());
        assert_eq!(db.total_items(), 2);
    }

    #[test]
    fn item_counts_count_transactions() {
        let db = TransactionDb::from_rows(vec![vec![1, 2], vec![1], vec![2, 2]]);
        let counts = db.item_counts();
        assert_eq!(counts[&1], 2);
        assert_eq!(counts[&2], 2, "duplicates within a row count once");
        assert_eq!(db.max_item(), Some(2));
    }

    #[test]
    fn tid_lists_are_sorted() {
        let db = TransactionDb::from_rows(vec![vec![5], vec![5, 7], vec![7]]);
        let lists = db.tid_lists();
        assert_eq!(lists[&5], vec![0, 1]);
        assert_eq!(lists[&7], vec![1, 2]);
    }

    #[test]
    fn empty_db() {
        let db = TransactionDb::default();
        assert!(db.is_empty());
        assert_eq!(db.max_item(), None);
        assert!(db.item_counts().is_empty());
    }
}
