//! Itemset types shared by every miner.

use serde::{Deserialize, Serialize};

/// Dense item identifier. The `recipedb` catalog maps token names to these.
pub type ItemId = u32;

/// A sorted, duplicate-free set of items.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Itemset(Vec<ItemId>);

impl Itemset {
    /// Build from arbitrary items (sorted and deduplicated).
    pub fn new(mut items: Vec<ItemId>) -> Self {
        items.sort_unstable();
        items.dedup();
        Itemset(items)
    }

    /// Build from items already sorted and distinct.
    ///
    /// # Panics
    /// In debug builds, if `items` is not strictly increasing.
    pub fn from_sorted(items: Vec<ItemId>) -> Self {
        debug_assert!(
            items.windows(2).all(|w| w[0] < w[1]),
            "items must be strictly increasing"
        );
        Itemset(items)
    }

    /// A single-item set.
    pub fn singleton(item: ItemId) -> Self {
        Itemset(vec![item])
    }

    /// The items, sorted ascending.
    pub fn items(&self) -> &[ItemId] {
        &self.0
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Whether `item` is a member.
    pub fn contains(&self, item: ItemId) -> bool {
        self.0.binary_search(&item).is_ok()
    }

    /// Whether `self ⊆ other`.
    pub fn is_subset_of(&self, other: &Itemset) -> bool {
        if self.0.len() > other.0.len() {
            return false;
        }
        let mut oi = other.0.iter();
        'outer: for &x in &self.0 {
            for &y in oi.by_ref() {
                match y.cmp(&x) {
                    std::cmp::Ordering::Less => continue,
                    std::cmp::Ordering::Equal => continue 'outer,
                    std::cmp::Ordering::Greater => return false,
                }
            }
            return false;
        }
        true
    }

    /// Whether `self ⊆ transaction` for a sorted transaction slice.
    pub fn is_contained_in(&self, transaction: &[ItemId]) -> bool {
        let mut ti = transaction.iter();
        'outer: for &x in &self.0 {
            for &y in ti.by_ref() {
                match y.cmp(&x) {
                    std::cmp::Ordering::Less => continue,
                    std::cmp::Ordering::Equal => continue 'outer,
                    std::cmp::Ordering::Greater => return false,
                }
            }
            return false;
        }
        true
    }

    /// The union `self ∪ other`.
    pub fn union(&self, other: &Itemset) -> Itemset {
        let mut out = Vec::with_capacity(self.0.len() + other.0.len());
        let (mut i, mut j) = (0, 0);
        while i < self.0.len() && j < other.0.len() {
            match self.0[i].cmp(&other.0[j]) {
                std::cmp::Ordering::Less => {
                    out.push(self.0[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.push(other.0[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    out.push(self.0[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&self.0[i..]);
        out.extend_from_slice(&other.0[j..]);
        Itemset(out)
    }

    /// The set extended with one more item.
    pub fn with(&self, item: ItemId) -> Itemset {
        let mut items = self.0.clone();
        match items.binary_search(&item) {
            Ok(_) => {}
            Err(pos) => items.insert(pos, item),
        }
        Itemset(items)
    }

    /// All `len-1`-sized subsets (used by Apriori pruning).
    pub fn proper_subsets_one_smaller(&self) -> impl Iterator<Item = Itemset> + '_ {
        (0..self.0.len()).map(move |skip| {
            Itemset(
                self.0
                    .iter()
                    .enumerate()
                    .filter(|&(i, _)| i != skip)
                    .map(|(_, &x)| x)
                    .collect(),
            )
        })
    }
}

impl std::fmt::Display for Itemset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{{")?;
        for (i, item) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{item}")?;
        }
        write!(f, "}}")
    }
}

/// A frequent itemset with its exact support count.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FrequentItemset {
    /// The items.
    pub items: Itemset,
    /// Number of transactions containing the set.
    pub count: u64,
}

impl FrequentItemset {
    /// Relative support given the database size.
    pub fn support(&self, n_transactions: usize) -> f64 {
        if n_transactions == 0 {
            return 0.0;
        }
        self.count as f64 / n_transactions as f64
    }
}

/// Sort itemsets canonically: by length, then lexicographically by items.
/// Two complete miners' outputs compare equal after this sort.
pub fn sort_canonical(itemsets: &mut [FrequentItemset]) {
    itemsets.sort_by(|a, b| {
        a.items
            .len()
            .cmp(&b.items.len())
            .then_with(|| a.items.items().cmp(b.items.items()))
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_sorts_and_dedups() {
        let s = Itemset::new(vec![3, 1, 3, 2]);
        assert_eq!(s.items(), &[1, 2, 3]);
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
    }

    #[test]
    fn subset_relation() {
        let a = Itemset::new(vec![1, 3]);
        let b = Itemset::new(vec![1, 2, 3]);
        assert!(a.is_subset_of(&b));
        assert!(!b.is_subset_of(&a));
        assert!(a.is_subset_of(&a));
        assert!(Itemset::new(vec![]).is_subset_of(&a));
        assert!(!Itemset::new(vec![4]).is_subset_of(&b));
    }

    #[test]
    fn containment_in_transaction() {
        let s = Itemset::new(vec![2, 5]);
        assert!(s.is_contained_in(&[1, 2, 3, 5, 9]));
        assert!(!s.is_contained_in(&[1, 2, 3]));
        assert!(!s.is_contained_in(&[]));
    }

    #[test]
    fn union_merges_sorted() {
        let a = Itemset::new(vec![1, 4]);
        let b = Itemset::new(vec![2, 4, 6]);
        assert_eq!(a.union(&b).items(), &[1, 2, 4, 6]);
    }

    #[test]
    fn with_inserts_in_place() {
        let a = Itemset::new(vec![1, 5]);
        assert_eq!(a.with(3).items(), &[1, 3, 5]);
        assert_eq!(a.with(5).items(), &[1, 5]);
        assert_eq!(a.with(9).items(), &[1, 5, 9]);
    }

    #[test]
    fn one_smaller_subsets() {
        let a = Itemset::new(vec![1, 2, 3]);
        let subs: Vec<Itemset> = a.proper_subsets_one_smaller().collect();
        assert_eq!(subs.len(), 3);
        assert!(subs.contains(&Itemset::new(vec![2, 3])));
        assert!(subs.contains(&Itemset::new(vec![1, 3])));
        assert!(subs.contains(&Itemset::new(vec![1, 2])));
    }

    #[test]
    fn canonical_sort_orders_by_length_then_lex() {
        let mut sets = vec![
            FrequentItemset {
                items: Itemset::new(vec![2]),
                count: 1,
            },
            FrequentItemset {
                items: Itemset::new(vec![1, 2]),
                count: 1,
            },
            FrequentItemset {
                items: Itemset::new(vec![1]),
                count: 1,
            },
        ];
        sort_canonical(&mut sets);
        assert_eq!(sets[0].items.items(), &[1]);
        assert_eq!(sets[1].items.items(), &[2]);
        assert_eq!(sets[2].items.items(), &[1, 2]);
    }

    #[test]
    fn support_fraction() {
        let f = FrequentItemset {
            items: Itemset::singleton(1),
            count: 3,
        };
        assert!((f.support(12) - 0.25).abs() < 1e-12);
        assert_eq!(f.support(0), 0.0);
    }

    #[test]
    fn display_format() {
        assert_eq!(Itemset::new(vec![2, 1]).to_string(), "{1, 2}");
        assert_eq!(Itemset::new(vec![]).to_string(), "{}");
    }
}
