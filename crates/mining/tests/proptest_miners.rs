//! Property-based cross-checks of the three miners.
//!
//! The central invariant: **FP-Growth, Apriori, Eclat and parallel
//! FP-Growth return identical itemsets with identical counts** on any
//! input, and the result obeys downward closure and brute-force support
//! counting.

use proptest::prelude::*;

use pattern_mining::apriori::Apriori;
use pattern_mining::charm::Charm;
use pattern_mining::eclat::Eclat;
use pattern_mining::fpgrowth::FpGrowth;
use pattern_mining::itemset::{sort_canonical, FrequentItemset, Itemset};
use pattern_mining::parallel::ParallelFpGrowth;
use pattern_mining::transaction::TransactionDb;
use pattern_mining::{min_count, Miner};

fn arb_db() -> impl Strategy<Value = TransactionDb> {
    // Up to 40 transactions over a universe of 8 items, with skewed
    // lengths; small enough for brute force, rich enough for deep trees.
    prop::collection::vec(prop::collection::vec(0u32..8, 0..7), 0..40)
        .prop_map(TransactionDb::from_rows)
}

fn arb_support() -> impl Strategy<Value = f64> {
    prop_oneof![
        Just(0.1),
        Just(0.2),
        Just(0.35),
        Just(0.5),
        Just(0.8),
        Just(1.0)
    ]
}

/// Brute-force support of an itemset.
fn brute_count(db: &TransactionDb, items: &Itemset) -> u64 {
    db.rows()
        .iter()
        .filter(|row| items.is_contained_in(row))
        .count() as u64
}

/// Brute-force complete mining by subset enumeration over the universe.
fn brute_mine(db: &TransactionDb, min_support: f64) -> Vec<FrequentItemset> {
    let min_cnt = min_count(min_support, db.len());
    let mut out = Vec::new();
    let universe: Vec<u32> = {
        let mut u: Vec<u32> = db.item_counts().keys().copied().collect();
        u.sort_unstable();
        u
    };
    let k = universe.len();
    for mask in 1u32..(1u32 << k) {
        let items: Vec<u32> = (0..k)
            .filter(|i| mask & (1 << i) != 0)
            .map(|i| universe[i])
            .collect();
        let set = Itemset::from_sorted(items);
        let count = brute_count(db, &set);
        if count >= min_cnt {
            out.push(FrequentItemset { items: set, count });
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn all_miners_agree_with_brute_force(db in arb_db(), s in arb_support()) {
        prop_assume!(!db.is_empty());
        let mut brute = brute_mine(&db, s);
        sort_canonical(&mut brute);

        for (name, mut mined) in [
            ("fpgrowth", FpGrowth::new(s).mine(&db)),
            ("apriori", Apriori::new(s).mine(&db)),
            ("eclat", Eclat::new(s).mine(&db)),
            ("parallel", ParallelFpGrowth::new(s, 3).mine(&db)),
        ] {
            sort_canonical(&mut mined);
            prop_assert_eq!(&mined, &brute, "{} disagrees with brute force", name);
        }
    }

    #[test]
    fn charm_equals_filtered_complete_mining(db in arb_db(), s in arb_support()) {
        prop_assume!(!db.is_empty());
        let mut reference = pattern_mining::filter::closed(&FpGrowth::new(s).mine(&db));
        let mut charm = Charm::new(s).mine(&db);
        sort_canonical(&mut reference);
        sort_canonical(&mut charm);
        prop_assert_eq!(charm, reference);
    }

    #[test]
    fn topk_prefix_of_full_ranking(db in arb_db()) {
        prop_assume!(!db.is_empty());
        let k = 7usize;
        let got = pattern_mining::topk::TopK::new(k).mine(&db);
        let mut all = FpGrowth::new(1e-9).mine(&db);
        all.sort_by(|a, b| b.count.cmp(&a.count)
            .then(a.items.len().cmp(&b.items.len()))
            .then(a.items.items().cmp(b.items.items())));
        all.truncate(k);
        prop_assert_eq!(got, all);
    }

    #[test]
    fn downward_closure_and_support_monotonicity(db in arb_db()) {
        prop_assume!(db.len() >= 2);
        let mined = FpGrowth::new(0.2).mine(&db);
        let lookup: std::collections::HashMap<&[u32], u64> =
            mined.iter().map(|f| (f.items.items(), f.count)).collect();
        for f in &mined {
            for sub in f.items.proper_subsets_one_smaller() {
                if sub.is_empty() { continue; }
                let sup = lookup.get(sub.items());
                prop_assert!(sup.is_some(), "subset {} of {} missing", sub, f.items);
                prop_assert!(*sup.unwrap() >= f.count);
            }
        }
    }

    #[test]
    fn raising_threshold_shrinks_result(db in arb_db()) {
        prop_assume!(!db.is_empty());
        let lo = FpGrowth::new(0.2).mine(&db);
        let hi = FpGrowth::new(0.5).mine(&db);
        let lo_set: std::collections::HashSet<&[u32]> =
            lo.iter().map(|f| f.items.items()).collect();
        prop_assert!(hi.len() <= lo.len());
        for f in &hi {
            prop_assert!(lo_set.contains(f.items.items()),
                "itemset {} frequent at 0.5 but not at 0.2", f.items);
        }
    }

    #[test]
    fn counts_are_exact(db in arb_db()) {
        prop_assume!(!db.is_empty());
        for f in FpGrowth::new(0.3).mine(&db) {
            prop_assert_eq!(f.count, brute_count(&db, &f.items));
        }
    }

    #[test]
    fn max_len_is_a_pure_filter(db in arb_db()) {
        prop_assume!(!db.is_empty());
        let mut full: Vec<FrequentItemset> = FpGrowth::new(0.2)
            .mine(&db)
            .into_iter()
            .filter(|f| f.items.len() <= 2)
            .collect();
        let mut capped = FpGrowth::new(0.2).with_max_len(2).mine(&db);
        sort_canonical(&mut full);
        sort_canonical(&mut capped);
        prop_assert_eq!(full, capped);
    }
}
