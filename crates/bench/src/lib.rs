//! Shared fixtures for the benchmark suite: deterministic corpora and
//! transaction extracts at the standard benchmark scale.

use pattern_mining::transaction::TransactionDb;
use recipedb::generator::{CorpusGenerator, GeneratorConfig};
use recipedb::{Cuisine, RecipeDb};

/// The standard benchmark corpus: 10% of the paper scale with a
/// 200-recipe floor, seed 7.
pub fn bench_corpus() -> RecipeDb {
    let mut cfg = GeneratorConfig::paper_scale(0.1).with_seed(7);
    cfg.min_recipes_per_cuisine = 200;
    CorpusGenerator::new(cfg).generate()
}

/// One cuisine's transactions in miner format.
pub fn cuisine_transactions(db: &RecipeDb, cuisine: Cuisine) -> TransactionDb {
    TransactionDb::from_rows(
        db.transactions_for(cuisine)
            .into_iter()
            .map(|tx| tx.into_iter().map(|t| t.0).collect())
            .collect(),
    )
}
