//! `repro` — regenerate every table and figure of the paper.
//!
//! ```text
//! repro [--scale S] [--seed N] [--linkage METHOD] [--json] [EXPERIMENT...]
//!
//! EXPERIMENT: table1 figure1 figure2 figure3 figure4 figure5 figure6
//!             validate extensions stats all        (default: all)
//! --scale S   corpus scale vs the paper's 118k recipes (default 1.0)
//! --seed N    generator seed (default 42)
//! --linkage M single|complete|average|weighted|ward (default average)
//! --json      emit the machine-readable views (cuisine_atlas::views)
//!             instead of the text reports
//! ```

use std::process::ExitCode;

use clustering::hac::LinkageMethod;
use clustering::Metric;
use cuisine_atlas::compare::{geo_agreement, historical_claims};
use cuisine_atlas::experiments;
use cuisine_atlas::pipeline::{AtlasConfig, CuisineAtlas};
use cuisine_atlas::views::{AgreementView, ElbowView, Table1View, TreeView};
use recipedb::generator::GeneratorConfig;

struct Options {
    scale: f64,
    seed: u64,
    linkage: LinkageMethod,
    json: bool,
    experiments: Vec<String>,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        scale: 1.0,
        seed: 42,
        linkage: LinkageMethod::Average,
        json: false,
        experiments: Vec::new(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                let v = args.next().ok_or("--scale needs a value")?;
                opts.scale = v.parse().map_err(|e| format!("bad --scale {v}: {e}"))?;
                if opts.scale <= 0.0 {
                    return Err("--scale must be positive".into());
                }
            }
            "--seed" => {
                let v = args.next().ok_or("--seed needs a value")?;
                opts.seed = v.parse().map_err(|e| format!("bad --seed {v}: {e}"))?;
            }
            "--linkage" => {
                let v = args.next().ok_or("--linkage needs a value")?;
                opts.linkage = match v.as_str() {
                    "single" => LinkageMethod::Single,
                    "complete" => LinkageMethod::Complete,
                    "average" => LinkageMethod::Average,
                    "weighted" => LinkageMethod::Weighted,
                    "ward" => LinkageMethod::Ward,
                    other => return Err(format!("unknown linkage {other}")),
                };
            }
            "--json" => opts.json = true,
            "--help" | "-h" => {
                return Err(
                    "usage: repro [--scale S] [--seed N] [--linkage M] [--json] [EXPERIMENT...]"
                        .into(),
                )
            }
            exp => opts.experiments.push(exp.to_string()),
        }
    }
    if opts.experiments.is_empty() {
        opts.experiments.push("all".into());
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };

    let mut corpus = GeneratorConfig::paper_scale(opts.scale).with_seed(opts.seed);
    // Keep tiny-scale runs statistically meaningful.
    corpus.min_recipes_per_cuisine = corpus.min_recipes_per_cuisine.max(300);
    let config = AtlasConfig {
        corpus,
        ..AtlasConfig::paper()
    }
    .with_linkage(opts.linkage);

    eprintln!(
        "building atlas: scale {} (~{} recipes), seed {}, linkage {} ...",
        opts.scale,
        config.corpus.total_recipes(),
        opts.seed,
        opts.linkage
    );
    let atlas = CuisineAtlas::build(&config);

    if opts.json {
        return run_json(&atlas, &opts);
    }

    for exp in &opts.experiments {
        let out = match exp.as_str() {
            "table1" | "t1" => experiments::table1(&atlas),
            "figure1" | "f1" => experiments::figure1_elbow(&atlas),
            "figure1x" | "f1b" => experiments::figure1_extended(&atlas),
            "figure2" | "f2" => experiments::figure2_euclidean(&atlas),
            "figure3" | "f3" => experiments::figure3_cosine(&atlas),
            "figure4" | "f4" => experiments::figure4_jaccard(&atlas),
            "figure5" | "f5" => experiments::figure5_authenticity(&atlas),
            "figure6" | "f6" => experiments::figure6_geography(&atlas),
            "validate" | "q1" => experiments::validate(&atlas),
            "extensions" | "ext" => experiments::ext_all(&atlas),
            "stats" => atlas.db().stats().report(),
            "all" => experiments::run_all(&atlas),
            other => {
                eprintln!("unknown experiment: {other}");
                return ExitCode::FAILURE;
            }
        };
        println!("{out}");
    }
    ExitCode::SUCCESS
}

/// JSON mode: each experiment becomes one line of `cuisine_atlas::views`
/// output — the exact payloads the `atlas-server` endpoints serve.
fn run_json(atlas: &CuisineAtlas, opts: &Options) -> ExitCode {
    let geo = atlas.geographic_tree();
    for exp in &opts.experiments {
        let value = match exp.as_str() {
            "table1" | "t1" => serde_json::to_value(Table1View::from_table(&atlas.table1())),
            "figure1" | "f1" => serde_json::to_value(ElbowView {
                k_max: 16,
                seed: opts.seed,
                wcss: atlas.elbow_curve(16, opts.seed),
            }),
            "figure2" | "f2" => {
                serde_json::to_value(TreeView::from_tree(&atlas.pattern_tree(Metric::Euclidean)))
            }
            "figure3" | "f3" => {
                serde_json::to_value(TreeView::from_tree(&atlas.pattern_tree(Metric::Cosine)))
            }
            "figure4" | "f4" => {
                serde_json::to_value(TreeView::from_tree(&atlas.pattern_tree(Metric::Jaccard)))
            }
            "figure5" | "f5" => {
                serde_json::to_value(TreeView::from_tree(&atlas.authenticity_tree()))
            }
            "figure6" | "f6" => serde_json::to_value(TreeView::from_tree(&geo)),
            "validate" | "q1" => {
                let views: Vec<AgreementView> = [
                    atlas.pattern_tree(Metric::Euclidean),
                    atlas.pattern_tree(Metric::Cosine),
                    atlas.pattern_tree(Metric::Jaccard),
                    atlas.authenticity_tree(),
                ]
                .iter()
                .map(|t| AgreementView::from_parts(&geo_agreement(t, &geo), &historical_claims(t)))
                .collect();
                serde_json::to_value(views)
            }
            "all" => {
                let mut obj = serde_json::Map::new();
                obj.insert(
                    "table1".into(),
                    serde_json::to_value(Table1View::from_table(&atlas.table1())).unwrap(),
                );
                for (key, tree) in [
                    ("figure2", atlas.pattern_tree(Metric::Euclidean)),
                    ("figure3", atlas.pattern_tree(Metric::Cosine)),
                    ("figure4", atlas.pattern_tree(Metric::Jaccard)),
                    ("figure5", atlas.authenticity_tree()),
                    ("figure6", geo.clone()),
                ] {
                    obj.insert(
                        key.into(),
                        serde_json::to_value(TreeView::from_tree(&tree)).unwrap(),
                    );
                }
                obj.insert(
                    "figure1".into(),
                    serde_json::to_value(ElbowView {
                        k_max: 16,
                        seed: opts.seed,
                        wcss: atlas.elbow_curve(16, opts.seed),
                    })
                    .unwrap(),
                );
                Ok(serde_json::Value::Object(obj))
            }
            other => {
                eprintln!("experiment {other} has no JSON view (text mode only)");
                return ExitCode::FAILURE;
            }
        };
        match value {
            Ok(v) => println!("{}", serde_json::to_string_pretty(&v).unwrap()),
            Err(e) => {
                eprintln!("serializing {exp}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
