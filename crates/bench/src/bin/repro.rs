//! `repro` — regenerate every table and figure of the paper.
//!
//! ```text
//! repro [--scale S] [--seed N] [--linkage METHOD] [--build-threads N]
//!       [--json] [--bench-json [PATH]] [--assert-speedup] [EXPERIMENT...]
//!
//! EXPERIMENT: table1 figure1 figure2 figure3 figure4 figure5 figure6
//!             validate extensions stats all        (default: all)
//! --scale S   corpus scale vs the paper's 118k recipes (default 1.0)
//! --seed N    generator seed (default 42)
//! --linkage M single|complete|average|weighted|ward (default average)
//! --build-threads N  worker threads for the atlas build; 0 = all
//!             available cores (default). Results are identical for
//!             every thread count — only wall-clock changes.
//! --json      emit the machine-readable views (cuisine_atlas::views)
//!             instead of the text reports, followed by a metrics
//!             snapshot of the build's pipeline spans
//! --bench-json [PATH]  skip the experiments; time cold atlas builds at
//!             the configured scale for thread counts 1, 2 and all
//!             cores, and write per-stage wall-clock entries to PATH
//!             (default BENCH_atlas_build.json)
//! --export-corpus PATH  skip the experiments; generate the corpus for
//!             the configured scale/seed and write its RecipeDB JSON
//!             snapshot to PATH — the format `POST /corpus` accepts
//!             (see README "Bring your own corpus")
//! --assert-speedup  with --bench-json: exit non-zero unless the build
//!             at all cores beat the sequential build (skipped with a
//!             warning on single-core hosts, where there is nothing to
//!             compare)
//! ```

use std::process::ExitCode;

use atlas_server::metrics::MetricsRegistry;
use clustering::hac::LinkageMethod;
use clustering::Metric;
use cuisine_atlas::compare::{geo_agreement, historical_claims};
use cuisine_atlas::experiments;
use cuisine_atlas::pipeline::{AtlasConfig, CuisineAtlas};
use cuisine_atlas::views::{AgreementView, ElbowView, Table1View, TreeView};
use recipedb::generator::GeneratorConfig;
use serde_json::json;

struct Options {
    scale: f64,
    seed: u64,
    linkage: LinkageMethod,
    build_threads: usize,
    json: bool,
    bench_json: Option<String>,
    export_corpus: Option<String>,
    assert_speedup: bool,
    experiments: Vec<String>,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        scale: 1.0,
        seed: 42,
        linkage: LinkageMethod::Average,
        build_threads: 0,
        json: false,
        bench_json: None,
        export_corpus: None,
        assert_speedup: false,
        experiments: Vec::new(),
    };
    let mut args = std::env::args().skip(1).peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                let v = args.next().ok_or("--scale needs a value")?;
                opts.scale = v.parse().map_err(|e| format!("bad --scale {v}: {e}"))?;
                if opts.scale <= 0.0 {
                    return Err("--scale must be positive".into());
                }
            }
            "--seed" => {
                let v = args.next().ok_or("--seed needs a value")?;
                opts.seed = v.parse().map_err(|e| format!("bad --seed {v}: {e}"))?;
            }
            "--linkage" => {
                let v = args.next().ok_or("--linkage needs a value")?;
                opts.linkage = match v.as_str() {
                    "single" => LinkageMethod::Single,
                    "complete" => LinkageMethod::Complete,
                    "average" => LinkageMethod::Average,
                    "weighted" => LinkageMethod::Weighted,
                    "ward" => LinkageMethod::Ward,
                    other => return Err(format!("unknown linkage {other}")),
                };
            }
            "--build-threads" => {
                let v = args.next().ok_or("--build-threads needs a value")?;
                opts.build_threads = v
                    .parse()
                    .map_err(|e| format!("bad --build-threads {v}: {e}"))?;
            }
            "--json" => opts.json = true,
            "--bench-json" => {
                // Optional PATH operand; next bare non-flag, non-experiment
                // token with a path-ish shape is taken as the output file.
                let path = match args.peek() {
                    Some(next)
                        if !next.starts_with("--")
                            && (next.ends_with(".json") || next.contains('/')) =>
                    {
                        args.next().unwrap()
                    }
                    _ => "BENCH_atlas_build.json".to_string(),
                };
                opts.bench_json = Some(path);
            }
            "--export-corpus" => {
                opts.export_corpus = Some(args.next().ok_or("--export-corpus needs a PATH")?);
            }
            "--assert-speedup" => opts.assert_speedup = true,
            "--help" | "-h" => {
                return Err(
                    "usage: repro [--scale S] [--seed N] [--linkage M] [--build-threads N] \
                     [--json] [--bench-json [PATH]] [--export-corpus PATH] [--assert-speedup] \
                     [EXPERIMENT...]"
                        .into(),
                )
            }
            exp => opts.experiments.push(exp.to_string()),
        }
    }
    if opts.experiments.is_empty() {
        opts.experiments.push("all".into());
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };

    let mut corpus = GeneratorConfig::paper_scale(opts.scale).with_seed(opts.seed);
    // Keep tiny-scale runs statistically meaningful.
    corpus.min_recipes_per_cuisine = corpus.min_recipes_per_cuisine.max(300);
    let config = AtlasConfig {
        corpus,
        ..AtlasConfig::paper()
    }
    .with_linkage(opts.linkage)
    .with_build_threads(opts.build_threads);

    if let Some(path) = &opts.bench_json {
        return run_bench_json(&config, &opts, path);
    }

    if let Some(path) = &opts.export_corpus {
        // Generate only — no mining or clustering — and write the
        // snapshot `POST /corpus` accepts.
        let db = recipedb::generator::CorpusGenerator::new(config.corpus.clone()).generate();
        eprintln!(
            "exporting corpus: {} recipes, digest {} ...",
            db.recipe_count(),
            recipedb::corpus_digest(&db)
        );
        return match recipedb::io::save(&db, path) {
            Ok(()) => {
                eprintln!("wrote {path}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("failed to write {path}: {e}");
                ExitCode::FAILURE
            }
        };
    }

    eprintln!(
        "building atlas: scale {} (~{} recipes), seed {}, linkage {}, {} build thread(s) ...",
        opts.scale,
        config.corpus.total_recipes(),
        opts.seed,
        opts.linkage,
        config.effective_build_threads(),
    );

    if opts.json {
        // Build through a metrics registry so the snapshot printed after
        // the views carries the same pipeline spans `atlas-server`
        // exports on /metrics.
        let registry = MetricsRegistry::new(&[]);
        let atlas = CuisineAtlas::build_with_sink(&config, &registry);
        return run_json(&atlas, &opts, &registry);
    }
    let atlas = CuisineAtlas::build(&config);

    for exp in &opts.experiments {
        let out = match exp.as_str() {
            "table1" | "t1" => experiments::table1(&atlas),
            "figure1" | "f1" => experiments::figure1_elbow(&atlas),
            "figure1x" | "f1b" => experiments::figure1_extended(&atlas),
            "figure2" | "f2" => experiments::figure2_euclidean(&atlas),
            "figure3" | "f3" => experiments::figure3_cosine(&atlas),
            "figure4" | "f4" => experiments::figure4_jaccard(&atlas),
            "figure5" | "f5" => experiments::figure5_authenticity(&atlas),
            "figure6" | "f6" => experiments::figure6_geography(&atlas),
            "validate" | "q1" => experiments::validate(&atlas),
            "extensions" | "ext" => experiments::ext_all(&atlas),
            "stats" => atlas.db().stats().report(),
            "all" => experiments::run_all(&atlas),
            other => {
                eprintln!("unknown experiment: {other}");
                return ExitCode::FAILURE;
            }
        };
        println!("{out}");
    }
    ExitCode::SUCCESS
}

/// `--bench-json`: time one cold atlas build per thread count (1, 2 and
/// all cores, deduplicated) at the configured scale and write the
/// per-stage wall-clock trajectory as flat JSON entries. The honest
/// companion to `benches/atlas_build.rs` for tracking the parallel
/// build across commits and machines.
fn run_bench_json(config: &AtlasConfig, opts: &Options, path: &str) -> ExitCode {
    let host_threads = par::available();
    let mut thread_counts = vec![1, 2, host_threads];
    thread_counts.sort_unstable();
    thread_counts.dedup();

    let mut entries = Vec::new();
    let mut totals: Vec<(usize, f64)> = Vec::new();
    for &threads in &thread_counts {
        eprintln!(
            "bench: cold build at scale {} with {threads} thread(s) ...",
            opts.scale
        );
        let atlas = CuisineAtlas::build(&config.clone().with_build_threads(threads));
        let t = atlas.timings();
        totals.push((threads, t.total_ms()));
        for (stage, wall_ms) in [
            ("generate", t.generate_ms),
            ("mine", t.mine_ms),
            ("features", t.features_ms),
            ("pdist", t.pdist_ms),
            ("total", t.total_ms()),
        ] {
            entries.push(json!({
                "stage": stage,
                "scale": (opts.scale),
                "threads": threads,
                "wall_ms": wall_ms,
            }));
        }
        eprintln!("bench: {threads} thread(s): total {:.0} ms", t.total_ms());
    }

    let doc = json!({
        "benchmark": "atlas_build",
        "host_threads": host_threads,
        "seed": (opts.seed),
        "entries": entries,
    });
    let body = serde_json::to_string_pretty(&doc).unwrap();
    if let Err(e) = std::fs::write(path, body + "\n") {
        eprintln!("writing {path}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("wrote {path}");

    if opts.assert_speedup {
        if host_threads <= 1 {
            eprintln!(
                "bench: --assert-speedup skipped — single-core host, \
                 nothing to compare"
            );
            return ExitCode::SUCCESS;
        }
        let sequential = totals.iter().find(|&&(t, _)| t == 1).map(|&(_, ms)| ms);
        let parallel = totals
            .iter()
            .find(|&&(t, _)| t == host_threads)
            .map(|&(_, ms)| ms);
        match (sequential, parallel) {
            (Some(seq), Some(par)) if par < seq => {
                eprintln!(
                    "bench: speedup {:.2}x at {host_threads} threads \
                     ({seq:.0} ms -> {par:.0} ms)",
                    seq / par
                );
            }
            (Some(seq), Some(par)) => {
                eprintln!(
                    "bench: REGRESSION — {host_threads}-thread build \
                     ({par:.0} ms) is not faster than sequential ({seq:.0} ms)"
                );
                return ExitCode::FAILURE;
            }
            _ => {
                eprintln!("bench: --assert-speedup: missing measurements");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

/// The build's pipeline spans as one JSON document: count, total wall
/// time and p50/p99 per span, matching `atlas_build_span_seconds` on the
/// server's /metrics (milliseconds here, for consistency with
/// `BuildTimings`).
fn metrics_snapshot(registry: &MetricsRegistry) -> serde_json::Value {
    let mut spans = serde_json::Map::new();
    for (name, snap) in registry.span_snapshots() {
        spans.insert(
            name,
            json!({
                "count": (snap.count()),
                "total_ms": (snap.sum_seconds() * 1e3),
                "p50_ms": (snap.quantile(0.5).map(|s| s * 1e3)),
                "p99_ms": (snap.quantile(0.99).map(|s| s * 1e3)),
            }),
        );
    }
    let body = json!({ "spans": (serde_json::Value::Object(spans)) });
    json!({ "metrics": body })
}

/// JSON mode: each experiment becomes one line of `cuisine_atlas::views`
/// output — the exact payloads the `atlas-server` endpoints serve — and
/// a final metrics snapshot records the build's pipeline spans.
fn run_json(atlas: &CuisineAtlas, opts: &Options, registry: &MetricsRegistry) -> ExitCode {
    let geo = atlas.geographic_tree();
    for exp in &opts.experiments {
        let value = match exp.as_str() {
            "table1" | "t1" => serde_json::to_value(Table1View::from_table(&atlas.table1())),
            "figure1" | "f1" => serde_json::to_value(ElbowView {
                k_max: 16,
                seed: opts.seed,
                wcss: atlas.elbow_curve(16, opts.seed),
            }),
            "figure2" | "f2" => {
                serde_json::to_value(TreeView::from_tree(&atlas.pattern_tree(Metric::Euclidean)))
            }
            "figure3" | "f3" => {
                serde_json::to_value(TreeView::from_tree(&atlas.pattern_tree(Metric::Cosine)))
            }
            "figure4" | "f4" => {
                serde_json::to_value(TreeView::from_tree(&atlas.pattern_tree(Metric::Jaccard)))
            }
            "figure5" | "f5" => {
                serde_json::to_value(TreeView::from_tree(&atlas.authenticity_tree()))
            }
            "figure6" | "f6" => serde_json::to_value(TreeView::from_tree(&geo)),
            "validate" | "q1" => {
                let views: Vec<AgreementView> = [
                    atlas.pattern_tree(Metric::Euclidean),
                    atlas.pattern_tree(Metric::Cosine),
                    atlas.pattern_tree(Metric::Jaccard),
                    atlas.authenticity_tree(),
                ]
                .iter()
                .map(|t| AgreementView::from_parts(&geo_agreement(t, &geo), &historical_claims(t)))
                .collect();
                serde_json::to_value(views)
            }
            "all" => {
                let mut obj = serde_json::Map::new();
                obj.insert(
                    "table1".into(),
                    serde_json::to_value(Table1View::from_table(&atlas.table1())).unwrap(),
                );
                for (key, tree) in [
                    ("figure2", atlas.pattern_tree(Metric::Euclidean)),
                    ("figure3", atlas.pattern_tree(Metric::Cosine)),
                    ("figure4", atlas.pattern_tree(Metric::Jaccard)),
                    ("figure5", atlas.authenticity_tree()),
                    ("figure6", geo.clone()),
                ] {
                    obj.insert(
                        key.into(),
                        serde_json::to_value(TreeView::from_tree(&tree)).unwrap(),
                    );
                }
                obj.insert(
                    "figure1".into(),
                    serde_json::to_value(ElbowView {
                        k_max: 16,
                        seed: opts.seed,
                        wcss: atlas.elbow_curve(16, opts.seed),
                    })
                    .unwrap(),
                );
                Ok(serde_json::Value::Object(obj))
            }
            other => {
                eprintln!("experiment {other} has no JSON view (text mode only)");
                return ExitCode::FAILURE;
            }
        };
        match value {
            Ok(v) => println!("{}", serde_json::to_string_pretty(&v).unwrap()),
            Err(e) => {
                eprintln!("serializing {exp}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    println!(
        "{}",
        serde_json::to_string_pretty(&metrics_snapshot(registry)).unwrap()
    );
    ExitCode::SUCCESS
}
