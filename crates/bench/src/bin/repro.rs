//! `repro` — regenerate every table and figure of the paper.
//!
//! ```text
//! repro [--scale S] [--seed N] [--linkage METHOD] [EXPERIMENT...]
//!
//! EXPERIMENT: table1 figure1 figure2 figure3 figure4 figure5 figure6
//!             validate extensions stats all        (default: all)
//! --scale S   corpus scale vs the paper's 118k recipes (default 1.0)
//! --seed N    generator seed (default 42)
//! --linkage M single|complete|average|weighted|ward (default average)
//! ```

use std::process::ExitCode;

use clustering::hac::LinkageMethod;
use cuisine_atlas::experiments;
use cuisine_atlas::pipeline::{AtlasConfig, CuisineAtlas};
use recipedb::generator::GeneratorConfig;

struct Options {
    scale: f64,
    seed: u64,
    linkage: LinkageMethod,
    experiments: Vec<String>,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        scale: 1.0,
        seed: 42,
        linkage: LinkageMethod::Average,
        experiments: Vec::new(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                let v = args.next().ok_or("--scale needs a value")?;
                opts.scale = v.parse().map_err(|e| format!("bad --scale {v}: {e}"))?;
                if opts.scale <= 0.0 {
                    return Err("--scale must be positive".into());
                }
            }
            "--seed" => {
                let v = args.next().ok_or("--seed needs a value")?;
                opts.seed = v.parse().map_err(|e| format!("bad --seed {v}: {e}"))?;
            }
            "--linkage" => {
                let v = args.next().ok_or("--linkage needs a value")?;
                opts.linkage = match v.as_str() {
                    "single" => LinkageMethod::Single,
                    "complete" => LinkageMethod::Complete,
                    "average" => LinkageMethod::Average,
                    "weighted" => LinkageMethod::Weighted,
                    "ward" => LinkageMethod::Ward,
                    other => return Err(format!("unknown linkage {other}")),
                };
            }
            "--help" | "-h" => {
                return Err("usage: repro [--scale S] [--seed N] [--linkage M] [EXPERIMENT...]"
                    .into())
            }
            exp => opts.experiments.push(exp.to_string()),
        }
    }
    if opts.experiments.is_empty() {
        opts.experiments.push("all".into());
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };

    let mut corpus = GeneratorConfig::paper_scale(opts.scale).with_seed(opts.seed);
    // Keep tiny-scale runs statistically meaningful.
    corpus.min_recipes_per_cuisine = corpus.min_recipes_per_cuisine.max(300);
    let config = AtlasConfig {
        corpus,
        ..AtlasConfig::paper()
    }
    .with_linkage(opts.linkage);

    eprintln!(
        "building atlas: scale {} (~{} recipes), seed {}, linkage {} ...",
        opts.scale,
        config.corpus.total_recipes(),
        opts.seed,
        opts.linkage
    );
    let atlas = CuisineAtlas::build(&config);

    for exp in &opts.experiments {
        let out = match exp.as_str() {
            "table1" | "t1" => experiments::table1(&atlas),
            "figure1" | "f1" => experiments::figure1_elbow(&atlas),
            "figure1x" | "f1b" => experiments::figure1_extended(&atlas),
            "figure2" | "f2" => experiments::figure2_euclidean(&atlas),
            "figure3" | "f3" => experiments::figure3_cosine(&atlas),
            "figure4" | "f4" => experiments::figure4_jaccard(&atlas),
            "figure5" | "f5" => experiments::figure5_authenticity(&atlas),
            "figure6" | "f6" => experiments::figure6_geography(&atlas),
            "validate" | "q1" => experiments::validate(&atlas),
            "extensions" | "ext" => experiments::ext_all(&atlas),
            "stats" => atlas.db().stats().report(),
            "all" => experiments::run_all(&atlas),
            other => {
                eprintln!("unknown experiment: {other}");
                return ExitCode::FAILURE;
            }
        };
        println!("{out}");
    }
    ExitCode::SUCCESS
}
