//! T1 — Table I regeneration benchmarks, plus the A1 miner ablation.
//!
//! `table1/mine_all_cuisines` times the exact pipeline behind Table I
//! (FP-Growth at support 0.2 over all 26 cuisines). The `miner_ablation`
//! group compares FP-Growth against the Apriori and Eclat baselines and
//! the multi-threaded FP-Growth on the largest cuisine (Italian), which is
//! the paper-era motivation for choosing FP-Growth ("an efficient and
//! scalable method").

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use bench::{bench_corpus, cuisine_transactions};
use cuisine_atlas::patterns::{mine_all, CuisinePatterns};
use pattern_mining::apriori::Apriori;
use pattern_mining::charm::Charm;
use pattern_mining::eclat::Eclat;
use pattern_mining::fpgrowth::FpGrowth;
use pattern_mining::parallel::ParallelFpGrowth;
use pattern_mining::Miner;
use recipedb::{Cuisine, RecipeDb};

fn italian_transactions(db: &RecipeDb) -> pattern_mining::transaction::TransactionDb {
    cuisine_transactions(db, Cuisine::Italian)
}

fn table1(c: &mut Criterion) {
    let db = bench_corpus();
    let mut group = c.benchmark_group("table1");
    group.sample_size(10);
    group.bench_function("mine_all_cuisines_support_0.2", |b| {
        b.iter(|| black_box(mine_all(&db, 0.2)))
    });
    group.bench_function("single_cuisine_italian", |b| {
        b.iter(|| black_box(CuisinePatterns::mine(&db, Cuisine::Italian, 0.2)))
    });
    group.finish();
}

fn miner_ablation(c: &mut Criterion) {
    let db = bench_corpus();
    let tdb = italian_transactions(&db);
    let mut group = c.benchmark_group("miner_ablation");
    group.sample_size(10);
    group.bench_with_input(BenchmarkId::new("fpgrowth", tdb.len()), &tdb, |b, tdb| {
        b.iter(|| black_box(FpGrowth::new(0.2).mine(tdb)))
    });
    group.bench_with_input(BenchmarkId::new("apriori", tdb.len()), &tdb, |b, tdb| {
        b.iter(|| black_box(Apriori::new(0.2).mine(tdb)))
    });
    group.bench_with_input(BenchmarkId::new("eclat", tdb.len()), &tdb, |b, tdb| {
        b.iter(|| black_box(Eclat::new(0.2).mine(tdb)))
    });
    group.bench_with_input(
        BenchmarkId::new("fpgrowth_parallel_4", tdb.len()),
        &tdb,
        |b, tdb| b.iter(|| black_box(ParallelFpGrowth::new(0.2, 4).mine(tdb))),
    );
    group.bench_with_input(
        BenchmarkId::new("charm_closed", tdb.len()),
        &tdb,
        |b, tdb| b.iter(|| black_box(Charm::new(0.2).mine(tdb))),
    );
    group.finish();
}

criterion_group!(benches, table1, miner_ablation);
criterion_main!(benches);
