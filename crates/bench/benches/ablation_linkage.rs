//! A1 ablation — linkage-method cost on growing point sets, plus the MST
//! fast path for single linkage. DESIGN.md calls out the linkage choice as
//! the main free parameter of the clustering stage.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use clustering::condensed::CondensedMatrix;
use clustering::distance::Metric;
use clustering::hac::{linkage, single_linkage_mst, LinkageMethod};
use clustering::nnchain::nn_chain_linkage;
use clustering::slink::slink_linkage;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_points(n: usize, dim: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| (0..dim).map(|_| rng.gen_range(-10.0..10.0)).collect())
        .collect()
}

fn linkage_methods(c: &mut Criterion) {
    let mut group = c.benchmark_group("linkage_methods");
    group.sample_size(10);
    for n in [50usize, 150, 400] {
        let pts = random_points(n, 8, 42);
        let d = CondensedMatrix::pdist(&pts, Metric::Euclidean);
        for method in [
            LinkageMethod::Single,
            LinkageMethod::Complete,
            LinkageMethod::Average,
            LinkageMethod::Ward,
        ] {
            group.bench_with_input(BenchmarkId::new(method.name(), n), &d, |b, d| {
                b.iter(|| black_box(linkage(d, method)))
            });
        }
        group.bench_with_input(BenchmarkId::new("single_mst_fastpath", n), &d, |b, d| {
            b.iter(|| black_box(single_linkage_mst(d)))
        });
        group.bench_with_input(BenchmarkId::new("single_slink", n), &d, |b, d| {
            b.iter(|| black_box(slink_linkage(d)))
        });
        group.bench_with_input(BenchmarkId::new("average_nnchain", n), &d, |b, d| {
            b.iter(|| black_box(nn_chain_linkage(d, LinkageMethod::Average)))
        });
        group.bench_with_input(BenchmarkId::new("ward_nnchain", n), &d, |b, d| {
            b.iter(|| black_box(nn_chain_linkage(d, LinkageMethod::Ward)))
        });
    }
    group.finish();
}

fn distance_matrices(c: &mut Criterion) {
    let mut group = c.benchmark_group("pdist");
    group.sample_size(10);
    for n in [50usize, 200] {
        let pts = random_points(n, 64, 7);
        for metric in [Metric::Euclidean, Metric::Cosine, Metric::Jaccard] {
            group.bench_with_input(BenchmarkId::new(metric.name(), n), &pts, |b, pts| {
                b.iter(|| black_box(CondensedMatrix::pdist(pts, metric)))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, linkage_methods, distance_matrices);
criterion_main!(benches);
