//! B5 — the cold atlas build, sequential vs parallel.
//!
//! `atlas_build_quick` and `atlas_build_scale_0.2` time the full
//! `CuisineAtlas::build` (generate → mine → features → pdist) at the
//! test-suite quick scale and at 20% of the paper's corpus, once with a
//! single worker and once with every available core. The two builds are
//! bit-for-bit identical (see `cuisine_atlas::pipeline`), so the pair of
//! numbers is a pure speedup measurement. `stage_timings` prints the
//! per-stage wall-clock breakdown for each thread count — the same
//! numbers `repro --bench-json` writes to `BENCH_atlas_build.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use cuisine_atlas::pipeline::{AtlasConfig, CuisineAtlas};
use recipedb::generator::GeneratorConfig;

fn quick_config() -> AtlasConfig {
    AtlasConfig::quick(7)
}

fn scale20_config() -> AtlasConfig {
    let mut corpus = GeneratorConfig::paper_scale(0.2).with_seed(7);
    corpus.min_recipes_per_cuisine = 300;
    AtlasConfig {
        corpus,
        ..AtlasConfig::paper()
    }
}

/// Thread counts worth measuring on this host: sequential, two workers,
/// and everything (deduplicated — on a single-core host this is `[1, 2]`
/// and the parallel numbers measure overhead, not speedup).
fn thread_counts() -> Vec<usize> {
    let mut counts = vec![1, 2, par::available()];
    counts.sort_unstable();
    counts.dedup();
    counts
}

fn bench_scale(c: &mut Criterion, name: &str, config: &AtlasConfig, samples: usize) {
    let mut group = c.benchmark_group(format!("atlas_build_{name}"));
    group.sample_size(samples);
    for threads in thread_counts() {
        group.bench_with_input(
            BenchmarkId::new("cold_build", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    black_box(CuisineAtlas::build(
                        &config.clone().with_build_threads(threads),
                    ))
                })
            },
        );
    }
    group.finish();
}

fn atlas_build_quick(c: &mut Criterion) {
    bench_scale(c, "quick", &quick_config(), 3);
}

fn atlas_build_scale20(c: &mut Criterion) {
    bench_scale(c, "scale_0.2", &scale20_config(), 2);
}

/// Not a timing loop: one cold build per thread count, reporting the
/// per-stage breakdown recorded by the pipeline itself.
fn stage_timings(c: &mut Criterion) {
    let config = quick_config();
    let mut group = c.benchmark_group("atlas_build_stages_quick");
    group.sample_size(1);
    for threads in thread_counts() {
        group.bench_with_input(
            BenchmarkId::new("stages", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    let atlas = CuisineAtlas::build(&config.clone().with_build_threads(threads));
                    let t = atlas.timings();
                    println!(
                        "    threads {threads}: generate {:.0} ms, mine {:.0} ms, \
                         features {:.0} ms, pdist {:.0} ms (total {:.0} ms)",
                        t.generate_ms,
                        t.mine_ms,
                        t.features_ms,
                        t.pdist_ms,
                        t.total_ms()
                    );
                    black_box(atlas)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    atlas_build_quick,
    atlas_build_scale20,
    stage_timings
);
criterion_main!(benches);
