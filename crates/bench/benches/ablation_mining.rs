//! A1 ablation — mining cost vs support threshold and corpus scale.
//!
//! The paper fixes support at 0.2 as a noise/coverage trade-off; the
//! threshold sweep shows the cost cliff as the threshold drops (pattern
//! explosion), and the scale sweep shows FP-Growth's linear behaviour in
//! corpus size at fixed threshold.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use pattern_mining::charm::Charm;
use pattern_mining::filter;
use pattern_mining::fpgrowth::FpGrowth;
use pattern_mining::topk::TopK;
use pattern_mining::transaction::TransactionDb;
use pattern_mining::Miner;
use recipedb::generator::{CorpusGenerator, GeneratorConfig};
use recipedb::Cuisine;

fn transactions_at_scale(scale: f64) -> TransactionDb {
    let mut cfg = GeneratorConfig::paper_scale(scale).with_seed(5);
    cfg.min_recipes_per_cuisine = 50;
    let db = CorpusGenerator::new(cfg).generate();
    TransactionDb::from_rows(
        db.transactions_for(Cuisine::Italian)
            .into_iter()
            .map(|tx| tx.into_iter().map(|t| t.0).collect())
            .collect(),
    )
}

fn support_sweep(c: &mut Criterion) {
    let tdb = transactions_at_scale(0.1);
    let mut group = c.benchmark_group("support_sweep");
    group.sample_size(10);
    for support in [0.4, 0.3, 0.2, 0.15, 0.1] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{support:.2}")),
            &tdb,
            |b, tdb| b.iter(|| black_box(FpGrowth::new(support).mine(tdb))),
        );
    }
    group.finish();
}

fn scale_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("scale_sweep");
    group.sample_size(10);
    for scale in [0.05, 0.1, 0.25, 0.5] {
        let tdb = transactions_at_scale(scale);
        group.throughput(Throughput::Elements(tdb.len() as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{}tx", tdb.len())),
            &tdb,
            |b, tdb| b.iter(|| black_box(FpGrowth::new(0.2).mine(tdb))),
        );
    }
    group.finish();
}

fn closed_mining(c: &mut Criterion) {
    // CHARM vs mine-everything-then-filter, on the Table I workload.
    let tdb = transactions_at_scale(0.1);
    let mut group = c.benchmark_group("closed_mining");
    group.sample_size(10);
    group.bench_function("charm_direct", |b| {
        b.iter(|| black_box(Charm::new(0.2).mine(&tdb)))
    });
    group.bench_function("fpgrowth_then_filter", |b| {
        b.iter(|| black_box(filter::closed(&FpGrowth::new(0.2).mine(&tdb))))
    });
    group.finish();
}

fn topk_mining(c: &mut Criterion) {
    let tdb = transactions_at_scale(0.1);
    let mut group = c.benchmark_group("topk_mining");
    group.sample_size(10);
    for k in [10usize, 50, 200] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &tdb, |b, tdb| {
            b.iter(|| black_box(TopK::new(k).mine(tdb)))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    support_sweep,
    scale_sweep,
    closed_mining,
    topk_mining
);
criterion_main!(benches);
