//! F1–F6 — one benchmark per figure of the paper, timing the exact code
//! that regenerates it (on a 10%-scale corpus; the `repro` binary runs the
//! same code at full scale).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use clustering::Metric;
use cuisine_atlas::experiments;
use cuisine_atlas::pipeline::{AtlasConfig, CuisineAtlas};
use recipedb::generator::GeneratorConfig;

fn bench_atlas() -> CuisineAtlas {
    let mut corpus = GeneratorConfig::paper_scale(0.1).with_seed(7);
    corpus.min_recipes_per_cuisine = 200;
    CuisineAtlas::build(&AtlasConfig {
        corpus,
        ..AtlasConfig::paper()
    })
}

fn figures(c: &mut Criterion) {
    let atlas = bench_atlas();
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);

    group.bench_function("figure1_elbow_kmeans", |b| {
        b.iter(|| black_box(atlas.elbow_curve(16, 1)))
    });
    group.bench_function("figure2_hac_euclidean", |b| {
        b.iter(|| black_box(atlas.pattern_tree(Metric::Euclidean)))
    });
    group.bench_function("figure3_hac_cosine", |b| {
        b.iter(|| black_box(atlas.pattern_tree(Metric::Cosine)))
    });
    group.bench_function("figure4_hac_jaccard", |b| {
        b.iter(|| black_box(atlas.pattern_tree(Metric::Jaccard)))
    });
    group.bench_function("figure5_authenticity", |b| {
        b.iter(|| black_box(atlas.authenticity_tree()))
    });
    group.bench_function("figure6_geography", |b| {
        b.iter(|| black_box(atlas.geographic_tree()))
    });
    group.bench_function("figure1b_kselect_gap_silhouette", |b| {
        b.iter(|| {
            let pts = &atlas.features().binary;
            black_box((
                clustering::kselect::silhouette_sweep(pts, 8, 1),
                clustering::kselect::gap_statistic(pts, 8, 4, 1),
            ))
        })
    });
    group.bench_function("kmedoids_pam_sweep", |b| {
        let d = clustering::CondensedMatrix::pdist(&atlas.features().binary, Metric::Euclidean);
        b.iter(|| black_box(clustering::kmedoids::cost_sweep(&d, 8, 50)))
    });
    group.bench_function("q1_validation_report", |b| {
        b.iter(|| black_box(experiments::validate(&atlas)))
    });
    group.finish();
}

fn end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("end_to_end");
    group.sample_size(10);
    group.bench_function("build_atlas_10pct_corpus", |b| {
        b.iter(|| {
            let mut corpus = GeneratorConfig::paper_scale(0.1).with_seed(7);
            corpus.min_recipes_per_cuisine = 200;
            black_box(CuisineAtlas::build(&AtlasConfig {
                corpus,
                ..AtlasConfig::paper()
            }))
        })
    });
    group.finish();
}

criterion_group!(benches, figures, end_to_end);
criterion_main!(benches);
