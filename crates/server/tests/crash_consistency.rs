//! Crash consistency and multi-process sharing, proven on real
//! processes.
//!
//! These tests spawn actual `atlas-serve` binaries (via
//! `CARGO_BIN_EXE_atlas-serve`) against one shared `--data-dir`:
//!
//! - **Two-process warm sharing**: process B, booted on an empty store,
//!   serves byte-identical bodies off process A's snapshots with
//!   `atlas_builds_total 0` — the read path's re-probe-on-miss finds a
//!   sibling's writes with no restart required.
//! - **SIGKILL mid-persist**: a writer is stalled inside the atlas
//!   payload write (`ATLAS_STORE_FAULT=write:2:stall`) and killed with
//!   SIGKILL while holding the store's advisory lock. The survivor must
//!   break the dead writer's stale lock (counted in `/metrics`),
//!   rebuild exactly once, and a fresh restart must sweep the torn
//!   `.tmp`, boot warm, and serve byte-identical bodies.
//!
//! The workload is a tiny uploaded corpus (content-addressed, so every
//! process computes the same digest), keeping each cold build to
//! milliseconds — the tests probe crash consistency, not build speed.
//!
//! Set `ATLAS_TEST_THREADS` to vary worker counts (default 4); CI runs
//! this under 2 and 8 threads alongside the persistence suite.

use std::io::{BufRead, BufReader, Read as _, Write as _};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::time::{Duration, Instant};

use recipedb::io;
use recipedb::store::RecipeDbBuilder;
use recipedb::Cuisine;

/// Ceiling for any single HTTP exchange or stall-poll on a loaded CI
/// runner (the tiny-corpus builds themselves are near-instant).
const DEADLINE: Duration = Duration::from_secs(120);

fn workers() -> usize {
    std::env::var("ATLAS_TEST_THREADS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n >= 2)
        .unwrap_or(4)
}

/// A small three-cuisine corpus as upload-ready JSON. Every process
/// that uploads it derives the same digest, which is what lets the
/// harness address one shared atlas across processes.
fn tiny_corpus_json() -> String {
    let mut b = RecipeDbBuilder::new();
    let ings: Vec<_> = (0..6)
        .map(|i| b.catalog_mut().intern_ingredient(&format!("crash-ing-{i}")))
        .collect();
    let procs: Vec<_> = (0..3)
        .map(|i| b.catalog_mut().intern_process(&format!("crash-proc-{i}")))
        .collect();
    for (ci, &cuisine) in Cuisine::ALL[..3].iter().enumerate() {
        for r in 0..4 {
            b.add_recipe(
                format!("crash-r{ci}-{r}"),
                cuisine,
                vec![ings[ci], ings[(ci + r) % 6], ings[5 - ci]],
                vec![procs[(ci + r) % 3]],
                vec![],
            );
        }
    }
    io::to_json(&b.build().expect("valid corpus")).expect("serializable corpus")
}

struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Scratch {
        static COUNTER: AtomicUsize = AtomicUsize::new(0);
        let dir = std::env::temp_dir().join(format!(
            "atlas-crash-{tag}-{}-{}",
            std::process::id(),
            COUNTER.fetch_add(1, Ordering::Relaxed),
        ));
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        Scratch(dir)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// A live `atlas-serve` child process. Killed (hard) on drop so a
/// failing test never leaks servers.
struct Server {
    child: Child,
    addr: String,
}

impl Server {
    /// Spawn `atlas-serve --data-dir <dir>` on an ephemeral port,
    /// optionally with a fault-injection spec in `ATLAS_STORE_FAULT`,
    /// and wait for its "listening on" banner.
    fn spawn(data_dir: &Path, fault: Option<&str>) -> Server {
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_atlas-serve"));
        cmd.arg("--addr")
            .arg("127.0.0.1:0")
            .arg("--data-dir")
            .arg(data_dir)
            .arg("--workers")
            .arg(workers().to_string())
            .arg("--lock-timeout-ms")
            .arg("1000")
            .stdout(Stdio::piped())
            .stderr(Stdio::null());
        match fault {
            Some(spec) => cmd.env("ATLAS_STORE_FAULT", spec),
            None => cmd.env_remove("ATLAS_STORE_FAULT"),
        };
        let mut child = cmd.spawn().expect("spawn atlas-serve");

        // The banner reader lives in a thread so a wedged child can't
        // hang the test past its deadline.
        let stdout = child.stdout.take().expect("piped stdout");
        let (tx, rx) = mpsc::channel();
        std::thread::spawn(move || {
            let mut lines = BufReader::new(stdout).lines();
            while let Some(Ok(line)) = lines.next() {
                let done = line.contains("listening on http://");
                if tx.send(line).is_err() || done {
                    break;
                }
            }
            // Keep draining so the child never blocks on a full pipe.
            for _ in lines {}
        });
        let deadline = Instant::now() + Duration::from_secs(30);
        let addr = loop {
            let left = deadline.saturating_duration_since(Instant::now());
            match rx.recv_timeout(left) {
                Ok(line) => {
                    if let Some(rest) = line.split("listening on http://").nth(1) {
                        break rest.split_whitespace().next().unwrap().to_string();
                    }
                }
                Err(_) => panic!("atlas-serve never printed its listening banner"),
            }
        };
        Server { child, addr }
    }

    /// SIGKILL the child and reap it — reaping matters: it removes the
    /// `/proc/<pid>` entry, which is what lets a sibling judge the
    /// dead writer's lock stale.
    fn kill9(mut self) {
        self.child.kill().expect("SIGKILL");
        self.child.wait().expect("reap");
        // Disarm the Drop kill on the already-reaped child.
        std::mem::forget(self);
    }

    fn get(&self, path: &str) -> (u16, Vec<u8>) {
        http_exchange(&self.addr, &format!("GET {path} HTTP/1.1"), &[])
    }

    fn get_ok(&self, path: &str) -> Vec<u8> {
        let (status, body) = self.get(path);
        assert_eq!(
            status,
            200,
            "GET {path} -> {status}: {}",
            String::from_utf8_lossy(&body)
        );
        body
    }

    /// Upload a corpus, returning its digest from the response.
    fn upload(&self, json: &str) -> String {
        let (status, body) = http_exchange(&self.addr, "POST /corpus HTTP/1.1", json.as_bytes());
        let text = String::from_utf8(body).unwrap();
        assert_eq!(status, 200, "POST /corpus -> {status}: {text}");
        let v: serde_json::Value = serde_json::from_str(&text).expect("upload response is JSON");
        v["corpus"]
            .as_str()
            .expect("digest in response")
            .to_string()
    }

    fn metrics(&self) -> String {
        String::from_utf8(self.get_ok("/metrics")).unwrap()
    }

    /// Send a request and deliberately never read the response; returns
    /// the open stream so the connection (and the handler working on
    /// it) stays alive. This is how a stalled persist is triggered
    /// without blocking the test.
    fn fire_and_forget(&self, path: &str) -> TcpStream {
        let mut stream = TcpStream::connect(&self.addr).expect("connect");
        write!(
            stream,
            "GET {path} HTTP/1.1\r\nHost: {}\r\nConnection: close\r\n\r\n",
            self.addr
        )
        .expect("send request");
        stream.flush().expect("flush request");
        stream
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Minimal HTTP/1.1 exchange over a raw socket (`Connection: close`,
/// read to EOF, split at the header/body boundary).
fn http_exchange(addr: &str, request_line: &str, body: &[u8]) -> (u16, Vec<u8>) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(DEADLINE))
        .expect("read timeout");
    write!(
        stream,
        "{request_line}\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    )
    .expect("send headers");
    stream.write_all(body).expect("send body");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");
    let header_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("header/body boundary");
    let head = String::from_utf8_lossy(&raw[..header_end]);
    let status: u16 = head
        .lines()
        .next()
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|s| s.parse().ok())
        .expect("status line");
    (status, raw[header_end + 4..].to_vec())
}

/// Value of a bare `name value` Prometheus line.
fn metric(text: &str, name: &str) -> u64 {
    let prefix = format!("{name} ");
    text.lines()
        .find_map(|l| l.strip_prefix(&prefix))
        .unwrap_or_else(|| panic!("metric {name} missing"))
        .trim()
        .parse()
        .unwrap_or_else(|e| panic!("metric {name} not an integer: {e}"))
}

fn files_with_ext(root: &Path, ext: &str) -> Vec<PathBuf> {
    std::fs::read_dir(root)
        .into_iter()
        .flatten()
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.extension().and_then(|x| x.to_str()) == Some(ext))
        .collect()
}

/// Two live servers share one `--data-dir`: the second serves the
/// first's snapshots byte-identically with zero builds, via the read
/// path's filesystem re-probe (B booted *before* A wrote anything, so
/// its boot scan alone cannot explain the warm hit).
#[test]
fn second_process_serves_a_siblings_snapshots_without_building() {
    let scratch = Scratch::new("share");
    let a = Server::spawn(&scratch.0, None);
    let b = Server::spawn(&scratch.0, None); // boots on an empty store

    let corpus = tiny_corpus_json();
    let digest = a.upload(&corpus);
    let path = format!("/table1?seed=907&corpus={digest}");
    let body_a = a.get_ok(&path);
    let ma = a.metrics();
    assert_eq!(metric(&ma, "atlas_builds_total"), 1);
    assert!(
        metric(&ma, "atlas_store_snapshot_writes_total") >= 2,
        "corpus + atlas written through: {ma}"
    );
    assert!(
        metric(&ma, "atlas_store_lock_acquisitions_total") >= 1,
        "persists take the advisory lock"
    );
    assert_eq!(
        metric(&ma, "atlas_store_lock_steals_total"),
        0,
        "nothing stale to steal"
    );

    // B registers the same corpus (content-addressed: same digest, and
    // the store adopts A's on-disk snapshot instead of rewriting it),
    // then serves A's atlas without ever building.
    assert_eq!(b.upload(&corpus), digest);
    let body_b = b.get_ok(&path);
    assert_eq!(body_a, body_b, "sibling must serve byte-identical bodies");
    let mb = b.metrics();
    assert_eq!(
        metric(&mb, "atlas_builds_total"),
        0,
        "B must serve A's snapshot, not rebuild: {mb}"
    );
    assert_eq!(
        metric(&mb, "atlas_store_snapshot_writes_total"),
        0,
        "B re-writes nothing A already persisted: {mb}"
    );
    assert!(
        metric(&mb, "atlas_store_index_rescans_total") >= 1,
        "the warm hit came from a re-probe of A's write: {mb}"
    );
    assert!(metric(&mb, "atlas_store_snapshot_hits_total") >= 1);
}

/// SIGKILL a writer stalled mid-persist while it holds the advisory
/// lock: no torn visible snapshot may ever appear, the survivor breaks
/// the stale lock and rebuilds exactly once, and a fresh restart boots
/// warm off the survivor's snapshot with the torn `.tmp` swept.
#[test]
fn sigkill_mid_persist_never_tears_a_visible_snapshot() {
    let scratch = Scratch::new("sigkill");
    // Store writes in this workload: the corpus payload persists at
    // upload time (write #1), the atlas payload on the first atlas GET
    // (write #2). Stalling #2 wedges the writer inside the atlas tmp
    // write — after the corpus committed, before the commit rename —
    // while it holds the store's advisory lock.
    let writer = Server::spawn(&scratch.0, Some("write:2:stall"));
    let survivor = Server::spawn(&scratch.0, None);

    let corpus = tiny_corpus_json();
    let digest = writer.upload(&corpus);
    let path = format!("/table1?seed=907&corpus={digest}");
    let _pending = writer.fire_and_forget(&path);

    // Wait until the writer is provably inside the stalled atlas write:
    // its pid-tagged tmp file exists in atlases/.
    let atlases = scratch.0.join("atlases");
    let deadline = Instant::now() + DEADLINE;
    while files_with_ext(&atlases, "tmp").is_empty() {
        assert!(
            Instant::now() < deadline,
            "writer never reached the stalled atlas write"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    assert_eq!(
        files_with_ext(&scratch.0.join("corpora"), "corpus").len(),
        1,
        "the corpus write (fault #1 untouched) must have committed"
    );
    assert!(
        files_with_ext(&atlases, "atlas").is_empty(),
        "no visible atlas may exist before the stalled rename"
    );

    writer.kill9();
    assert!(
        scratch.0.join("store.lock").exists(),
        "the dead writer left its lock behind"
    );
    assert!(
        files_with_ext(&atlases, "atlas").is_empty(),
        "SIGKILL mid-write must not produce a visible atlas"
    );

    // The survivor: adopt the committed corpus, stale-break the dead
    // writer's lock, rebuild exactly the one atlas the kill destroyed.
    assert_eq!(survivor.upload(&corpus), digest);
    let body_survivor = survivor.get_ok(&path);
    let ms = survivor.metrics();
    assert_eq!(
        metric(&ms, "atlas_builds_total"),
        1,
        "exactly the one rebuild the kill forced: {ms}"
    );
    assert!(
        metric(&ms, "atlas_store_lock_steals_total") >= 1,
        "the dead writer's lock must be broken, not waited out: {ms}"
    );
    assert!(
        metric(&ms, "atlas_store_index_rescans_total") >= 1,
        "the committed corpus is adopted, not rewritten: {ms}"
    );
    assert_eq!(
        files_with_ext(&atlases, "atlas").len(),
        1,
        "the survivor's persist went through"
    );
    assert!(
        !scratch.0.join("store.lock").exists(),
        "the stolen lock is released after the persist"
    );

    // A fresh process boots warm off the survivor's snapshot: the torn
    // tmp is swept, nothing rebuilds, bodies stay byte-identical.
    let restarted = Server::spawn(&scratch.0, None);
    let body_restarted = restarted.get_ok(&path);
    assert_eq!(
        body_survivor, body_restarted,
        "restart must serve byte-identical bodies"
    );
    let mr = restarted.metrics();
    assert_eq!(
        metric(&mr, "atlas_builds_total"),
        0,
        "the restart boots warm: {mr}"
    );
    assert_eq!(
        metric(&mr, "atlas_store_snapshot_corrupt_total"),
        0,
        "crash residue is tmp-swept, never quarantined as corruption: {mr}"
    );
    assert!(
        files_with_ext(&atlases, "tmp").is_empty(),
        "the dead writer's torn tmp is swept at boot"
    );
}
