//! The corpus-upload contract, end to end.
//!
//! The core correctness pin: uploading the synthetic generator's own
//! corpus via `POST /corpus` and querying it with `?corpus=<digest>`
//! must serve **byte-identical** bodies to the implicit-corpus variant
//! on every atlas-backed endpoint — the upload path swaps the data
//! source, never the pipeline. Plus: the malformed-upload matrix (each
//! bad input is a structured 4xx that increments the reject counter and
//! never kills a worker), small-corpus 422s, unknown-digest 404s, and
//! registry eviction over live sockets.
//!
//! Set `ATLAS_TEST_THREADS` to vary the parallel side (default 4); CI
//! runs this under 2 and 8 threads.

use atlas_server::{ServerConfig, ServerHandle};
use cuisine_atlas::pipeline::AtlasConfig;
use recipedb::generator::CorpusGenerator;
use recipedb::store::RecipeDbBuilder;
use recipedb::{io, Cuisine, RecipeDb};

/// A seed no other test shares, so every server does its own cold build.
const SEED: u64 = 509;

fn parallel_threads() -> usize {
    std::env::var("ATLAS_TEST_THREADS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n >= 2)
        .unwrap_or(4)
}

fn start(config: ServerConfig) -> ServerHandle {
    ServerHandle::start(config).expect("bind ephemeral port")
}

fn get_ok(server: &ServerHandle, path: &str) -> Vec<u8> {
    let (status, body) = server.get(path).expect("request succeeds");
    assert_eq!(
        status,
        200,
        "GET {path} -> {status}: {}",
        String::from_utf8_lossy(&body)
    );
    body
}

/// Upload a corpus and return its digest id from the response.
fn upload(server: &ServerHandle, json: &str) -> String {
    let (status, body) = server
        .post("/corpus", json.as_bytes())
        .expect("POST /corpus");
    let text = String::from_utf8(body).unwrap();
    assert_eq!(status, 200, "POST /corpus -> {status}: {text}");
    let v: serde_json::Value = serde_json::from_str(&text).expect("upload response is JSON");
    v["corpus"]
        .as_str()
        .expect("upload response carries the digest")
        .to_string()
}

/// The corpus the server itself would generate for `AtlasConfig::quick(SEED)`.
fn synthetic_corpus() -> RecipeDb {
    CorpusGenerator::new(AtlasConfig::quick(SEED).corpus).generate()
}

/// A tiny hand-built corpus covering exactly one cuisine.
fn one_cuisine_corpus() -> RecipeDb {
    let mut b = RecipeDbBuilder::new();
    let soy = b.catalog_mut().intern_ingredient("soy sauce");
    let rice = b.catalog_mut().intern_ingredient("rice");
    let heat = b.catalog_mut().intern_process("heat");
    b.add_recipe("r0", Cuisine::Japanese, vec![soy, rice], vec![heat], vec![]);
    b.add_recipe("r1", Cuisine::Japanese, vec![rice], vec![], vec![]);
    b.build().unwrap()
}

/// Every atlas-backed endpoint, parameterized the same way on both the
/// implicit and the uploaded side.
fn atlas_endpoints() -> Vec<String> {
    vec![
        format!("/table1?seed={SEED}"),
        format!("/tree/pattern/euclidean?seed={SEED}"),
        format!("/tree/pattern/cosine?seed={SEED}"),
        format!("/tree/pattern/jaccard?seed={SEED}"),
        format!("/tree/authenticity?seed={SEED}"),
        format!("/tree/geo?seed={SEED}"),
        format!("/compare?seed={SEED}"),
        format!("/fingerprint/Japanese?seed={SEED}&k=5"),
        format!("/elbow?seed={SEED}&k_max=6"),
    ]
}

/// The differential pin: the uploaded synthetic corpus serves the same
/// bytes as the implicit generator-backed corpus, on every endpoint, at
/// build_threads 1 and N.
#[test]
fn uploaded_synthetic_corpus_is_byte_identical_to_implicit() {
    let json = io::to_json(&synthetic_corpus()).unwrap();
    let local_digest = recipedb::corpus_digest(&synthetic_corpus());
    for build_threads in [1, parallel_threads()] {
        let server = start(ServerConfig {
            build_threads,
            cache_capacity: 8,
            ..ServerConfig::default()
        });
        let digest = upload(&server, &json);
        assert_eq!(
            digest, local_digest,
            "server digest must match the locally computed one"
        );
        for path in atlas_endpoints() {
            let implicit = get_ok(&server, &path);
            let uploaded = get_ok(&server, &format!("{path}&corpus={digest}"));
            assert_eq!(
                implicit, uploaded,
                "GET {path}: implicit vs corpus={digest} must serve identical bytes \
                 (build_threads={build_threads})"
            );
        }
        // Two atlases were built: one from the generator, one from the
        // upload — never more, whatever the endpoint count.
        assert_eq!(server.build_count(), 2, "one build per corpus variant");
        server.shutdown();
    }
}

#[test]
fn reupload_is_idempotent() {
    let server = start(ServerConfig::default());
    let json = io::to_json(&one_cuisine_corpus()).unwrap();
    let first = upload(&server, &json);
    let (status, body) = server.post("/corpus", json.as_bytes()).unwrap();
    assert_eq!(status, 200);
    let v: serde_json::Value = serde_json::from_str(&String::from_utf8(body).unwrap()).unwrap();
    assert_eq!(v["corpus"].as_str().unwrap(), first);
    assert_eq!(v["already_registered"].as_bool(), Some(true));
    assert_eq!(server.state().corpora().len(), 1);
    assert_eq!(server.state().metrics().corpus_uploads(), 2);
    server.shutdown();
}

/// The malformed-upload matrix: every bad input is a structured 4xx
/// JSON error, the reject counter moves, and the server keeps serving.
#[test]
fn malformed_uploads_return_structured_errors_and_never_kill_the_server() {
    let server = start(ServerConfig {
        // Small cap so the oversize case stays cheap.
        max_corpus_bytes: 64 * 1024,
        ..ServerConfig::default()
    });
    let valid = io::to_json(&one_cuisine_corpus()).unwrap();
    let mut v: serde_json::Value = serde_json::from_str(&valid).unwrap();
    v["recipes"][1]["id"] = v["recipes"][0]["id"].clone();
    let duplicate_ids = v.to_string();
    let mut v: serde_json::Value = serde_json::from_str(&valid).unwrap();
    v["recipes"][0]["cuisine"] = serde_json::json!("Atlantis");
    let unknown_cuisine = v.to_string();
    let empty_corpus = io::to_json(&RecipeDbBuilder::new().build().unwrap()).unwrap();

    let truncated = valid[..valid.len() / 2].to_string();
    let oversize = "x".repeat(64 * 1024 + 1);
    let cases: Vec<(&str, &str, u16)> = vec![
        ("empty body", "", 400),
        ("truncated JSON", truncated.as_str(), 400),
        ("not JSON at all", "hello, atlas", 400),
        ("duplicate recipe ids", duplicate_ids.as_str(), 400),
        ("unknown cuisine label", unknown_cuisine.as_str(), 400),
        ("zero-recipe corpus", empty_corpus.as_str(), 422),
        ("oversize body", oversize.as_str(), 413),
    ];

    for (i, (name, body, want_status)) in cases.iter().enumerate() {
        let (status, resp) = server.post("/corpus", body.as_bytes()).expect(name);
        let text = String::from_utf8(resp).unwrap();
        assert_eq!(status, *want_status, "{name}: {text}");
        let parsed: serde_json::Value = serde_json::from_str(&text)
            .unwrap_or_else(|e| panic!("{name}: body not JSON ({e}): {text}"));
        assert!(
            parsed["error"].as_str().is_some(),
            "{name}: structured error body expected, got {text}"
        );
        assert_eq!(
            server.state().metrics().corpus_rejects(),
            (i + 1) as u64,
            "{name}: reject counter must increment"
        );
        // The worker that handled the bad upload is still alive and
        // nothing was registered.
        let health = get_ok(&server, "/health");
        assert!(String::from_utf8(health).unwrap().contains("\"status\""));
        assert_eq!(
            server.state().corpora().len(),
            0,
            "{name}: nothing registered"
        );
    }
    assert_eq!(server.state().metrics().corpus_uploads(), 0);
    server.shutdown();
}

/// A well-formed corpus too small to cluster: uploads fine, serves the
/// per-cuisine artifacts, and 422s (never panics) on anything that
/// needs at least two cuisines.
#[test]
fn single_cuisine_corpus_serves_tables_but_422s_clustering() {
    let server = start(ServerConfig::default());
    let digest = upload(&server, &io::to_json(&one_cuisine_corpus()).unwrap());

    let table1 = get_ok(&server, &format!("/table1?corpus={digest}"));
    assert!(String::from_utf8(table1).unwrap().contains("Japanese"));
    get_ok(&server, &format!("/fingerprint/Japanese?corpus={digest}"));

    for path in [
        "/tree/pattern/cosine",
        "/tree/authenticity",
        "/tree/geo",
        "/elbow",
        "/compare",
    ] {
        let (status, body) = server.get(&format!("{path}?corpus={digest}")).unwrap();
        let text = String::from_utf8(body).unwrap();
        assert_eq!(status, 422, "GET {path} on a 1-cuisine corpus: {text}");
        assert!(text.contains("\"error\""), "structured 422 body: {text}");
    }
    // A cuisine absent from the corpus is a 404, not a panic.
    let (status, _) = server
        .get(&format!("/fingerprint/Thai?corpus={digest}"))
        .unwrap();
    assert_eq!(status, 404);
    server.shutdown();
}

#[test]
fn unknown_corpus_digest_is_a_404() {
    let server = start(ServerConfig::default());
    let (status, body) = server.get("/table1?corpus=deadbeef").unwrap();
    let text = String::from_utf8(body).unwrap();
    assert_eq!(status, 404, "{text}");
    assert!(text.contains("deadbeef"));
    server.shutdown();
}

/// The registry is bounded: uploads beyond `max_corpora` evict the
/// least-recently-used corpus, whose digest then 404s.
#[test]
fn corpus_registry_evicts_least_recently_used_over_the_wire() {
    let server = start(ServerConfig {
        max_corpora: 1,
        ..ServerConfig::default()
    });
    let first = upload(&server, &io::to_json(&one_cuisine_corpus()).unwrap());

    let mut b = RecipeDbBuilder::new();
    let fish = b.catalog_mut().intern_ingredient("fish sauce");
    b.add_recipe("r0", Cuisine::Thai, vec![fish], vec![], vec![]);
    let second = upload(&server, &io::to_json(&b.build().unwrap()).unwrap());
    assert_ne!(first, second);

    assert_eq!(server.state().corpora().len(), 1);
    let (status, _) = server.get(&format!("/table1?corpus={first}")).unwrap();
    assert_eq!(status, 404, "evicted corpus must be gone");
    get_ok(&server, &format!("/table1?corpus={second}"));
    server.shutdown();
}
