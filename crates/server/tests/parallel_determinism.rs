//! The parallel build's determinism contract, end to end: a server
//! building atlases with one worker thread and a server building with
//! many must serve **byte-identical** responses for every atlas-backed
//! endpoint, and the generated corpus itself must serialize to the same
//! JSON. Thread count is a wall-clock knob, never an input.
//!
//! Set `ATLAS_TEST_THREADS` to vary the parallel side (default 4); CI
//! runs this under 2 and 8 threads.

use atlas_server::{ServerConfig, ServerHandle};
use cuisine_atlas::pipeline::{AtlasConfig, CuisineAtlas};

/// A seed no other test shares, so both servers do their own cold build.
const SEED: u64 = 307;

fn parallel_threads() -> usize {
    std::env::var("ATLAS_TEST_THREADS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n >= 2)
        .unwrap_or(4)
}

fn start(build_threads: usize) -> ServerHandle {
    ServerHandle::start(ServerConfig {
        build_threads,
        ..ServerConfig::default()
    })
    .expect("bind ephemeral port")
}

fn get_ok(server: &ServerHandle, path: &str) -> Vec<u8> {
    let (status, body) = server.get(path).expect("request succeeds");
    assert_eq!(
        status,
        200,
        "GET {path} -> {status}: {}",
        String::from_utf8_lossy(&body)
    );
    body
}

#[test]
fn parallel_build_corpus_serializes_to_identical_json() {
    let n = parallel_threads();
    let mut cfg = AtlasConfig::quick(SEED);
    cfg.corpus.scale = 0.03;
    cfg.corpus.min_recipes_per_cuisine = 150;
    let seq = CuisineAtlas::build(&cfg.clone().with_build_threads(1));
    let par = CuisineAtlas::build(&cfg.with_build_threads(n));
    assert_eq!(
        recipedb::io::to_json(seq.db()).unwrap(),
        recipedb::io::to_json(par.db()).unwrap(),
        "corpus JSON must be byte-identical for 1 vs {n} build threads"
    );
}

#[test]
fn servers_with_different_build_threads_serve_identical_bytes() {
    let n = parallel_threads();
    let sequential = start(1);
    let parallel = start(n);

    let endpoints = [
        format!("/table1?seed={SEED}"),
        format!("/tree/pattern/euclidean?seed={SEED}"),
        format!("/tree/pattern/cosine?seed={SEED}"),
        format!("/tree/pattern/jaccard?seed={SEED}"),
        format!("/tree/authenticity?seed={SEED}"),
        format!("/elbow?seed={SEED}&k_max=6"),
    ];
    for path in &endpoints {
        let a = get_ok(&sequential, path);
        let b = get_ok(&parallel, path);
        assert_eq!(
            a, b,
            "GET {path}: build_threads=1 vs build_threads={n} must serve identical bytes"
        );
    }
    assert_eq!(sequential.build_count(), 1, "one cold build per server");
    assert_eq!(parallel.build_count(), 1, "one cold build per server");

    sequential.shutdown();
    parallel.shutdown();
}
