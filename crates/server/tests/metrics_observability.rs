//! End-to-end observability smoke: boot a server, issue a known mix of
//! requests, and assert that `/metrics` parses as Prometheus text
//! exposition and that its counters reconcile exactly with the traffic
//! sent — the same check CI runs inside the determinism matrix.

use atlas_server::{ServerConfig, ServerHandle};

/// A seed no other test shares, so the first request is a cold build.
const SEED: u64 = 407;

fn get(server: &ServerHandle, path: &str) -> (u16, String) {
    let (status, body) = server.get(path).expect("request succeeds");
    (status, String::from_utf8(body).expect("UTF-8 body"))
}

/// Parse one Prometheus sample value by series name + exact label set.
fn sample(text: &str, name: &str, labels: &str) -> Option<f64> {
    let prefix = if labels.is_empty() {
        format!("{name} ")
    } else {
        format!("{name}{{{labels}}} ")
    };
    text.lines()
        .find(|l| l.starts_with(&prefix))
        .map(|l| l[prefix.len()..].trim().parse().expect("sample value"))
}

/// Validate the whole body line-by-line as text exposition format.
fn assert_parses_as_prometheus(text: &str) {
    assert!(!text.is_empty());
    for line in text.lines() {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (series, value) = line
            .rsplit_once(' ')
            .unwrap_or_else(|| panic!("no value: {line}"));
        assert!(
            value.parse::<f64>().is_ok() || value == "+Inf",
            "unparseable value {value:?} in line: {line}"
        );
        let name = series.split('{').next().unwrap();
        assert!(
            !name.is_empty()
                && name
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
            "bad metric name in line: {line}"
        );
        if let Some(rest) = series.strip_prefix(name) {
            if !rest.is_empty() {
                assert!(
                    rest.starts_with('{') && rest.ends_with('}'),
                    "bad label block in line: {line}"
                );
            }
        }
    }
}

#[test]
fn metrics_reconcile_with_requests_sent() {
    let server = ServerHandle::start(ServerConfig::default()).expect("bind ephemeral port");

    // Known traffic mix: 3 × table1 (1 cold build + 2 cache hits),
    // 2 × tree, 1 × 404, 1 × 400.
    for _ in 0..3 {
        assert_eq!(get(&server, &format!("/table1?seed={SEED}")).0, 200);
    }
    for _ in 0..2 {
        assert_eq!(
            get(&server, &format!("/tree/pattern/euclidean?seed={SEED}")).0,
            200
        );
    }
    assert_eq!(get(&server, "/no/such/route").0, 404);
    assert_eq!(get(&server, &format!("/elbow?seed={SEED}&k_max=0")).0, 400);

    let (status, text) = get(&server, "/metrics");
    assert_eq!(status, 200);
    assert_parses_as_prometheus(&text);

    // Request counters match the traffic exactly.
    assert_eq!(
        sample(&text, "atlas_requests_total", "endpoint=\"/table1\""),
        Some(3.0)
    );
    assert_eq!(
        sample(
            &text,
            "atlas_requests_total",
            "endpoint=\"/tree/pattern/:metric\""
        ),
        Some(2.0)
    );
    assert_eq!(
        sample(&text, "atlas_requests_total", "endpoint=\"unrouted\""),
        Some(1.0)
    );
    assert_eq!(
        sample(&text, "atlas_requests_total", "endpoint=\"/elbow\""),
        Some(1.0)
    );
    // The /metrics scrape itself had not been recorded when it rendered.
    assert_eq!(
        sample(&text, "atlas_requests_total", "endpoint=\"/metrics\""),
        Some(0.0)
    );

    // Status classes.
    assert_eq!(
        sample(
            &text,
            "atlas_responses_total",
            "endpoint=\"/table1\",class=\"2xx\""
        ),
        Some(3.0)
    );
    assert_eq!(
        sample(
            &text,
            "atlas_responses_total",
            "endpoint=\"/elbow\",class=\"4xx\""
        ),
        Some(1.0)
    );
    assert_eq!(
        sample(
            &text,
            "atlas_responses_total",
            "endpoint=\"unrouted\",class=\"4xx\""
        ),
        Some(1.0)
    );

    // Latency histograms: count matches requests; +Inf bucket is the
    // total; sum is positive.
    assert_eq!(
        sample(
            &text,
            "atlas_request_duration_seconds_count",
            "endpoint=\"/table1\""
        ),
        Some(3.0)
    );
    assert_eq!(
        sample(
            &text,
            "atlas_request_duration_seconds_bucket",
            "endpoint=\"/table1\",le=\"+Inf\""
        ),
        Some(3.0)
    );
    assert!(
        sample(
            &text,
            "atlas_request_duration_seconds_sum",
            "endpoint=\"/table1\""
        )
        .unwrap()
            > 0.0
    );

    // Build telemetry: exactly one cold build, no dedup (sequential
    // requests), cache hits for the repeats (2 × table1 + 2 × tree).
    assert_eq!(sample(&text, "atlas_builds_total", ""), Some(1.0));
    assert_eq!(sample(&text, "atlas_build_dedup_total", ""), Some(0.0));
    assert_eq!(sample(&text, "atlas_cache_misses_total", ""), Some(1.0));
    assert_eq!(sample(&text, "atlas_cache_hits_total", ""), Some(4.0));

    // Pipeline spans flowed into the registry: all four stages plus a
    // per-cuisine mining span.
    for stage in ["generate", "mine", "features", "pdist"] {
        assert_eq!(
            sample(
                &text,
                "atlas_build_span_seconds_count",
                &format!("span=\"stage/{stage}\"")
            ),
            Some(1.0),
            "missing stage span {stage}"
        );
    }
    assert_eq!(
        sample(
            &text,
            "atlas_build_span_seconds_count",
            "span=\"mine/Italian\""
        ),
        Some(1.0)
    );

    // Queue-wait histogram saw every accepted connection so far.
    assert!(sample(&text, "atlas_queue_wait_seconds_count", "").unwrap() >= 7.0);

    // A second scrape includes the first one.
    let (_, text2) = get(&server, "/metrics");
    assert_eq!(
        sample(&text2, "atlas_requests_total", "endpoint=\"/metrics\""),
        Some(1.0)
    );

    // /health mirrors the same telemetry: per-endpoint p50/p99 and the
    // bounded ring of recent builds.
    let (status, health) = get(&server, "/health");
    assert_eq!(status, 200);
    let doc = serde_json::parse_value(&health).expect("health JSON");
    let latency = doc.get("latency_ms").expect("latency_ms");
    let table1 = latency.get("/table1").expect("latency for /table1");
    assert_eq!(table1.get("count").and_then(|v| v.as_f64()), Some(3.0));
    assert!(table1.get("p50").and_then(|v| v.as_f64()).unwrap() > 0.0);
    assert!(
        table1.get("p99").and_then(|v| v.as_f64()).unwrap()
            >= table1.get("p50").and_then(|v| v.as_f64()).unwrap()
    );
    let recent = doc
        .get("recent_builds_ms")
        .and_then(|v| v.as_array())
        .expect("recent_builds_ms");
    assert_eq!(recent.len(), 1, "one cold build so far");
    assert!(recent[0].get("total").and_then(|v| v.as_f64()).unwrap() > 0.0);

    server.shutdown();
}
