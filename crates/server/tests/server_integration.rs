//! End-to-end exercise of the atlas server over real sockets: an
//! ephemeral-port server, concurrent clients against every endpoint,
//! byte-identical repeat responses, and the single-flight guarantee
//! that N concurrent cold requests trigger exactly one atlas build.

use std::sync::Arc;

use atlas_server::{ServerConfig, ServerHandle};
use cuisine_atlas::views::{AgreementView, ElbowView, FingerprintView, Table1View, TreeView};

/// A seed no other test shares, so the first request here is always a
/// cold build.
const SEED: u64 = 301;

fn start() -> ServerHandle {
    ServerHandle::start(ServerConfig::default()).expect("bind ephemeral port")
}

fn get_ok(server: &ServerHandle, path: &str) -> Vec<u8> {
    let (status, body) = server.get(path).expect("request succeeds");
    assert_eq!(
        status,
        200,
        "GET {path} -> {status}: {}",
        String::from_utf8_lossy(&body)
    );
    body
}

fn tree(server: &ServerHandle, path: &str) -> TreeView {
    let body = get_ok(server, path);
    serde_json::from_str(std::str::from_utf8(&body).unwrap()).expect("TreeView JSON")
}

#[test]
fn serves_every_endpoint_under_concurrency_with_one_build() {
    let server = Arc::new(start());

    // --- Single flight: concurrent identical cold requests, one build.
    assert_eq!(server.build_count(), 0);
    let path = format!("/table1?seed={SEED}");
    let bodies: Vec<Vec<u8>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..6)
            .map(|_| {
                let server = Arc::clone(&server);
                let path = path.clone();
                scope.spawn(move || get_ok(&server, &path))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    assert_eq!(
        server.build_count(),
        1,
        "6 concurrent cold requests must coalesce into exactly 1 atlas build"
    );
    for body in &bodies[1..] {
        assert_eq!(
            body, &bodies[0],
            "all coalesced responses serve identical bytes"
        );
    }
    let table: Table1View =
        serde_json::from_str(std::str::from_utf8(&bodies[0]).unwrap()).expect("Table1View JSON");
    assert_eq!(table.rows.len(), 26);
    assert!(table.rows.iter().all(|r| r.n_recipes > 0));

    // --- Every endpoint, 4 concurrent clients each doing a full sweep.
    // The atlas for SEED is cached now, so these are all cache hits.
    let endpoints: Vec<String> = vec![
        "/health".to_string(),
        "/cuisines".to_string(),
        format!("/table1?seed={SEED}"),
        format!("/tree/pattern/euclidean?seed={SEED}"),
        format!("/tree/pattern/cosine?seed={SEED}"),
        format!("/tree/pattern/jaccard?seed={SEED}"),
        format!("/tree/authenticity?seed={SEED}"),
        format!("/tree/geo?seed={SEED}"),
        format!("/compare?seed={SEED}"),
        format!("/fingerprint/Indian%20Subcontinent?seed={SEED}&k=3"),
        format!("/elbow?seed={SEED}&k_max=4"),
    ];
    std::thread::scope(|scope| {
        for _ in 0..4 {
            let server = Arc::clone(&server);
            let endpoints = &endpoints;
            scope.spawn(move || {
                for path in endpoints {
                    get_ok(&server, path);
                }
            });
        }
    });
    assert_eq!(
        server.build_count(),
        1,
        "the sweep must be served from cache"
    );

    // --- Typed spot checks on each artifact.
    for metric in ["euclidean", "cosine", "jaccard"] {
        let view = tree(&server, &format!("/tree/pattern/{metric}?seed={SEED}"));
        assert_eq!(view.n_leaves, 26, "{metric} tree has 26 leaves");
        assert_eq!(view.leaves.len(), 26);
        assert_eq!(view.merges.len(), 25);
        assert!(view.description.contains(metric));
        assert!(view.newick.ends_with(';'));
    }
    let auth = tree(&server, &format!("/tree/authenticity?seed={SEED}"));
    assert_eq!(auth.n_leaves, 26);
    let geo = tree(&server, &format!("/tree/geo?seed={SEED}"));
    assert_eq!(geo.n_leaves, 26);

    let body = get_ok(&server, &format!("/compare?seed={SEED}"));
    let agreements: Vec<AgreementView> =
        serde_json::from_str(std::str::from_utf8(&body).unwrap()).expect("AgreementView JSON");
    assert_eq!(agreements.len(), 4, "three pattern trees plus authenticity");
    assert!(agreements.iter().all(|a| a.cophenetic_vs_geo.is_finite()));

    let body = get_ok(
        &server,
        &format!("/fingerprint/Indian%20Subcontinent?seed={SEED}&k=3"),
    );
    let fp: FingerprintView =
        serde_json::from_str(std::str::from_utf8(&body).unwrap()).expect("FingerprintView JSON");
    assert_eq!(fp.cuisine, "Indian Subcontinent");
    assert_eq!(fp.most_authentic.len(), 3);
    assert_eq!(fp.least_authentic.len(), 3);

    let body = get_ok(&server, &format!("/elbow?seed={SEED}&k_max=4"));
    let elbow: ElbowView =
        serde_json::from_str(std::str::from_utf8(&body).unwrap()).expect("ElbowView JSON");
    assert_eq!(elbow.wcss.len(), 4);
    assert!(
        elbow.wcss.windows(2).all(|w| w[1] <= w[0] + 1e-9),
        "WCSS is non-increasing"
    );

    // --- Identical queries serve identical bytes, across artifacts.
    for path in &endpoints[2..] {
        assert_eq!(
            get_ok(&server, path),
            get_ok(&server, path),
            "repeat GET {path}"
        );
    }

    // --- Error mapping.
    assert_eq!(server.get("/no/such/route").unwrap().0, 404);
    assert_eq!(server.get("/tree/pattern/manhattan").unwrap().0, 404);
    assert_eq!(server.get("/fingerprint/Atlantis").unwrap().0, 404);
    assert_eq!(server.get("/table1?seed=banana").unwrap().0, 400);
    assert_eq!(server.get("/elbow?k_max=0").unwrap().0, 400);
    let (status, body) = server.get("/table1?scale=5.0").unwrap();
    assert_eq!(status, 400);
    assert!(String::from_utf8(body).unwrap().contains("scale"));

    // --- Health reflects the cache and build counters.
    let health = String::from_utf8(get_ok(&server, "/health")).unwrap();
    assert!(
        health.contains("\"builds\": 1") || health.contains("\"builds\":1"),
        "{health}"
    );

    // --- Graceful shutdown: joins accept loop and workers, no panic.
    match Arc::try_unwrap(server) {
        Ok(server) => server.shutdown(),
        Err(_) => panic!("all client threads joined, the Arc must be unique"),
    }
}
