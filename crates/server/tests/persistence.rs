//! The snapshot store, end to end over live sockets.
//!
//! The core correctness pin: a server restarted onto the same
//! `--data-dir` serves **byte-identical** bodies on every atlas-backed
//! endpoint — for the implicit synthetic corpus *and* an uploaded one —
//! with **zero rebuilds**, verified through the public `/metrics` and
//! `/health` surfaces. Plus: corrupted snapshots degrade to a rebuild
//! (never an error response) with the corruption counted, torn `.tmp`
//! files are swept at boot, `DELETE /corpus/{digest}` removes memory
//! and disk together, `--corpus-ttl-secs` expires uploads, and
//! `--prewarm corpus=<digest>` warms a restored corpus from disk.
//!
//! Set `ATLAS_TEST_THREADS` to vary the parallel side (default 4); CI
//! runs this under 2 and 8 threads.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use atlas_server::handle::{self, PrewarmSpec};
use atlas_server::{ServerConfig, ServerHandle};
use cuisine_atlas::pipeline::AtlasConfig;
use recipedb::generator::CorpusGenerator;
use recipedb::io;

/// A seed no other test shares, so every server does its own cold build.
const SEED: u64 = 641;

fn parallel_threads() -> usize {
    std::env::var("ATLAS_TEST_THREADS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n >= 2)
        .unwrap_or(4)
}

/// A fresh per-test data dir under the system temp dir; unique across
/// concurrent test processes and across tests within one process.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Scratch {
        static COUNTER: AtomicUsize = AtomicUsize::new(0);
        let dir = std::env::temp_dir().join(format!(
            "atlas-persistence-{tag}-{}-{}",
            std::process::id(),
            COUNTER.fetch_add(1, Ordering::Relaxed),
        ));
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        Scratch(dir)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn start(config: ServerConfig) -> ServerHandle {
    ServerHandle::start(config).expect("bind ephemeral port")
}

fn persistent_config(dir: &Scratch) -> ServerConfig {
    ServerConfig {
        data_dir: Some(dir.0.clone()),
        cache_capacity: 8,
        ..ServerConfig::default()
    }
}

fn get_ok(server: &ServerHandle, path: &str) -> Vec<u8> {
    let (status, body) = server.get(path).expect("request succeeds");
    assert_eq!(
        status,
        200,
        "GET {path} -> {status}: {}",
        String::from_utf8_lossy(&body)
    );
    body
}

fn health_json(server: &ServerHandle) -> serde_json::Value {
    let body = get_ok(server, "/health");
    serde_json::from_str(&String::from_utf8(body).unwrap()).expect("health is JSON")
}

fn metrics_text(server: &ServerHandle) -> String {
    String::from_utf8(get_ok(server, "/metrics")).unwrap()
}

/// Upload a corpus and return its digest id from the response.
fn upload(server: &ServerHandle, json: &str) -> String {
    let (status, body) = server
        .post("/corpus", json.as_bytes())
        .expect("POST /corpus");
    let text = String::from_utf8(body).unwrap();
    assert_eq!(status, 200, "POST /corpus -> {status}: {text}");
    let v: serde_json::Value = serde_json::from_str(&text).expect("upload response is JSON");
    v["corpus"]
        .as_str()
        .expect("digest in response")
        .to_string()
}

/// The corpus the server itself would generate for `AtlasConfig::quick(SEED)`,
/// as upload-ready JSON.
fn synthetic_corpus_json() -> String {
    io::to_json(&CorpusGenerator::new(AtlasConfig::quick(SEED).corpus).generate()).unwrap()
}

/// The endpoint set the CI warm-restart smoke job pins: the paper table,
/// every tree, and the elbow sweep.
fn atlas_endpoints() -> Vec<String> {
    vec![
        format!("/table1?seed={SEED}"),
        format!("/tree/pattern/euclidean?seed={SEED}"),
        format!("/tree/pattern/cosine?seed={SEED}"),
        format!("/tree/pattern/jaccard?seed={SEED}"),
        format!("/tree/authenticity?seed={SEED}"),
        format!("/tree/geo?seed={SEED}"),
        format!("/elbow?seed={SEED}&k_max=6"),
    ]
}

/// The store's files on disk, by extension, anywhere under the root.
fn files_with_ext(root: &std::path::Path, ext: &str) -> Vec<PathBuf> {
    let mut found = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir).into_iter().flatten().flatten() {
            let path = entry.path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().and_then(|e| e.to_str()) == Some(ext) {
                found.push(path);
            }
        }
    }
    found
}

/// The warm-restart differential: a second server on the same data dir
/// serves the same bytes as the first — implicit and uploaded corpus
/// alike — without building anything, at build_threads 1 and N.
#[test]
fn warm_restart_serves_identical_bytes_with_zero_rebuilds() {
    let corpus_json = synthetic_corpus_json();
    for build_threads in [1, parallel_threads()] {
        let scratch = Scratch::new("restart");
        let cold = start(ServerConfig {
            build_threads,
            ..persistent_config(&scratch)
        });
        let digest = upload(&cold, &corpus_json);
        let mut expected = Vec::new();
        for path in atlas_endpoints() {
            expected.push((path.clone(), get_ok(&cold, &path)));
            let corpus_path = format!("{path}&corpus={digest}");
            expected.push((corpus_path.clone(), get_ok(&cold, &corpus_path)));
        }
        assert_eq!(cold.build_count(), 2, "one cold build per corpus variant");
        let health = health_json(&cold);
        assert!(
            health["store"]["snapshot_writes"].as_f64().unwrap() >= 3.0,
            "two atlases + one corpus written through: {health}"
        );
        cold.shutdown();

        let warm = start(ServerConfig {
            build_threads,
            ..persistent_config(&scratch)
        });
        for (path, body) in &expected {
            assert_eq!(
                &get_ok(&warm, path),
                body,
                "GET {path}: warm restart must serve the cold server's bytes \
                 (build_threads={build_threads})"
            );
        }
        assert_eq!(
            warm.build_count(),
            0,
            "a warm restart serves everything from disk"
        );
        let metrics = metrics_text(&warm);
        let builds_line = metrics
            .lines()
            .find(|l| l.starts_with("atlas_builds_total "))
            .expect("build counter in /metrics");
        assert_eq!(
            builds_line, "atlas_builds_total 0",
            "/metrics must agree that nothing was built"
        );
        let health = health_json(&warm);
        assert_eq!(health["builds"].as_f64(), Some(0.0), "{health}");
        assert!(
            health["store"]["snapshot_hits"].as_f64().unwrap() >= 2.0,
            "both atlases came from disk: {health}"
        );
        // The uploaded corpus survived the restart into the registry.
        let corpora = health["corpora"].as_array().unwrap();
        assert_eq!(corpora.len(), 1, "{health}");
        assert_eq!(corpora[0]["corpus"].as_str(), Some(digest.as_str()));
        warm.shutdown();
    }
}

/// A snapshot damaged on disk degrades to a rebuild — the endpoint
/// still serves the same bytes — and the corruption is quarantined and
/// counted on the public surfaces.
#[test]
fn corrupted_snapshot_falls_back_to_rebuild() {
    let scratch = Scratch::new("corrupt");
    let cold = start(persistent_config(&scratch));
    let path = format!("/table1?seed={SEED}");
    let body = get_ok(&cold, &path);
    assert_eq!(cold.build_count(), 1);
    cold.shutdown();

    // Flip one byte in the middle of the stored atlas snapshot.
    let atlases = files_with_ext(&scratch.0.join("atlases"), "atlas");
    assert_eq!(atlases.len(), 1, "exactly one atlas snapshot: {atlases:?}");
    let mut bytes = std::fs::read(&atlases[0]).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&atlases[0], &bytes).unwrap();

    let warm = start(persistent_config(&scratch));
    assert_eq!(
        get_ok(&warm, &path),
        body,
        "a damaged snapshot must fall back to an identical rebuild"
    );
    assert_eq!(warm.build_count(), 1, "the fallback is a real rebuild");
    let health = health_json(&warm);
    assert!(
        health["store"]["snapshot_corrupt"].as_f64().unwrap() >= 1.0,
        "corruption must be counted: {health}"
    );
    let metrics = metrics_text(&warm);
    let corrupt_line = metrics
        .lines()
        .find(|l| l.starts_with("atlas_store_snapshot_corrupt_total "))
        .expect("corrupt counter in /metrics");
    assert_ne!(corrupt_line, "atlas_store_snapshot_corrupt_total 0");
    // The damaged file went to quarantine, and the rebuild re-persisted
    // a fresh snapshot in its place.
    assert_eq!(
        files_with_ext(&scratch.0.join("quarantine"), "atlas").len(),
        1
    );
    assert_eq!(files_with_ext(&scratch.0.join("atlases"), "atlas").len(), 1);
    warm.shutdown();
}

/// A `.tmp` file left behind by a crash mid-persist is swept at boot
/// and never shadows a real snapshot.
#[test]
fn torn_tmp_files_are_swept_at_boot() {
    let scratch = Scratch::new("torn");
    let atlases = scratch.0.join("atlases");
    std::fs::create_dir_all(&atlases).unwrap();
    let torn = atlases.join("deadbeef.atlas.tmp");
    std::fs::write(&torn, b"interrupted mid-write").unwrap();

    let server = start(persistent_config(&scratch));
    assert!(!torn.exists(), "boot must sweep torn tmp files");
    get_ok(&server, &format!("/table1?seed={SEED}"));
    assert_eq!(server.build_count(), 1, "nothing warm to restore");
    server.shutdown();
}

/// `DELETE /corpus/{digest}` removes the registry entry, the cached
/// atlases, and every snapshot file — and the digest stays gone across
/// a restart.
#[test]
fn delete_corpus_removes_memory_and_disk_together() {
    let scratch = Scratch::new("delete");
    let server = start(persistent_config(&scratch));
    let digest = upload(&server, &synthetic_corpus_json());
    get_ok(&server, &format!("/table1?seed={SEED}&corpus={digest}"));
    assert_eq!(files_with_ext(&scratch.0, "corpus").len(), 1);
    assert_eq!(files_with_ext(&scratch.0, "atlas").len(), 1);

    let (status, body) = server.delete(&format!("/corpus/{digest}")).unwrap();
    let text = String::from_utf8(body).unwrap();
    assert_eq!(status, 200, "{text}");
    let v: serde_json::Value = serde_json::from_str(&text).unwrap();
    assert_eq!(v["registered"].as_bool(), Some(true), "{text}");
    assert_eq!(v["cached_atlases"].as_f64(), Some(1.0), "{text}");
    assert_eq!(v["atlas_snapshots"].as_f64(), Some(1.0), "{text}");
    assert_eq!(v["corpus_snapshot"].as_bool(), Some(true), "{text}");

    assert!(files_with_ext(&scratch.0, "corpus").is_empty());
    assert!(files_with_ext(&scratch.0, "atlas").is_empty());
    let (status, _) = server.get(&format!("/table1?corpus={digest}")).unwrap();
    assert_eq!(status, 404, "deleted corpus must be unknown");
    let (status, _) = server.delete(&format!("/corpus/{digest}")).unwrap();
    assert_eq!(status, 404, "second delete finds nothing");
    server.shutdown();

    let restarted = start(persistent_config(&scratch));
    assert!(
        health_json(&restarted)["corpora"]
            .as_array()
            .unwrap()
            .is_empty(),
        "a deleted corpus must not come back after a restart"
    );
    restarted.shutdown();
}

/// With a TTL of zero every upload expires before its first query:
/// the digest 404s and both memory and disk are purged.
#[test]
fn corpus_ttl_expires_uploads_from_memory_and_disk() {
    let scratch = Scratch::new("ttl");
    let server = start(ServerConfig {
        corpus_ttl_secs: Some(0),
        ..persistent_config(&scratch)
    });
    let digest = upload(&server, &synthetic_corpus_json());
    let (status, _) = server.get(&format!("/table1?corpus={digest}")).unwrap();
    assert_eq!(status, 404, "expired corpus must be unknown");
    let health = health_json(&server);
    assert!(health["corpora"].as_array().unwrap().is_empty(), "{health}");
    assert_eq!(
        health["store"]["corpus_files"].as_f64(),
        Some(0.0),
        "expiry must also purge the snapshot: {health}"
    );
    assert!(files_with_ext(&scratch.0, "corpus").is_empty());
    server.shutdown();
}

/// `--prewarm corpus=<digest>` after a restart warms the restored
/// corpus straight from disk; an unknown digest is skipped, not fatal.
#[test]
fn prewarm_by_digest_warms_a_restored_corpus_from_disk() {
    let scratch = Scratch::new("prewarm");
    let cold = start(persistent_config(&scratch));
    let digest = upload(&cold, &synthetic_corpus_json());
    let path = format!("/table1?seed={SEED}&corpus={digest}");
    let body = get_ok(&cold, &path);
    cold.shutdown();

    let warm = start(persistent_config(&scratch));
    handle::prewarm_specs(
        warm.state(),
        &[
            PrewarmSpec::Corpus(digest.clone()),
            PrewarmSpec::Corpus("not-a-digest".to_string()),
        ],
    );
    assert_eq!(warm.build_count(), 0, "prewarm restores, never rebuilds");
    let health = health_json(&warm);
    assert_eq!(
        health["cached_atlases"].as_f64(),
        Some(1.0),
        "the atlas is warm in memory: {health}"
    );
    assert_eq!(get_ok(&warm, &path), body);
    warm.shutdown();
}

/// `/health` accounts per corpus: in-memory bytes, on-disk bytes, and
/// the number of atlas snapshots hanging off each digest.
#[test]
fn health_reports_per_corpus_memory_and_disk_accounting() {
    let scratch = Scratch::new("accounting");
    let server = start(persistent_config(&scratch));
    let json = synthetic_corpus_json();
    let digest = upload(&server, &json);
    get_ok(&server, &format!("/table1?seed={SEED}&corpus={digest}"));

    let health = health_json(&server);
    let corpora = health["corpora"].as_array().unwrap();
    assert_eq!(corpora.len(), 1, "{health}");
    let entry = &corpora[0];
    assert_eq!(entry["corpus"].as_str(), Some(digest.as_str()));
    assert_eq!(entry["memory_bytes"].as_f64(), Some(json.len() as f64));
    assert_eq!(entry["atlas_snapshots"].as_f64(), Some(1.0), "{health}");
    let disk_bytes = entry["disk_bytes"].as_f64().unwrap();
    let on_disk: u64 = files_with_ext(&scratch.0, "corpus")
        .iter()
        .chain(files_with_ext(&scratch.0, "atlas").iter())
        .map(|p| std::fs::metadata(p).unwrap().len())
        .sum();
    assert_eq!(disk_bytes as u64, on_disk, "{health}");
    assert_eq!(
        health["corpus_disk_bytes"].as_f64(),
        Some(disk_bytes),
        "{health}"
    );
    assert!(health["corpus_memory_bytes"].as_f64().unwrap() > 0.0);
    server.shutdown();
}

/// `--no-persist` serves warm reads from an existing store but writes
/// nothing new.
#[test]
fn read_only_store_serves_warm_reads_without_writing() {
    let scratch = Scratch::new("readonly");
    let cold = start(persistent_config(&scratch));
    let path = format!("/table1?seed={SEED}");
    let body = get_ok(&cold, &path);
    cold.shutdown();

    let frozen = start(ServerConfig {
        persist: false,
        ..persistent_config(&scratch)
    });
    assert_eq!(get_ok(&frozen, &path), body, "warm reads still work");
    assert_eq!(frozen.build_count(), 0);
    // A brand-new atlas builds fine but is not written back.
    get_ok(&frozen, &format!("/table1?seed={}", SEED + 1));
    assert_eq!(frozen.build_count(), 1);
    let health = health_json(&frozen);
    assert_eq!(health["store"]["read_only"].as_bool(), Some(true));
    assert_eq!(health["store"]["snapshot_writes"].as_f64(), Some(0.0));
    assert_eq!(
        files_with_ext(&scratch.0.join("atlases"), "atlas").len(),
        1,
        "no new snapshot files in read-only mode"
    );
    frozen.shutdown();
}
