//! The `POST /batch` contract over live sockets: a batch of k artifacts
//! is served from exactly one atlas build, each embedded body is
//! byte-identical to the corresponding individual endpoint's response,
//! per-artifact failures are reported inline, and N concurrent cold
//! batches still build exactly once (single-flight).

use std::sync::Arc;

use atlas_server::{ServerConfig, ServerHandle};
use recipedb::store::RecipeDbBuilder;
use recipedb::{io, Cuisine};

/// A seed no other test shares, so the batch triggers its own cold build.
const SEED: u64 = 521;
/// A different cold seed for the concurrency test.
const CONCURRENT_SEED: u64 = 613;

fn start() -> ServerHandle {
    ServerHandle::start(ServerConfig::default()).expect("bind ephemeral port")
}

fn get_ok(server: &ServerHandle, path: &str) -> Vec<u8> {
    let (status, body) = server.get(path).expect("request succeeds");
    assert_eq!(
        status,
        200,
        "GET {path} -> {status}: {}",
        String::from_utf8_lossy(&body)
    );
    body
}

fn batch_body(artifacts: &[&str]) -> String {
    let list: Vec<String> = artifacts
        .iter()
        .map(|a| serde_json::Value::String(a.to_string()).to_string())
        .collect();
    format!("{{\"artifacts\":[{}]}}", list.join(","))
}

/// The equality pin: a k-artifact batch response is exactly the
/// concatenation of the k individual endpoint responses, and the whole
/// batch costs one atlas build.
#[test]
fn batch_equals_concatenation_of_individual_endpoints() {
    let server = start();
    let artifacts = [
        "table1",
        "tree/pattern/euclidean",
        "tree/pattern/cosine",
        "tree/pattern/jaccard",
        "tree/authenticity",
        "tree/geo",
        "compare",
        "fingerprint/Japanese?k=5",
        "elbow?k_max=6",
    ];
    let (status, body) = server
        .post(
            &format!("/batch?seed={SEED}"),
            batch_body(&artifacts).as_bytes(),
        )
        .expect("POST /batch");
    let text = String::from_utf8(body).unwrap();
    assert_eq!(status, 200, "{text}");
    assert_eq!(server.build_count(), 1, "k artifacts, one build");

    // The individual endpoints, served warm from the same atlas.
    let individual: Vec<String> = artifacts
        .iter()
        .map(|a| {
            let sep = if a.contains('?') { "&" } else { "?" };
            String::from_utf8(get_ok(&server, &format!("/{a}{sep}seed={SEED}"))).unwrap()
        })
        .collect();
    assert_eq!(
        server.build_count(),
        1,
        "individual requests were cache hits"
    );

    // Reconstruct the exact batch wire format from the individual
    // bodies: equality here proves every embedded body is byte-identical
    // to its endpoint's response.
    let results: Vec<String> = artifacts
        .iter()
        .zip(&individual)
        .map(|(a, body)| {
            let spec = serde_json::Value::String(a.to_string()).to_string();
            format!("{{\"artifact\":{spec},\"status\":200,\"body\":{body}}}")
        })
        .collect();
    let expected = format!(
        "{{\"count\":{},\"results\":[{}]}}",
        artifacts.len(),
        results.join(",")
    );
    assert_eq!(
        text, expected,
        "batch must embed the endpoint bytes verbatim"
    );
    server.shutdown();
}

/// N clients race the same cold batch: single-flight collapses them
/// into one build, and everyone gets the same bytes.
#[test]
fn concurrent_cold_batches_build_exactly_once() {
    const CLIENTS: usize = 6;
    let server = Arc::new(start());
    let body = Arc::new(batch_body(&[
        "table1",
        "tree/pattern/cosine",
        "elbow?k_max=6",
    ]));
    let path = format!("/batch?seed={CONCURRENT_SEED}");

    let handles: Vec<_> = (0..CLIENTS)
        .map(|_| {
            let server = Arc::clone(&server);
            let body = Arc::clone(&body);
            let path = path.clone();
            std::thread::spawn(move || {
                let (status, resp) = server.post(&path, body.as_bytes()).expect("POST /batch");
                assert_eq!(status, 200, "{}", String::from_utf8_lossy(&resp));
                resp
            })
        })
        .collect();
    let bodies: Vec<Vec<u8>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    for body in &bodies[1..] {
        assert_eq!(body, &bodies[0], "every client sees the same bytes");
    }

    let metrics = server.state().metrics();
    assert_eq!(metrics.build_total(), 1, "exactly one cold build");
    assert_eq!(server.build_count(), 1);
    // Every other client was either deduplicated in flight or served
    // from the cache after the build landed.
    let (cache_hits, _) = server.state().cache_stats();
    assert_eq!(
        metrics.dedup_total() + cache_hits,
        (CLIENTS - 1) as u64,
        "the {} non-leaders split between dedup and cache hits",
        CLIENTS - 1
    );
    Arc::try_unwrap(server).ok().unwrap().shutdown();
}

/// Per-artifact failures are inline results, not batch failures — and
/// the batch works against an uploaded corpus too.
#[test]
fn batch_reports_per_artifact_errors_inline() {
    let server = start();
    let mut b = RecipeDbBuilder::new();
    let soy = b.catalog_mut().intern_ingredient("soy sauce");
    b.add_recipe("r0", Cuisine::Japanese, vec![soy], vec![], vec![]);
    let json = io::to_json(&b.build().unwrap()).unwrap();
    let (status, resp) = server.post("/corpus", json.as_bytes()).unwrap();
    assert_eq!(status, 200);
    let v: serde_json::Value = serde_json::from_str(&String::from_utf8(resp).unwrap()).unwrap();
    let digest = v["corpus"].as_str().unwrap();

    // table1 works on one cuisine; the tree 422s; the typo 404s —
    // all inline, overall status still 200.
    let (status, resp) = server
        .post(
            &format!("/batch?corpus={digest}"),
            batch_body(&["table1", "tree/authenticity", "tree/pattern/manhattan"]).as_bytes(),
        )
        .unwrap();
    let text = String::from_utf8(resp).unwrap();
    assert_eq!(status, 200, "{text}");
    let parsed: serde_json::Value = serde_json::from_str(&text).unwrap();
    assert_eq!(parsed["count"].as_u64(), Some(3));
    let results = parsed["results"].as_array().unwrap();
    assert_eq!(results[0]["status"].as_u64(), Some(200));
    assert_eq!(results[1]["status"].as_u64(), Some(422));
    assert_eq!(results[2]["status"].as_u64(), Some(404));
    assert!(results[1]["body"]["error"].as_str().is_some());
    server.shutdown();
}

/// Malformed batch requests are rejected before any atlas work.
#[test]
fn malformed_batch_requests_are_400s_without_builds() {
    let server = start();
    let too_many: Vec<&str> = std::iter::repeat_n("table1", 33).collect();
    let cases: Vec<(String, &str)> = vec![
        ("not json".to_string(), "bad JSON"),
        ("{}".to_string(), "missing artifacts"),
        (batch_body(&[]), "empty artifacts"),
        ("{\"artifacts\":[1,2]}".to_string(), "non-string artifacts"),
        (batch_body(&too_many), "over the artifact cap"),
    ];
    for (body, name) in &cases {
        let (status, resp) = server.post("/batch", body.as_bytes()).unwrap();
        let text = String::from_utf8(resp).unwrap();
        assert_eq!(status, 400, "{name}: {text}");
        assert!(
            text.contains("\"error\""),
            "{name}: structured body: {text}"
        );
    }
    assert_eq!(server.build_count(), 0, "validation failures never build");
    server.shutdown();
}
