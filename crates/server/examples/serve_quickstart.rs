//! Start an in-process atlas server, query a few endpoints, shut down.
//!
//! ```text
//! cargo run --release -p atlas-server --example serve_quickstart
//! ```

use atlas_server::{ServerConfig, ServerHandle};

fn main() {
    let server = ServerHandle::start(ServerConfig::default()).expect("bind ephemeral port");
    println!("serving on http://{}", server.addr());

    let (status, body) = server.get("/health").unwrap();
    println!(
        "GET /health -> {status}\n{}\n",
        String::from_utf8_lossy(&body)
    );

    // The first atlas-backed request builds the quick atlas (seed 23);
    // everything after that is a cache hit.
    let (status, body) = server.get("/tree/pattern/euclidean").unwrap();
    println!(
        "GET /tree/pattern/euclidean -> {status} ({} bytes, {} build)",
        body.len(),
        server.build_count()
    );

    let (status, body) = server.get("/fingerprint/Thai?k=3").unwrap();
    println!(
        "GET /fingerprint/Thai?k=3 -> {status}\n{}\n",
        String::from_utf8_lossy(&body)
    );

    let (status, _) = server.get("/table1").unwrap();
    println!(
        "GET /table1 -> {status} (builds so far: {}, still 1 — same atlas)",
        server.build_count()
    );

    server.shutdown();
    println!("server stopped cleanly");
}
