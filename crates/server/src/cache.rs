//! Sharded LRU cache for built atlases.
//!
//! Keys are canonicalized [`AtlasConfig`]s (floats compared by bit
//! pattern), values are `Arc`s shared with in-flight responses.
//! Sharding by key hash keeps lock contention low; recency is a global
//! atomic clock stamped on every hit so eviction is approximately LRU
//! without a linked list.

use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use cuisine_atlas::pipeline::AtlasConfig;

const SHARDS: usize = 8;

/// A hashable, canonical identity for an atlas build.
///
/// Two configs that produce the same corpus and trees map to the same
/// key; `f64` fields are compared via `to_bits` so `0.2` and `0.2`
/// parsed from different query strings coincide exactly. An uploaded
/// corpus replaces the generator entirely, so its key carries the
/// corpus digest and zeroes the generation-only knobs — two requests
/// against the same upload share one build regardless of `seed`/`scale`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    corpus: Option<String>,
    seed: u64,
    scale_bits: u64,
    min_recipes_per_cuisine: usize,
    min_support_bits: u64,
    generic_fraction_bits: u64,
    top_k: usize,
    linkage: &'static str,
}

impl CacheKey {
    /// Canonicalize a config into its cache identity (implicit,
    /// generator-backed corpus).
    pub fn from_config(config: &AtlasConfig) -> Self {
        CacheKey {
            corpus: None,
            seed: config.corpus.seed,
            scale_bits: config.corpus.scale.to_bits(),
            min_recipes_per_cuisine: config.corpus.min_recipes_per_cuisine,
            min_support_bits: config.min_support.to_bits(),
            generic_fraction_bits: config.generic_fraction.to_bits(),
            top_k: config.top_k,
            linkage: config.linkage.name(),
        }
    }

    /// The cache identity of a build over an uploaded corpus identified
    /// by `digest`. Generation parameters (`seed`, `scale`,
    /// `min_recipes_per_cuisine`) do not influence the recipes when the
    /// corpus is supplied, so they are zeroed out of the key; analysis
    /// parameters (`min_support`, `linkage`, ...) still distinguish
    /// builds.
    pub fn for_corpus(digest: &str, config: &AtlasConfig) -> Self {
        CacheKey {
            corpus: Some(digest.to_string()),
            seed: 0,
            scale_bits: 0,
            min_recipes_per_cuisine: 0,
            min_support_bits: config.min_support.to_bits(),
            generic_fraction_bits: config.generic_fraction.to_bits(),
            top_k: config.top_k,
            linkage: config.linkage.name(),
        }
    }

    /// The uploaded-corpus digest this key is bound to, if any.
    pub fn corpus_digest(&self) -> Option<&str> {
        self.corpus.as_deref()
    }

    /// The key's durable identity: a SHA-256 over a canonical,
    /// length-prefixed encoding of every field. This is the snapshot
    /// store's file name for the atlas this key builds — stable across
    /// processes and restarts (unlike `Hash`, whose hasher is not
    /// portable), and never colliding between corpus-backed and
    /// implicit keys.
    pub fn store_id(&self) -> String {
        let mut buf: Vec<u8> = Vec::with_capacity(128);
        buf.extend_from_slice(b"atlas-cache-key-v1\0");
        match &self.corpus {
            Some(digest) => {
                buf.push(1);
                buf.extend_from_slice(&(digest.len() as u64).to_le_bytes());
                buf.extend_from_slice(digest.as_bytes());
            }
            None => buf.push(0),
        }
        buf.extend_from_slice(&self.seed.to_le_bytes());
        buf.extend_from_slice(&self.scale_bits.to_le_bytes());
        buf.extend_from_slice(&(self.min_recipes_per_cuisine as u64).to_le_bytes());
        buf.extend_from_slice(&self.min_support_bits.to_le_bytes());
        buf.extend_from_slice(&self.generic_fraction_bits.to_le_bytes());
        buf.extend_from_slice(&(self.top_k as u64).to_le_bytes());
        buf.extend_from_slice(&(self.linkage.len() as u64).to_le_bytes());
        buf.extend_from_slice(self.linkage.as_bytes());
        recipedb::digest::Sha256::hex_digest(&buf)
    }
}

struct Entry<V> {
    value: Arc<V>,
    last_used: u64,
}

/// A sharded, approximately-LRU cache.
pub struct AtlasCache<V> {
    shards: Vec<RwLock<HashMap<CacheKey, Entry<V>>>>,
    capacity: usize,
    clock: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl<V> AtlasCache<V> {
    /// A cache holding at most `capacity` atlases in total.
    pub fn new(capacity: usize) -> Self {
        AtlasCache {
            shards: (0..SHARDS).map(|_| RwLock::new(HashMap::new())).collect(),
            capacity: capacity.max(1),
            clock: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: &CacheKey) -> &RwLock<HashMap<CacheKey, Entry<V>>> {
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut hasher);
        &self.shards[(hasher.finish() as usize) % SHARDS]
    }

    /// Look up a key, stamping recency on a hit.
    pub fn get(&self, key: &CacheKey) -> Option<Arc<V>> {
        let now = self.clock.fetch_add(1, Ordering::Relaxed);
        let mut shard = self.shard(key).write().unwrap();
        match shard.get_mut(key) {
            Some(entry) => {
                entry.last_used = now;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(Arc::clone(&entry.value))
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Insert a value, evicting globally-least-recently-used entries
    /// while the cache is over its total capacity. The evicted entries
    /// are returned so the caller can spill them to the snapshot store
    /// instead of losing the build outright.
    pub fn insert(&self, key: CacheKey, value: Arc<V>) -> Vec<(CacheKey, Arc<V>)> {
        let now = self.clock.fetch_add(1, Ordering::Relaxed);
        self.shard(&key).write().unwrap().insert(
            key,
            Entry {
                value,
                last_used: now,
            },
        );
        let mut evicted = Vec::new();
        while self.len() > self.capacity {
            // Find the globally-oldest entry (reads), then remove it
            // (write). A concurrent hit can bump it in between — then
            // the remove is a slightly-unfair eviction, not a bug.
            let oldest = self
                .shards
                .iter()
                .flat_map(|s| {
                    s.read()
                        .unwrap()
                        .iter()
                        .map(|(k, e)| (k.clone(), e.last_used))
                        .collect::<Vec<_>>()
                })
                .min_by_key(|&(_, used)| used);
            match oldest {
                Some((k, _)) => {
                    if let Some(entry) = self.shard(&k).write().unwrap().remove(&k) {
                        evicted.push((k, entry.value));
                    }
                }
                None => break,
            };
        }
        evicted
    }

    /// Drop every cached atlas built from the uploaded corpus `digest`
    /// (the `DELETE /corpus/{digest}` path); returns how many were
    /// removed.
    pub fn remove_corpus(&self, digest: &str) -> usize {
        let mut removed = 0;
        for shard in &self.shards {
            let mut shard = shard.write().unwrap();
            let doomed: Vec<CacheKey> = shard
                .keys()
                .filter(|k| k.corpus_digest() == Some(digest))
                .cloned()
                .collect();
            for k in doomed {
                shard.remove(&k);
                removed += 1;
            }
        }
        removed
    }

    /// Number of cached atlases across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().unwrap().len()).sum()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `(hits, misses)` since startup.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clustering::LinkageMethod;

    fn key(seed: u64) -> CacheKey {
        let mut config = AtlasConfig::quick(seed);
        config.linkage = LinkageMethod::Average;
        CacheKey::from_config(&config)
    }

    #[test]
    fn keys_canonicalize_equal_configs() {
        let a = CacheKey::from_config(&AtlasConfig::quick(7));
        let b = CacheKey::from_config(&AtlasConfig::quick(7));
        let c = CacheKey::from_config(&AtlasConfig::quick(8));
        assert_eq!(a, b);
        assert_ne!(a, c);
        let mut with_other_support = AtlasConfig::quick(7);
        with_other_support.min_support += 0.05;
        assert_ne!(a, CacheKey::from_config(&with_other_support));
    }

    #[test]
    fn corpus_keys_ignore_generation_parameters() {
        // Different seeds/scales over the same upload are one build...
        let a = CacheKey::for_corpus("abc123", &AtlasConfig::quick(7));
        let b = CacheKey::for_corpus("abc123", &AtlasConfig::quick(99));
        assert_eq!(a, b);
        // ...but analysis parameters still split the key.
        let mut other = AtlasConfig::quick(7);
        other.min_support += 0.05;
        assert_ne!(a, CacheKey::for_corpus("abc123", &other));
        // Distinct corpora never collide, nor with the implicit corpus.
        assert_ne!(a, CacheKey::for_corpus("def456", &AtlasConfig::quick(7)));
        assert_ne!(a, CacheKey::from_config(&AtlasConfig::quick(7)));
    }

    #[test]
    fn hit_returns_same_arc_and_counts() {
        let cache = AtlasCache::<String>::new(4);
        assert!(cache.get(&key(1)).is_none());
        cache.insert(key(1), Arc::new("atlas".to_string()));
        let got = cache.get(&key(1)).unwrap();
        assert_eq!(*got, "atlas");
        assert_eq!(cache.stats(), (1, 1));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn store_ids_are_stable_hex_and_distinct() {
        let implicit = CacheKey::from_config(&AtlasConfig::quick(7));
        let uploaded = CacheKey::for_corpus("abc123", &AtlasConfig::quick(7));
        assert_eq!(implicit.store_id(), implicit.clone().store_id());
        assert_ne!(implicit.store_id(), uploaded.store_id());
        assert_ne!(
            implicit.store_id(),
            CacheKey::from_config(&AtlasConfig::quick(8)).store_id()
        );
        assert_eq!(implicit.store_id().len(), 64);
        assert!(implicit.store_id().bytes().all(|b| b.is_ascii_hexdigit()));
        assert_eq!(uploaded.corpus_digest(), Some("abc123"));
        assert_eq!(implicit.corpus_digest(), None);
    }

    #[test]
    fn remove_corpus_drops_only_that_corpus() {
        let cache = AtlasCache::<u64>::new(8);
        cache.insert(key(1), Arc::new(10));
        cache.insert(
            CacheKey::for_corpus("abc123", &AtlasConfig::quick(1)),
            Arc::new(20),
        );
        let mut other = AtlasConfig::quick(1);
        other.min_support += 0.05;
        cache.insert(CacheKey::for_corpus("abc123", &other), Arc::new(30));
        assert_eq!(cache.remove_corpus("abc123"), 2);
        assert_eq!(cache.remove_corpus("abc123"), 0);
        assert_eq!(cache.len(), 1);
        assert!(cache.get(&key(1)).is_some());
    }

    #[test]
    fn eviction_is_global_and_least_recently_used() {
        let cache = AtlasCache::<u64>::new(2);
        cache.insert(key(1), Arc::new(10));
        cache.insert(key(2), Arc::new(20));
        // Touch key 1 so key 2 becomes the LRU entry, then overflow.
        cache.get(&key(1));
        let evicted = cache.insert(key(3), Arc::new(30));
        assert_eq!(cache.len(), 2, "total capacity holds across shards");
        // The spilled entry is handed back to the caller.
        assert_eq!(evicted.len(), 1);
        assert_eq!(evicted[0].0, key(2));
        assert_eq!(*evicted[0].1, 20);
        assert_eq!(*cache.get(&key(1)).unwrap(), 10);
        assert!(cache.get(&key(2)).is_none(), "LRU entry was evicted");
        assert_eq!(*cache.get(&key(3)).unwrap(), 30);
    }
}
