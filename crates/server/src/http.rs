//! A minimal, defensive HTTP/1.1 layer over blocking streams.
//!
//! Covers exactly what the atlas API needs: request-line + header
//! parsing with hard size limits, percent-decoding, query-string
//! splitting, `Content-Length` bodies, keep-alive negotiation, and
//! response writing. Anything outside that (chunked bodies, upgrades,
//! multi-line headers) is rejected with a 400.

use std::io::{BufRead, Write};

/// Hard limit on the request line (method + target + version).
const MAX_REQUEST_LINE: usize = 8 * 1024;
/// Hard limit on a single header line.
const MAX_HEADER_LINE: usize = 8 * 1024;
/// Hard limit on header count.
const MAX_HEADERS: usize = 64;
/// Default hard limit on request bodies.
const MAX_BODY: usize = 1024 * 1024;
/// Bodies are drained in chunks of this size so an over-cap upload is
/// rejected after at most one chunk past the limit, not after buffering
/// the whole advertised length.
const BODY_CHUNK: usize = 64 * 1024;

/// Per-path request-body caps.
///
/// Corpus uploads are legitimately large (a full RecipeDB snapshot),
/// every other endpoint takes at most a small JSON document — so the
/// limit is chosen by path prefix before the body is read.
#[derive(Debug, Clone, Copy)]
pub struct BodyLimits {
    /// Cap for `POST /corpus` bodies, in bytes.
    pub corpus_bytes: usize,
    /// Cap for every other request body, in bytes.
    pub default_bytes: usize,
}

impl Default for BodyLimits {
    fn default() -> Self {
        BodyLimits {
            corpus_bytes: MAX_BODY,
            default_bytes: MAX_BODY,
        }
    }
}

impl BodyLimits {
    fn for_path(&self, path: &str) -> usize {
        if path == "/corpus" || path.starts_with("/corpus/") {
            self.corpus_bytes
        } else {
            self.default_bytes
        }
    }
}

/// A parsed request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Upper-case method (`GET`, ...).
    pub method: String,
    /// Percent-decoded path, query string stripped.
    pub path: String,
    /// Query parameters in order of appearance, percent-decoded.
    pub query: Vec<(String, String)>,
    /// Header `(name-lowercase, value)` pairs.
    pub headers: Vec<(String, String)>,
    /// Request body (empty unless `Content-Length` was sent).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of a query parameter.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// A header value by lower-case name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the client asked to keep the connection open
    /// (HTTP/1.1 default yes, overridden by `Connection: close`).
    pub fn wants_keep_alive(&self) -> bool {
        match self.header("connection") {
            Some(v) => !v.eq_ignore_ascii_case("close"),
            None => true,
        }
    }
}

/// Why a request could not be parsed.
#[derive(Debug, PartialEq, Eq)]
pub enum ParseError {
    /// The peer closed before sending a request line — normal end of a
    /// keep-alive session, not an error to report.
    ConnectionClosed,
    /// The bytes were not valid HTTP; the message goes into a 400 body.
    Malformed(String),
    /// The body exceeded the cap for its path; becomes a 413. The
    /// connection is closed afterwards — after a bounded drain of the
    /// unread body, so the client can collect the response instead of
    /// hitting a TCP reset.
    BodyTooLarge {
        /// The request path the limit was chosen for.
        path: String,
        /// The cap that was exceeded, in bytes.
        limit: usize,
        /// The Content-Length the client advertised.
        advertised: usize,
    },
}

/// Read one request from a buffered stream with the default body caps.
pub fn read_request<R: BufRead>(reader: &mut R) -> Result<Request, ParseError> {
    read_request_limited(reader, &BodyLimits::default())
}

/// Read and discard up to `n` body bytes in bounded chunks, stopping
/// early on any I/O error. Used after an over-cap body is rejected:
/// closing a socket with unread data makes the kernel send a TCP reset,
/// which can destroy the 413 response before the client reads it — a
/// bounded drain lets the rejection actually reach the peer.
pub fn drain_body<R: BufRead>(reader: &mut R, n: usize) {
    let mut scratch = [0u8; 4096];
    let mut remaining = n;
    while remaining > 0 {
        let want = remaining.min(scratch.len());
        match std::io::Read::read(reader, &mut scratch[..want]) {
            Ok(0) | Err(_) => break,
            Ok(got) => remaining -= got,
        }
    }
}

/// Read one request from a buffered stream, capping the body by path.
pub fn read_request_limited<R: BufRead>(
    reader: &mut R,
    limits: &BodyLimits,
) -> Result<Request, ParseError> {
    let line = read_line(reader, MAX_REQUEST_LINE)?;
    if line.is_empty() {
        return Err(ParseError::ConnectionClosed);
    }
    let mut parts = line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| ParseError::Malformed("empty request line".into()))?
        .to_ascii_uppercase();
    let target = parts
        .next()
        .ok_or_else(|| ParseError::Malformed("missing request target".into()))?;
    let version = parts
        .next()
        .ok_or_else(|| ParseError::Malformed("missing HTTP version".into()))?;
    if parts.next().is_some() || !version.starts_with("HTTP/1.") {
        return Err(ParseError::Malformed(format!("bad request line: {line}")));
    }

    let (raw_path, raw_query) = match target.split_once('?') {
        Some((p, q)) => (p, Some(q)),
        None => (target, None),
    };
    if !raw_path.starts_with('/') {
        return Err(ParseError::Malformed(format!(
            "bad request target: {target}"
        )));
    }
    let path = percent_decode(raw_path)
        .ok_or_else(|| ParseError::Malformed("bad percent-encoding in path".into()))?;
    let query = match raw_query {
        Some(q) => parse_query(q)
            .ok_or_else(|| ParseError::Malformed("bad percent-encoding in query".into()))?,
        None => Vec::new(),
    };

    let mut headers = Vec::new();
    loop {
        let line = read_line(reader, MAX_HEADER_LINE)?;
        if line.is_empty() {
            break;
        }
        if headers.len() >= MAX_HEADERS {
            return Err(ParseError::Malformed("too many headers".into()));
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| ParseError::Malformed(format!("bad header: {line}")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let body = match headers.iter().find(|(k, _)| k == "content-length") {
        Some((_, v)) => {
            let len: usize = v
                .parse()
                .map_err(|_| ParseError::Malformed(format!("bad content-length: {v}")))?;
            let limit = limits.for_path(&path);
            if len > limit {
                return Err(ParseError::BodyTooLarge {
                    path,
                    limit,
                    advertised: len,
                });
            }
            // Drain in bounded chunks: the advertised length is already
            // under the cap, but never trust it enough to allocate the
            // whole body before any byte arrives.
            let mut buf = Vec::with_capacity(len.min(BODY_CHUNK));
            let mut remaining = len;
            while remaining > 0 {
                let chunk = remaining.min(BODY_CHUNK);
                let start = buf.len();
                buf.resize(start + chunk, 0);
                std::io::Read::read_exact(reader, &mut buf[start..])
                    .map_err(|e| ParseError::Malformed(format!("short body: {e}")))?;
                remaining -= chunk;
            }
            buf
        }
        None => Vec::new(),
    };

    Ok(Request {
        method,
        path,
        query,
        headers,
        body,
    })
}

/// Read a CRLF- (or LF-) terminated line; empty string at EOF.
fn read_line<R: BufRead>(reader: &mut R, max: usize) -> Result<String, ParseError> {
    let mut buf = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        match std::io::Read::read(reader, &mut byte) {
            Ok(0) => break,
            Ok(_) => {
                if byte[0] == b'\n' {
                    break;
                }
                if byte[0] != b'\r' {
                    buf.push(byte[0]);
                }
                if buf.len() > max {
                    return Err(ParseError::Malformed("line too long".into()));
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(ParseError::Malformed(format!("read error: {e}"))),
        }
    }
    String::from_utf8(buf).map_err(|_| ParseError::Malformed("non-UTF-8 request".into()))
}

/// Decode `%XX` escapes (and `+` as space); `None` on malformed escapes.
pub fn percent_decode(s: &str) -> Option<String> {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                let hi = hex(*bytes.get(i + 1)?)?;
                let lo = hex(*bytes.get(i + 2)?)?;
                out.push(hi * 16 + lo);
                i += 3;
            }
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8(out).ok()
}

fn hex(b: u8) -> Option<u8> {
    match b {
        b'0'..=b'9' => Some(b - b'0'),
        b'a'..=b'f' => Some(b - b'a' + 10),
        b'A'..=b'F' => Some(b - b'A' + 10),
        _ => None,
    }
}

/// Split a query string into decoded key/value pairs.
pub(crate) fn parse_query(q: &str) -> Option<Vec<(String, String)>> {
    let mut out = Vec::new();
    for pair in q.split('&').filter(|p| !p.is_empty()) {
        let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
        out.push((percent_decode(k)?, percent_decode(v)?));
    }
    Some(out)
}

/// A response ready to be written.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` value.
    pub content_type: &'static str,
    /// Response body.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: impl Into<Vec<u8>>) -> Self {
        Response {
            status,
            content_type: "application/json",
            body: body.into(),
        }
    }

    /// Write the response, announcing whether the connection stays open.
    pub fn write_to<W: Write>(&self, writer: &mut W, keep_alive: bool) -> std::io::Result<()> {
        let connection = if keep_alive { "keep-alive" } else { "close" };
        write!(
            writer,
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n",
            self.status,
            reason(self.status),
            self.content_type,
            self.body.len(),
            connection,
        )?;
        writer.write_all(&self.body)?;
        writer.flush()
    }
}

/// The standard reason phrase for the statuses this server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &str) -> Result<Request, ParseError> {
        read_request(&mut BufReader::new(raw.as_bytes()))
    }

    #[test]
    fn parses_get_with_query_and_headers() {
        let r = parse(
            "GET /tree/pattern/euclidean?seed=7&scale=0.05 HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n",
        )
        .unwrap();
        assert_eq!(r.method, "GET");
        assert_eq!(r.path, "/tree/pattern/euclidean");
        assert_eq!(r.query_param("seed"), Some("7"));
        assert_eq!(r.query_param("scale"), Some("0.05"));
        assert_eq!(r.header("host"), Some("x"));
        assert!(!r.wants_keep_alive());
    }

    #[test]
    fn percent_decoding_in_path_and_query() {
        let r = parse("GET /fingerprint/Indian%20Subcontinent?x=a%2Bb HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(r.path, "/fingerprint/Indian Subcontinent");
        assert_eq!(r.query_param("x"), Some("a+b"));
        assert_eq!(percent_decode("a+b"), Some("a b".into()));
        assert_eq!(percent_decode("%GG"), None);
        assert_eq!(percent_decode("%2"), None);
    }

    #[test]
    fn eof_is_connection_closed_and_garbage_is_malformed() {
        assert_eq!(parse("").unwrap_err(), ParseError::ConnectionClosed);
        assert!(matches!(
            parse("garbage\r\n\r\n").unwrap_err(),
            ParseError::Malformed(_)
        ));
        assert!(matches!(
            parse("GET /x HTTP/2.0\r\n\r\n").unwrap_err(),
            ParseError::Malformed(_)
        ));
        assert!(matches!(
            parse("GET noslash HTTP/1.1\r\n\r\n").unwrap_err(),
            ParseError::Malformed(_)
        ));
    }

    #[test]
    fn keep_alive_defaults_on_for_http11() {
        let r = parse("GET / HTTP/1.1\r\n\r\n").unwrap();
        assert!(r.wants_keep_alive());
    }

    #[test]
    fn body_respects_content_length() {
        let r = parse("POST /upload HTTP/1.1\r\nContent-Length: 4\r\n\r\nabcd").unwrap();
        assert_eq!(r.body, b"abcd");
        assert!(matches!(
            parse("POST / HTTP/1.1\r\nContent-Length: 99\r\n\r\nabc").unwrap_err(),
            ParseError::Malformed(_)
        ));
    }

    #[test]
    fn body_limits_are_chosen_by_path() {
        let limits = BodyLimits {
            corpus_bytes: 8,
            default_bytes: 2,
        };
        let parse_with =
            |raw: &str| read_request_limited(&mut BufReader::new(raw.as_bytes()), &limits);
        // Under the /corpus cap but over the default one.
        let r = parse_with("POST /corpus HTTP/1.1\r\nContent-Length: 4\r\n\r\nabcd").unwrap();
        assert_eq!(r.body, b"abcd");
        assert!(matches!(
            parse_with("POST /batch HTTP/1.1\r\nContent-Length: 4\r\n\r\nabcd").unwrap_err(),
            ParseError::BodyTooLarge { ref path, limit: 2, advertised: 4 } if path == "/batch"
        ));
        // Over even the /corpus cap — rejected before reading the body.
        assert!(matches!(
            parse_with("POST /corpus HTTP/1.1\r\nContent-Length: 9\r\n\r\n").unwrap_err(),
            ParseError::BodyTooLarge { limit: 8, .. }
        ));
    }

    #[test]
    fn large_bodies_are_read_in_chunks() {
        // Bigger than one BODY_CHUNK to exercise the chunked drain.
        let payload = vec![b'x'; BODY_CHUNK + 17];
        let mut raw = format!(
            "POST /corpus HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            payload.len()
        )
        .into_bytes();
        raw.extend_from_slice(&payload);
        let limits = BodyLimits {
            corpus_bytes: 2 * BODY_CHUNK,
            default_bytes: MAX_BODY,
        };
        let r = read_request_limited(&mut BufReader::new(raw.as_slice()), &limits).unwrap();
        assert_eq!(r.body, payload);
    }

    #[test]
    fn response_writes_status_line_and_length() {
        let mut buf = Vec::new();
        Response::json(200, r#"{"ok":true}"#)
            .write_to(&mut buf, true)
            .unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 11\r\n"));
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert!(text.ends_with(r#"{"ok":true}"#));
    }
}
