//! The JSON API: shared state, query-parameter parsing, and every
//! endpoint handler.
//!
//! All atlas-backed endpoints accept the same query parameters —
//! `seed`, `scale`, `linkage`, `min_support` — which select (or build)
//! an atlas in the cache, plus `corpus=<digest>` to run the same
//! pipeline over a corpus previously uploaded via `POST /corpus`
//! instead of the synthetic generator. Identical parameters always
//! serve identical bytes; concurrent cold requests for the same
//! parameters trigger exactly one build. `POST /batch` fetches several
//! artifacts of one atlas in a single round trip.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, RwLock};
use std::time::{Duration, Instant, SystemTime};

use atlas_store::SnapshotStore;
use clustering::hac::LinkageMethod;
use clustering::Metric;
use cuisine_atlas::compare::{geo_agreement, historical_claims};
use cuisine_atlas::pipeline::{AtlasConfig, BuildTimings, CuisineAtlas, SpanSink};
use cuisine_atlas::snapshot::{self, CorpusOrigin};
use cuisine_atlas::views::{AgreementView, ElbowView, FingerprintView, Table1View, TreeView};
use recipedb::{Cuisine, RecipeDbError};
use serde::Serialize;
use serde_json::json;

use crate::cache::{AtlasCache, CacheKey};
use crate::corpus::{CorpusInfo, CorpusRegistry};
use crate::error::ApiError;
use crate::http::{Request, Response};
use crate::metrics::MetricsRegistry;
use crate::router::{PathParams, Router};
use crate::singleflight::SingleFlight;

/// Largest corpus scale the server will build on demand.
const MAX_SCALE: f64 = 1.0;
/// Largest k accepted by `/elbow`.
const MAX_ELBOW_K: usize = 26;
/// Largest per-extreme item count accepted by `/fingerprint`.
const MAX_FINGERPRINT_K: usize = 100;
/// Per-stage timings kept for the most recent cold builds — bounded so
/// `/health` stays O(1) however long the server runs, deep enough that
/// a build evicted from the LRU cache and rebuilt is still visible.
const RECENT_BUILDS: usize = 8;
/// Largest number of artifacts one `POST /batch` may request.
const MAX_BATCH_ARTIFACTS: usize = 32;
/// Uploaded corpora kept when [`AppState::new`] is used directly
/// (mirrors `ServerConfig::default().max_corpora`).
const DEFAULT_MAX_CORPORA: usize = 8;
/// Digest-prefix length used as the per-corpus metrics label.
const CORPUS_LABEL_LEN: usize = 12;

/// Shared state behind every handler: the atlas cache, the
/// single-flight table guarding cold builds, the uploaded-corpus
/// registry, the optional persistent snapshot store, and the metrics
/// registry every request reports into.
pub struct AppState {
    cache: AtlasCache<CuisineAtlas>,
    flight: SingleFlight<CacheKey, CuisineAtlas>,
    corpora: CorpusRegistry,
    store: Option<Arc<SnapshotStore>>,
    corpus_ttl: Option<Duration>,
    builds: AtomicUsize,
    workers: usize,
    build_threads: usize,
    recent_timings: RwLock<VecDeque<BuildTimings>>,
    metrics: MetricsRegistry,
}

impl AppState {
    /// State with an atlas cache of `cache_capacity` entries, reporting
    /// `workers` in `/health` and building cold atlases over
    /// `build_threads` workers (`0` = all available parallelism).
    pub fn new(cache_capacity: usize, workers: usize, build_threads: usize) -> Self {
        Self::with_limits(cache_capacity, workers, build_threads, DEFAULT_MAX_CORPORA)
    }

    /// [`AppState::new`] with an explicit bound on registered corpora.
    pub fn with_limits(
        cache_capacity: usize,
        workers: usize,
        build_threads: usize,
        max_corpora: usize,
    ) -> Self {
        Self::with_persistence(
            cache_capacity,
            workers,
            build_threads,
            max_corpora,
            None,
            None,
        )
    }

    /// [`AppState::with_limits`] backed by a persistent snapshot store
    /// and an optional TTL for uploaded corpora. Uploaded corpora found
    /// in the store are re-registered immediately (the warm start), so
    /// `?corpus=` digests issued before a restart keep resolving.
    pub fn with_persistence(
        cache_capacity: usize,
        workers: usize,
        build_threads: usize,
        max_corpora: usize,
        store: Option<Arc<SnapshotStore>>,
        corpus_ttl: Option<Duration>,
    ) -> Self {
        let state = AppState {
            cache: AtlasCache::new(cache_capacity),
            flight: SingleFlight::new(),
            corpora: CorpusRegistry::new(max_corpora),
            store,
            corpus_ttl,
            builds: AtomicUsize::new(0),
            workers,
            build_threads,
            recent_timings: RwLock::new(VecDeque::with_capacity(RECENT_BUILDS)),
            metrics: MetricsRegistry::new(&router().labels()),
        };
        state.restore_corpora();
        state
    }

    /// Re-register uploaded corpora persisted in the store, so digests
    /// handed out before a restart keep working. Oldest first, so the
    /// most recently persisted corpora win the registry's LRU cap when
    /// there are more snapshots than slots. Generated corpora stay
    /// disk-only — they are re-derivable from any atlas config and were
    /// never addressable by digest.
    fn restore_corpora(&self) {
        let Some(store) = &self.store else { return };
        let mut stored: Vec<_> = store
            .corpora()
            .into_iter()
            .filter(|c| c.origin == CorpusOrigin::Uploaded)
            .collect();
        stored.sort_by(|a, b| {
            a.modified
                .cmp(&b.modified)
                .then_with(|| a.digest.cmp(&b.digest))
        });
        for c in stored {
            let Some(bytes) = store.load_corpus(&c.digest) else {
                continue;
            };
            match snapshot::decode_corpus(&bytes) {
                Ok(snap) => {
                    let recipes = snap.db.recipe_count();
                    let cuisines = snap.db.cuisines().count();
                    self.corpora.insert(CorpusInfo {
                        digest: snap.digest,
                        db: Arc::new(snap.db),
                        recipes,
                        cuisines,
                        bytes: snap.upload_bytes as usize,
                        registered_at: c.modified,
                    });
                }
                Err(e) => {
                    if e.is_corruption() {
                        store.quarantine_corpus(&c.digest);
                    }
                }
            }
        }
    }

    /// Number of atlas builds performed since startup. Single-flight
    /// makes this strictly smaller than the number of cold requests
    /// under concurrency.
    pub fn build_count(&self) -> usize {
        self.builds.load(Ordering::SeqCst)
    }

    /// Per-stage timings of the most recent cold atlas build, if any.
    pub fn last_build_timings(&self) -> Option<BuildTimings> {
        self.recent_timings.read().unwrap().back().copied()
    }

    /// Per-stage timings of up to the last [`RECENT_BUILDS`] cold
    /// builds, most recent first.
    pub fn recent_build_timings(&self) -> Vec<BuildTimings> {
        self.recent_timings
            .read()
            .unwrap()
            .iter()
            .rev()
            .copied()
            .collect()
    }

    /// The request-level metrics registry.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// The uploaded-corpus registry.
    pub fn corpora(&self) -> &CorpusRegistry {
        &self.corpora
    }

    /// The persistent snapshot store, when one is configured.
    pub fn store(&self) -> Option<&Arc<SnapshotStore>> {
        self.store.as_ref()
    }

    /// Lifetime `(hits, misses)` of the atlas cache.
    pub fn cache_stats(&self) -> (u64, u64) {
        self.cache.stats()
    }

    /// The atlas for `config` over the implicit (generator-backed)
    /// corpus — cached, or built once even under concurrent identical
    /// requests.
    pub fn atlas(&self, config: &AtlasConfig) -> Arc<CuisineAtlas> {
        self.atlas_for(None, config)
    }

    /// The corpus selected by a request's `corpus` query parameter:
    /// `None` for the implicit synthetic corpus, the registered upload
    /// for a known digest, and a 404 for an unknown one. Expired
    /// corpora are swept first, so a TTL'd digest 404s rather than
    /// serving stale data.
    pub fn resolve_corpus(&self, request: &Request) -> Result<Option<Arc<CorpusInfo>>, ApiError> {
        self.purge_expired();
        match request.query_param("corpus") {
            Some(digest) => self.corpora.get(digest).map(Some).ok_or_else(|| {
                ApiError::not_found(format!(
                    "unknown corpus {digest:?}; upload it via POST /corpus first"
                ))
            }),
            None => Ok(None),
        }
    }

    /// Remove a corpus everywhere it lives: the registry, the atlas
    /// cache, and the snapshot store (its corpus file plus every atlas
    /// snapshot built from it).
    pub fn purge_corpus(&self, digest: &str) -> CorpusRemoval {
        let registered = self.corpora.remove(digest);
        let cached_atlases = self.cache.remove_corpus(digest);
        let (atlas_snapshots, corpus_snapshot) = match &self.store {
            Some(store) => (
                store.remove_atlases_for_corpus(digest),
                store.remove_corpus(digest),
            ),
            None => (0, false),
        };
        CorpusRemoval {
            registered,
            cached_atlases,
            atlas_snapshots,
            corpus_snapshot,
        }
    }

    /// Sweep uploaded corpora past the configured TTL (a lazy sweep run
    /// by the endpoints that observe the registry). Returns how many
    /// corpora expired.
    pub fn purge_expired(&self) -> usize {
        let Some(ttl) = self.corpus_ttl else { return 0 };
        let now = SystemTime::now();
        let expired: Vec<String> = self
            .corpora
            .infos()
            .iter()
            .filter(|i| {
                now.duration_since(i.registered_at)
                    .is_ok_and(|age| age > ttl)
            })
            .map(|i| i.digest.clone())
            .collect();
        for digest in &expired {
            self.purge_corpus(digest);
        }
        expired.len()
    }

    /// The atlas for `config` over an explicit corpus (`None` = the
    /// synthetic generator) — cached, or built once even under
    /// concurrent identical requests. Uploaded and generated corpora
    /// share one cache and one single-flight table; their keys differ
    /// by corpus digest. The server's `build_threads` setting overrides
    /// the config's: thread count never changes the built atlas (see
    /// `cuisine_atlas::pipeline`), only its wall-clock cost, so it is
    /// deliberately not part of the cache key.
    pub fn atlas_for(
        &self,
        corpus: Option<&Arc<CorpusInfo>>,
        config: &AtlasConfig,
    ) -> Arc<CuisineAtlas> {
        let key = match corpus {
            Some(info) => CacheKey::for_corpus(&info.digest, config),
            None => CacheKey::from_config(config),
        };
        if let Some(atlas) = self.cache.get(&key) {
            self.metrics.record_cache_hit();
            return atlas;
        }
        self.metrics.record_cache_miss();
        let (atlas, led) = self.flight.work_flagged(&key, || {
            // Tier 2: a disk snapshot. A restore touches none of the
            // build counters — that absence is the warm-restart
            // acceptance signal (`builds == 0` after a restart).
            if let Some(restored) = self.try_restore(&key, corpus) {
                return restored;
            }
            // Tier 3: a cold build, written through to the store.
            self.builds.fetch_add(1, Ordering::SeqCst);
            self.metrics.record_build();
            self.metrics.record_build_for_corpus(&match corpus {
                Some(info) => corpus_label(&info.digest),
                None => "synthetic".to_string(),
            });
            let build_config = config.clone().with_build_threads(self.build_threads);
            let built = match corpus {
                Some(info) => CuisineAtlas::from_shared_with_sink(
                    Arc::clone(&info.db),
                    &build_config,
                    &self.metrics,
                ),
                None => CuisineAtlas::build_with_sink(&build_config, &self.metrics),
            };
            let mut recent = self.recent_timings.write().unwrap();
            if recent.len() == RECENT_BUILDS {
                recent.pop_front();
            }
            recent.push_back(built.timings());
            drop(recent);
            self.persist_snapshot(&key, &built);
            built
        });
        if !led {
            self.metrics.record_dedup();
        }
        // Spill LRU evictions to disk so a hot cache can shrink without
        // losing work (a no-op for snapshots already written through).
        for (old_key, old_atlas) in self.cache.insert(key, Arc::clone(&atlas)) {
            self.persist_snapshot(&old_key, &old_atlas);
        }
        atlas
    }

    /// Try to satisfy a cache miss from a disk snapshot. Damaged files
    /// are quarantined and `None` falls back to a cold build — a
    /// corrupt store degrades to rebuild cost, never to an error
    /// response.
    fn try_restore(
        &self,
        key: &CacheKey,
        corpus: Option<&Arc<CorpusInfo>>,
    ) -> Option<CuisineAtlas> {
        let store = self.store.as_ref()?;
        let store_id = key.store_id();
        let bytes = self.spanned("store/probe", || store.load_atlas(&store_id))?;
        // Resolve the corpus the snapshot must be married to: the
        // registered upload, or (for generator-backed atlases) the
        // corpus snapshot the atlas references.
        let (db, digest) = match corpus {
            Some(info) => (Arc::clone(&info.db), info.digest.clone()),
            None => {
                let digest = match snapshot::peek_atlas(&bytes) {
                    Ok(peek) => peek.corpus_digest,
                    Err(e) => {
                        // Only damaged content is quarantined; a frame
                        // from a sibling running a different build is
                        // left for that sibling and treated as a miss.
                        if e.is_corruption() {
                            store.quarantine_atlas(&store_id);
                        }
                        return None;
                    }
                };
                let corpus_bytes = store.load_corpus(&digest)?;
                match snapshot::decode_corpus(&corpus_bytes) {
                    Ok(snap) => (Arc::new(snap.db), digest),
                    Err(e) => {
                        if e.is_corruption() {
                            store.quarantine_corpus(&digest);
                        }
                        return None;
                    }
                }
            }
        };
        match self.spanned("store/load", || {
            snapshot::decode_atlas(&bytes, db, &digest, self.build_threads)
        }) {
            Ok(atlas) => Some(atlas),
            Err(e) => {
                if e.is_corruption() {
                    store.quarantine_atlas(&store_id);
                }
                None
            }
        }
    }

    /// Persist a built atlas and, if missing, the corpus it was built
    /// from. Best-effort: a failed disk write never fails the request
    /// that triggered it.
    fn persist_snapshot(&self, key: &CacheKey, atlas: &CuisineAtlas) {
        let Some(store) = &self.store else { return };
        let digest = match key.corpus_digest() {
            Some(d) => d.to_string(),
            None => recipedb::corpus_digest(atlas.db()),
        };
        // The corpus first, so no stored atlas ever references a corpus
        // the store has no chance of holding.
        if !store.contains_corpus(&digest) {
            let (origin, upload_bytes) = match key.corpus_digest() {
                Some(d) => (
                    CorpusOrigin::Uploaded,
                    self.corpora
                        .infos()
                        .iter()
                        .find(|i| i.digest == d)
                        .map_or(0, |i| i.bytes as u64),
                ),
                None => (CorpusOrigin::Generated, 0),
            };
            match snapshot::encode_corpus(atlas.db(), origin, upload_bytes) {
                Ok(bytes) => {
                    let _ = self.spanned("store/persist", || {
                        store.persist_corpus(&digest, origin, &bytes)
                    });
                }
                Err(_) => return,
            }
        }
        let store_id = key.store_id();
        if store.contains_atlas(&store_id) {
            return;
        }
        let bytes = snapshot::encode_atlas(atlas, &digest);
        let _ = self.spanned("store/persist", || {
            store.persist_atlas(&store_id, &digest, &bytes)
        });
    }

    /// Write-through persist of an uploaded corpus. Best-effort, like
    /// every store write.
    fn persist_corpus_snapshot(&self, info: &CorpusInfo) {
        let Some(store) = &self.store else { return };
        if store.contains_corpus(&info.digest) {
            return;
        }
        if let Ok(bytes) =
            snapshot::encode_corpus(&info.db, CorpusOrigin::Uploaded, info.bytes as u64)
        {
            let _ = self.spanned("store/persist", || {
                store.persist_corpus(&info.digest, CorpusOrigin::Uploaded, &bytes)
            });
        }
    }

    /// Run `f`, reporting its wall time through the same span sink the
    /// pipeline's build stages use — store I/O shows up next to
    /// `stage/*` in `atlas_build_span_seconds`.
    fn spanned<T>(&self, name: &str, f: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let out = f();
        self.metrics
            .record_span(name, start.elapsed().as_secs_f64() * 1e3);
        out
    }
}

/// What a corpus purge (`DELETE /corpus/{digest}` or a TTL expiry)
/// actually removed, across all three tiers.
#[derive(Debug, Default, Clone, Copy)]
pub struct CorpusRemoval {
    /// Whether the digest was registered in memory.
    pub registered: bool,
    /// Cached atlases dropped from the LRU cache.
    pub cached_atlases: usize,
    /// Atlas snapshot files deleted from disk.
    pub atlas_snapshots: usize,
    /// Whether a corpus snapshot file was deleted from disk.
    pub corpus_snapshot: bool,
}

impl CorpusRemoval {
    /// Whether anything was removed at all.
    pub fn any(&self) -> bool {
        self.registered
            || self.cached_atlases > 0
            || self.atlas_snapshots > 0
            || self.corpus_snapshot
    }
}

/// The bounded metrics label of an uploaded corpus: a digest prefix.
fn corpus_label(digest: &str) -> String {
    digest.chars().take(CORPUS_LABEL_LEN).collect()
}

/// Parse the shared atlas-selection query parameters.
///
/// Defaults mirror [`AtlasConfig::quick`] with seed 23 — the same atlas
/// the test suite shares — so a bare `GET /table1` is fast and
/// reproducible.
pub fn config_from_query(request: &Request) -> Result<AtlasConfig, ApiError> {
    let seed = match request.query_param("seed") {
        Some(s) => s
            .parse::<u64>()
            .map_err(|_| ApiError::bad_request(format!("bad seed: {s:?}")))?,
        None => 23,
    };
    let mut config = AtlasConfig::quick(seed);
    if let Some(s) = request.query_param("scale") {
        let scale = s
            .parse::<f64>()
            .map_err(|_| ApiError::bad_request(format!("bad scale: {s:?}")))?;
        if !(scale > 0.0 && scale <= MAX_SCALE) {
            return Err(ApiError::bad_request(format!(
                "scale must be in (0, {MAX_SCALE}], got {scale}"
            )));
        }
        config.corpus.scale = scale;
    }
    if let Some(s) = request.query_param("min_support") {
        let min_support = s
            .parse::<f64>()
            .map_err(|_| ApiError::bad_request(format!("bad min_support: {s:?}")))?;
        if !(min_support > 0.0 && min_support < 1.0) {
            return Err(ApiError::bad_request(format!(
                "min_support must be in (0, 1), got {min_support}"
            )));
        }
        config.min_support = min_support;
    }
    if let Some(s) = request.query_param("linkage") {
        config.linkage = LinkageMethod::ALL
            .iter()
            .copied()
            .find(|m| m.name() == s)
            .ok_or_else(|| {
                ApiError::bad_request(format!(
                    "unknown linkage {s:?}; expected one of: {}",
                    LinkageMethod::ALL.map(|m| m.name()).join(", ")
                ))
            })?;
    }
    Ok(config)
}

fn metric_from_name(name: &str) -> Result<Metric, ApiError> {
    // Only the three metrics the paper builds trees from are routable.
    [Metric::Euclidean, Metric::Cosine, Metric::Jaccard]
        .into_iter()
        .find(|m| m.name() == name)
        .ok_or_else(|| {
            ApiError::not_found(format!(
                "no tree for metric {name:?}; expected euclidean, cosine or jaccard"
            ))
        })
}

fn json_body<T: Serialize>(view: &T) -> Result<String, ApiError> {
    serde_json::to_string(view)
        .map_err(|e| ApiError::internal(format!("serialization failed: {e}")))
}

fn ok_json<T: Serialize>(view: &T) -> Result<Response, ApiError> {
    Ok(Response::json(200, json_body(view)?))
}

/// Render an [`ApiError`] as its JSON body string.
fn error_body(err: &ApiError) -> String {
    json!({ "error": (err.message.as_str()), "status": (err.status) }).to_string()
}

/// Render an [`ApiError`] as its JSON response.
pub fn error_response(err: &ApiError) -> Response {
    Response::json(err.status, error_body(err))
}

/// Build the full routing table.
pub fn router() -> Router<AppState> {
    Router::new()
        .get("/health", health)
        .get("/cuisines", cuisines)
        .get("/table1", table1)
        .get("/tree/pattern/:metric", pattern_tree)
        .get("/tree/authenticity", authenticity_tree)
        .get("/tree/geo", geo_tree)
        .get("/compare", compare)
        .get("/fingerprint/:cuisine", fingerprint)
        .get("/elbow", elbow)
        .get("/metrics", metrics)
        .post("/corpus", upload_corpus)
        .delete("/corpus/:digest", delete_corpus)
        .post("/batch", batch)
}

// ---------------------------------------------------------------------
// Artifact bodies.
//
// Every artifact an endpoint can serve is produced by exactly one of
// these functions, shared between the GET handlers and `POST /batch` —
// so a batch result is byte-identical to the individual endpoint's
// response by construction, and small-corpus guards apply uniformly.
// ---------------------------------------------------------------------

/// Artifacts that cluster cuisines need at least two of them; fewer is
/// a well-formed corpus the pipeline cannot run on — 422, not a panic.
fn require_clusterable(atlas: &CuisineAtlas) -> Result<(), ApiError> {
    let n = atlas.cuisines().len();
    if n < 2 {
        return Err(ApiError::unprocessable(format!(
            "corpus covers {n} cuisine(s); hierarchical clustering needs at least 2"
        )));
    }
    Ok(())
}

fn table1_body(atlas: &CuisineAtlas) -> Result<String, ApiError> {
    json_body(&Table1View::from_table(&atlas.table1()))
}

fn pattern_tree_body(atlas: &CuisineAtlas, metric: Metric) -> Result<String, ApiError> {
    require_clusterable(atlas)?;
    json_body(&TreeView::from_tree(&atlas.pattern_tree(metric)))
}

fn authenticity_tree_body(atlas: &CuisineAtlas) -> Result<String, ApiError> {
    require_clusterable(atlas)?;
    json_body(&TreeView::from_tree(&atlas.authenticity_tree()))
}

fn geo_tree_body(atlas: &CuisineAtlas) -> Result<String, ApiError> {
    require_clusterable(atlas)?;
    json_body(&TreeView::from_tree(&atlas.geographic_tree()))
}

fn compare_body(atlas: &CuisineAtlas) -> Result<String, ApiError> {
    // The historical-claims check references specific cuisines
    // (Canada, France, India, ...), so it only makes sense over the
    // full 26-region universe.
    let n = atlas.cuisines().len();
    if n != Cuisine::COUNT {
        return Err(ApiError::unprocessable(format!(
            "corpus covers {n} of {} cuisines; /compare needs all of them",
            Cuisine::COUNT
        )));
    }
    let geo = atlas.geographic_tree();
    let trees = [
        atlas.pattern_tree(Metric::Euclidean),
        atlas.pattern_tree(Metric::Cosine),
        atlas.pattern_tree(Metric::Jaccard),
        atlas.authenticity_tree(),
    ];
    let views: Vec<AgreementView> = trees
        .iter()
        .map(|tree| AgreementView::from_parts(&geo_agreement(tree, &geo), &historical_claims(tree)))
        .collect();
    json_body(&views)
}

fn fingerprint_body(atlas: &CuisineAtlas, cuisine: Cuisine, k: usize) -> Result<String, ApiError> {
    if !atlas.cuisines().contains(&cuisine) {
        return Err(ApiError::not_found(format!(
            "cuisine {} has no recipes in this corpus",
            cuisine.name()
        )));
    }
    let matrix = atlas.authenticity_matrix();
    json_body(&FingerprintView::from_matrix(
        &matrix,
        atlas.db(),
        cuisine,
        k,
    ))
}

fn elbow_body(atlas: &CuisineAtlas, k_max: usize, seed: u64) -> Result<String, ApiError> {
    require_clusterable(atlas)?;
    // More clusters than cuisines is not meaningful; clamp instead of
    // erroring so a default k_max works for any corpus. A no-op for
    // the full 26-cuisine universe, where k_max is already capped.
    let k_max = k_max.min(atlas.cuisines().len());
    json_body(&ElbowView {
        k_max,
        seed,
        wcss: atlas.elbow_curve(k_max, seed),
    })
}

/// Parse a positive bounded integer query parameter.
fn parse_bounded(
    raw: Option<&str>,
    name: &str,
    default: usize,
    max: usize,
) -> Result<usize, ApiError> {
    match raw {
        Some(s) => {
            let k = s
                .parse::<usize>()
                .map_err(|_| ApiError::bad_request(format!("bad {name}: {s:?}")))?;
            if k == 0 || k > max {
                return Err(ApiError::bad_request(format!(
                    "{name} must be in 1..={max}, got {k}"
                )));
            }
            Ok(k)
        }
        None => Ok(default),
    }
}

fn timings_json(t: &BuildTimings) -> serde_json::Value {
    json!({
        "generate": (t.generate_ms),
        "mine": (t.mine_ms),
        "features": (t.features_ms),
        "pdist": (t.pdist_ms),
        "total": (t.total_ms()),
    })
}

fn health(state: &AppState, _: &Request, _: &PathParams) -> Result<Response, ApiError> {
    state.purge_expired();
    let (hits, misses) = state.cache.stats();
    let recent = state.recent_build_timings();
    let last_build_ms = recent.first().map(timings_json);
    let recent_builds_ms: Vec<serde_json::Value> = recent.iter().map(timings_json).collect();
    // Per-endpoint latency summary, only for endpoints that saw traffic.
    let mut latency_ms = serde_json::Map::new();
    for e in state.metrics.endpoints() {
        let snap = e.latency();
        if snap.count() == 0 {
            continue;
        }
        latency_ms.insert(
            e.label().to_string(),
            json!({
                "count": (snap.count()),
                "p50": (snap.quantile(0.5).map(|s| s * 1e3)),
                "p99": (snap.quantile(0.99).map(|s| s * 1e3)),
            }),
        );
    }
    // Per-corpus accounting: in-memory footprint plus (when a store is
    // configured) the disk footprint of each corpus and its atlases.
    let mut corpora_json = Vec::new();
    let mut corpus_memory_bytes: u64 = 0;
    let mut corpus_disk_bytes: u64 = 0;
    for info in state.corpora.infos() {
        let disk = state
            .store
            .as_ref()
            .map(|s| s.disk_usage_for(&info.digest))
            .unwrap_or_default();
        corpus_memory_bytes += info.bytes as u64;
        corpus_disk_bytes += disk.corpus_bytes + disk.atlas_bytes;
        corpora_json.push(json!({
            "corpus": (info.digest.as_str()),
            "recipes": (info.recipes),
            "cuisines": (info.cuisines),
            "memory_bytes": (info.bytes),
            "disk_bytes": (disk.corpus_bytes + disk.atlas_bytes),
            "atlas_snapshots": (disk.atlas_count),
        }));
    }
    let store_json = state.store.as_ref().map(|s| {
        let st = s.stats();
        json!({
            "data_dir": (s.root().display().to_string()),
            "read_only": (s.read_only()),
            "snapshot_hits": (st.hits),
            "snapshot_misses": (st.misses),
            "snapshot_writes": (st.writes),
            "snapshot_corrupt": (st.corrupt),
            "snapshot_evictions": (st.evictions),
            "index_rescans": (st.rescans),
            "lock_acquisitions": (st.lock_acquisitions),
            "lock_steals": (st.lock_steals),
            "lock_contentions": (st.lock_contentions),
            "atlas_files": (st.atlas_files),
            "corpus_files": (st.corpus_files),
            "disk_bytes": (st.total_bytes()),
            "max_disk_bytes": (st.max_disk_bytes),
        })
    });
    ok_json(&json!({
        "status": "ok",
        "workers": (state.workers),
        "build_threads": (par::resolve(state.build_threads)),
        "cached_atlases": (state.cache.len()),
        "builds": (state.build_count()),
        "cache_hits": hits,
        "cache_misses": misses,
        "last_build_ms": last_build_ms,
        "recent_builds_ms": recent_builds_ms,
        "latency_ms": (serde_json::Value::Object(latency_ms)),
        "corpora": (corpora_json),
        "corpus_memory_bytes": corpus_memory_bytes,
        "corpus_disk_bytes": corpus_disk_bytes,
        "store": store_json,
    }))
}

fn metrics(state: &AppState, _: &Request, _: &PathParams) -> Result<Response, ApiError> {
    // Gauges owned by the cache, appended to the registry's rendering
    // so /metrics is the one-stop scrape target.
    let (hits, misses) = state.cache.stats();
    let mut extra = format!(
        "# HELP atlas_cached_atlases Atlases currently in the LRU cache.\n\
         # TYPE atlas_cached_atlases gauge\n\
         atlas_cached_atlases {}\n\
         # HELP atlas_cache_lookup_hits_total Cache-internal hit counter.\n\
         # TYPE atlas_cache_lookup_hits_total counter\n\
         atlas_cache_lookup_hits_total {hits}\n\
         # HELP atlas_cache_lookup_misses_total Cache-internal miss counter.\n\
         # TYPE atlas_cache_lookup_misses_total counter\n\
         atlas_cache_lookup_misses_total {misses}\n",
        state.cache.len(),
    );
    if let Some(store) = &state.store {
        let st = store.stats();
        extra.push_str(&format!(
            "# HELP atlas_store_snapshot_hits_total Disk snapshot loads that found a file.\n\
             # TYPE atlas_store_snapshot_hits_total counter\n\
             atlas_store_snapshot_hits_total {}\n\
             # HELP atlas_store_snapshot_misses_total Disk snapshot loads that found nothing.\n\
             # TYPE atlas_store_snapshot_misses_total counter\n\
             atlas_store_snapshot_misses_total {}\n\
             # HELP atlas_store_snapshot_writes_total Snapshot files written.\n\
             # TYPE atlas_store_snapshot_writes_total counter\n\
             atlas_store_snapshot_writes_total {}\n\
             # HELP atlas_store_snapshot_corrupt_total Snapshot files quarantined as damaged.\n\
             # TYPE atlas_store_snapshot_corrupt_total counter\n\
             atlas_store_snapshot_corrupt_total {}\n\
             # HELP atlas_store_snapshot_evictions_total Snapshot files evicted by the disk budget.\n\
             # TYPE atlas_store_snapshot_evictions_total counter\n\
             atlas_store_snapshot_evictions_total {}\n\
             # HELP atlas_store_index_rescans_total Index corrections against the shared filesystem (re-probed sibling writes, adopted or dropped entries).\n\
             # TYPE atlas_store_index_rescans_total counter\n\
             atlas_store_index_rescans_total {}\n\
             # HELP atlas_store_lock_acquisitions_total Advisory write-lock acquisitions.\n\
             # TYPE atlas_store_lock_acquisitions_total counter\n\
             atlas_store_lock_acquisitions_total {}\n\
             # HELP atlas_store_lock_steals_total Stale sibling locks broken (dead pid or previous boot).\n\
             # TYPE atlas_store_lock_steals_total counter\n\
             atlas_store_lock_steals_total {}\n\
             # HELP atlas_store_lock_contentions_total Lock acquisitions that waited behind a live holder.\n\
             # TYPE atlas_store_lock_contentions_total counter\n\
             atlas_store_lock_contentions_total {}\n\
             # HELP atlas_store_atlas_files Atlas snapshot files currently stored.\n\
             # TYPE atlas_store_atlas_files gauge\n\
             atlas_store_atlas_files {}\n\
             # HELP atlas_store_corpus_files Corpus snapshot files currently stored.\n\
             # TYPE atlas_store_corpus_files gauge\n\
             atlas_store_corpus_files {}\n\
             # HELP atlas_store_disk_bytes Bytes currently stored across snapshots.\n\
             # TYPE atlas_store_disk_bytes gauge\n\
             atlas_store_disk_bytes {}\n\
             # HELP atlas_store_max_disk_bytes Configured disk budget (0 = unbounded).\n\
             # TYPE atlas_store_max_disk_bytes gauge\n\
             atlas_store_max_disk_bytes {}\n",
            st.hits,
            st.misses,
            st.writes,
            st.corrupt,
            st.evictions,
            st.rescans,
            st.lock_acquisitions,
            st.lock_steals,
            st.lock_contentions,
            st.atlas_files,
            st.corpus_files,
            st.total_bytes(),
            st.max_disk_bytes,
        ));
    }
    Ok(Response {
        status: 200,
        content_type: "text/plain; version=0.0.4; charset=utf-8",
        body: state.metrics.render_prometheus(&extra).into_bytes(),
    })
}

fn cuisines(_: &AppState, _: &Request, _: &PathParams) -> Result<Response, ApiError> {
    let names: Vec<&str> = Cuisine::ALL.iter().map(|c| c.name()).collect();
    ok_json(&json!({ "count": (names.len()), "cuisines": names }))
}

/// Resolve the atlas a request addresses: its config plus its corpus
/// (implicit or uploaded).
fn atlas_from_request(state: &AppState, request: &Request) -> Result<Arc<CuisineAtlas>, ApiError> {
    let config = config_from_query(request)?;
    let corpus = state.resolve_corpus(request)?;
    Ok(state.atlas_for(corpus.as_ref(), &config))
}

fn table1(state: &AppState, request: &Request, _: &PathParams) -> Result<Response, ApiError> {
    let atlas = atlas_from_request(state, request)?;
    Ok(Response::json(200, table1_body(&atlas)?))
}

fn pattern_tree(
    state: &AppState,
    request: &Request,
    params: &PathParams,
) -> Result<Response, ApiError> {
    let metric = metric_from_name(params.get("metric").unwrap_or_default())?;
    let atlas = atlas_from_request(state, request)?;
    Ok(Response::json(200, pattern_tree_body(&atlas, metric)?))
}

fn authenticity_tree(
    state: &AppState,
    request: &Request,
    _: &PathParams,
) -> Result<Response, ApiError> {
    let atlas = atlas_from_request(state, request)?;
    Ok(Response::json(200, authenticity_tree_body(&atlas)?))
}

fn geo_tree(state: &AppState, request: &Request, _: &PathParams) -> Result<Response, ApiError> {
    let atlas = atlas_from_request(state, request)?;
    Ok(Response::json(200, geo_tree_body(&atlas)?))
}

fn compare(state: &AppState, request: &Request, _: &PathParams) -> Result<Response, ApiError> {
    let atlas = atlas_from_request(state, request)?;
    Ok(Response::json(200, compare_body(&atlas)?))
}

fn fingerprint(
    state: &AppState,
    request: &Request,
    params: &PathParams,
) -> Result<Response, ApiError> {
    let name = params.get("cuisine").unwrap_or_default();
    let cuisine = Cuisine::from_name(name)
        .ok_or_else(|| ApiError::not_found(format!("unknown cuisine {name:?}")))?;
    let k = parse_bounded(request.query_param("k"), "k", 5, MAX_FINGERPRINT_K)?;
    let atlas = atlas_from_request(state, request)?;
    Ok(Response::json(200, fingerprint_body(&atlas, cuisine, k)?))
}

fn elbow(state: &AppState, request: &Request, _: &PathParams) -> Result<Response, ApiError> {
    let k_max = parse_bounded(request.query_param("k_max"), "k_max", 16, MAX_ELBOW_K)?;
    let config = config_from_query(request)?;
    let corpus = state.resolve_corpus(request)?;
    let atlas = state.atlas_for(corpus.as_ref(), &config);
    Ok(Response::json(
        200,
        elbow_body(&atlas, k_max, config.corpus.seed)?,
    ))
}

/// `POST /corpus`: validate and register an uploaded RecipeDB JSON
/// snapshot, returning its digest id. Every rejection bumps the
/// corpus-reject counter; no input reaches a panic.
fn upload_corpus(
    state: &AppState,
    request: &Request,
    _: &PathParams,
) -> Result<Response, ApiError> {
    let result = register_corpus(state, request);
    if result.is_err() {
        state.metrics().record_corpus_reject();
    }
    result
}

fn register_corpus(state: &AppState, request: &Request) -> Result<Response, ApiError> {
    if request.body.is_empty() {
        return Err(ApiError::bad_request(
            "empty corpus upload; expected a RecipeDB JSON snapshot",
        ));
    }
    let text = std::str::from_utf8(&request.body)
        .map_err(|_| ApiError::bad_request("corpus upload must be UTF-8 JSON"))?;
    let db = recipedb::io::from_json(text)
        .map_err(|e| ApiError::bad_request(format!("invalid corpus: {e}")))?;
    db.validate_upload().map_err(|e| match e {
        RecipeDbError::EmptyCorpus => ApiError::unprocessable(format!("invalid corpus: {e}")),
        other => ApiError::bad_request(format!("invalid corpus: {other}")),
    })?;
    let digest = recipedb::corpus_digest(&db);
    let recipes = db.recipe_count();
    let cuisines = db.cuisines().count();
    let (info, created) = state.corpora.insert(CorpusInfo {
        digest,
        db: Arc::new(db),
        recipes,
        cuisines,
        bytes: request.body.len(),
        registered_at: SystemTime::now(),
    });
    state.metrics().record_corpus_upload();
    if created {
        state.persist_corpus_snapshot(&info);
    }
    ok_json(&json!({
        "corpus": (info.digest.as_str()),
        "recipes": (info.recipes),
        "cuisines": (info.cuisines),
        "bytes": (info.bytes),
        "already_registered": (!created),
    }))
}

/// `DELETE /corpus/{digest}`: remove an uploaded corpus from the
/// registry, the atlas cache, and the snapshot store — after this, the
/// digest 404s and nothing of it remains on disk.
fn delete_corpus(state: &AppState, _: &Request, params: &PathParams) -> Result<Response, ApiError> {
    state.purge_expired();
    let digest = params.get("digest").unwrap_or_default();
    let removal = state.purge_corpus(digest);
    if !removal.any() {
        return Err(ApiError::not_found(format!("unknown corpus {digest:?}")));
    }
    ok_json(&json!({
        "corpus": digest,
        "registered": (removal.registered),
        "cached_atlases": (removal.cached_atlases),
        "atlas_snapshots": (removal.atlas_snapshots),
        "corpus_snapshot": (removal.corpus_snapshot),
    }))
}

/// Execute one batch artifact spec (`"table1"`,
/// `"tree/pattern/cosine"`, `"fingerprint/Japanese?k=5"`, ...) against
/// an already-resolved atlas.
fn run_artifact(
    atlas: &CuisineAtlas,
    config: &AtlasConfig,
    spec: &str,
) -> Result<String, ApiError> {
    let (path, query) = match spec.split_once('?') {
        Some((p, q)) => (
            p,
            crate::http::parse_query(q).ok_or_else(|| {
                ApiError::bad_request(format!("bad percent-encoding in artifact {spec:?}"))
            })?,
        ),
        None => (spec, Vec::new()),
    };
    let param = |name: &str| {
        query
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    };
    let segments: Vec<&str> = path
        .trim_start_matches('/')
        .split('/')
        .filter(|s| !s.is_empty())
        .collect();
    match segments.as_slice() {
        ["table1"] => table1_body(atlas),
        ["tree", "pattern", metric] => pattern_tree_body(atlas, metric_from_name(metric)?),
        ["tree", "authenticity"] => authenticity_tree_body(atlas),
        ["tree", "geo"] => geo_tree_body(atlas),
        ["compare"] => compare_body(atlas),
        ["fingerprint", name] => {
            let cuisine = Cuisine::from_name(name)
                .ok_or_else(|| ApiError::not_found(format!("unknown cuisine {name:?}")))?;
            let k = parse_bounded(param("k"), "k", 5, MAX_FINGERPRINT_K)?;
            fingerprint_body(atlas, cuisine, k)
        }
        ["elbow"] => {
            let k_max = parse_bounded(param("k_max"), "k_max", 16, MAX_ELBOW_K)?;
            elbow_body(atlas, k_max, config.corpus.seed)
        }
        _ => Err(ApiError::not_found(format!(
            "unknown artifact {spec:?}; expected table1, tree/pattern/:metric, \
             tree/authenticity, tree/geo, compare, fingerprint/:cuisine or elbow"
        ))),
    }
}

/// `POST /batch`: execute several artifact requests against one atlas
/// in a single round trip. The whole batch shares one atlas resolution,
/// so at most one build happens however many artifacts are requested;
/// per-artifact failures are reported inline without failing the batch.
fn batch(state: &AppState, request: &Request, _: &PathParams) -> Result<Response, ApiError> {
    let config = config_from_query(request)?;
    let corpus = state.resolve_corpus(request)?;
    let text = std::str::from_utf8(&request.body)
        .map_err(|_| ApiError::bad_request("batch body must be UTF-8 JSON"))?;
    let parsed: serde_json::Value = serde_json::from_str(text)
        .map_err(|e| ApiError::bad_request(format!("bad batch JSON: {e}")))?;
    let artifacts = parsed
        .get("artifacts")
        .and_then(|v| v.as_array())
        .ok_or_else(|| ApiError::bad_request(r#"batch body needs an "artifacts" array"#))?;
    if artifacts.is_empty() {
        return Err(ApiError::bad_request("batch needs at least one artifact"));
    }
    if artifacts.len() > MAX_BATCH_ARTIFACTS {
        return Err(ApiError::bad_request(format!(
            "batch is capped at {MAX_BATCH_ARTIFACTS} artifacts, got {}",
            artifacts.len()
        )));
    }
    let specs: Vec<&str> = artifacts
        .iter()
        .map(|v| {
            v.as_str()
                .ok_or_else(|| ApiError::bad_request("batch artifacts must be strings"))
        })
        .collect::<Result<_, _>>()?;
    // One atlas serves the whole batch: built (or fetched) exactly once.
    let atlas = state.atlas_for(corpus.as_ref(), &config);
    let mut results = Vec::with_capacity(specs.len());
    for spec in &specs {
        let (status, body) = match run_artifact(&atlas, &config, spec) {
            Ok(body) => (200, body),
            Err(err) => (err.status, error_body(&err)),
        };
        // Bodies are embedded verbatim (they are already JSON), keeping
        // each byte-identical to the individual endpoint's response.
        let spec_json = serde_json::Value::String(spec.to_string()).to_string();
        results.push(format!(
            "{{\"artifact\":{spec_json},\"status\":{status},\"body\":{body}}}"
        ));
    }
    let body = format!(
        "{{\"count\":{},\"results\":[{}]}}",
        results.len(),
        results.join(",")
    );
    Ok(Response::json(200, body))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(path: &str, query: &[(&str, &str)]) -> Request {
        Request {
            method: "GET".to_string(),
            path: path.to_string(),
            query: query
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            headers: Vec::new(),
            body: Vec::new(),
        }
    }

    #[test]
    fn defaults_mirror_quick_seed_23() {
        let config = config_from_query(&req("/table1", &[])).unwrap();
        let quick = AtlasConfig::quick(23);
        assert_eq!(
            CacheKey::from_config(&config),
            CacheKey::from_config(&quick)
        );
    }

    #[test]
    fn query_overrides_are_applied() {
        let config = config_from_query(&req(
            "/table1",
            &[
                ("seed", "7"),
                ("scale", "0.02"),
                ("min_support", "0.25"),
                ("linkage", "complete"),
            ],
        ))
        .unwrap();
        assert_eq!(config.corpus.seed, 7);
        assert_eq!(config.corpus.scale, 0.02);
        assert_eq!(config.min_support, 0.25);
        assert_eq!(config.linkage.name(), "complete");
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        assert_eq!(
            config_from_query(&req("/t", &[("seed", "x")]))
                .unwrap_err()
                .status,
            400
        );
        assert_eq!(
            config_from_query(&req("/t", &[("scale", "0")]))
                .unwrap_err()
                .status,
            400
        );
        assert_eq!(
            config_from_query(&req("/t", &[("scale", "2.0")]))
                .unwrap_err()
                .status,
            400
        );
        assert_eq!(
            config_from_query(&req("/t", &[("min_support", "1.5")]))
                .unwrap_err()
                .status,
            400
        );
        assert_eq!(
            config_from_query(&req("/t", &[("linkage", "mystery")]))
                .unwrap_err()
                .status,
            400
        );
        assert_eq!(metric_from_name("manhattan").unwrap_err().status, 404);
    }

    #[test]
    fn cuisines_endpoint_needs_no_atlas() {
        let state = AppState::new(2, 1, 1);
        let resp = cuisines(&state, &req("/cuisines", &[]), &PathParams::default()).unwrap();
        assert_eq!(resp.status, 200);
        let text = String::from_utf8(resp.body).unwrap();
        assert!(text.contains("\"count\":") || text.contains("\"count\" :"));
        assert!(text.contains("Indian Subcontinent"));
        assert_eq!(state.build_count(), 0);
    }

    #[test]
    fn error_response_is_json_with_status() {
        let resp = error_response(&ApiError::not_found("nope"));
        assert_eq!(resp.status, 404);
        let text = String::from_utf8(resp.body).unwrap();
        assert!(text.contains("nope"));
        assert!(text.contains("404"));
    }
}
