//! The JSON API: shared state, query-parameter parsing, and every
//! endpoint handler.
//!
//! All atlas-backed endpoints accept the same query parameters —
//! `seed`, `scale`, `linkage`, `min_support` — which select (or build)
//! an atlas in the cache. Identical parameters always serve identical
//! bytes; concurrent cold requests for the same parameters trigger
//! exactly one build.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, RwLock};

use clustering::hac::LinkageMethod;
use clustering::Metric;
use cuisine_atlas::compare::{geo_agreement, historical_claims};
use cuisine_atlas::pipeline::{AtlasConfig, BuildTimings, CuisineAtlas};
use cuisine_atlas::views::{AgreementView, ElbowView, FingerprintView, Table1View, TreeView};
use recipedb::Cuisine;
use serde::Serialize;
use serde_json::json;

use crate::cache::{AtlasCache, CacheKey};
use crate::error::ApiError;
use crate::http::{Request, Response};
use crate::metrics::MetricsRegistry;
use crate::router::{PathParams, Router};
use crate::singleflight::SingleFlight;

/// Largest corpus scale the server will build on demand.
const MAX_SCALE: f64 = 1.0;
/// Largest k accepted by `/elbow`.
const MAX_ELBOW_K: usize = 26;
/// Largest per-extreme item count accepted by `/fingerprint`.
const MAX_FINGERPRINT_K: usize = 100;
/// Per-stage timings kept for the most recent cold builds — bounded so
/// `/health` stays O(1) however long the server runs, deep enough that
/// a build evicted from the LRU cache and rebuilt is still visible.
const RECENT_BUILDS: usize = 8;

/// Shared state behind every handler: the atlas cache, the
/// single-flight table guarding cold builds, and the metrics registry
/// every request reports into.
pub struct AppState {
    cache: AtlasCache<CuisineAtlas>,
    flight: SingleFlight<CacheKey, CuisineAtlas>,
    builds: AtomicUsize,
    workers: usize,
    build_threads: usize,
    recent_timings: RwLock<VecDeque<BuildTimings>>,
    metrics: MetricsRegistry,
}

impl AppState {
    /// State with an atlas cache of `cache_capacity` entries, reporting
    /// `workers` in `/health` and building cold atlases over
    /// `build_threads` workers (`0` = all available parallelism).
    pub fn new(cache_capacity: usize, workers: usize, build_threads: usize) -> Self {
        AppState {
            cache: AtlasCache::new(cache_capacity),
            flight: SingleFlight::new(),
            builds: AtomicUsize::new(0),
            workers,
            build_threads,
            recent_timings: RwLock::new(VecDeque::with_capacity(RECENT_BUILDS)),
            metrics: MetricsRegistry::new(&router().labels()),
        }
    }

    /// Number of atlas builds performed since startup. Single-flight
    /// makes this strictly smaller than the number of cold requests
    /// under concurrency.
    pub fn build_count(&self) -> usize {
        self.builds.load(Ordering::SeqCst)
    }

    /// Per-stage timings of the most recent cold atlas build, if any.
    pub fn last_build_timings(&self) -> Option<BuildTimings> {
        self.recent_timings.read().unwrap().back().copied()
    }

    /// Per-stage timings of up to the last [`RECENT_BUILDS`] cold
    /// builds, most recent first.
    pub fn recent_build_timings(&self) -> Vec<BuildTimings> {
        self.recent_timings
            .read()
            .unwrap()
            .iter()
            .rev()
            .copied()
            .collect()
    }

    /// The request-level metrics registry.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// The atlas for `config` — cached, or built once even under
    /// concurrent identical requests. The server's `build_threads`
    /// setting overrides the config's: thread count never changes the
    /// built atlas (see `cuisine_atlas::pipeline`), only its wall-clock
    /// cost, so it is deliberately not part of the cache key.
    pub fn atlas(&self, config: &AtlasConfig) -> Arc<CuisineAtlas> {
        let key = CacheKey::from_config(config);
        if let Some(atlas) = self.cache.get(&key) {
            self.metrics.record_cache_hit();
            return atlas;
        }
        self.metrics.record_cache_miss();
        let (atlas, led) = self.flight.work_flagged(&key, || {
            self.builds.fetch_add(1, Ordering::SeqCst);
            self.metrics.record_build();
            let built = CuisineAtlas::build_with_sink(
                &config.clone().with_build_threads(self.build_threads),
                &self.metrics,
            );
            let mut recent = self.recent_timings.write().unwrap();
            if recent.len() == RECENT_BUILDS {
                recent.pop_front();
            }
            recent.push_back(built.timings());
            built
        });
        if !led {
            self.metrics.record_dedup();
        }
        self.cache.insert(key, Arc::clone(&atlas));
        atlas
    }
}

/// Parse the shared atlas-selection query parameters.
///
/// Defaults mirror [`AtlasConfig::quick`] with seed 23 — the same atlas
/// the test suite shares — so a bare `GET /table1` is fast and
/// reproducible.
pub fn config_from_query(request: &Request) -> Result<AtlasConfig, ApiError> {
    let seed = match request.query_param("seed") {
        Some(s) => s
            .parse::<u64>()
            .map_err(|_| ApiError::bad_request(format!("bad seed: {s:?}")))?,
        None => 23,
    };
    let mut config = AtlasConfig::quick(seed);
    if let Some(s) = request.query_param("scale") {
        let scale = s
            .parse::<f64>()
            .map_err(|_| ApiError::bad_request(format!("bad scale: {s:?}")))?;
        if !(scale > 0.0 && scale <= MAX_SCALE) {
            return Err(ApiError::bad_request(format!(
                "scale must be in (0, {MAX_SCALE}], got {scale}"
            )));
        }
        config.corpus.scale = scale;
    }
    if let Some(s) = request.query_param("min_support") {
        let min_support = s
            .parse::<f64>()
            .map_err(|_| ApiError::bad_request(format!("bad min_support: {s:?}")))?;
        if !(min_support > 0.0 && min_support < 1.0) {
            return Err(ApiError::bad_request(format!(
                "min_support must be in (0, 1), got {min_support}"
            )));
        }
        config.min_support = min_support;
    }
    if let Some(s) = request.query_param("linkage") {
        config.linkage = LinkageMethod::ALL
            .iter()
            .copied()
            .find(|m| m.name() == s)
            .ok_or_else(|| {
                ApiError::bad_request(format!(
                    "unknown linkage {s:?}; expected one of: {}",
                    LinkageMethod::ALL.map(|m| m.name()).join(", ")
                ))
            })?;
    }
    Ok(config)
}

fn metric_from_name(name: &str) -> Result<Metric, ApiError> {
    // Only the three metrics the paper builds trees from are routable.
    [Metric::Euclidean, Metric::Cosine, Metric::Jaccard]
        .into_iter()
        .find(|m| m.name() == name)
        .ok_or_else(|| {
            ApiError::not_found(format!(
                "no tree for metric {name:?}; expected euclidean, cosine or jaccard"
            ))
        })
}

fn ok_json<T: Serialize>(view: &T) -> Result<Response, ApiError> {
    let body = serde_json::to_string(view)
        .map_err(|e| ApiError::internal(format!("serialization failed: {e}")))?;
    Ok(Response::json(200, body))
}

/// Render an [`ApiError`] as its JSON response.
pub fn error_response(err: &ApiError) -> Response {
    let body = json!({ "error": (err.message.as_str()), "status": (err.status) });
    Response::json(err.status, body.to_string())
}

/// Build the full routing table.
pub fn router() -> Router<AppState> {
    Router::new()
        .get("/health", health)
        .get("/cuisines", cuisines)
        .get("/table1", table1)
        .get("/tree/pattern/:metric", pattern_tree)
        .get("/tree/authenticity", authenticity_tree)
        .get("/tree/geo", geo_tree)
        .get("/compare", compare)
        .get("/fingerprint/:cuisine", fingerprint)
        .get("/elbow", elbow)
        .get("/metrics", metrics)
}

fn timings_json(t: &BuildTimings) -> serde_json::Value {
    json!({
        "generate": (t.generate_ms),
        "mine": (t.mine_ms),
        "features": (t.features_ms),
        "pdist": (t.pdist_ms),
        "total": (t.total_ms()),
    })
}

fn health(state: &AppState, _: &Request, _: &PathParams) -> Result<Response, ApiError> {
    let (hits, misses) = state.cache.stats();
    let recent = state.recent_build_timings();
    let last_build_ms = recent.first().map(timings_json);
    let recent_builds_ms: Vec<serde_json::Value> = recent.iter().map(timings_json).collect();
    // Per-endpoint latency summary, only for endpoints that saw traffic.
    let mut latency_ms = serde_json::Map::new();
    for e in state.metrics.endpoints() {
        let snap = e.latency();
        if snap.count() == 0 {
            continue;
        }
        latency_ms.insert(
            e.label().to_string(),
            json!({
                "count": (snap.count()),
                "p50": (snap.quantile(0.5).map(|s| s * 1e3)),
                "p99": (snap.quantile(0.99).map(|s| s * 1e3)),
            }),
        );
    }
    ok_json(&json!({
        "status": "ok",
        "workers": (state.workers),
        "build_threads": (par::resolve(state.build_threads)),
        "cached_atlases": (state.cache.len()),
        "builds": (state.build_count()),
        "cache_hits": hits,
        "cache_misses": misses,
        "last_build_ms": last_build_ms,
        "recent_builds_ms": recent_builds_ms,
        "latency_ms": (serde_json::Value::Object(latency_ms)),
    }))
}

fn metrics(state: &AppState, _: &Request, _: &PathParams) -> Result<Response, ApiError> {
    // Gauges owned by the cache, appended to the registry's rendering
    // so /metrics is the one-stop scrape target.
    let (hits, misses) = state.cache.stats();
    let extra = format!(
        "# HELP atlas_cached_atlases Atlases currently in the LRU cache.\n\
         # TYPE atlas_cached_atlases gauge\n\
         atlas_cached_atlases {}\n\
         # HELP atlas_cache_lookup_hits_total Cache-internal hit counter.\n\
         # TYPE atlas_cache_lookup_hits_total counter\n\
         atlas_cache_lookup_hits_total {hits}\n\
         # HELP atlas_cache_lookup_misses_total Cache-internal miss counter.\n\
         # TYPE atlas_cache_lookup_misses_total counter\n\
         atlas_cache_lookup_misses_total {misses}\n",
        state.cache.len(),
    );
    Ok(Response {
        status: 200,
        content_type: "text/plain; version=0.0.4; charset=utf-8",
        body: state.metrics.render_prometheus(&extra).into_bytes(),
    })
}

fn cuisines(_: &AppState, _: &Request, _: &PathParams) -> Result<Response, ApiError> {
    let names: Vec<&str> = Cuisine::ALL.iter().map(|c| c.name()).collect();
    ok_json(&json!({ "count": (names.len()), "cuisines": names }))
}

fn table1(state: &AppState, request: &Request, _: &PathParams) -> Result<Response, ApiError> {
    let config = config_from_query(request)?;
    let atlas = state.atlas(&config);
    ok_json(&Table1View::from_table(&atlas.table1()))
}

fn pattern_tree(
    state: &AppState,
    request: &Request,
    params: &PathParams,
) -> Result<Response, ApiError> {
    let metric = metric_from_name(params.get("metric").unwrap_or_default())?;
    let config = config_from_query(request)?;
    let atlas = state.atlas(&config);
    ok_json(&TreeView::from_tree(&atlas.pattern_tree(metric)))
}

fn authenticity_tree(
    state: &AppState,
    request: &Request,
    _: &PathParams,
) -> Result<Response, ApiError> {
    let config = config_from_query(request)?;
    let atlas = state.atlas(&config);
    ok_json(&TreeView::from_tree(&atlas.authenticity_tree()))
}

fn geo_tree(state: &AppState, request: &Request, _: &PathParams) -> Result<Response, ApiError> {
    let config = config_from_query(request)?;
    let atlas = state.atlas(&config);
    ok_json(&TreeView::from_tree(&atlas.geographic_tree()))
}

fn compare(state: &AppState, request: &Request, _: &PathParams) -> Result<Response, ApiError> {
    let config = config_from_query(request)?;
    let atlas = state.atlas(&config);
    let geo = atlas.geographic_tree();
    let trees = [
        atlas.pattern_tree(Metric::Euclidean),
        atlas.pattern_tree(Metric::Cosine),
        atlas.pattern_tree(Metric::Jaccard),
        atlas.authenticity_tree(),
    ];
    let views: Vec<AgreementView> = trees
        .iter()
        .map(|tree| AgreementView::from_parts(&geo_agreement(tree, &geo), &historical_claims(tree)))
        .collect();
    ok_json(&views)
}

fn fingerprint(
    state: &AppState,
    request: &Request,
    params: &PathParams,
) -> Result<Response, ApiError> {
    let name = params.get("cuisine").unwrap_or_default();
    let cuisine = Cuisine::from_name(name)
        .ok_or_else(|| ApiError::not_found(format!("unknown cuisine {name:?}")))?;
    let k = match request.query_param("k") {
        Some(s) => {
            let k = s
                .parse::<usize>()
                .map_err(|_| ApiError::bad_request(format!("bad k: {s:?}")))?;
            if k == 0 || k > MAX_FINGERPRINT_K {
                return Err(ApiError::bad_request(format!(
                    "k must be in 1..={MAX_FINGERPRINT_K}, got {k}"
                )));
            }
            k
        }
        None => 5,
    };
    let config = config_from_query(request)?;
    let atlas = state.atlas(&config);
    let matrix = atlas.authenticity_matrix();
    ok_json(&FingerprintView::from_matrix(
        &matrix,
        atlas.db(),
        cuisine,
        k,
    ))
}

fn elbow(state: &AppState, request: &Request, _: &PathParams) -> Result<Response, ApiError> {
    let k_max = match request.query_param("k_max") {
        Some(s) => {
            let k = s
                .parse::<usize>()
                .map_err(|_| ApiError::bad_request(format!("bad k_max: {s:?}")))?;
            if k == 0 || k > MAX_ELBOW_K {
                return Err(ApiError::bad_request(format!(
                    "k_max must be in 1..={MAX_ELBOW_K}, got {k}"
                )));
            }
            k
        }
        None => 16,
    };
    let config = config_from_query(request)?;
    let seed = config.corpus.seed;
    let atlas = state.atlas(&config);
    ok_json(&ElbowView {
        k_max,
        seed,
        wcss: atlas.elbow_curve(k_max, seed),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(path: &str, query: &[(&str, &str)]) -> Request {
        Request {
            method: "GET".to_string(),
            path: path.to_string(),
            query: query
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            headers: Vec::new(),
            body: Vec::new(),
        }
    }

    #[test]
    fn defaults_mirror_quick_seed_23() {
        let config = config_from_query(&req("/table1", &[])).unwrap();
        let quick = AtlasConfig::quick(23);
        assert_eq!(
            CacheKey::from_config(&config),
            CacheKey::from_config(&quick)
        );
    }

    #[test]
    fn query_overrides_are_applied() {
        let config = config_from_query(&req(
            "/table1",
            &[
                ("seed", "7"),
                ("scale", "0.02"),
                ("min_support", "0.25"),
                ("linkage", "complete"),
            ],
        ))
        .unwrap();
        assert_eq!(config.corpus.seed, 7);
        assert_eq!(config.corpus.scale, 0.02);
        assert_eq!(config.min_support, 0.25);
        assert_eq!(config.linkage.name(), "complete");
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        assert_eq!(
            config_from_query(&req("/t", &[("seed", "x")]))
                .unwrap_err()
                .status,
            400
        );
        assert_eq!(
            config_from_query(&req("/t", &[("scale", "0")]))
                .unwrap_err()
                .status,
            400
        );
        assert_eq!(
            config_from_query(&req("/t", &[("scale", "2.0")]))
                .unwrap_err()
                .status,
            400
        );
        assert_eq!(
            config_from_query(&req("/t", &[("min_support", "1.5")]))
                .unwrap_err()
                .status,
            400
        );
        assert_eq!(
            config_from_query(&req("/t", &[("linkage", "mystery")]))
                .unwrap_err()
                .status,
            400
        );
        assert_eq!(metric_from_name("manhattan").unwrap_err().status, 404);
    }

    #[test]
    fn cuisines_endpoint_needs_no_atlas() {
        let state = AppState::new(2, 1, 1);
        let resp = cuisines(&state, &req("/cuisines", &[]), &PathParams::default()).unwrap();
        assert_eq!(resp.status, 200);
        let text = String::from_utf8(resp.body).unwrap();
        assert!(text.contains("\"count\":") || text.contains("\"count\" :"));
        assert!(text.contains("Indian Subcontinent"));
        assert_eq!(state.build_count(), 0);
    }

    #[test]
    fn error_response_is_json_with_status() {
        let resp = error_response(&ApiError::not_found("nope"));
        assert_eq!(resp.status, 404);
        let text = String::from_utf8(resp.body).unwrap();
        assert!(text.contains("nope"));
        assert!(text.contains("404"));
    }
}
