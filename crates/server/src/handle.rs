//! Running servers: the accept loop, per-connection handling, and the
//! in-process [`ServerHandle`] used by tests, examples, and the CLI.

use std::io::{BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant, SystemTime};

use crate::api::{self, AppState};
use crate::error::ApiError;
use crate::http::{read_request_limited, BodyLimits, ParseError};
use crate::pool::WorkerPool;
use crate::router::Router;
use crate::ServerConfig;

/// How long a keep-alive connection may sit idle before being closed.
const READ_TIMEOUT: Duration = Duration::from_secs(2);
/// Requests served per connection before forcing a close.
const MAX_REQUESTS_PER_CONNECTION: usize = 256;
/// Accept-loop poll interval while no connections arrive.
const ACCEPT_POLL: Duration = Duration::from_millis(5);

/// Most bytes drained (and discarded) from an over-cap request body so
/// the 413 response survives the close; see `http::drain_body`.
const DRAIN_CAP: usize = 8 * 1024 * 1024;

/// A running server: owns its listener thread and worker pool, exposes
/// the bound address, and shuts down gracefully on [`ServerHandle::shutdown`]
/// or drop.
pub struct ServerHandle {
    addr: SocketAddr,
    state: Arc<AppState>,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// Bind and start serving. With `addr` port 0 an ephemeral port is
    /// chosen; read it back via [`ServerHandle::addr`].
    pub fn start(config: ServerConfig) -> std::io::Result<ServerHandle> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;

        // A data dir makes the server persistent: snapshots are served
        // warm from disk and (unless --no-persist) written through.
        let store = match &config.data_dir {
            Some(dir) => Some(Arc::new(atlas_store::SnapshotStore::open(
                atlas_store::StoreConfig {
                    root: dir.clone(),
                    max_disk_bytes: config.max_disk_bytes,
                    read_only: !config.persist,
                    lock_timeout: Duration::from_millis(config.lock_timeout_ms),
                    // Lets the crash-consistency harness inject faults
                    // into real spawned servers; unset in production.
                    faults: atlas_store::FaultPlan::from_env("ATLAS_STORE_FAULT"),
                },
            )?)),
            None => None,
        };
        let state = Arc::new(AppState::with_persistence(
            config.cache_capacity,
            config.workers,
            config.build_threads,
            config.max_corpora,
            store,
            config.corpus_ttl_secs.map(Duration::from_secs),
        ));
        let stop = Arc::new(AtomicBool::new(false));

        let accept_state = Arc::clone(&state);
        let accept_stop = Arc::clone(&stop);
        let workers = config.workers;
        let queue_cap = config.queue_cap;
        let access_log = config.access_log;
        let limits = BodyLimits {
            corpus_bytes: config.max_corpus_bytes,
            ..BodyLimits::default()
        };
        let accept_thread = std::thread::Builder::new()
            .name("atlas-accept".to_string())
            .spawn(move || {
                accept_loop(
                    listener,
                    accept_state,
                    accept_stop,
                    workers,
                    queue_cap,
                    access_log,
                    limits,
                );
            })?;

        Ok(ServerHandle {
            addr,
            state,
            stop,
            accept_thread: Some(accept_thread),
        })
    }

    /// The address the server is listening on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Shared state, for inspecting cache/build counters in tests.
    pub fn state(&self) -> &AppState {
        &self.state
    }

    /// Number of atlas builds performed so far.
    pub fn build_count(&self) -> usize {
        self.state.build_count()
    }

    /// Minimal blocking client: `GET` a path (query string included,
    /// already percent-encoded) and return `(status, body)`.
    pub fn get(&self, path_and_query: &str) -> std::io::Result<(u16, Vec<u8>)> {
        let mut stream = TcpStream::connect(self.addr)?;
        stream.set_read_timeout(Some(Duration::from_secs(600)))?;
        write!(
            stream,
            "GET {path_and_query} HTTP/1.1\r\nHost: atlas\r\nConnection: close\r\n\r\n"
        )?;
        let mut raw = Vec::new();
        stream.read_to_end(&mut raw)?;
        parse_client_response(&raw)
    }

    /// Minimal blocking client: `POST` a JSON body to a path and return
    /// `(status, body)`.
    pub fn post(&self, path_and_query: &str, body: &[u8]) -> std::io::Result<(u16, Vec<u8>)> {
        let mut stream = TcpStream::connect(self.addr)?;
        stream.set_read_timeout(Some(Duration::from_secs(600)))?;
        write!(
            stream,
            "POST {path_and_query} HTTP/1.1\r\nHost: atlas\r\nContent-Type: application/json\r\n\
             Content-Length: {}\r\nConnection: close\r\n\r\n",
            body.len()
        )?;
        // The server may reject the request from its headers alone (413)
        // and respond before the body is through — keep the write error,
        // if any, and still try to collect that response.
        let written = stream.write_all(body);
        let mut raw = Vec::new();
        let read = stream.read_to_end(&mut raw);
        if raw.is_empty() {
            written?;
            read?;
        }
        parse_client_response(&raw)
    }

    /// Minimal blocking client: `DELETE` a path and return
    /// `(status, body)`.
    pub fn delete(&self, path_and_query: &str) -> std::io::Result<(u16, Vec<u8>)> {
        let mut stream = TcpStream::connect(self.addr)?;
        stream.set_read_timeout(Some(Duration::from_secs(600)))?;
        write!(
            stream,
            "DELETE {path_and_query} HTTP/1.1\r\nHost: atlas\r\nConnection: close\r\n\r\n"
        )?;
        let mut raw = Vec::new();
        stream.read_to_end(&mut raw)?;
        parse_client_response(&raw)
    }

    /// Stop accepting, drain in-flight connections, join all threads.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // The accept loop polls, but a wake-up connection makes shutdown
        // immediate rather than one poll interval away.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Split a raw HTTP/1.1 response into status code and body.
fn parse_client_response(raw: &[u8]) -> std::io::Result<(u16, Vec<u8>)> {
    let bad = |msg: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_string());
    let header_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or_else(|| bad("no header terminator in response"))?;
    let head = std::str::from_utf8(&raw[..header_end]).map_err(|_| bad("non-UTF-8 headers"))?;
    let status_line = head.lines().next().ok_or_else(|| bad("empty response"))?;
    let status = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| bad("bad status line"))?;
    Ok((status, raw[header_end + 4..].to_vec()))
}

/// Accept connections until stopped, handing each to the worker pool
/// stamped with its accept time so queue wait is measurable.
fn accept_loop(
    listener: TcpListener,
    state: Arc<AppState>,
    stop: Arc<AtomicBool>,
    workers: usize,
    queue_cap: usize,
    access_log: bool,
    limits: BodyLimits,
) {
    // The pool lives (and dies) with the accept loop: when the loop
    // exits, dropping the pool drains queued connections and joins the
    // workers, so `ServerHandle::shutdown` only has to join this thread.
    let router = api::router();
    let handler_stop = Arc::clone(&stop);
    let handler_state = Arc::clone(&state);
    let pool = WorkerPool::new(
        workers,
        queue_cap,
        move |(stream, accepted): (TcpStream, Instant)| {
            let metrics = handler_state.metrics();
            metrics.record_connection();
            metrics.record_queue_wait(accepted.elapsed());
            handle_connection(
                stream,
                &router,
                handler_state.as_ref(),
                handler_stop.as_ref(),
                access_log,
                limits,
            );
        },
    );
    loop {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                if stop.load(Ordering::SeqCst) {
                    break; // wake-up connection — drop it and exit
                }
                if let Err(crate::pool::Rejected((mut stream, _))) =
                    pool.try_execute((stream, Instant::now()))
                {
                    // Load shedding: the queue is full, so tell the
                    // client instead of letting connections pile up.
                    state.metrics().record_shed();
                    let resp = api::error_response(&ApiError::unavailable(
                        "server saturated, retry later",
                    ));
                    let _ = resp.write_to(&mut stream, false);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
}

/// Serve requests on one connection until it closes, errors, times out,
/// or the server stops, recording metrics (and optionally a JSON-lines
/// access-log entry) for every request.
fn handle_connection(
    stream: TcpStream,
    router: &Router<AppState>,
    state: &AppState,
    stop: &AtomicBool,
    access_log: bool,
    limits: BodyLimits,
) {
    let _ = stream.set_read_timeout(Some(READ_TIMEOUT));
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut writer = stream;
    for served in 0.. {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let request = match read_request_limited(&mut reader, &limits) {
            Ok(request) => request,
            Err(ParseError::ConnectionClosed) => break,
            Err(ParseError::Malformed(msg)) => {
                state.metrics().record_parse_error();
                let resp = api::error_response(&ApiError::bad_request(msg));
                let _ = resp.write_to(&mut writer, false);
                break;
            }
            Err(ParseError::BodyTooLarge {
                path,
                limit,
                advertised,
            }) => {
                state.metrics().record_parse_error();
                if path == "/corpus" || path.starts_with("/corpus/") {
                    state.metrics().record_corpus_reject();
                }
                let resp = api::error_response(&ApiError::payload_too_large(format!(
                    "body for {path} exceeds the {limit}-byte limit"
                )));
                let _ = resp.write_to(&mut writer, false);
                // Drain what the client advertised (bounded) before
                // closing: an unread body would turn the close into a
                // TCP reset that can destroy the 413 mid-flight. Truly
                // huge uploads are cut off at the cap and reset anyway.
                crate::http::drain_body(&mut reader, advertised.min(DRAIN_CAP));
                break;
            }
        };
        let keep_alive = request.wants_keep_alive() && served + 1 < MAX_REQUESTS_PER_CONNECTION;
        let started = Instant::now();
        let (label, result) = router.dispatch_labeled(state, &request);
        let response = match result {
            Ok(response) => response,
            Err(err) => api::error_response(&err),
        };
        let handler = started.elapsed();
        // Recorded after the handler ran, so a /metrics response never
        // includes its own request; the next scrape does.
        state
            .metrics()
            .record_request(label, response.status, handler);
        if access_log {
            write_access_log(
                &request,
                label,
                response.status,
                response.body.len(),
                handler,
            );
        }
        if response.write_to(&mut writer, keep_alive).is_err() || !keep_alive {
            break;
        }
    }
}

/// Render one structured access-log line:
/// `{"ts_ms":...,"method":"GET","path":"/table1","endpoint":"/table1",
///   "status":200,"bytes":5301,"handler_ms":0.412}`.
fn access_log_line(
    request: &crate::http::Request,
    label: Option<&str>,
    status: u16,
    bytes: usize,
    handler: Duration,
) -> String {
    let ts_ms = SystemTime::now()
        .duration_since(SystemTime::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0);
    serde_json::json!({
        "ts_ms": ts_ms,
        "method": (request.method.as_str()),
        "path": (request.path.as_str()),
        "endpoint": (label.unwrap_or(crate::metrics::UNROUTED_LABEL)),
        "status": status,
        "bytes": bytes,
        "handler_ms": (handler.as_secs_f64() * 1e3),
    })
    .to_string()
}

/// Emit one access-log line to stdout.
fn write_access_log(
    request: &crate::http::Request,
    label: Option<&str>,
    status: u16,
    bytes: usize,
    handler: Duration,
) {
    let line = access_log_line(request, label, status, bytes, handler);
    // One locked write per line keeps concurrent workers' lines whole.
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    let _ = writeln!(out, "{line}");
}

/// Build every atlas the given configs describe, so first requests hit
/// the cache. Used by `atlas-serve --prewarm`.
pub fn prewarm(state: &AppState, configs: &[cuisine_atlas::pipeline::AtlasConfig]) {
    for config in configs {
        let _ = state.atlas(config);
    }
}

/// One `--prewarm` spec: a generator seed, or `corpus=<digest>` naming
/// an uploaded corpus restored from the snapshot store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PrewarmSpec {
    /// Warm the quick synthetic atlas for this seed.
    Seed(u64),
    /// Warm the default-config atlas over a registered corpus digest.
    Corpus(String),
}

/// Prewarm from parsed `--prewarm` specs. A `corpus=` digest that is
/// not registered (nothing restored it from the store) is skipped with
/// a warning rather than failing startup.
pub fn prewarm_specs(state: &AppState, specs: &[PrewarmSpec]) {
    for spec in specs {
        match spec {
            PrewarmSpec::Seed(seed) => {
                let _ = state.atlas(&cuisine_atlas::pipeline::AtlasConfig::quick(*seed));
            }
            PrewarmSpec::Corpus(digest) => match state.corpora().get(digest) {
                Some(info) => {
                    let config = cuisine_atlas::pipeline::AtlasConfig::quick(23);
                    let _ = state.atlas_for(Some(&info), &config);
                }
                None => eprintln!("prewarm: unknown corpus {digest:?}, skipping"),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn client_response_parser_handles_status_and_body() {
        let (status, body) =
            parse_client_response(b"HTTP/1.1 404 Not Found\r\nContent-Length: 2\r\n\r\nno")
                .unwrap();
        assert_eq!(status, 404);
        assert_eq!(body, b"no");
        assert!(parse_client_response(b"garbage").is_err());
    }

    #[test]
    fn access_log_lines_are_json_with_the_request_fields() {
        let request = crate::http::Request {
            method: "GET".to_string(),
            path: "/tree/pattern/cosine".to_string(),
            query: vec![("seed".to_string(), "7".to_string())],
            headers: Vec::new(),
            body: Vec::new(),
        };
        let line = access_log_line(
            &request,
            Some("/tree/pattern/:metric"),
            200,
            5301,
            Duration::from_micros(412),
        );
        let parsed = serde_json::parse_value(&line).expect("access log line is valid JSON");
        let get = |k: &str| {
            parsed
                .get(k)
                .unwrap_or_else(|| panic!("missing {k}: {line}"))
        };
        assert_eq!(get("method").as_str(), Some("GET"));
        assert_eq!(get("path").as_str(), Some("/tree/pattern/cosine"));
        assert_eq!(get("endpoint").as_str(), Some("/tree/pattern/:metric"));
        assert_eq!(get("status").as_f64(), Some(200.0));
        assert_eq!(get("bytes").as_f64(), Some(5301.0));
        assert!(get("handler_ms").as_f64().unwrap() > 0.0);
        assert!(get("ts_ms").as_f64().unwrap() > 0.0);
    }

    #[test]
    fn start_serve_health_and_shutdown() {
        let server = ServerHandle::start(ServerConfig::default()).unwrap();
        let (status, body) = server.get("/health").unwrap();
        assert_eq!(status, 200);
        let text = String::from_utf8(body).unwrap();
        assert!(text.contains("\"status\""));
        assert_eq!(server.build_count(), 0);
        server.shutdown();
    }

    #[test]
    fn unknown_route_is_404_bad_method_405() {
        let server = ServerHandle::start(ServerConfig::default()).unwrap();
        assert_eq!(server.get("/nope").unwrap().0, 404);
        // Raw request with a different method to check 405 mapping.
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        write!(
            stream,
            "DELETE /health HTTP/1.1\r\nConnection: close\r\n\r\n"
        )
        .unwrap();
        let mut raw = Vec::new();
        stream.read_to_end(&mut raw).unwrap();
        assert_eq!(parse_client_response(&raw).unwrap().0, 405);
        server.shutdown();
    }
}
