//! `atlas-serve` — run the cuisine-atlas JSON API from the command line.
//!
//! ```text
//! atlas-serve [--addr HOST:PORT] [--workers N] [--queue-cap N]
//!             [--cache-capacity N] [--build-threads N]
//!             [--prewarm SEED[,SEED...]] [--access-log]
//!             [--max-corpus-bytes N] [--max-corpora N]
//! ```
//!
//! `--prewarm` builds the quick atlas for each listed seed before
//! accepting connections, so first requests are cache hits.
//! `--build-threads` caps the worker threads used per cold atlas build
//! (default: all available cores); the built atlases are bit-for-bit
//! identical for every thread count. `--access-log` writes one JSON
//! line per served request to stdout; scrape `/metrics` for Prometheus
//! counters and latency histograms. `--max-corpus-bytes` caps the
//! `POST /corpus` upload size (413 beyond it) and `--max-corpora`
//! bounds how many uploaded corpora are kept before LRU eviction.

use atlas_server::{handle, ServerConfig, ServerHandle};
use cuisine_atlas::pipeline::AtlasConfig;

struct Options {
    config: ServerConfig,
    prewarm_seeds: Vec<u64>,
}

fn usage() -> ! {
    eprintln!(
        "usage: atlas-serve [--addr HOST:PORT] [--workers N] [--queue-cap N] \
         [--cache-capacity N] [--build-threads N] [--prewarm SEED[,SEED...]] \
         [--access-log] [--max-corpus-bytes N] [--max-corpora N]"
    );
    std::process::exit(2);
}

fn parse_options() -> Options {
    let mut options = Options {
        config: ServerConfig {
            addr: "127.0.0.1:8091".to_string(),
            ..ServerConfig::default()
        },
        prewarm_seeds: Vec::new(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |flag: &str| match args.next() {
            Some(v) => v,
            None => {
                eprintln!("missing value for {flag}");
                usage();
            }
        };
        match flag.as_str() {
            "--addr" => options.config.addr = value("--addr"),
            "--workers" => options.config.workers = parse_num(&value("--workers"), "--workers"),
            "--queue-cap" => {
                options.config.queue_cap = parse_num(&value("--queue-cap"), "--queue-cap")
            }
            "--cache-capacity" => {
                options.config.cache_capacity =
                    parse_num(&value("--cache-capacity"), "--cache-capacity")
            }
            "--build-threads" => {
                options.config.build_threads =
                    parse_num(&value("--build-threads"), "--build-threads")
            }
            "--prewarm" => {
                options.prewarm_seeds = value("--prewarm")
                    .split(',')
                    .map(|s| parse_num(s, "--prewarm"))
                    .collect()
            }
            "--access-log" => options.config.access_log = true,
            "--max-corpus-bytes" => {
                options.config.max_corpus_bytes =
                    parse_num(&value("--max-corpus-bytes"), "--max-corpus-bytes")
            }
            "--max-corpora" => {
                options.config.max_corpora = parse_num(&value("--max-corpora"), "--max-corpora")
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag: {other}");
                usage();
            }
        }
    }
    options
}

fn parse_num<T: std::str::FromStr>(s: &str, flag: &str) -> T {
    match s.parse() {
        Ok(v) => v,
        Err(_) => {
            eprintln!("bad value for {flag}: {s:?}");
            usage();
        }
    }
}

fn main() {
    let options = parse_options();
    let server = match ServerHandle::start(options.config.clone()) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("failed to bind {}: {e}", options.config.addr);
            std::process::exit(1);
        }
    };
    if !options.prewarm_seeds.is_empty() {
        let configs: Vec<AtlasConfig> = options
            .prewarm_seeds
            .iter()
            .map(|&seed| AtlasConfig::quick(seed))
            .collect();
        eprintln!("prewarming {} atlas build(s)...", configs.len());
        handle::prewarm(server.state(), &configs);
        eprintln!("prewarm done ({} built)", server.build_count());
    }
    println!(
        "atlas-serve listening on http://{} ({} workers, cache capacity {})",
        server.addr(),
        options.config.workers,
        options.config.cache_capacity,
    );
    println!("try: curl http://{}/health", server.addr());
    println!("     curl http://{}/metrics", server.addr());
    // Serve until the process is killed; the handle joins on drop.
    loop {
        std::thread::park();
    }
}
