//! `atlas-serve` — run the cuisine-atlas JSON API from the command line.
//!
//! ```text
//! atlas-serve [--addr HOST:PORT] [--workers N] [--queue-cap N]
//!             [--cache-capacity N] [--build-threads N]
//!             [--prewarm SPEC[,SPEC...]] [--access-log]
//!             [--max-corpus-bytes N] [--max-corpora N]
//!             [--data-dir DIR] [--max-disk-bytes N] [--no-persist]
//!             [--corpus-ttl-secs N] [--lock-timeout-ms N]
//! ```
//!
//! `--prewarm` warms the cache before accepting connections; each spec
//! is either a generator seed (`--prewarm 23,24`) or `corpus=<digest>`
//! naming an uploaded corpus restored from the data dir. With
//! `--data-dir` the server persists every built atlas and uploaded
//! corpus as checksummed snapshots and restores them on restart, so a
//! warm restart serves its first queries from disk with zero rebuilds;
//! `--max-disk-bytes` bounds the store (LRU eviction, 0 = unbounded)
//! and `--no-persist` serves warm reads without writing anything new.
//! `--corpus-ttl-secs` expires uploaded corpora (memory and disk) that
//! many seconds after registration. Multiple `atlas-serve` processes
//! may share one `--data-dir`: store mutations are serialized behind a
//! short-held advisory lock and `--lock-timeout-ms` bounds how long a
//! persist waits behind a live sibling before skipping the write. `--build-threads` caps the worker
//! threads used per cold atlas build (default: all available cores);
//! the built atlases are bit-for-bit identical for every thread count.
//! `--access-log` writes one JSON line per served request to stdout;
//! scrape `/metrics` for Prometheus counters and latency histograms.
//! `--max-corpus-bytes` caps the `POST /corpus` upload size (413 beyond
//! it) and `--max-corpora` bounds how many uploaded corpora are kept
//! before LRU eviction.

use atlas_server::handle::PrewarmSpec;
use atlas_server::{handle, ServerConfig, ServerHandle};

struct Options {
    config: ServerConfig,
    prewarm: Vec<PrewarmSpec>,
}

fn usage() -> ! {
    eprintln!(
        "usage: atlas-serve [--addr HOST:PORT] [--workers N] [--queue-cap N] \
         [--cache-capacity N] [--build-threads N] [--prewarm SPEC[,SPEC...]] \
         [--access-log] [--max-corpus-bytes N] [--max-corpora N] \
         [--data-dir DIR] [--max-disk-bytes N] [--no-persist] [--corpus-ttl-secs N] \
         [--lock-timeout-ms N]\n\
         \n\
         prewarm SPEC is a generator seed (e.g. 23) or corpus=<digest>"
    );
    std::process::exit(2);
}

fn parse_options() -> Options {
    let mut options = Options {
        config: ServerConfig {
            addr: "127.0.0.1:8091".to_string(),
            ..ServerConfig::default()
        },
        prewarm: Vec::new(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |flag: &str| match args.next() {
            Some(v) => v,
            None => {
                eprintln!("missing value for {flag}");
                usage();
            }
        };
        match flag.as_str() {
            "--addr" => options.config.addr = value("--addr"),
            "--workers" => options.config.workers = parse_num(&value("--workers"), "--workers"),
            "--queue-cap" => {
                options.config.queue_cap = parse_num(&value("--queue-cap"), "--queue-cap")
            }
            "--cache-capacity" => {
                options.config.cache_capacity =
                    parse_num(&value("--cache-capacity"), "--cache-capacity")
            }
            "--build-threads" => {
                options.config.build_threads =
                    parse_num(&value("--build-threads"), "--build-threads")
            }
            "--prewarm" => {
                options.prewarm = value("--prewarm")
                    .split(',')
                    .map(parse_prewarm_spec)
                    .collect()
            }
            "--access-log" => options.config.access_log = true,
            "--max-corpus-bytes" => {
                options.config.max_corpus_bytes =
                    parse_num(&value("--max-corpus-bytes"), "--max-corpus-bytes")
            }
            "--max-corpora" => {
                options.config.max_corpora = parse_num(&value("--max-corpora"), "--max-corpora")
            }
            "--data-dir" => {
                options.config.data_dir = Some(std::path::PathBuf::from(value("--data-dir")))
            }
            "--max-disk-bytes" => {
                options.config.max_disk_bytes =
                    parse_num(&value("--max-disk-bytes"), "--max-disk-bytes")
            }
            "--no-persist" => options.config.persist = false,
            "--lock-timeout-ms" => {
                options.config.lock_timeout_ms =
                    parse_num(&value("--lock-timeout-ms"), "--lock-timeout-ms")
            }
            "--corpus-ttl-secs" => {
                options.config.corpus_ttl_secs =
                    Some(parse_num(&value("--corpus-ttl-secs"), "--corpus-ttl-secs"))
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag: {other}");
                usage();
            }
        }
    }
    options
}

/// A `--prewarm` spec: a bare generator seed, or `corpus=<digest>`.
fn parse_prewarm_spec(s: &str) -> PrewarmSpec {
    if let Some(digest) = s.strip_prefix("corpus=") {
        if digest.is_empty() {
            eprintln!("bad value for --prewarm: empty corpus digest");
            usage();
        }
        return PrewarmSpec::Corpus(digest.to_string());
    }
    PrewarmSpec::Seed(parse_num(s, "--prewarm"))
}

fn parse_num<T: std::str::FromStr>(s: &str, flag: &str) -> T {
    match s.parse() {
        Ok(v) => v,
        Err(_) => {
            eprintln!("bad value for {flag}: {s:?}");
            usage();
        }
    }
}

fn main() {
    let options = parse_options();
    let server = match ServerHandle::start(options.config.clone()) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("failed to start on {}: {e}", options.config.addr);
            std::process::exit(1);
        }
    };
    if let Some(dir) = &options.config.data_dir {
        println!(
            "snapshot store at {} ({})",
            dir.display(),
            if options.config.persist {
                "read-write"
            } else {
                "read-only"
            },
        );
    }
    if !options.prewarm.is_empty() {
        eprintln!("prewarming {} atlas(es)...", options.prewarm.len());
        handle::prewarm_specs(server.state(), &options.prewarm);
        eprintln!("prewarm done ({} built cold)", server.build_count());
    }
    println!(
        "atlas-serve listening on http://{} ({} workers, cache capacity {})",
        server.addr(),
        options.config.workers,
        options.config.cache_capacity,
    );
    println!("try: curl http://{}/health", server.addr());
    println!("     curl http://{}/metrics", server.addr());
    // Serve until the process is killed; the handle joins on drop.
    loop {
        std::thread::park();
    }
}
