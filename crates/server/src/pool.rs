//! Fixed-size worker pool over a bounded crossbeam channel.
//!
//! The pool is generic over the work item (the server feeds it accepted
//! `TcpStream`s) with one shared handler fixed at construction. The
//! queue is bounded: when it is full, [`WorkerPool::try_execute`] fails
//! fast and *returns the item*, so the accept loop can answer 503
//! instead of queueing unboundedly or silently dropping the connection.
//! Dropping the pool (or calling [`WorkerPool::shutdown`]) closes the
//! channel; workers drain what is queued and exit.

use crossbeam::channel::{self, Receiver, Sender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;

/// A fixed pool of worker threads consuming items from a bounded queue.
pub struct WorkerPool<T> {
    sender: Option<Sender<T>>,
    receiver: Receiver<T>,
    workers: Vec<JoinHandle<()>>,
}

impl<T: Send + 'static> WorkerPool<T> {
    /// Spawn `workers` threads sharing a queue of at most `queue_cap`
    /// pending items, each running `handler` on the items it receives.
    /// Both counts are clamped to at least 1.
    pub fn new<F>(workers: usize, queue_cap: usize, handler: F) -> Self
    where
        F: Fn(T) + Send + Sync + 'static,
    {
        let (sender, receiver) = channel::bounded::<T>(queue_cap.max(1));
        let handler = Arc::new(handler);
        let workers = (0..workers.max(1))
            .map(|i| {
                let receiver = receiver.clone();
                let handler = Arc::clone(&handler);
                std::thread::Builder::new()
                    .name(format!("atlas-worker-{i}"))
                    .spawn(move || {
                        // recv() errors once every sender is gone and the
                        // queue is drained — that is the shutdown signal.
                        while let Ok(item) = receiver.recv() {
                            handler(item);
                        }
                    })
                    .expect("spawn worker thread")
            })
            .collect();
        WorkerPool {
            sender: Some(sender),
            receiver,
            workers,
        }
    }

    /// Number of worker threads.
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// Items currently waiting in the queue (a point-in-time gauge for
    /// observability; racy by nature, exact at the instant it is read).
    pub fn queue_len(&self) -> usize {
        self.receiver.len()
    }

    /// Submit an item, failing fast when the queue is full or the pool
    /// is shutting down. The item comes back in the error so the caller
    /// can reject it gracefully.
    pub fn try_execute(&self, item: T) -> Result<(), Rejected<T>> {
        let sender = match self.sender.as_ref() {
            Some(s) => s,
            None => return Err(Rejected(item)),
        };
        match sender.try_send(item) {
            Ok(()) => Ok(()),
            Err(TrySendError::Full(item)) | Err(TrySendError::Disconnected(item)) => {
                Err(Rejected(item))
            }
        }
    }

    /// Close the queue and join every worker. Queued items still run.
    pub fn shutdown(&mut self) {
        drop(self.sender.take());
        for handle in self.workers.drain(..) {
            // A worker that panicked already printed its payload; the
            // pool itself survives so the rest can be joined.
            let _ = handle.join();
        }
    }
}

impl<T> Drop for WorkerPool<T> {
    fn drop(&mut self) {
        drop(self.sender.take());
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// The pool queue was full (or the pool was already shut down); the
/// item is handed back.
#[derive(Debug, PartialEq, Eq)]
pub struct Rejected<T>(pub T);

impl<T> std::fmt::Display for Rejected<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "worker pool saturated")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Barrier;
    use std::time::Duration;

    #[test]
    fn runs_all_items_across_workers() {
        let counter = Arc::new(AtomicUsize::new(0));
        let c = Arc::clone(&counter);
        let pool = WorkerPool::new(4, 64, move |n: usize| {
            c.fetch_add(n, Ordering::SeqCst);
        });
        for _ in 0..32 {
            while pool.try_execute(1).is_err() {
                std::thread::sleep(Duration::from_millis(1));
            }
        }
        drop(pool); // joins workers, draining the queue
        assert_eq!(counter.load(Ordering::SeqCst), 32);
    }

    #[test]
    fn saturated_queue_returns_the_item() {
        let gate = Arc::new(Barrier::new(2));
        let g = Arc::clone(&gate);
        let pool = WorkerPool::new(1, 1, move |block: bool| {
            if block {
                g.wait();
            }
        });
        pool.try_execute(true).unwrap();
        // With the single worker blocked on the barrier, the queue (cap 1)
        // eventually fills and further submissions must bounce.
        let mut bounced = None;
        for _ in 0..64 {
            match pool.try_execute(false) {
                Err(Rejected(item)) => {
                    bounced = Some(item);
                    break;
                }
                Ok(()) => std::thread::sleep(Duration::from_millis(1)),
            }
        }
        assert_eq!(bounced, Some(false));
        assert_eq!(
            pool.queue_len(),
            1,
            "the bounce means the queue is at capacity"
        );
        gate.wait();
    }

    #[test]
    fn shutdown_drains_queue_then_joins() {
        let counter = Arc::new(AtomicUsize::new(0));
        let c = Arc::clone(&counter);
        let mut pool = WorkerPool::new(2, 16, move |n: usize| {
            c.fetch_add(n, Ordering::SeqCst);
        });
        for _ in 0..8 {
            pool.try_execute(1).unwrap();
        }
        pool.shutdown();
        assert_eq!(counter.load(Ordering::SeqCst), 8);
        assert_eq!(pool.try_execute(1), Err(Rejected(1)));
    }
}
