//! A small segment-matching router generic over a shared context.
//!
//! Routes are registered as patterns like `/tree/pattern/:metric`;
//! `:name` segments capture the (already percent-decoded) path
//! segment. Dispatch distinguishes 404 (no pattern matched the path)
//! from 405 (a pattern matched under a different method).

use crate::error::ApiError;
use crate::http::{Request, Response};

/// Captured `:name` path parameters for one match.
#[derive(Debug, Default, Clone)]
pub struct PathParams {
    params: Vec<(String, String)>,
}

impl PathParams {
    /// Value of a named capture.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.params
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// A handler: context + request + captures, returning a response or an
/// API error (which the server renders as a JSON error body).
pub type Handler<C> =
    Box<dyn Fn(&C, &Request, &PathParams) -> Result<Response, ApiError> + Send + Sync>;

struct Route<C> {
    method: &'static str,
    pattern: &'static str,
    segments: Vec<Segment>,
    handler: Handler<C>,
}

enum Segment {
    Literal(String),
    Capture(String),
}

/// Routing table generic over the shared application context `C`.
pub struct Router<C> {
    routes: Vec<Route<C>>,
}

impl<C> Default for Router<C> {
    fn default() -> Self {
        Self::new()
    }
}

impl<C> Router<C> {
    /// An empty router.
    pub fn new() -> Self {
        Router { routes: Vec::new() }
    }

    /// Register a handler for `method` + `pattern`. The pattern doubles
    /// as the route's metrics label, so it must be a static literal.
    pub fn route<H>(mut self, method: &'static str, pattern: &'static str, handler: H) -> Self
    where
        H: Fn(&C, &Request, &PathParams) -> Result<Response, ApiError> + Send + Sync + 'static,
    {
        let segments = split(pattern)
            .map(|s| match s.strip_prefix(':') {
                Some(name) => Segment::Capture(name.to_string()),
                None => Segment::Literal(s.to_string()),
            })
            .collect();
        self.routes.push(Route {
            method,
            pattern,
            segments,
            handler: Box::new(handler),
        });
        self
    }

    /// Shorthand for a GET route.
    pub fn get<H>(self, pattern: &'static str, handler: H) -> Self
    where
        H: Fn(&C, &Request, &PathParams) -> Result<Response, ApiError> + Send + Sync + 'static,
    {
        self.route("GET", pattern, handler)
    }

    /// Shorthand for a POST route.
    pub fn post<H>(self, pattern: &'static str, handler: H) -> Self
    where
        H: Fn(&C, &Request, &PathParams) -> Result<Response, ApiError> + Send + Sync + 'static,
    {
        self.route("POST", pattern, handler)
    }

    /// Shorthand for a DELETE route.
    pub fn delete<H>(self, pattern: &'static str, handler: H) -> Self
    where
        H: Fn(&C, &Request, &PathParams) -> Result<Response, ApiError> + Send + Sync + 'static,
    {
        self.route("DELETE", pattern, handler)
    }

    /// The registered route patterns, registration order.
    pub fn labels(&self) -> Vec<&'static str> {
        self.routes.iter().map(|r| r.pattern).collect()
    }

    /// Dispatch a request; errors carry the right 404/405 status.
    pub fn dispatch(&self, ctx: &C, request: &Request) -> Result<Response, ApiError> {
        self.dispatch_labeled(ctx, request).1
    }

    /// Dispatch a request, also returning the pattern of the route that
    /// handled (or method-rejected) it — `None` when no pattern matched
    /// the path. The pattern, not the raw path, is the label request
    /// metrics are recorded under, keeping label cardinality bounded by
    /// the routing table.
    pub fn dispatch_labeled(
        &self,
        ctx: &C,
        request: &Request,
    ) -> (Option<&'static str>, Result<Response, ApiError>) {
        let mut matched: Option<&'static str> = None;
        for route in &self.routes {
            if let Some(params) = match_segments(&route.segments, &request.path) {
                matched.get_or_insert(route.pattern);
                if route.method == request.method {
                    return (Some(route.pattern), (route.handler)(ctx, request, &params));
                }
            }
        }
        match matched {
            Some(pattern) => (
                Some(pattern),
                Err(ApiError::method_not_allowed(format!(
                    "method {} not allowed for {}",
                    request.method, request.path
                ))),
            ),
            None => (
                None,
                Err(ApiError::not_found(format!(
                    "no route for {}",
                    request.path
                ))),
            ),
        }
    }
}

fn split(path: &str) -> impl Iterator<Item = &str> {
    path.split('/').filter(|s| !s.is_empty())
}

fn match_segments(pattern: &[Segment], path: &str) -> Option<PathParams> {
    let mut params = PathParams::default();
    let mut actual = split(path);
    for seg in pattern {
        let got = actual.next()?;
        match seg {
            Segment::Literal(lit) => {
                if lit != got {
                    return None;
                }
            }
            Segment::Capture(name) => {
                params.params.push((name.clone(), got.to_string()));
            }
        }
    }
    if actual.next().is_some() {
        return None;
    }
    Some(params)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(method: &str, path: &str) -> Request {
        Request {
            method: method.to_string(),
            path: path.to_string(),
            query: Vec::new(),
            headers: Vec::new(),
            body: Vec::new(),
        }
    }

    fn router() -> Router<()> {
        Router::new()
            .get("/health", |_, _, _| Ok(Response::json(200, "{}")))
            .get("/tree/pattern/:metric", |_, _, p| {
                Ok(Response::json(
                    200,
                    format!(r#"{{"metric":"{}"}}"#, p.get("metric").unwrap()),
                ))
            })
            .get("/fingerprint/:cuisine", |_, _, p| {
                Ok(Response::json(200, p.get("cuisine").unwrap().to_string()))
            })
    }

    #[test]
    fn literal_and_capture_routes_match() {
        let r = router();
        assert_eq!(r.dispatch(&(), &req("GET", "/health")).unwrap().status, 200);
        let resp = r
            .dispatch(&(), &req("GET", "/tree/pattern/cosine"))
            .unwrap();
        assert_eq!(resp.body, br#"{"metric":"cosine"}"#);
        let resp = r
            .dispatch(&(), &req("GET", "/fingerprint/Indian Subcontinent"))
            .unwrap();
        assert_eq!(resp.body, b"Indian Subcontinent");
    }

    #[test]
    fn unknown_path_is_404_wrong_method_is_405() {
        let r = router();
        assert_eq!(
            r.dispatch(&(), &req("GET", "/nope")).unwrap_err().status,
            404
        );
        assert_eq!(
            r.dispatch(&(), &req("POST", "/health")).unwrap_err().status,
            405
        );
        // Too many / too few segments fall through to 404.
        assert_eq!(
            r.dispatch(&(), &req("GET", "/tree/pattern"))
                .unwrap_err()
                .status,
            404
        );
        assert_eq!(
            r.dispatch(&(), &req("GET", "/tree/pattern/cosine/extra"))
                .unwrap_err()
                .status,
            404
        );
    }

    #[test]
    fn trailing_slash_is_tolerated() {
        let r = router();
        assert_eq!(
            r.dispatch(&(), &req("GET", "/health/")).unwrap().status,
            200
        );
    }

    #[test]
    fn dispatch_reports_the_matched_pattern_as_label() {
        let r = router();
        let (label, result) = r.dispatch_labeled(&(), &req("GET", "/tree/pattern/cosine"));
        assert_eq!(label, Some("/tree/pattern/:metric"));
        assert!(result.is_ok());
        // 405 keeps the matched pattern; 404 has no label.
        let (label, result) = r.dispatch_labeled(&(), &req("POST", "/health"));
        assert_eq!(label, Some("/health"));
        assert_eq!(result.unwrap_err().status, 405);
        let (label, result) = r.dispatch_labeled(&(), &req("GET", "/nope"));
        assert_eq!(label, None);
        assert_eq!(result.unwrap_err().status, 404);
        assert_eq!(
            r.labels(),
            ["/health", "/tree/pattern/:metric", "/fingerprint/:cuisine"]
        );
    }
}
