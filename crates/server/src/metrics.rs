//! Lock-light request-level metrics: atomic counters and fixed-bucket
//! log-scaled latency histograms, rendered in Prometheus text
//! exposition format.
//!
//! Everything on the request path is wait-free: counters are
//! `AtomicU64`s and histograms are fixed arrays of `AtomicU64` buckets
//! whose boundaries are compile-time constants (powers of two in
//! nanoseconds), so recording is an index computation plus one
//! `fetch_add` — no locks, no allocation, no floating-point
//! accumulation races (sums are integer nanoseconds). Build-time spans
//! (`stage/generate`, `mine/Italian`, ...) arrive through the
//! [`cuisine_atlas::pipeline::SpanSink`] trait and land in a
//! lazily-grown span table guarded by an `RwLock` — builds are rare,
//! requests are not, so only the rare path pays a lock.
//!
//! Bucket boundaries are *fixed* rather than adaptive on purpose: two
//! registries that saw the same events render byte-identical output,
//! and recording threads never coordinate (see DESIGN.md §8).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Duration;

use cuisine_atlas::pipeline::SpanSink;

/// Number of finite histogram buckets.
pub const FINITE_BUCKETS: usize = 28;

/// Upper bounds (inclusive, `le` semantics) of the finite buckets, in
/// nanoseconds: `1024ns · 2^i` for `i in 0..28`, spanning ~1µs to
/// ~137s. A 29th implicit `+Inf` bucket catches the rest.
pub const BUCKET_BOUNDS_NANOS: [u64; FINITE_BUCKETS] = {
    let mut bounds = [0u64; FINITE_BUCKETS];
    let mut i = 0;
    while i < FINITE_BUCKETS {
        bounds[i] = 1024u64 << i;
        i += 1;
    }
    bounds
};

/// A fixed-bucket, log2-scaled latency histogram with atomic buckets.
///
/// Values are durations in nanoseconds. Bucket `i` counts samples `v`
/// with `bounds[i-1] < v <= bounds[i]`; the final bucket is `+Inf`.
/// Because bucket widths double, any quantile estimated from bucket
/// counts is within a factor of 2 of the true sample (see
/// [`HistogramSnapshot::quantile`] for the exact bound).
#[derive(Debug, Default)]
pub struct Histogram {
    buckets: [AtomicU64; FINITE_BUCKETS + 1],
    sum_nanos: AtomicU64,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Index of the bucket a sample of `nanos` falls into.
    pub fn bucket_index(nanos: u64) -> usize {
        // First bound >= nanos; the +Inf bucket if none is.
        BUCKET_BOUNDS_NANOS
            .iter()
            .position(|&b| nanos <= b)
            .unwrap_or(FINITE_BUCKETS)
    }

    /// Record one sample.
    pub fn record(&self, d: Duration) {
        self.record_nanos(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Record one sample given directly in nanoseconds.
    pub fn record_nanos(&self, nanos: u64) {
        self.buckets[Self::bucket_index(nanos)].fetch_add(1, Ordering::Relaxed);
        self.sum_nanos.fetch_add(nanos, Ordering::Relaxed);
    }

    /// A point-in-time copy of the bucket counts and sum.
    ///
    /// The total count is derived from the bucket counts themselves, so
    /// a snapshot is always self-consistent even while other threads
    /// keep recording.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; FINITE_BUCKETS + 1];
        for (out, bucket) in buckets.iter_mut().zip(&self.buckets) {
            *out = bucket.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            buckets,
            sum_nanos: self.sum_nanos.load(Ordering::Relaxed),
        }
    }
}

/// An immutable copy of a [`Histogram`]'s state.
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    buckets: [u64; FINITE_BUCKETS + 1],
    sum_nanos: u64,
}

impl HistogramSnapshot {
    /// Total recorded samples.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Sum of all recorded samples, in seconds.
    pub fn sum_seconds(&self) -> f64 {
        self.sum_nanos as f64 / 1e9
    }

    /// Per-bucket (non-cumulative) counts, `+Inf` last.
    pub fn bucket_counts(&self) -> &[u64; FINITE_BUCKETS + 1] {
        &self.buckets
    }

    /// Estimate the `q`-quantile (`0 < q <= 1`) in seconds, or `None`
    /// if the histogram is empty.
    ///
    /// The estimate interpolates linearly inside the bucket holding the
    /// target rank, so it always lies within that bucket's bounds —
    /// i.e. within a factor of 2 of the true sample for finite buckets
    /// (the `+Inf` bucket reports its lower bound).
    pub fn quantile(&self, q: f64) -> Option<f64> {
        let count = self.count();
        if count == 0 {
            return None;
        }
        let target = (q * count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            seen += n;
            if seen >= target {
                let hi = if i < FINITE_BUCKETS {
                    BUCKET_BOUNDS_NANOS[i] as f64
                } else {
                    // +Inf bucket: report its lower bound, the largest
                    // finite boundary.
                    return Some(BUCKET_BOUNDS_NANOS[FINITE_BUCKETS - 1] as f64 / 1e9);
                };
                let lo = if i == 0 {
                    0.0
                } else {
                    BUCKET_BOUNDS_NANOS[i - 1] as f64
                };
                // Rank position inside this bucket, in (0, 1].
                let into = (target - (seen - n)) as f64 / n as f64;
                return Some((lo + (hi - lo) * into) / 1e9);
            }
        }
        None
    }
}

/// Counter block for one routed endpoint (labelled by route pattern,
/// never by raw path — cardinality stays bounded by the routing table).
#[derive(Debug)]
pub struct EndpointMetrics {
    label: &'static str,
    requests: AtomicU64,
    /// Status-class counts: index 0 ↔ 1xx ... index 4 ↔ 5xx.
    classes: [AtomicU64; 5],
    latency: Histogram,
}

impl EndpointMetrics {
    fn new(label: &'static str) -> Self {
        EndpointMetrics {
            label,
            requests: AtomicU64::new(0),
            classes: Default::default(),
            latency: Histogram::new(),
        }
    }

    /// The route pattern this block counts.
    pub fn label(&self) -> &'static str {
        self.label
    }

    /// Requests recorded so far.
    pub fn request_count(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// Snapshot of the handler-latency histogram.
    pub fn latency(&self) -> HistogramSnapshot {
        self.latency.snapshot()
    }
}

/// Label used for requests that matched no route (404s).
pub const UNROUTED_LABEL: &str = "unrouted";

/// The server-wide metrics registry: per-endpoint request counters and
/// latency histograms, queue-wait and connection counters, cache and
/// single-flight event counters, and build-time spans.
#[derive(Debug)]
pub struct MetricsRegistry {
    endpoints: Vec<EndpointMetrics>,
    unrouted: EndpointMetrics,
    queue_wait: Histogram,
    connections: AtomicU64,
    shed: AtomicU64,
    parse_errors: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    builds: AtomicU64,
    dedup: AtomicU64,
    corpus_uploads: AtomicU64,
    corpus_rejects: AtomicU64,
    // Builds by corpus label ("synthetic" or a digest prefix). Label
    // cardinality is bounded by the corpus registry's capacity, so the
    // map stays small; builds are rare enough that a lock is fine.
    builds_by_corpus: RwLock<BTreeMap<String, u64>>,
    spans: RwLock<BTreeMap<String, Arc<Histogram>>>,
}

impl MetricsRegistry {
    /// A registry with one counter block per route label. Labels must
    /// be the router's patterns (`/tree/pattern/:metric`, ...).
    pub fn new(labels: &[&'static str]) -> Self {
        MetricsRegistry {
            endpoints: labels.iter().map(|&l| EndpointMetrics::new(l)).collect(),
            unrouted: EndpointMetrics::new(UNROUTED_LABEL),
            queue_wait: Histogram::new(),
            connections: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            parse_errors: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            builds: AtomicU64::new(0),
            dedup: AtomicU64::new(0),
            corpus_uploads: AtomicU64::new(0),
            corpus_rejects: AtomicU64::new(0),
            builds_by_corpus: RwLock::new(BTreeMap::new()),
            spans: RwLock::new(BTreeMap::new()),
        }
    }

    /// The counter block for a route label (the unrouted block when the
    /// label is unknown, so recording never fails).
    pub fn endpoint(&self, label: &str) -> &EndpointMetrics {
        self.endpoints
            .iter()
            .find(|e| e.label == label)
            .unwrap_or(&self.unrouted)
    }

    /// Every endpoint block, registration order, unrouted last.
    pub fn endpoints(&self) -> impl Iterator<Item = &EndpointMetrics> {
        self.endpoints.iter().chain(std::iter::once(&self.unrouted))
    }

    /// Record one completed request: its route label (`None` when no
    /// route matched), response status, and handler wall time.
    pub fn record_request(&self, label: Option<&str>, status: u16, handler: Duration) {
        let endpoint = match label {
            Some(l) => self.endpoint(l),
            None => &self.unrouted,
        };
        endpoint.requests.fetch_add(1, Ordering::Relaxed);
        let class = (status / 100).clamp(1, 5) as usize - 1;
        endpoint.classes[class].fetch_add(1, Ordering::Relaxed);
        endpoint.latency.record(handler);
    }

    /// Record how long an accepted connection waited in the pool queue.
    pub fn record_queue_wait(&self, wait: Duration) {
        self.queue_wait.record(wait);
    }

    /// Snapshot of the queue-wait histogram.
    pub fn queue_wait(&self) -> HistogramSnapshot {
        self.queue_wait.snapshot()
    }

    /// Count one accepted connection.
    pub fn record_connection(&self) {
        self.connections.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one load-shed connection (503 before routing).
    pub fn record_shed(&self) {
        self.shed.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one malformed request (400 before routing).
    pub fn record_parse_error(&self) {
        self.parse_errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one atlas-cache hit.
    pub fn record_cache_hit(&self) {
        self.cache_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one atlas-cache miss.
    pub fn record_cache_miss(&self) {
        self.cache_misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one cold atlas build (a single-flight leader).
    pub fn record_build(&self) {
        self.builds.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one deduplicated build (a single-flight waiter that shared
    /// a leader's result instead of building).
    pub fn record_dedup(&self) {
        self.dedup.fetch_add(1, Ordering::Relaxed);
    }

    /// Cold builds performed since startup.
    pub fn build_total(&self) -> u64 {
        self.builds.load(Ordering::Relaxed)
    }

    /// Builds avoided through single-flight deduplication.
    pub fn dedup_total(&self) -> u64 {
        self.dedup.load(Ordering::Relaxed)
    }

    /// Count one accepted corpus upload (including idempotent
    /// re-uploads of an already-registered digest).
    pub fn record_corpus_upload(&self) {
        self.corpus_uploads.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one rejected corpus upload (oversize, malformed, or
    /// failing validation).
    pub fn record_corpus_reject(&self) {
        self.corpus_rejects.fetch_add(1, Ordering::Relaxed);
    }

    /// Accepted corpus uploads since startup.
    pub fn corpus_uploads(&self) -> u64 {
        self.corpus_uploads.load(Ordering::Relaxed)
    }

    /// Rejected corpus uploads since startup.
    pub fn corpus_rejects(&self) -> u64 {
        self.corpus_rejects.load(Ordering::Relaxed)
    }

    /// Attribute one cold build to a corpus label (`"synthetic"` for
    /// the generator, a digest prefix for uploads). Labels stay bounded
    /// because the corpus registry itself is bounded.
    pub fn record_build_for_corpus(&self, label: &str) {
        let mut map = self.builds_by_corpus.write().unwrap();
        *map.entry(label.to_string()).or_insert(0) += 1;
    }

    /// Per-corpus build counts, `(label, builds)` in label order.
    pub fn builds_by_corpus(&self) -> Vec<(String, u64)> {
        let map = self.builds_by_corpus.read().unwrap();
        map.iter().map(|(k, &v)| (k.clone(), v)).collect()
    }

    /// Named build spans recorded so far, as `(name, snapshot)` pairs
    /// in lexicographic name order.
    pub fn span_snapshots(&self) -> Vec<(String, HistogramSnapshot)> {
        let spans = self.spans.read().unwrap();
        spans
            .iter()
            .map(|(name, h)| (name.clone(), h.snapshot()))
            .collect()
    }

    /// Render the whole registry in Prometheus text exposition format.
    ///
    /// `extra` lines (cache gauges the registry does not own) are
    /// appended verbatim by the caller.
    pub fn render_prometheus(&self, extra: &str) -> String {
        let mut out = String::with_capacity(16 * 1024);

        out.push_str("# HELP atlas_requests_total Requests dispatched, by route pattern.\n");
        out.push_str("# TYPE atlas_requests_total counter\n");
        for e in self.endpoints() {
            let n = e.requests.load(Ordering::Relaxed);
            out.push_str(&format!(
                "atlas_requests_total{{endpoint=\"{}\"}} {}\n",
                e.label, n
            ));
        }

        out.push_str("# HELP atlas_responses_total Responses by route pattern and status class.\n");
        out.push_str("# TYPE atlas_responses_total counter\n");
        for e in self.endpoints() {
            for (i, class) in e.classes.iter().enumerate() {
                let n = class.load(Ordering::Relaxed);
                if n > 0 {
                    out.push_str(&format!(
                        "atlas_responses_total{{endpoint=\"{}\",class=\"{}xx\"}} {}\n",
                        e.label,
                        i + 1,
                        n
                    ));
                }
            }
        }

        out.push_str(
            "# HELP atlas_request_duration_seconds Handler wall time, by route pattern.\n",
        );
        out.push_str("# TYPE atlas_request_duration_seconds histogram\n");
        for e in self.endpoints() {
            let snap = e.latency.snapshot();
            if snap.count() == 0 {
                continue;
            }
            render_histogram(
                &mut out,
                "atlas_request_duration_seconds",
                &format!("endpoint=\"{}\"", e.label),
                &snap,
            );
        }

        out.push_str(
            "# HELP atlas_queue_wait_seconds Time accepted connections waited for a worker.\n",
        );
        out.push_str("# TYPE atlas_queue_wait_seconds histogram\n");
        render_histogram(
            &mut out,
            "atlas_queue_wait_seconds",
            "",
            &self.queue_wait.snapshot(),
        );

        for (name, help, counter) in [
            (
                "atlas_connections_total",
                "Connections handled by workers.",
                &self.connections,
            ),
            (
                "atlas_shed_total",
                "Connections answered 503 by load shedding.",
                &self.shed,
            ),
            (
                "atlas_parse_errors_total",
                "Requests rejected as malformed HTTP.",
                &self.parse_errors,
            ),
            (
                "atlas_cache_hits_total",
                "Atlas cache hits.",
                &self.cache_hits,
            ),
            (
                "atlas_cache_misses_total",
                "Atlas cache misses.",
                &self.cache_misses,
            ),
            (
                "atlas_builds_total",
                "Cold atlas builds performed.",
                &self.builds,
            ),
            (
                "atlas_build_dedup_total",
                "Builds avoided by single-flight deduplication.",
                &self.dedup,
            ),
            (
                "atlas_corpus_uploads_total",
                "Corpus uploads accepted.",
                &self.corpus_uploads,
            ),
            (
                "atlas_corpus_upload_rejects_total",
                "Corpus uploads rejected before registration.",
                &self.corpus_rejects,
            ),
        ] {
            out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} counter\n"));
            out.push_str(&format!("{name} {}\n", counter.load(Ordering::Relaxed)));
        }

        let by_corpus = self.builds_by_corpus();
        if !by_corpus.is_empty() {
            out.push_str(
                "# HELP atlas_builds_by_corpus_total Cold builds by corpus label.\n\
                 # TYPE atlas_builds_by_corpus_total counter\n",
            );
            for (label, n) in &by_corpus {
                out.push_str(&format!(
                    "atlas_builds_by_corpus_total{{corpus=\"{label}\"}} {n}\n"
                ));
            }
        }

        let spans = self.span_snapshots();
        if !spans.is_empty() {
            out.push_str(
                "# HELP atlas_build_span_seconds Pipeline build spans (stages and per-cuisine mining).\n",
            );
            out.push_str("# TYPE atlas_build_span_seconds histogram\n");
            for (name, snap) in &spans {
                render_histogram(
                    &mut out,
                    "atlas_build_span_seconds",
                    &format!("span=\"{name}\""),
                    snap,
                );
            }
        }

        out.push_str(extra);
        out
    }
}

impl SpanSink for MetricsRegistry {
    fn record_span(&self, name: &str, wall_ms: f64) {
        let nanos = (wall_ms * 1e6).max(0.0) as u64;
        if let Some(h) = self.spans.read().unwrap().get(name) {
            h.record_nanos(nanos);
            return;
        }
        let h = Arc::clone(
            self.spans
                .write()
                .unwrap()
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(Histogram::new())),
        );
        h.record_nanos(nanos);
    }
}

/// Append one histogram's `_bucket`/`_sum`/`_count` lines. `labels` is
/// the rendered inner label list without braces (may be empty).
fn render_histogram(out: &mut String, name: &str, labels: &str, snap: &HistogramSnapshot) {
    let sep = if labels.is_empty() { "" } else { "," };
    let mut cumulative = 0u64;
    for (i, &n) in snap.bucket_counts().iter().enumerate() {
        cumulative += n;
        // Only the buckets that change the cumulative count (plus +Inf)
        // are emitted, keeping scrapes compact without losing anything.
        if n == 0 && i < FINITE_BUCKETS {
            continue;
        }
        let le = if i < FINITE_BUCKETS {
            format_seconds(BUCKET_BOUNDS_NANOS[i])
        } else {
            "+Inf".to_string()
        };
        out.push_str(&format!(
            "{name}_bucket{{{labels}{sep}le=\"{le}\"}} {cumulative}\n"
        ));
    }
    // Unlabelled series render bare (`name value`), not with `{}`.
    let block = if labels.is_empty() {
        String::new()
    } else {
        format!("{{{labels}}}")
    };
    out.push_str(&format!(
        "{name}_sum{block} {}\n",
        format_f64(snap.sum_seconds())
    ));
    out.push_str(&format!("{name}_count{block} {}\n", snap.count()));
}

/// Render a nanosecond boundary as seconds without float noise
/// (`1024ns` → `"0.000001024"`).
fn format_seconds(nanos: u64) -> String {
    let secs = nanos / 1_000_000_000;
    let frac = nanos % 1_000_000_000;
    if frac == 0 {
        format!("{secs}")
    } else {
        let mut s = format!("{secs}.{frac:09}");
        while s.ends_with('0') {
            s.pop();
        }
        s
    }
}

fn format_f64(v: f64) -> String {
    // Plain decimal; serde_json-style shortest form is overkill here.
    format!("{v}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn bucket_boundaries_are_doubling_and_le_inclusive() {
        assert_eq!(BUCKET_BOUNDS_NANOS[0], 1024);
        for w in BUCKET_BOUNDS_NANOS.windows(2) {
            assert_eq!(w[1], w[0] * 2);
        }
        // A value exactly on a boundary lands in that bucket (le
        // semantics); one past it lands in the next.
        for (i, &b) in BUCKET_BOUNDS_NANOS.iter().enumerate() {
            assert_eq!(Histogram::bucket_index(b), i, "on boundary {b}");
            assert_eq!(Histogram::bucket_index(b + 1), i + 1, "past boundary {b}");
        }
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(u64::MAX), FINITE_BUCKETS);
    }

    #[test]
    fn quantiles_are_within_their_buckets_bounds() {
        let h = Histogram::new();
        // 1000 samples spread log-uniformly from 2µs to ~2s.
        let mut samples = Vec::new();
        for i in 0..1000u64 {
            let nanos = 2048 + i * i * 2_000; // quadratic spread, max ~2s
            samples.push(nanos);
            h.record_nanos(nanos);
        }
        samples.sort_unstable();
        let snap = h.snapshot();
        for q in [0.5, 0.9, 0.99] {
            let est = snap.quantile(q).unwrap() * 1e9;
            let true_rank = ((q * samples.len() as f64).ceil() as usize).max(1) - 1;
            let true_value = samples[true_rank];
            let i = Histogram::bucket_index(true_value);
            let lo = if i == 0 {
                0
            } else {
                BUCKET_BOUNDS_NANOS[i - 1]
            };
            let hi = BUCKET_BOUNDS_NANOS[i];
            assert!(
                est >= lo as f64 && est <= hi as f64,
                "q={q}: estimate {est} outside bucket [{lo}, {hi}] of true value {true_value}"
            );
            // Doubling buckets ⇒ the estimate is within 2× of the truth
            // (up to the bucket's lower edge).
            assert!(est <= 2.0 * true_value as f64 && 2.0 * est >= true_value as f64);
        }
    }

    #[test]
    fn empty_histogram_has_no_quantile() {
        let snap = Histogram::new().snapshot();
        assert_eq!(snap.count(), 0);
        assert!(snap.quantile(0.5).is_none());
    }

    #[test]
    fn concurrent_recording_conserves_counts_exactly() {
        const THREADS: u64 = 8;
        const PER_THREAD: u64 = 5_000;
        let h = Arc::new(Histogram::new());
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let h = Arc::clone(&h);
                scope.spawn(move || {
                    for i in 0..PER_THREAD {
                        // Deterministic per-thread spread across buckets.
                        h.record_nanos(1024 << ((t * PER_THREAD + i) % 20));
                    }
                });
            }
        });
        let snap = h.snapshot();
        assert_eq!(
            snap.count(),
            THREADS * PER_THREAD,
            "no sample lost or duplicated"
        );
        let mut expected_sum = 0u64;
        for k in 0..THREADS * PER_THREAD {
            expected_sum += 1024 << (k % 20);
        }
        assert_eq!(snap.sum_nanos, expected_sum, "sums conserve exactly");
    }

    #[test]
    fn registry_counts_requests_by_label_and_class() {
        let reg = MetricsRegistry::new(&["/health", "/table1"]);
        reg.record_request(Some("/table1"), 200, Duration::from_micros(100));
        reg.record_request(Some("/table1"), 200, Duration::from_micros(200));
        reg.record_request(Some("/table1"), 400, Duration::from_micros(10));
        reg.record_request(None, 404, Duration::from_micros(5));
        assert_eq!(reg.endpoint("/table1").request_count(), 3);
        assert_eq!(reg.endpoint("/health").request_count(), 0);
        assert_eq!(reg.endpoint(UNROUTED_LABEL).request_count(), 1);
        assert_eq!(reg.endpoint("/table1").latency().count(), 3);
        let text = reg.render_prometheus("");
        assert!(text.contains("atlas_requests_total{endpoint=\"/table1\"} 3"));
        assert!(text.contains("atlas_responses_total{endpoint=\"/table1\",class=\"2xx\"} 2"));
        assert!(text.contains("atlas_responses_total{endpoint=\"/table1\",class=\"4xx\"} 1"));
        assert!(text.contains("atlas_responses_total{endpoint=\"unrouted\",class=\"4xx\"} 1"));
    }

    #[test]
    fn spans_land_in_named_histograms() {
        let reg = MetricsRegistry::new(&[]);
        reg.record_span("stage/generate", 12.5);
        reg.record_span("stage/generate", 14.0);
        reg.record_span("mine/Italian", 3.0);
        let spans = reg.span_snapshots();
        let names: Vec<&str> = spans.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["mine/Italian", "stage/generate"]);
        assert_eq!(spans[1].1.count(), 2);
        let text = reg.render_prometheus("");
        assert!(text.contains("atlas_build_span_seconds_count{span=\"stage/generate\"} 2"));
    }

    #[test]
    fn corpus_counters_render_and_accumulate() {
        let reg = MetricsRegistry::new(&[]);
        reg.record_corpus_upload();
        reg.record_corpus_reject();
        reg.record_corpus_reject();
        reg.record_build_for_corpus("synthetic");
        reg.record_build_for_corpus("synthetic");
        reg.record_build_for_corpus("3f2a9c01");
        assert_eq!(reg.corpus_uploads(), 1);
        assert_eq!(reg.corpus_rejects(), 2);
        assert_eq!(
            reg.builds_by_corpus(),
            vec![("3f2a9c01".to_string(), 1), ("synthetic".to_string(), 2)]
        );
        let text = reg.render_prometheus("");
        assert!(text.contains("atlas_corpus_uploads_total 1"));
        assert!(text.contains("atlas_corpus_upload_rejects_total 2"));
        assert!(text.contains("atlas_builds_by_corpus_total{corpus=\"synthetic\"} 2"));
        assert!(text.contains("atlas_builds_by_corpus_total{corpus=\"3f2a9c01\"} 1"));
    }

    #[test]
    fn prometheus_boundary_rendering_is_exact() {
        assert_eq!(format_seconds(1024), "0.000001024");
        assert_eq!(format_seconds(1_000_000_000), "1");
        assert_eq!(format_seconds(1024 << 27), "137.438953472");
    }
}
