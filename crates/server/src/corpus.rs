//! The bounded registry of user-uploaded corpora.
//!
//! `POST /corpus` validates a RecipeDB snapshot and registers it here
//! under its content digest; `?corpus=<digest>` on any endpoint looks it
//! up. The registry is a small approximately-LRU map: uploads beyond
//! `max_corpora` evict the least-recently-used corpus (its cached
//! atlases stay keyed by digest in the atlas cache until they age out
//! there too). Registering the same bytes twice is idempotent — the
//! digest is the identity.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::SystemTime;

use recipedb::RecipeDb;

/// An uploaded corpus and its summary, shared immutably with every
/// build that uses it.
#[derive(Debug)]
pub struct CorpusInfo {
    /// Content digest — the corpus id clients pass as `?corpus=`.
    pub digest: String,
    /// The validated database.
    pub db: Arc<RecipeDb>,
    /// Total recipes in the corpus.
    pub recipes: usize,
    /// Number of cuisines with at least one recipe.
    pub cuisines: usize,
    /// Size of the uploaded JSON body, in bytes.
    pub bytes: usize,
    /// When the corpus entered the registry — the upload time, or the
    /// snapshot file's mtime after a warm restart. Drives the optional
    /// corpus TTL.
    pub registered_at: SystemTime,
}

struct Slot {
    info: Arc<CorpusInfo>,
    last_used: u64,
}

/// A bounded, approximately-LRU corpus store.
pub struct CorpusRegistry {
    slots: RwLock<HashMap<String, Slot>>,
    max_corpora: usize,
    clock: AtomicU64,
    evictions: AtomicU64,
}

impl CorpusRegistry {
    /// A registry holding at most `max_corpora` corpora.
    pub fn new(max_corpora: usize) -> Self {
        CorpusRegistry {
            slots: RwLock::new(HashMap::new()),
            max_corpora: max_corpora.max(1),
            clock: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Register a corpus, evicting the least-recently-used one when
    /// full. Returns the stored info and whether this digest was new
    /// (`false` = the upload was a no-op re-registration).
    pub fn insert(&self, info: CorpusInfo) -> (Arc<CorpusInfo>, bool) {
        let now = self.clock.fetch_add(1, Ordering::Relaxed);
        let mut slots = self.slots.write().unwrap();
        if let Some(slot) = slots.get_mut(&info.digest) {
            slot.last_used = now;
            return (Arc::clone(&slot.info), false);
        }
        let info = Arc::new(info);
        slots.insert(
            info.digest.clone(),
            Slot {
                info: Arc::clone(&info),
                last_used: now,
            },
        );
        while slots.len() > self.max_corpora {
            let oldest = slots
                .iter()
                .min_by_key(|(_, s)| s.last_used)
                .map(|(k, _)| k.clone());
            match oldest {
                Some(k) => {
                    slots.remove(&k);
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                }
                None => break,
            }
        }
        (info, true)
    }

    /// Look up a corpus by digest, stamping recency on a hit.
    pub fn get(&self, digest: &str) -> Option<Arc<CorpusInfo>> {
        let now = self.clock.fetch_add(1, Ordering::Relaxed);
        let mut slots = self.slots.write().unwrap();
        slots.get_mut(digest).map(|slot| {
            slot.last_used = now;
            Arc::clone(&slot.info)
        })
    }

    /// Remove a corpus by digest (the `DELETE /corpus/{digest}` path
    /// and the TTL sweep). Returns whether it was registered.
    pub fn remove(&self, digest: &str) -> bool {
        self.slots.write().unwrap().remove(digest).is_some()
    }

    /// Every registered corpus, sorted by digest, without stamping
    /// recency (used for `/health` accounting and the TTL sweep).
    pub fn infos(&self) -> Vec<Arc<CorpusInfo>> {
        let slots = self.slots.read().unwrap();
        let mut infos: Vec<Arc<CorpusInfo>> = slots.values().map(|s| Arc::clone(&s.info)).collect();
        infos.sort_by(|a, b| a.digest.cmp(&b.digest));
        infos
    }

    /// Number of registered corpora.
    pub fn len(&self) -> usize {
        self.slots.read().unwrap().len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Corpora evicted to make room since startup.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn info(digest: &str) -> CorpusInfo {
        CorpusInfo {
            digest: digest.to_string(),
            db: Arc::new(recipedb::store::RecipeDbBuilder::new().build().unwrap()),
            recipes: 0,
            cuisines: 0,
            bytes: 2,
            registered_at: SystemTime::now(),
        }
    }

    #[test]
    fn remove_and_infos_round_out_the_registry() {
        let reg = CorpusRegistry::new(4);
        reg.insert(info("d2"));
        reg.insert(info("d1"));
        let listed: Vec<String> = reg.infos().iter().map(|i| i.digest.clone()).collect();
        assert_eq!(listed, ["d1", "d2"], "infos are digest-sorted");
        assert!(reg.remove("d1"));
        assert!(!reg.remove("d1"), "second remove is a no-op");
        assert_eq!(reg.len(), 1);
        assert!(reg.get("d1").is_none());
    }

    #[test]
    fn insert_is_idempotent_by_digest() {
        let reg = CorpusRegistry::new(4);
        let (a, created) = reg.insert(info("d1"));
        assert!(created);
        let (b, created_again) = reg.insert(info("d1"));
        assert!(!created_again);
        assert!(Arc::ptr_eq(&a, &b), "re-upload returns the stored corpus");
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn get_finds_registered_corpora_only() {
        let reg = CorpusRegistry::new(4);
        reg.insert(info("d1"));
        assert!(reg.get("d1").is_some());
        assert!(reg.get("missing").is_none());
    }

    #[test]
    fn eviction_is_least_recently_used_and_counted() {
        let reg = CorpusRegistry::new(2);
        reg.insert(info("d1"));
        reg.insert(info("d2"));
        // Touch d1 so d2 is the LRU victim.
        reg.get("d1");
        reg.insert(info("d3"));
        assert_eq!(reg.len(), 2);
        assert!(reg.get("d1").is_some());
        assert!(reg.get("d2").is_none(), "LRU corpus was evicted");
        assert!(reg.get("d3").is_some());
        assert_eq!(reg.evictions(), 1);
    }

    #[test]
    fn capacity_has_a_floor_of_one() {
        let reg = CorpusRegistry::new(0);
        reg.insert(info("d1"));
        reg.insert(info("d2"));
        assert_eq!(reg.len(), 1);
    }
}
