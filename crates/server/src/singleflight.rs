//! Single-flight deduplication of concurrent identical builds.
//!
//! When N threads ask for the same key at once, exactly one runs the
//! builder; the others block on a condvar and share the leader's
//! `Arc` result. A leader that panics wakes the waiters, and one of
//! them takes over as the new leader — no key is ever poisoned.

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::{Arc, Condvar, Mutex};

struct Flight<V> {
    done: Mutex<Option<Arc<V>>>,
    cond: Condvar,
}

/// Deduplicates concurrent calls per key.
pub struct SingleFlight<K, V> {
    inflight: Mutex<HashMap<K, Arc<Flight<V>>>>,
}

impl<K: Eq + Hash + Clone, V> Default for SingleFlight<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Eq + Hash + Clone, V> SingleFlight<K, V> {
    /// An empty flight table.
    pub fn new() -> Self {
        SingleFlight {
            inflight: Mutex::new(HashMap::new()),
        }
    }

    /// Run `build` for `key`, unless another thread is already running
    /// it — then wait and share that thread's result instead.
    pub fn work<F>(&self, key: &K, build: F) -> Arc<V>
    where
        F: FnOnce() -> V,
    {
        self.work_flagged(key, build).0
    }

    /// [`SingleFlight::work`], also reporting whether this caller was
    /// the leader (`true`: it ran `build`) or a deduplicated waiter
    /// (`false`: it shared a concurrent leader's result) — the signal
    /// behind the server's `atlas_build_dedup_total` metric.
    pub fn work_flagged<F>(&self, key: &K, build: F) -> (Arc<V>, bool)
    where
        F: FnOnce() -> V,
    {
        let (flight, leader) = {
            let mut inflight = self.inflight.lock().unwrap();
            match inflight.get(key) {
                Some(flight) => (Arc::clone(flight), false),
                None => {
                    let flight = Arc::new(Flight {
                        done: Mutex::new(None),
                        cond: Condvar::new(),
                    });
                    inflight.insert(key.clone(), Arc::clone(&flight));
                    (flight, true)
                }
            }
        };

        if leader {
            // Guard: if `build` panics, still deregister the flight and
            // wake waiters so they can elect a new leader.
            struct Cleanup<'a, K: Eq + Hash, V> {
                sf: &'a SingleFlight<K, V>,
                key: &'a K,
                flight: &'a Flight<V>,
            }
            impl<K: Eq + Hash, V> Drop for Cleanup<'_, K, V> {
                fn drop(&mut self) {
                    self.sf.inflight.lock().unwrap().remove(self.key);
                    self.flight.cond.notify_all();
                }
            }
            let cleanup = Cleanup {
                sf: self,
                key,
                flight: &flight,
            };
            let value = Arc::new(build());
            *flight.done.lock().unwrap() = Some(Arc::clone(&value));
            drop(cleanup);
            (value, true)
        } else {
            let mut done = flight.done.lock().unwrap();
            loop {
                if let Some(value) = done.as_ref() {
                    return (Arc::clone(value), false);
                }
                // Woken with no value: the leader panicked. Retry from
                // the top — the flight entry is gone, so some waiter
                // becomes the new leader.
                let dropped = {
                    let inflight = self.inflight.lock().unwrap();
                    !inflight.get(key).is_some_and(|f| Arc::ptr_eq(f, &flight))
                };
                if dropped {
                    drop(done);
                    return self.work_flagged(key, build);
                }
                done = flight.cond.wait(done).unwrap();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    #[test]
    fn concurrent_callers_share_one_build() {
        let sf = Arc::new(SingleFlight::<String, u64>::new());
        let builds = Arc::new(AtomicUsize::new(0));
        let start = Arc::new(std::sync::Barrier::new(8));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let sf = Arc::clone(&sf);
                let builds = Arc::clone(&builds);
                let start = Arc::clone(&start);
                std::thread::spawn(move || {
                    start.wait();
                    *sf.work(&"key".to_string(), || {
                        builds.fetch_add(1, Ordering::SeqCst);
                        std::thread::sleep(Duration::from_millis(50));
                        42u64
                    })
                })
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), 42);
        }
        assert_eq!(builds.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn work_flagged_marks_exactly_one_leader() {
        let sf = Arc::new(SingleFlight::<String, u64>::new());
        let start = Arc::new(std::sync::Barrier::new(8));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let sf = Arc::clone(&sf);
                let start = Arc::clone(&start);
                std::thread::spawn(move || {
                    start.wait();
                    let (value, led) = sf.work_flagged(&"key".to_string(), || {
                        std::thread::sleep(Duration::from_millis(50));
                        9u64
                    });
                    assert_eq!(*value, 9);
                    led
                })
            })
            .collect();
        let leaders = handles
            .into_iter()
            .map(|h| h.join().unwrap())
            .filter(|&led| led)
            .count();
        assert_eq!(leaders, 1, "exactly one caller leads; 7 are deduplicated");
    }

    #[test]
    fn distinct_keys_build_independently() {
        let sf = SingleFlight::<u32, u32>::new();
        assert_eq!(*sf.work(&1, || 10), 10);
        assert_eq!(*sf.work(&2, || 20), 20);
        // Key 1 has completed, so a new call builds again.
        assert_eq!(*sf.work(&1, || 11), 11);
    }

    #[test]
    fn leader_panic_elects_new_leader() {
        let sf = Arc::new(SingleFlight::<String, u32>::new());
        let sf2 = Arc::clone(&sf);
        let panicker = std::thread::spawn(move || {
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                sf2.work(&"k".to_string(), || panic!("leader died"));
            }));
            assert!(result.is_err());
        });
        // Give the leader time to claim the flight, then join as waiter.
        std::thread::sleep(Duration::from_millis(20));
        let value = sf.work(&"k".to_string(), || 7);
        panicker.join().unwrap();
        assert_eq!(*value, 7);
    }
}
