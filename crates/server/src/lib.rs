//! `atlas-server` — a concurrent query server for the cuisine atlas.
//!
//! Serves every artifact of the paper's pipeline (Table I, the four
//! cuisine trees, authenticity fingerprints, the elbow curve, and the
//! geography comparison) over a JSON HTTP/1.1 API, built from the
//! workspace's own primitives: `std::net` sockets, a crossbeam-backed
//! worker pool, and a sharded LRU atlas cache with single-flight build
//! deduplication.
//!
//! ```no_run
//! use atlas_server::{ServerConfig, ServerHandle};
//!
//! let server = ServerHandle::start(ServerConfig::default()).unwrap();
//! let (status, body) = server.get("/tree/pattern/euclidean").unwrap();
//! assert_eq!(status, 200);
//! println!("{}", String::from_utf8_lossy(&body));
//! server.shutdown();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod api;
pub mod cache;
pub mod corpus;
pub mod error;
pub mod handle;
pub mod http;
pub mod metrics;
pub mod pool;
pub mod router;
pub mod singleflight;

pub use api::AppState;
pub use error::ApiError;
pub use handle::ServerHandle;

/// Server startup parameters.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; use port 0 for an ephemeral port.
    pub addr: String,
    /// Worker threads handling connections.
    pub workers: usize,
    /// Bounded connection-queue capacity; beyond it the server sheds
    /// load with 503s.
    pub queue_cap: usize,
    /// Atlases kept in the LRU cache.
    pub cache_capacity: usize,
    /// Worker threads for cold atlas builds (`0` = all available
    /// parallelism). Purely a wall-clock knob — every thread count
    /// builds bit-for-bit identical atlases.
    pub build_threads: usize,
    /// Emit one JSON line per served request on stdout (the
    /// `atlas-serve --access-log` flag).
    pub access_log: bool,
    /// Largest `POST /corpus` body accepted, in bytes; larger uploads
    /// are rejected with a 413 before the body is buffered.
    pub max_corpus_bytes: usize,
    /// Uploaded corpora kept in the registry; beyond it the
    /// least-recently-used corpus is evicted.
    pub max_corpora: usize,
    /// Directory for the persistent snapshot store (`--data-dir`).
    /// `None` disables persistence entirely — the PR-1 in-memory-only
    /// behaviour.
    pub data_dir: Option<std::path::PathBuf>,
    /// Disk budget for the snapshot store in bytes
    /// (`--max-disk-bytes`); 0 = unbounded.
    pub max_disk_bytes: u64,
    /// When `false` (`--no-persist`), the store serves warm reads from
    /// `data_dir` but never writes new snapshots.
    pub persist: bool,
    /// Drop uploaded corpora (registry entry, cached atlases, and disk
    /// snapshots) this many seconds after registration
    /// (`--corpus-ttl-secs`); `None` keeps them until evicted.
    pub corpus_ttl_secs: Option<u64>,
    /// How long a store mutation waits for the advisory write lock held
    /// by a sibling process sharing the data dir (`--lock-timeout-ms`).
    pub lock_timeout_ms: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            queue_cap: 64,
            cache_capacity: 4,
            build_threads: 0,
            access_log: false,
            max_corpus_bytes: 64 * 1024 * 1024,
            max_corpora: 8,
            data_dir: None,
            max_disk_bytes: 0,
            persist: true,
            corpus_ttl_secs: None,
            lock_timeout_ms: 5000,
        }
    }
}
