//! API-level errors mapped onto HTTP status codes.

use std::fmt;

/// An error a handler can return; rendered as a JSON body with the
/// matching status code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ApiError {
    /// HTTP status code.
    pub status: u16,
    /// Human-readable message, returned as `{"error": ...}`.
    pub message: String,
}

impl ApiError {
    /// 400 — the request was syntactically or semantically invalid.
    pub fn bad_request(msg: impl Into<String>) -> Self {
        ApiError {
            status: 400,
            message: msg.into(),
        }
    }

    /// 404 — no route or resource.
    pub fn not_found(msg: impl Into<String>) -> Self {
        ApiError {
            status: 404,
            message: msg.into(),
        }
    }

    /// 405 — the path exists but not under this method.
    pub fn method_not_allowed(msg: impl Into<String>) -> Self {
        ApiError {
            status: 405,
            message: msg.into(),
        }
    }

    /// 413 — the request body exceeds the configured size cap.
    pub fn payload_too_large(msg: impl Into<String>) -> Self {
        ApiError {
            status: 413,
            message: msg.into(),
        }
    }

    /// 422 — the request parsed but the content is semantically unusable
    /// (e.g. an uploaded corpus too small to cluster).
    pub fn unprocessable(msg: impl Into<String>) -> Self {
        ApiError {
            status: 422,
            message: msg.into(),
        }
    }

    /// 500 — handler failure.
    pub fn internal(msg: impl Into<String>) -> Self {
        ApiError {
            status: 500,
            message: msg.into(),
        }
    }

    /// 503 — the server is saturated or shutting down.
    pub fn unavailable(msg: impl Into<String>) -> Self {
        ApiError {
            status: 503,
            message: msg.into(),
        }
    }
}

impl fmt::Display for ApiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.status, self.message)
    }
}

impl std::error::Error for ApiError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_status() {
        assert_eq!(ApiError::bad_request("x").status, 400);
        assert_eq!(ApiError::not_found("x").status, 404);
        assert_eq!(ApiError::method_not_allowed("x").status, 405);
        assert_eq!(ApiError::payload_too_large("x").status, 413);
        assert_eq!(ApiError::unprocessable("x").status, 422);
        assert_eq!(ApiError::internal("x").status, 500);
        assert_eq!(ApiError::unavailable("x").status, 503);
        assert_eq!(
            ApiError::not_found("no such tree").to_string(),
            "404 no such tree"
        );
    }
}
