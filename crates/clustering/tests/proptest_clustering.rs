//! Property-based invariants of the clustering substrate.

use proptest::prelude::*;

use clustering::condensed::CondensedMatrix;
use clustering::dendrogram::Dendrogram;
use clustering::distance::Metric;
use clustering::hac::{cut_k, linkage, LinkageMethod};
use clustering::kmeans::{kmeans, KMeansConfig};
use clustering::validation::{adjusted_rand_index, bakers_gamma, pearson, spearman};

fn arb_points() -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec(prop::collection::vec(-50.0f64..50.0, 3), 2..14)
}

fn monotone_methods() -> Vec<LinkageMethod> {
    LinkageMethod::ALL
        .into_iter()
        .filter(|m| m.is_monotone())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn metric_axioms(a in prop::collection::vec(-10.0f64..10.0, 4),
                     b in prop::collection::vec(-10.0f64..10.0, 4),
                     c in prop::collection::vec(-10.0f64..10.0, 4)) {
        for m in [Metric::Euclidean, Metric::Manhattan, Metric::Hamming, Metric::Jaccard] {
            let dab = m.distance(&a, &b);
            prop_assert!(dab >= 0.0);
            prop_assert!((dab - m.distance(&b, &a)).abs() < 1e-9, "{m}: symmetry");
            prop_assert!(m.distance(&a, &a).abs() < 1e-9, "{m}: identity");
            // Triangle inequality (true metrics only).
            if matches!(m, Metric::Euclidean | Metric::Manhattan | Metric::Hamming) {
                let dac = m.distance(&a, &c);
                let dcb = m.distance(&c, &b);
                prop_assert!(dab <= dac + dcb + 1e-9, "{m}: triangle");
            }
        }
    }

    #[test]
    fn linkage_produces_valid_tree_for_all_methods(pts in arb_points()) {
        let n = pts.len();
        let d = CondensedMatrix::pdist(&pts, Metric::Euclidean);
        for method in LinkageMethod::ALL {
            let merges = linkage(&d, method);
            prop_assert_eq!(merges.len(), n - 1, "{}", method);
            let tree = Dendrogram::from_merges(n, &merges);
            let mut order = tree.leaf_order();
            order.sort_unstable();
            prop_assert_eq!(order, (0..n).collect::<Vec<_>>(), "{}", method);
            prop_assert_eq!(merges.last().unwrap().size, n, "{}", method);
        }
    }

    #[test]
    fn monotone_linkages_have_nondecreasing_heights(pts in arb_points()) {
        let d = CondensedMatrix::pdist(&pts, Metric::Euclidean);
        for method in monotone_methods() {
            let merges = linkage(&d, method);
            for w in merges.windows(2) {
                prop_assert!(w[1].distance >= w[0].distance - 1e-9, "{}", method);
            }
        }
    }

    #[test]
    fn cophenetic_is_ultrametric_for_monotone_linkages(pts in arb_points()) {
        let n = pts.len();
        let d = CondensedMatrix::pdist(&pts, Metric::Euclidean);
        for method in monotone_methods() {
            let tree = Dendrogram::from_merges(n, &linkage(&d, method));
            let c = tree.cophenetic();
            for i in 0..n {
                for j in (i + 1)..n {
                    for k in (j + 1)..n {
                        let mut v = [c.get(i, j), c.get(i, k), c.get(j, k)];
                        v.sort_by(|x, y| x.partial_cmp(y).unwrap());
                        prop_assert!(v[2] - v[1] < 1e-9,
                            "{}: ultrametric violated ({:?})", method, v);
                    }
                }
            }
        }
    }

    #[test]
    fn single_linkage_cophenetic_lower_bounds_input(pts in arb_points()) {
        // For single linkage, coph(i,j) <= d(i,j): the path through the
        // MST can only shorten distances.
        let n = pts.len();
        let d = CondensedMatrix::pdist(&pts, Metric::Euclidean);
        let tree = Dendrogram::from_merges(n, &linkage(&d, LinkageMethod::Single));
        let c = tree.cophenetic();
        for (i, j, dist) in d.iter_pairs() {
            prop_assert!(c.get(i, j) <= dist + 1e-9);
        }
    }

    #[test]
    fn complete_linkage_cophenetic_upper_bounds_input(pts in arb_points()) {
        let n = pts.len();
        let d = CondensedMatrix::pdist(&pts, Metric::Euclidean);
        let tree = Dendrogram::from_merges(n, &linkage(&d, LinkageMethod::Complete));
        let c = tree.cophenetic();
        for (i, j, dist) in d.iter_pairs() {
            prop_assert!(c.get(i, j) >= dist - 1e-9);
        }
    }

    #[test]
    fn cut_k_yields_exactly_k_clusters(pts in arb_points(), k_frac in 0.0f64..1.0) {
        let n = pts.len();
        let k = 1 + ((n - 1) as f64 * k_frac) as usize;
        let d = CondensedMatrix::pdist(&pts, Metric::Euclidean);
        let merges = linkage(&d, LinkageMethod::Average);
        let labels = cut_k(n, &merges, k);
        let distinct: std::collections::HashSet<usize> = labels.iter().copied().collect();
        prop_assert_eq!(distinct.len(), k);
        prop_assert!(labels.iter().all(|&l| l < k));
    }

    #[test]
    fn cut_at_height_agrees_with_tree_structure(pts in arb_points()) {
        let n = pts.len();
        let d = CondensedMatrix::pdist(&pts, Metric::Euclidean);
        let merges = linkage(&d, LinkageMethod::Average);
        let tree = Dendrogram::from_merges(n, &merges);
        // Cutting above the root height gives one cluster; below the first
        // merge gives n clusters.
        let one = tree.cut_at_height(tree.max_height() + 1.0);
        prop_assert!(one.iter().all(|&l| l == 0));
        let all = tree.cut_at_height(merges[0].distance - 1e-9);
        let distinct: std::collections::HashSet<usize> = all.iter().copied().collect();
        prop_assert_eq!(distinct.len(), n);
    }

    #[test]
    fn bakers_gamma_self_is_one(pts in arb_points()) {
        prop_assume!(pts.len() >= 3);
        let n = pts.len();
        let d = CondensedMatrix::pdist(&pts, Metric::Euclidean);
        let tree = Dendrogram::from_merges(n, &linkage(&d, LinkageMethod::Average));
        let g = bakers_gamma(&tree, &tree);
        // Degenerate trees (all heights equal) have zero rank variance.
        if g != 0.0 {
            prop_assert!((g - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn kmeans_wcss_never_negative_and_labels_in_range(pts in arb_points(), k_frac in 0.0f64..1.0) {
        let n = pts.len();
        let k = 1 + ((n - 1) as f64 * k_frac) as usize;
        let r = kmeans(&pts, &KMeansConfig::new(k).with_seed(5));
        prop_assert!(r.wcss >= 0.0);
        prop_assert!(r.labels.iter().all(|&l| l < k));
        prop_assert_eq!(r.labels.len(), n);
        prop_assert_eq!(r.centroids.len(), k);
    }

    #[test]
    fn ari_is_one_for_relabelings(labels in prop::collection::vec(0usize..4, 2..20)) {
        // Permute label names: ARI must be exactly 1.
        let permuted: Vec<usize> = labels.iter().map(|&l| (l + 2) % 4).collect();
        let ari = adjusted_rand_index(&labels, &permuted);
        prop_assert!((ari - 1.0).abs() < 1e-9);
    }

    #[test]
    fn correlation_bounds(x in prop::collection::vec(-100.0f64..100.0, 3..30),
                          y in prop::collection::vec(-100.0f64..100.0, 3..30)) {
        let n = x.len().min(y.len());
        let p = pearson(&x[..n], &y[..n]);
        let s = spearman(&x[..n], &y[..n]);
        prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&p));
        prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&s));
    }
}
