//! K-medoids (PAM — Partitioning Around Medoids, Kaufman & Rousseeuw).
//!
//! Unlike k-means, PAM operates directly on a precomputed distance matrix
//! and its centers are actual observations — the appropriate flat-
//! clustering baseline for categorical data like the cuisine pattern
//! vectors, where the paper shows k-means' elbow analysis fails. The
//! implementation is the classic BUILD + SWAP:
//!
//! * **BUILD** greedily selects `k` initial medoids minimizing total
//!   assignment cost;
//! * **SWAP** repeatedly applies the single (medoid, non-medoid) exchange
//!   with the largest cost reduction until no exchange improves.

use serde::{Deserialize, Serialize};

use crate::condensed::CondensedMatrix;

/// Result of a PAM run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KMedoidsResult {
    /// Indices of the chosen medoids, sorted ascending.
    pub medoids: Vec<usize>,
    /// Cluster label per point (`labels[i]` indexes into `medoids`).
    pub labels: Vec<usize>,
    /// Total distance of points to their medoid.
    pub cost: f64,
    /// SWAP iterations performed.
    pub iterations: usize,
}

/// Run PAM on a precomputed distance matrix.
///
/// # Panics
/// If `k` is 0 or exceeds the number of points.
pub fn kmedoids(dist: &CondensedMatrix, k: usize, max_iter: usize) -> KMedoidsResult {
    let n = dist.len();
    assert!(k >= 1 && k <= n, "k must be in 1..=n");

    // BUILD: first medoid minimizes total distance; each further medoid
    // maximizes the cost reduction it brings.
    let mut medoids: Vec<usize> = Vec::with_capacity(k);
    let first = (0..n)
        .min_by(|&a, &b| {
            let ca: f64 = (0..n).map(|j| dist.get(a, j)).sum();
            let cb: f64 = (0..n).map(|j| dist.get(b, j)).sum();
            ca.partial_cmp(&cb).unwrap_or(std::cmp::Ordering::Equal)
        })
        .expect("n >= 1");
    medoids.push(first);
    // nearest[i] = distance of i to its closest chosen medoid.
    let mut nearest: Vec<f64> = (0..n).map(|i| dist.get(i, first)).collect();
    while medoids.len() < k {
        let candidate = (0..n)
            .filter(|i| !medoids.contains(i))
            .max_by(|&a, &b| {
                let gain = |c: usize| -> f64 {
                    (0..n).map(|j| (nearest[j] - dist.get(c, j)).max(0.0)).sum()
                };
                gain(a)
                    .partial_cmp(&gain(b))
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .expect("non-medoid remains");
        medoids.push(candidate);
        for (j, near) in nearest.iter_mut().enumerate() {
            *near = near.min(dist.get(candidate, j));
        }
    }

    // SWAP: steepest-descent exchanges.
    let assignment_cost = |medoids: &[usize]| -> f64 {
        (0..n)
            .map(|i| {
                medoids
                    .iter()
                    .map(|&m| dist.get(i, m))
                    .fold(f64::INFINITY, f64::min)
            })
            .sum()
    };
    let mut cost = assignment_cost(&medoids);
    let mut iterations = 0;
    for _ in 0..max_iter {
        iterations += 1;
        let mut best: Option<(usize, usize, f64)> = None; // (medoid idx, candidate, new cost)
        for mi in 0..medoids.len() {
            for candidate in 0..n {
                if medoids.contains(&candidate) {
                    continue;
                }
                let old = medoids[mi];
                medoids[mi] = candidate;
                let new_cost = assignment_cost(&medoids);
                medoids[mi] = old;
                if new_cost < cost - 1e-12 && best.is_none_or(|(_, _, bc)| new_cost < bc) {
                    best = Some((mi, candidate, new_cost));
                }
            }
        }
        match best {
            Some((mi, candidate, new_cost)) => {
                medoids[mi] = candidate;
                cost = new_cost;
            }
            None => break,
        }
    }

    medoids.sort_unstable();
    let labels: Vec<usize> = (0..n)
        .map(|i| {
            medoids
                .iter()
                .enumerate()
                .min_by(|(_, &a), (_, &b)| {
                    dist.get(i, a)
                        .partial_cmp(&dist.get(i, b))
                        .unwrap_or(std::cmp::Ordering::Equal)
                })
                .map(|(idx, _)| idx)
                .expect("k >= 1")
        })
        .collect();
    KMedoidsResult {
        medoids,
        labels,
        cost,
        iterations,
    }
}

/// Total-cost curve for `k = 1..=k_max` — the PAM analogue of the elbow
/// sweep.
pub fn cost_sweep(dist: &CondensedMatrix, k_max: usize, max_iter: usize) -> Vec<f64> {
    (1..=k_max.min(dist.len()))
        .map(|k| kmedoids(dist, k, max_iter).cost)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::Metric;

    fn blobs() -> Vec<Vec<f64>> {
        let mut pts = Vec::new();
        for i in 0..8 {
            pts.push(vec![(i % 4) as f64 * 0.1, 0.0]);
            pts.push(vec![(i % 4) as f64 * 0.1 + 20.0, 20.0]);
        }
        pts
    }

    #[test]
    fn separates_two_blobs_with_zero_mixing() {
        let pts = blobs();
        let d = CondensedMatrix::pdist(&pts, Metric::Euclidean);
        let r = kmedoids(&d, 2, 50);
        assert_eq!(r.medoids.len(), 2);
        // Even indices are blob A, odd are blob B.
        for i in (0..pts.len()).step_by(2) {
            assert_eq!(r.labels[i], r.labels[0]);
        }
        for i in (1..pts.len()).step_by(2) {
            assert_eq!(r.labels[i], r.labels[1]);
        }
        assert_ne!(r.labels[0], r.labels[1]);
    }

    #[test]
    fn medoids_are_members_and_self_assigned() {
        let pts = blobs();
        let d = CondensedMatrix::pdist(&pts, Metric::Euclidean);
        let r = kmedoids(&d, 3, 50);
        for (idx, &m) in r.medoids.iter().enumerate() {
            assert!(m < pts.len());
            assert_eq!(r.labels[m], idx, "medoid must be in its own cluster");
        }
    }

    #[test]
    fn k_equals_one_picks_the_most_central_point() {
        let pts = vec![vec![0.0], vec![1.0], vec![2.0], vec![10.0]];
        let d = CondensedMatrix::pdist(&pts, Metric::Euclidean);
        let r = kmedoids(&d, 1, 50);
        // Point 1 or 2 minimises total distance; 1: 0+... (1+0+1+9=11), 2: (2+1+0+8=11) tie -> first.
        assert!(r.medoids[0] == 1 || r.medoids[0] == 2);
        assert!(r.labels.iter().all(|&l| l == 0));
    }

    #[test]
    fn k_equals_n_costs_zero() {
        let pts = vec![vec![0.0], vec![5.0], vec![9.0]];
        let d = CondensedMatrix::pdist(&pts, Metric::Euclidean);
        let r = kmedoids(&d, 3, 50);
        assert!(r.cost < 1e-12);
        assert_eq!(r.medoids, vec![0, 1, 2]);
    }

    #[test]
    fn cost_sweep_is_nonincreasing() {
        let pts: Vec<Vec<f64>> = (0..15)
            .map(|i| vec![(i as f64 * 1.3).sin() * 6.0, (i as f64 * 2.1).cos() * 6.0])
            .collect();
        let d = CondensedMatrix::pdist(&pts, Metric::Euclidean);
        let curve = cost_sweep(&d, 8, 50);
        for w in curve.windows(2) {
            assert!(w[1] <= w[0] + 1e-9, "{curve:?}");
        }
    }

    #[test]
    fn swap_improves_over_build() {
        // A configuration where greedy BUILD is suboptimal: SWAP must not
        // increase cost.
        let pts: Vec<Vec<f64>> = (0..12)
            .map(|i| vec![((i * 7) % 12) as f64, ((i * 5) % 12) as f64])
            .collect();
        let d = CondensedMatrix::pdist(&pts, Metric::Euclidean);
        let r = kmedoids(&d, 3, 100);
        assert!(r.iterations >= 1);
        assert!(r.cost >= 0.0);
    }

    #[test]
    #[should_panic(expected = "k must be in 1..=n")]
    fn k_zero_rejected() {
        let d = CondensedMatrix::from_condensed(2, vec![1.0]);
        let _ = kmedoids(&d, 0, 10);
    }
}
