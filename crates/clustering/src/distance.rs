//! Vector distance metrics.
//!
//! The paper clusters cuisines under Euclidean, Cosine and Jaccard
//! distances (its equations 3–5 are informal; we implement the standard
//! definitions, which is also what the paper's scipy `pdist` call
//! computes). Manhattan and Hamming are included for ablations.

use serde::{Deserialize, Serialize};

/// A distance metric over `f64` vectors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Metric {
    /// `sqrt(Σ (aᵢ − bᵢ)²)`.
    Euclidean,
    /// `1 − a·b / (‖a‖‖b‖)`; 0 for two zero vectors, 1 when exactly one
    /// is zero.
    Cosine,
    /// On the supports (non-zero coordinates): `1 − |A∩B| / |A∪B|`;
    /// 0 when both vectors are all-zero.
    Jaccard,
    /// `Σ |aᵢ − bᵢ|`.
    Manhattan,
    /// Number of coordinates at which the vectors differ.
    Hamming,
}

impl Metric {
    /// All metrics, for sweeps.
    pub const ALL: [Metric; 5] = [
        Metric::Euclidean,
        Metric::Cosine,
        Metric::Jaccard,
        Metric::Manhattan,
        Metric::Hamming,
    ];

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            Metric::Euclidean => "euclidean",
            Metric::Cosine => "cosine",
            Metric::Jaccard => "jaccard",
            Metric::Manhattan => "manhattan",
            Metric::Hamming => "hamming",
        }
    }

    /// Distance between two equal-length vectors.
    ///
    /// # Panics
    /// If the vectors have different lengths.
    pub fn distance(self, a: &[f64], b: &[f64]) -> f64 {
        assert_eq!(a.len(), b.len(), "vectors must have equal length");
        match self {
            Metric::Euclidean => a
                .iter()
                .zip(b)
                .map(|(x, y)| (x - y) * (x - y))
                .sum::<f64>()
                .sqrt(),
            Metric::Manhattan => a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum(),
            Metric::Hamming => a
                .iter()
                .zip(b)
                .filter(|(x, y)| (*x - *y).abs() > f64::EPSILON)
                .count() as f64,
            Metric::Cosine => {
                let dot: f64 = a.iter().zip(b).map(|(x, y)| x * y).sum();
                let na: f64 = a.iter().map(|x| x * x).sum::<f64>().sqrt();
                let nb: f64 = b.iter().map(|x| x * x).sum::<f64>().sqrt();
                if na == 0.0 && nb == 0.0 {
                    0.0
                } else if na == 0.0 || nb == 0.0 {
                    1.0
                } else {
                    // Clamp for numerical safety: dot/(na·nb) ∈ [−1, 1].
                    (1.0 - (dot / (na * nb)).clamp(-1.0, 1.0)).max(0.0)
                }
            }
            Metric::Jaccard => {
                let mut inter = 0usize;
                let mut union = 0usize;
                for (x, y) in a.iter().zip(b) {
                    let xa = x.abs() > f64::EPSILON;
                    let ya = y.abs() > f64::EPSILON;
                    if xa || ya {
                        union += 1;
                        if xa && ya {
                            inter += 1;
                        }
                    }
                }
                if union == 0 {
                    0.0
                } else {
                    1.0 - inter as f64 / union as f64
                }
            }
        }
    }
}

impl std::fmt::Display for Metric {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Jaccard distance between two sorted id sets (set form, used for
/// pattern-set distances without materializing vectors).
pub fn jaccard_sets(a: &[u32], b: &[u32]) -> f64 {
    debug_assert!(a.windows(2).all(|w| w[0] < w[1]));
    debug_assert!(b.windows(2).all(|w| w[0] < w[1]));
    let (mut i, mut j, mut inter) = (0usize, 0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                inter += 1;
                i += 1;
                j += 1;
            }
        }
    }
    let union = a.len() + b.len() - inter;
    if union == 0 {
        0.0
    } else {
        1.0 - inter as f64 / union as f64
    }
}

/// Great-circle (haversine) distance in kilometres between two
/// `(latitude, longitude)` points in degrees. Used for the paper's
/// geographical validation tree (Figure 6).
pub fn haversine_km(a: (f64, f64), b: (f64, f64)) -> f64 {
    const R: f64 = 6371.0;
    let (lat1, lon1) = (a.0.to_radians(), a.1.to_radians());
    let (lat2, lon2) = (b.0.to_radians(), b.1.to_radians());
    let dlat = lat2 - lat1;
    let dlon = lon2 - lon1;
    let h = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
    2.0 * R * h.sqrt().asin()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn euclidean_basics() {
        assert!((Metric::Euclidean.distance(&[0.0, 0.0], &[3.0, 4.0]) - 5.0).abs() < 1e-12);
        assert_eq!(Metric::Euclidean.distance(&[1.0], &[1.0]), 0.0);
    }

    #[test]
    fn manhattan_and_hamming() {
        assert!((Metric::Manhattan.distance(&[1.0, -1.0], &[0.0, 1.0]) - 3.0).abs() < 1e-12);
        assert_eq!(
            Metric::Hamming.distance(&[1.0, 2.0, 3.0], &[1.0, 0.0, 3.0]),
            1.0
        );
    }

    #[test]
    fn cosine_identical_orthogonal_and_zero() {
        assert!(Metric::Cosine.distance(&[1.0, 2.0], &[2.0, 4.0]).abs() < 1e-12);
        assert!((Metric::Cosine.distance(&[1.0, 0.0], &[0.0, 1.0]) - 1.0).abs() < 1e-12);
        assert_eq!(Metric::Cosine.distance(&[0.0, 0.0], &[0.0, 0.0]), 0.0);
        assert_eq!(Metric::Cosine.distance(&[0.0, 0.0], &[1.0, 0.0]), 1.0);
        // Opposite vectors: distance 2.
        assert!((Metric::Cosine.distance(&[1.0], &[-1.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn jaccard_vector_form() {
        // supports {0,1} vs {1,2}: intersection 1, union 3.
        let d = Metric::Jaccard.distance(&[1.0, 1.0, 0.0], &[0.0, 1.0, 1.0]);
        assert!((d - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(Metric::Jaccard.distance(&[0.0], &[0.0]), 0.0);
        assert_eq!(Metric::Jaccard.distance(&[1.0], &[1.0]), 0.0);
    }

    #[test]
    fn jaccard_set_form_matches_vector_form() {
        let a = [0u32, 1];
        let b = [1u32, 2];
        assert!((jaccard_sets(&a, &b) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(jaccard_sets(&[], &[]), 0.0);
        assert_eq!(jaccard_sets(&[1], &[]), 1.0);
    }

    #[test]
    fn metric_axioms_spot_check() {
        let vs = [
            vec![0.0, 1.0, 2.0],
            vec![1.0, 1.0, 0.0],
            vec![-1.0, 0.5, 2.0],
        ];
        for m in Metric::ALL {
            for a in &vs {
                assert!(m.distance(a, a).abs() < 1e-12, "{m}: d(x,x)=0");
                for b in &vs {
                    let d1 = m.distance(a, b);
                    let d2 = m.distance(b, a);
                    assert!((d1 - d2).abs() < 1e-12, "{m}: symmetry");
                    assert!(d1 >= 0.0, "{m}: non-negativity");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn length_mismatch_panics() {
        Metric::Euclidean.distance(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn haversine_known_distances() {
        // London (51.5, -0.13) to Paris (48.85, 2.35): ~344 km.
        let d = haversine_km((51.5074, -0.1278), (48.8566, 2.3522));
        assert!((330.0..360.0).contains(&d), "London-Paris {d}");
        // Same point -> 0.
        assert!(haversine_km((10.0, 20.0), (10.0, 20.0)).abs() < 1e-9);
        // Antipodal-ish: half circumference ~ 20015 km.
        let d = haversine_km((0.0, 0.0), (0.0, 180.0));
        assert!((20000.0..20030.0).contains(&d));
    }

    #[test]
    fn display_names() {
        assert_eq!(Metric::Euclidean.to_string(), "euclidean");
        assert_eq!(Metric::Jaccard.to_string(), "jaccard");
    }
}
