//! `pdist`-style condensed distance matrices.
//!
//! A symmetric zero-diagonal `n × n` distance matrix is stored as the
//! `n(n−1)/2` upper-triangle entries in row-major order — the exact layout
//! of `scipy.spatial.distance.pdist`, which the paper feeds to its
//! hierarchical clustering.

use serde::{Deserialize, Serialize};

use crate::distance::Metric;

/// A condensed (upper-triangle) pairwise distance matrix over `n` points.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CondensedMatrix {
    n: usize,
    data: Vec<f64>,
}

impl CondensedMatrix {
    /// Build from a closure giving the distance for each pair `i < j`.
    pub fn from_fn(n: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(n * n.saturating_sub(1) / 2);
        for i in 0..n {
            for j in (i + 1)..n {
                data.push(f(i, j));
            }
        }
        CondensedMatrix { n, data }
    }

    /// `pdist`: pairwise distances between rows of `points` under `metric`.
    ///
    /// # Panics
    /// If rows have inconsistent lengths.
    pub fn pdist(points: &[Vec<f64>], metric: Metric) -> Self {
        Self::from_fn(points.len(), |i, j| metric.distance(&points[i], &points[j]))
    }

    /// Parallel [`CondensedMatrix::from_fn`]: each row `i` of the upper
    /// triangle (`n − 1 − i` entries) is computed independently on a
    /// scoped thread pool and the segments are concatenated in row order,
    /// so the result is **byte-identical** to the sequential `from_fn`
    /// for any thread count — every entry is produced by the same single
    /// call `f(i, j)`, only on a different thread. Rows are claimed
    /// longest-first (row 0 is the widest).
    pub fn par_from_fn(n: usize, threads: usize, f: impl Fn(usize, usize) -> f64 + Sync) -> Self {
        if threads <= 1 || n < 3 {
            return Self::from_fn(n, f);
        }
        let rows = n.saturating_sub(1);
        // Row i has n-1-i entries: ascending index order is already the
        // descending-cost claim order.
        let segments: Vec<Vec<f64>> =
            par::map(threads, rows, |i| ((i + 1)..n).map(|j| f(i, j)).collect());
        let mut data = Vec::with_capacity(n * n.saturating_sub(1) / 2);
        for segment in segments {
            data.extend(segment);
        }
        CondensedMatrix { n, data }
    }

    /// Parallel [`CondensedMatrix::pdist`] over `threads` workers;
    /// byte-identical to the sequential form (see [`Self::par_from_fn`]).
    ///
    /// # Panics
    /// If rows have inconsistent lengths.
    pub fn par_pdist(points: &[Vec<f64>], metric: Metric, threads: usize) -> Self {
        Self::par_from_fn(points.len(), threads, |i, j| {
            metric.distance(&points[i], &points[j])
        })
    }

    /// Build from raw condensed data.
    ///
    /// # Panics
    /// If `data.len() != n(n−1)/2`. Degenerate sizes are well-defined:
    /// `n = 0` and `n = 1` both require an empty `data` (the naive
    /// `n * (n - 1) / 2` would underflow at `n = 0`).
    pub fn from_condensed(n: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            n * n.saturating_sub(1) / 2,
            "condensed length mismatch for n={n}"
        );
        CondensedMatrix { n, data }
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether there are no points.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The condensed entries (upper triangle, row-major).
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Index of pair `(i, j)`, `i ≠ j`, in the condensed layout.
    fn index(&self, i: usize, j: usize) -> usize {
        debug_assert!(i != j && i < self.n && j < self.n);
        let (i, j) = if i < j { (i, j) } else { (j, i) };
        // offset of row i = i*n - i(i+1)/2 ; column offset = j - i - 1.
        i * self.n - i * (i + 1) / 2 + (j - i - 1)
    }

    /// Distance between points `i` and `j` (0 when `i == j`).
    pub fn get(&self, i: usize, j: usize) -> f64 {
        if i == j {
            return 0.0;
        }
        self.data[self.index(i, j)]
    }

    /// Set the distance between `i` and `j`.
    ///
    /// # Panics
    /// If `i == j`.
    pub fn set(&mut self, i: usize, j: usize, value: f64) {
        assert!(i != j, "diagonal is fixed at zero");
        let idx = self.index(i, j);
        self.data[idx] = value;
    }

    /// Apply `f` to every entry (e.g. squaring for Ward linkage).
    pub fn map(&self, f: impl Fn(f64) -> f64) -> CondensedMatrix {
        CondensedMatrix {
            n: self.n,
            data: self.data.iter().map(|&d| f(d)).collect(),
        }
    }

    /// Expand to a full square matrix.
    pub fn to_square(&self) -> Vec<Vec<f64>> {
        (0..self.n)
            .map(|i| (0..self.n).map(|j| self.get(i, j)).collect())
            .collect()
    }

    /// Iterate `(i, j, distance)` over all pairs `i < j`.
    pub fn iter_pairs(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        (0..self.n).flat_map(move |i| ((i + 1)..self.n).map(move |j| (i, j, self.get(i, j))))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_matches_scipy_pdist_order() {
        // For n=4 the condensed order is (0,1),(0,2),(0,3),(1,2),(1,3),(2,3).
        let m = CondensedMatrix::from_fn(4, |i, j| (10 * i + j) as f64);
        assert_eq!(m.data(), &[1.0, 2.0, 3.0, 12.0, 13.0, 23.0]);
        assert_eq!(m.get(1, 3), 13.0);
        assert_eq!(m.get(3, 1), 13.0, "symmetric access");
        assert_eq!(m.get(2, 2), 0.0);
    }

    #[test]
    fn pdist_euclidean() {
        let pts = vec![vec![0.0, 0.0], vec![3.0, 4.0], vec![0.0, 1.0]];
        let m = CondensedMatrix::pdist(&pts, Metric::Euclidean);
        assert!((m.get(0, 1) - 5.0).abs() < 1e-12);
        assert!((m.get(0, 2) - 1.0).abs() < 1e-12);
        assert_eq!(m.len(), 3);
        assert!(!m.is_empty());
    }

    #[test]
    fn set_and_map() {
        let mut m = CondensedMatrix::from_fn(3, |_, _| 2.0);
        m.set(0, 2, 7.0);
        assert_eq!(m.get(2, 0), 7.0);
        let sq = m.map(|d| d * d);
        assert_eq!(sq.get(0, 2), 49.0);
        assert_eq!(sq.get(0, 1), 4.0);
    }

    #[test]
    fn to_square_is_symmetric_zero_diagonal() {
        let m = CondensedMatrix::from_fn(3, |i, j| (i + j) as f64);
        let sq = m.to_square();
        for (i, row) in sq.iter().enumerate() {
            assert_eq!(row[i], 0.0);
            for (j, &v) in row.iter().enumerate() {
                assert_eq!(v, sq[j][i]);
            }
        }
    }

    #[test]
    fn iter_pairs_covers_upper_triangle() {
        let m = CondensedMatrix::from_fn(4, |i, j| (i * 4 + j) as f64);
        let pairs: Vec<(usize, usize, f64)> = m.iter_pairs().collect();
        assert_eq!(pairs.len(), 6);
        assert!(pairs.iter().all(|&(i, j, _)| i < j));
    }

    #[test]
    fn par_from_fn_is_byte_identical_to_sequential() {
        let f = |i: usize, j: usize| ((i * 31 + j * 17) as f64).sin() / (j as f64);
        let seq = CondensedMatrix::from_fn(40, f);
        for threads in [1, 2, 3, 8] {
            let par = CondensedMatrix::par_from_fn(40, threads, f);
            assert_eq!(seq, par, "threads={threads}");
            // PartialEq on f64 vecs is exact bit-level equality except
            // for NaN/-0.0; double-check the bits to make the contract
            // explicit.
            for (a, b) in seq.data().iter().zip(par.data()) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn par_pdist_matches_pdist_exactly() {
        let pts: Vec<Vec<f64>> = (0..30)
            .map(|i| (0..5).map(|d| ((i * 7 + d * 3) as f64).cos()).collect())
            .collect();
        for metric in [Metric::Euclidean, Metric::Cosine, Metric::Jaccard] {
            let seq = CondensedMatrix::pdist(&pts, metric);
            let par = CondensedMatrix::par_pdist(&pts, metric, 4);
            assert_eq!(seq, par, "{metric:?}");
        }
    }

    #[test]
    fn par_from_fn_tiny_inputs() {
        assert!(CondensedMatrix::par_from_fn(0, 4, |_, _| 1.0).is_empty());
        assert_eq!(CondensedMatrix::par_from_fn(1, 4, |_, _| 1.0).len(), 1);
        let two = CondensedMatrix::par_from_fn(2, 4, |i, j| (i + j) as f64);
        assert_eq!(two.get(0, 1), 1.0);
    }

    #[test]
    #[should_panic(expected = "condensed length mismatch")]
    fn from_condensed_checks_length() {
        let _ = CondensedMatrix::from_condensed(4, vec![0.0; 5]);
    }

    #[test]
    fn from_condensed_degenerate_sizes() {
        // n = 0: the length check must not underflow.
        let empty = CondensedMatrix::from_condensed(0, Vec::new());
        assert!(empty.is_empty());
        assert_eq!(empty.to_square(), Vec::<Vec<f64>>::new());
        assert_eq!(empty.iter_pairs().count(), 0);
        // n = 1: a single point has no pairs but a well-defined square.
        let one = CondensedMatrix::from_condensed(1, Vec::new());
        assert_eq!(one.len(), 1);
        assert!(!one.is_empty());
        assert_eq!(one.get(0, 0), 0.0);
        assert_eq!(one.to_square(), vec![vec![0.0]]);
        assert_eq!(one.iter_pairs().count(), 0);
    }

    #[test]
    #[should_panic(expected = "condensed length mismatch")]
    fn from_condensed_rejects_data_for_zero_points() {
        let _ = CondensedMatrix::from_condensed(0, vec![1.0]);
    }

    #[test]
    #[should_panic(expected = "diagonal")]
    fn set_diagonal_panics() {
        let mut m = CondensedMatrix::from_fn(3, |_, _| 1.0);
        m.set(1, 1, 5.0);
    }
}
