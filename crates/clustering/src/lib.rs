//! # clustering — hierarchical agglomerative clustering, k-means and
//! validation indices, from scratch
//!
//! This crate is the clustering substrate of the cuisine-atlas
//! reproduction. It provides the pieces the paper gets from scipy /
//! scikit-learn, re-implemented and tested:
//!
//! * [`distance`] — Euclidean, Cosine, Jaccard (the paper's three
//!   metrics), plus Manhattan and Hamming;
//! * [`condensed`] — `pdist`-style condensed distance matrices;
//! * [`hac`] — agglomerative clustering with single / complete / average /
//!   weighted / ward / centroid / median linkage via the Lance–Williams
//!   recurrence (`scipy.cluster.hierarchy.linkage` equivalent), plus the
//!   O(n²) nearest-neighbour-chain driver ([`nnchain`]) for reducible
//!   methods;
//! * [`dendrogram`] — the merge tree: leaf ordering, cutting, cophenetic
//!   distances, ASCII rendering and Newick export;
//! * [`kmeans`] — Lloyd's algorithm with k-means++ seeding, WCSS and the
//!   elbow sweep of the paper's Figure 1;
//! * [`kmedoids`] — PAM over precomputed distances (the flat-clustering
//!   baseline appropriate for categorical data);
//! * [`kselect`] — silhouette sweeps and the gap statistic for choosing
//!   k (corroborating Figure 1's "no elbow" finding);
//! * [`validation`] — cophenetic correlation, Baker's gamma, silhouette,
//!   Adjusted Rand Index and Fowlkes–Mallows;
//! * [`treecmp`] — Robinson–Foulds clade distance and the Fowlkes–Mallows
//!   Bₖ curve for dendrogram-vs-dendrogram validation;
//! * [`encode`] — label encoding and binary incidence vectorization (the
//!   paper's pattern-to-feature-vector step).
//!
//! ```
//! use clustering::condensed::CondensedMatrix;
//! use clustering::hac::{linkage, LinkageMethod};
//! use clustering::dendrogram::Dendrogram;
//!
//! // Three points on a line: 0 and 1 are close, 2 is far.
//! let d = CondensedMatrix::from_fn(3, |i, j| (i as f64 - j as f64).abs() * (j as f64));
//! let merges = linkage(&d, LinkageMethod::Average);
//! let tree = Dendrogram::from_merges(3, &merges);
//! assert_eq!(tree.leaf_order().len(), 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod condensed;
pub mod dendrogram;
pub mod distance;
pub mod encode;
pub mod hac;
pub mod kmeans;
pub mod kmedoids;
pub mod kselect;
pub mod nnchain;
pub mod slink;
pub mod treecmp;
pub mod validation;

pub use condensed::CondensedMatrix;
pub use dendrogram::Dendrogram;
pub use distance::Metric;
pub use hac::{linkage, LinkageMethod, Merge};
