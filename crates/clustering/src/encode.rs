//! Categorical encoding: the paper's label-encoding / vectorization step.
//!
//! The paper collects all per-cuisine "string patterns" into a unique set,
//! label-encodes them, and turns each cuisine's pattern collection into a
//! feature vector. [`LabelEncoder`] is the `sklearn.preprocessing.
//! LabelEncoder` equivalent; [`incidence_matrix`] and
//! [`weighted_incidence_matrix`] build binary / support-weighted
//! entity × vocabulary matrices from encoded id lists.

use std::collections::HashMap;
use std::hash::Hash;

/// Maps hashable categorical values to dense `usize` codes.
#[derive(Debug, Clone, Default)]
pub struct LabelEncoder<T: Eq + Hash + Clone> {
    codes: HashMap<T, usize>,
    values: Vec<T>,
}

impl<T: Eq + Hash + Clone> LabelEncoder<T> {
    /// An empty encoder.
    pub fn new() -> Self {
        LabelEncoder {
            codes: HashMap::new(),
            values: Vec::new(),
        }
    }

    /// Encode a value, assigning a fresh code on first sight.
    pub fn fit_transform_one(&mut self, value: &T) -> usize {
        if let Some(&c) = self.codes.get(value) {
            return c;
        }
        let c = self.values.len();
        self.codes.insert(value.clone(), c);
        self.values.push(value.clone());
        c
    }

    /// Encode a batch.
    pub fn fit_transform(&mut self, values: impl IntoIterator<Item = T>) -> Vec<usize> {
        values
            .into_iter()
            .map(|v| self.fit_transform_one(&v))
            .collect()
    }

    /// Look up the code of an already-seen value.
    pub fn transform(&self, value: &T) -> Option<usize> {
        self.codes.get(value).copied()
    }

    /// Decode a code back to its value.
    pub fn inverse(&self, code: usize) -> Option<&T> {
        self.values.get(code)
    }

    /// Vocabulary size.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the vocabulary is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The vocabulary in code order.
    pub fn vocabulary(&self) -> &[T] {
        &self.values
    }
}

/// Build a binary incidence matrix: `rows[i]` contains the codes present
/// for entity `i`; the result is an `n × vocab_size` 0/1 matrix.
pub fn incidence_matrix(rows: &[Vec<usize>], vocab_size: usize) -> Vec<Vec<f64>> {
    rows.iter()
        .map(|codes| {
            let mut v = vec![0.0; vocab_size];
            for &c in codes {
                assert!(c < vocab_size, "code {c} out of vocabulary {vocab_size}");
                v[c] = 1.0;
            }
            v
        })
        .collect()
}

/// Build a weighted incidence matrix from `(code, weight)` pairs (e.g.
/// pattern supports). Later duplicates overwrite earlier ones.
pub fn weighted_incidence_matrix(rows: &[Vec<(usize, f64)>], vocab_size: usize) -> Vec<Vec<f64>> {
    rows.iter()
        .map(|pairs| {
            let mut v = vec![0.0; vocab_size];
            for &(c, w) in pairs {
                assert!(c < vocab_size, "code {c} out of vocabulary {vocab_size}");
                v[c] = w;
            }
            v
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encoder_assigns_dense_stable_codes() {
        let mut enc = LabelEncoder::new();
        let a = enc.fit_transform_one(&"soy sauce");
        let b = enc.fit_transform_one(&"butter");
        let a2 = enc.fit_transform_one(&"soy sauce");
        assert_eq!(a, a2);
        assert_eq!((a, b), (0, 1));
        assert_eq!(enc.len(), 2);
        assert!(!enc.is_empty());
        assert_eq!(enc.inverse(1), Some(&"butter"));
        assert_eq!(enc.transform(&"butter"), Some(1));
        assert_eq!(enc.transform(&"missing"), None);
        assert_eq!(enc.vocabulary(), &["soy sauce", "butter"]);
    }

    #[test]
    fn batch_encode() {
        let mut enc = LabelEncoder::new();
        let codes = enc.fit_transform(vec!["a", "b", "a", "c"]);
        assert_eq!(codes, vec![0, 1, 0, 2]);
    }

    #[test]
    fn incidence_is_binary() {
        let m = incidence_matrix(&[vec![0, 2], vec![1], vec![]], 3);
        assert_eq!(m[0], vec![1.0, 0.0, 1.0]);
        assert_eq!(m[1], vec![0.0, 1.0, 0.0]);
        assert_eq!(m[2], vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn weighted_incidence_carries_supports() {
        let m = weighted_incidence_matrix(&[vec![(0, 0.4), (2, 0.2)]], 3);
        assert_eq!(m[0], vec![0.4, 0.0, 0.2]);
    }

    #[test]
    #[should_panic(expected = "out of vocabulary")]
    fn incidence_checks_bounds() {
        let _ = incidence_matrix(&[vec![5]], 3);
    }
}
