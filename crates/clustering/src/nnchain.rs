//! The nearest-neighbour-chain HAC algorithm (Benzécri / Murtagh):
//! guaranteed **O(n²)** agglomeration for *reducible* linkage methods
//! (single, complete, average, weighted, Ward) — the algorithm behind
//! `scipy.cluster.hierarchy.linkage`'s fast paths.
//!
//! The chain invariant: follow nearest-neighbour pointers until a
//! *reciprocal* pair is found; for reducible linkages a reciprocal
//! nearest-neighbour pair can be merged immediately without invalidating
//! the rest of the chain. Merges are discovered out of height order and
//! sorted afterwards (the scipy convention), so the output is the same
//! `Z`-matrix shape as [`crate::hac::linkage`].

use crate::condensed::CondensedMatrix;
use crate::hac::{LinkageMethod, Merge};

/// Run NN-chain agglomeration. Produces exactly the merge heights of
/// [`crate::hac::linkage`] for the same (reducible) method.
///
/// # Panics
/// If the matrix has fewer than 2 points, or `method` is not reducible
/// (centroid and median linkage can invert, which breaks the chain
/// invariant).
pub fn nn_chain_linkage(dist: &CondensedMatrix, method: LinkageMethod) -> Vec<Merge> {
    let n = dist.len();
    assert!(n >= 2, "need at least 2 points to cluster");
    assert!(
        method.is_monotone(),
        "nn-chain requires a reducible linkage method, got {method}"
    );

    let working = if method.squares_internally() {
        dist.map(|d| d * d)
    } else {
        dist.clone()
    };
    let mut d = working.to_square();
    let mut active: Vec<bool> = vec![true; n];
    let mut size: Vec<f64> = vec![1.0; n];
    // Canonical representative (smallest original leaf) per active row.
    let mut rep: Vec<usize> = (0..n).collect();

    let mut chain: Vec<usize> = Vec::with_capacity(n);
    let mut raw: Vec<(f64, usize, usize)> = Vec::with_capacity(n - 1);

    for _ in 0..(n - 1) {
        if chain.is_empty() {
            let start = active
                .iter()
                .position(|&a| a)
                .expect("an active cluster remains");
            chain.push(start);
        }
        loop {
            let top = *chain.last().expect("chain non-empty");
            // Nearest active neighbour; prefer the previous chain element
            // on ties so reciprocal pairs terminate.
            let prev = if chain.len() >= 2 {
                Some(chain[chain.len() - 2])
            } else {
                None
            };
            let mut best = usize::MAX;
            let mut best_d = f64::INFINITY;
            for (k, row) in d[top].iter().enumerate() {
                if k == top || !active[k] {
                    continue;
                }
                if *row < best_d || (*row == best_d && Some(k) == prev) {
                    best_d = *row;
                    best = k;
                }
            }
            debug_assert_ne!(best, usize::MAX);
            if Some(best) == prev {
                // Reciprocal pair: merge top with prev.
                chain.pop();
                chain.pop();
                let (i, j) = (top.min(best), top.max(best));
                let dij = d[i][j];
                let height = if method.squares_internally() {
                    dij.max(0.0).sqrt()
                } else {
                    dij
                };
                raw.push((height, rep[i], rep[j]));

                let (ni, nj) = (size[i], size[j]);
                active[j] = false;
                for k in 0..n {
                    if !active[k] || k == i {
                        continue;
                    }
                    let (ai, aj, beta, gamma) = method.lance_williams(ni, nj, size[k]);
                    let nd = ai * d[k][i]
                        + aj * d[k][j]
                        + beta * dij
                        + gamma * (d[k][i] - d[k][j]).abs();
                    d[k][i] = nd;
                    d[i][k] = nd;
                }
                size[i] = ni + nj;
                rep[i] = rep[i].min(rep[j]);
                break;
            }
            chain.push(best);
        }
        // Drop any deactivated entries that may linger at the chain tail.
        while let Some(&t) = chain.last() {
            if active[t] {
                break;
            }
            chain.pop();
        }
    }

    merges_from_weighted_pairs(n, raw)
}

/// Convert `(height, leaf_rep_a, leaf_rep_b)` triples — discovered in any
/// order — into a height-sorted scipy-style merge list via union-find.
/// Shared with the MST single-linkage path.
pub(crate) fn merges_from_weighted_pairs(
    n: usize,
    mut edges: Vec<(f64, usize, usize)>,
) -> Vec<Merge> {
    edges.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    let mut cluster_of: Vec<usize> = (0..n).collect();
    let mut sizes: Vec<usize> = vec![1; 2 * n - 1];
    let mut merges = Vec::with_capacity(n - 1);
    for (step, (w, u, v)) in edges.into_iter().enumerate() {
        let ru = find(&mut parent, u);
        let rv = find(&mut parent, v);
        debug_assert_ne!(ru, rv, "edge joins an already-merged pair");
        let (la, lb) = {
            let (x, y) = (cluster_of[ru], cluster_of[rv]);
            (x.min(y), x.max(y))
        };
        let new_label = n + step;
        let new_size = sizes[la] + sizes[lb];
        sizes[new_label] = new_size;
        merges.push(Merge {
            a: la,
            b: lb,
            distance: w,
            size: new_size,
        });
        parent[rv] = ru;
        cluster_of[ru] = new_label;
    }
    merges
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dendrogram::Dendrogram;
    use crate::distance::Metric;
    use crate::hac::linkage;

    fn scatter(n: usize, seed: u64) -> Vec<Vec<f64>> {
        // Deterministic pseudo-random points without pulling in rand here.
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 10_000) as f64 / 500.0 - 10.0
        };
        (0..n).map(|_| vec![next(), next(), next()]).collect()
    }

    fn reducible() -> [LinkageMethod; 5] {
        [
            LinkageMethod::Single,
            LinkageMethod::Complete,
            LinkageMethod::Average,
            LinkageMethod::Weighted,
            LinkageMethod::Ward,
        ]
    }

    #[test]
    fn heights_match_generic_linkage() {
        for seed in [3u64, 17, 99] {
            let pts = scatter(24, seed);
            let d = CondensedMatrix::pdist(&pts, Metric::Euclidean);
            for method in reducible() {
                let mut a: Vec<f64> = linkage(&d, method).iter().map(|m| m.distance).collect();
                let mut b: Vec<f64> = nn_chain_linkage(&d, method)
                    .iter()
                    .map(|m| m.distance)
                    .collect();
                a.sort_by(|x, y| x.partial_cmp(y).unwrap());
                b.sort_by(|x, y| x.partial_cmp(y).unwrap());
                for (x, y) in a.iter().zip(&b) {
                    assert!((x - y).abs() < 1e-9, "{method} seed {seed}: {x} vs {y}");
                }
            }
        }
    }

    #[test]
    fn cophenetic_structure_matches_generic_linkage() {
        // Beyond heights: the actual tree topology must agree (generic
        // data, no ties).
        let pts = scatter(18, 7);
        let d = CondensedMatrix::pdist(&pts, Metric::Euclidean);
        for method in reducible() {
            let t1 = Dendrogram::from_merges(18, &linkage(&d, method));
            let t2 = Dendrogram::from_merges(18, &nn_chain_linkage(&d, method));
            let (c1, c2) = (t1.cophenetic(), t2.cophenetic());
            for (i, j, v) in c1.iter_pairs() {
                assert!(
                    (v - c2.get(i, j)).abs() < 1e-9,
                    "{method}: cophenetic mismatch at ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn merges_are_height_sorted_and_well_formed() {
        let pts = scatter(15, 5);
        let d = CondensedMatrix::pdist(&pts, Metric::Euclidean);
        let merges = nn_chain_linkage(&d, LinkageMethod::Average);
        assert_eq!(merges.len(), 14);
        for w in merges.windows(2) {
            assert!(w[1].distance >= w[0].distance - 1e-12);
        }
        assert_eq!(merges.last().unwrap().size, 15);
        // Valid dendrogram.
        let _ = Dendrogram::from_merges(15, &merges);
    }

    #[test]
    fn two_points() {
        let d = CondensedMatrix::from_condensed(2, vec![4.2]);
        let m = nn_chain_linkage(&d, LinkageMethod::Complete);
        assert_eq!(m.len(), 1);
        assert!((m[0].distance - 4.2).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "reducible")]
    fn centroid_is_rejected() {
        let d = CondensedMatrix::from_condensed(2, vec![1.0]);
        let _ = nn_chain_linkage(&d, LinkageMethod::Centroid);
    }
}
