//! K-means (Lloyd's algorithm) with k-means++ seeding, WCSS and the elbow
//! sweep.
//!
//! The paper applies k-means to its label-encoded categorical pattern
//! vectors and shows (Figure 1) that the elbow method fails — the WCSS
//! curve has no sharp knee — which motivates the hierarchical approach.
//! This module reproduces that machinery: [`kmeans`], [`elbow_sweep`] and
//! a quantified [`elbow_strength`] knee detector.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Result of one k-means run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KMeansResult {
    /// Cluster label per point, in `0..k`.
    pub labels: Vec<usize>,
    /// Cluster centroids, `k × dim`.
    pub centroids: Vec<Vec<f64>>,
    /// Within-cluster sum of squares (the elbow method's y-axis).
    pub wcss: f64,
    /// Lloyd iterations until convergence.
    pub iterations: usize,
}

/// Configuration for k-means.
#[derive(Debug, Clone)]
pub struct KMeansConfig {
    /// Number of clusters.
    pub k: usize,
    /// Maximum Lloyd iterations.
    pub max_iter: usize,
    /// Number of random restarts (best WCSS wins).
    pub n_init: usize,
    /// RNG seed.
    pub seed: u64,
}

impl KMeansConfig {
    /// A default configuration for `k` clusters.
    pub fn new(k: usize) -> Self {
        KMeansConfig {
            k,
            max_iter: 100,
            n_init: 4,
            seed: 42,
        }
    }

    /// Replace the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// k-means++ seeding (Arthur & Vassilvitskii, 2007): first centroid
/// uniform, subsequent ones proportional to squared distance from the
/// nearest chosen centroid.
fn kmeanspp_init(points: &[Vec<f64>], k: usize, rng: &mut StdRng) -> Vec<Vec<f64>> {
    let n = points.len();
    let mut centroids: Vec<Vec<f64>> = Vec::with_capacity(k);
    centroids.push(points[rng.gen_range(0..n)].clone());
    let mut d2: Vec<f64> = points.iter().map(|p| sq_dist(p, &centroids[0])).collect();
    while centroids.len() < k {
        let total: f64 = d2.iter().sum();
        let chosen = if total <= f64::EPSILON {
            // All points coincide with chosen centroids: pick uniformly.
            rng.gen_range(0..n)
        } else {
            let mut target = rng.gen_range(0.0..total);
            let mut idx = n - 1;
            for (i, &w) in d2.iter().enumerate() {
                if target < w {
                    idx = i;
                    break;
                }
                target -= w;
            }
            idx
        };
        centroids.push(points[chosen].clone());
        let new = centroids.last().expect("just pushed");
        for (i, p) in points.iter().enumerate() {
            d2[i] = d2[i].min(sq_dist(p, new));
        }
    }
    centroids
}

/// Run k-means with `n_init` k-means++ restarts, returning the best run.
///
/// # Panics
/// If `points` is empty, rows have unequal lengths, or `k` is 0 or larger
/// than the number of points.
pub fn kmeans(points: &[Vec<f64>], config: &KMeansConfig) -> KMeansResult {
    let n = points.len();
    assert!(n > 0, "no points");
    let dim = points[0].len();
    assert!(points.iter().all(|p| p.len() == dim), "ragged point matrix");
    assert!(config.k >= 1 && config.k <= n, "k must be in 1..=n");

    let mut best: Option<KMeansResult> = None;
    for restart in 0..config.n_init.max(1) {
        let mut rng = StdRng::seed_from_u64(config.seed.wrapping_add(restart as u64));
        let result = lloyd(points, config.k, config.max_iter, &mut rng);
        if best.as_ref().is_none_or(|b| result.wcss < b.wcss) {
            best = Some(result);
        }
    }
    best.expect("at least one restart")
}

fn lloyd(points: &[Vec<f64>], k: usize, max_iter: usize, rng: &mut StdRng) -> KMeansResult {
    let n = points.len();
    let dim = points[0].len();
    let mut centroids = kmeanspp_init(points, k, rng);
    let mut labels = vec![0usize; n];
    let mut iterations = 0;

    for it in 0..max_iter {
        iterations = it + 1;
        // Assignment step.
        let mut changed = false;
        for (i, p) in points.iter().enumerate() {
            let mut best_c = 0;
            let mut best_d = f64::INFINITY;
            for (c, centroid) in centroids.iter().enumerate() {
                let d = sq_dist(p, centroid);
                if d < best_d {
                    best_d = d;
                    best_c = c;
                }
            }
            if labels[i] != best_c {
                labels[i] = best_c;
                changed = true;
            }
        }
        if !changed && it > 0 {
            break;
        }
        // Update step.
        let mut sums = vec![vec![0.0; dim]; k];
        let mut counts = vec![0usize; k];
        for (i, p) in points.iter().enumerate() {
            counts[labels[i]] += 1;
            for (s, &x) in sums[labels[i]].iter_mut().zip(p) {
                *s += x;
            }
        }
        for c in 0..k {
            if counts[c] == 0 {
                // Empty cluster: reseed at the point farthest from its
                // centroid (standard fix).
                let (far, _) = points
                    .iter()
                    .enumerate()
                    .map(|(i, p)| (i, sq_dist(p, &centroids[labels[i]])))
                    .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
                    .expect("non-empty points");
                centroids[c] = points[far].clone();
            } else {
                for (j, s) in sums[c].iter().enumerate() {
                    centroids[c][j] = s / counts[c] as f64;
                }
            }
        }
    }

    let wcss = points
        .iter()
        .zip(&labels)
        .map(|(p, &l)| sq_dist(p, &centroids[l]))
        .sum();
    KMeansResult {
        labels,
        centroids,
        wcss,
        iterations,
    }
}

/// WCSS for each `k` in `1..=k_max` — the elbow curve of Figure 1.
pub fn elbow_sweep(points: &[Vec<f64>], k_max: usize, seed: u64) -> Vec<f64> {
    elbow_sweep_threads(points, k_max, seed, 1)
}

/// [`elbow_sweep`] over `threads` workers: each k's run is independently
/// seeded (`seed` plus the restart offset), so every k produces the exact
/// sequential result and the curve is identical for any thread count.
/// Larger k costs more, so k values are claimed in descending order.
pub fn elbow_sweep_threads(
    points: &[Vec<f64>],
    k_max: usize,
    seed: u64,
    threads: usize,
) -> Vec<f64> {
    let n_k = k_max.min(points.len());
    let claim_order: Vec<usize> = (0..n_k).rev().collect();
    par::map_claiming(threads, &claim_order, |i| {
        kmeans(points, &KMeansConfig::new(i + 1).with_seed(seed)).wcss
    })
}

/// Quantify how sharp the elbow of a WCSS curve is: the maximum normalized
/// second difference `(w[k−1] − w[k]) − (w[k] − w[k+1])` over the curve,
/// divided by `w[0]`. Values near 0 mean "no elbow" — the paper's Figure 1
/// finding; a clean two-cluster dataset scores far higher. Returns the
/// `(best_k, strength)` pair, or `None` for curves shorter than 3.
pub fn elbow_strength(wcss: &[f64]) -> Option<(usize, f64)> {
    if wcss.len() < 3 || wcss[0] <= 0.0 {
        return None;
    }
    let mut best = (0usize, f64::NEG_INFINITY);
    for k in 1..wcss.len() - 1 {
        let d2 = (wcss[k - 1] - wcss[k]) - (wcss[k] - wcss[k + 1]);
        if d2 > best.1 {
            best = (k + 1, d2); // k is 1-based cluster count here
        }
    }
    Some((best.0, best.1 / wcss[0]))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_blobs() -> Vec<Vec<f64>> {
        let mut pts = Vec::new();
        for i in 0..10 {
            pts.push(vec![0.0 + (i as f64) * 0.01, 0.0]);
            pts.push(vec![10.0 + (i as f64) * 0.01, 10.0]);
        }
        pts
    }

    #[test]
    fn separates_two_blobs() {
        let pts = two_blobs();
        let r = kmeans(&pts, &KMeansConfig::new(2));
        // Points alternate blob membership; labels must too.
        for i in (0..pts.len()).step_by(2) {
            assert_eq!(r.labels[i], r.labels[0]);
        }
        for i in (1..pts.len()).step_by(2) {
            assert_eq!(r.labels[i], r.labels[1]);
        }
        assert_ne!(r.labels[0], r.labels[1]);
        assert!(r.wcss < 1.0, "tight blobs -> small WCSS, got {}", r.wcss);
    }

    #[test]
    fn k_equals_one_centroid_is_mean() {
        let pts = vec![vec![0.0], vec![2.0], vec![4.0]];
        let r = kmeans(&pts, &KMeansConfig::new(1));
        assert!((r.centroids[0][0] - 2.0).abs() < 1e-9);
        assert!((r.wcss - 8.0).abs() < 1e-9);
        assert!(r.labels.iter().all(|&l| l == 0));
    }

    #[test]
    fn k_equals_n_zero_wcss() {
        let pts = vec![vec![0.0], vec![5.0], vec![9.0]];
        let r = kmeans(&pts, &KMeansConfig::new(3));
        assert!(r.wcss < 1e-12);
    }

    #[test]
    fn wcss_nonincreasing_in_k() {
        let pts: Vec<Vec<f64>> = (0..30)
            .map(|i| vec![(i as f64 * 1.7).sin() * 10.0, (i as f64 * 2.3).cos() * 10.0])
            .collect();
        let curve = elbow_sweep(&pts, 8, 7);
        for w in curve.windows(2) {
            // Allow tiny slack for local-minimum wiggle.
            assert!(
                w[1] <= w[0] * 1.05 + 1e-9,
                "WCSS rose: {} -> {}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn elbow_is_sharp_for_separated_blobs_and_detected_at_two() {
        let curve = elbow_sweep(&two_blobs(), 6, 3);
        let (k, strength) = elbow_strength(&curve).expect("curve long enough");
        assert_eq!(k, 2, "knee at k=2 for two blobs");
        assert!(strength > 0.1, "blobs give a sharp elbow, got {strength}");
    }

    #[test]
    fn elbow_is_flat_for_structureless_data() {
        // Uniform-ish scatter: no elbow.
        let pts: Vec<Vec<f64>> = (0..40)
            .map(|i| {
                vec![
                    ((i * 2654435761u64 as usize) % 1000) as f64 / 100.0,
                    ((i * 40503 + 7) % 1000) as f64 / 100.0,
                ]
            })
            .collect();
        let curve = elbow_sweep(&pts, 8, 5);
        let (_, strength) = elbow_strength(&curve).expect("curve long enough");
        assert!(
            strength < 0.2,
            "structureless data must have weak elbow, got {strength}"
        );
    }

    #[test]
    fn elbow_sweep_threads_matches_sequential_exactly() {
        let pts: Vec<Vec<f64>> = (0..24)
            .map(|i| vec![(i as f64 * 1.3).sin() * 5.0, (i as f64 * 0.7).cos() * 5.0])
            .collect();
        let seq = elbow_sweep(&pts, 8, 11);
        for threads in [2, 3, 8] {
            let par = elbow_sweep_threads(&pts, 8, 11, threads);
            assert_eq!(seq.len(), par.len());
            for (a, b) in seq.iter().zip(&par) {
                assert_eq!(a.to_bits(), b.to_bits(), "threads={threads}");
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let pts = two_blobs();
        let a = kmeans(&pts, &KMeansConfig::new(3).with_seed(9));
        let b = kmeans(&pts, &KMeansConfig::new(3).with_seed(9));
        assert_eq!(a, b);
    }

    #[test]
    fn elbow_strength_edge_cases() {
        assert!(elbow_strength(&[1.0, 0.5]).is_none());
        assert!(elbow_strength(&[0.0, 0.0, 0.0]).is_none());
    }

    #[test]
    #[should_panic(expected = "k must be in 1..=n")]
    fn k_larger_than_n_panics() {
        let _ = kmeans(&[vec![1.0]], &KMeansConfig::new(2));
    }
}
