//! Tree-to-tree comparison beyond Baker's gamma: **Robinson–Foulds**
//! distance over clades and the **Fowlkes–Mallows Bₖ curve** over
//! matching flat cuts — the "more sophisticated validation metrics" the
//! paper's future-work section asks for.

use std::collections::HashSet;

use crate::dendrogram::{Dendrogram, Node};
use crate::validation::fowlkes_mallows;

/// The set of non-trivial clades (leaf bipartitions) of a dendrogram:
/// every internal node except the root contributes the sorted set of
/// leaves below it.
pub fn clades(tree: &Dendrogram) -> HashSet<Vec<usize>> {
    let mut leafsets: Vec<Vec<usize>> = Vec::new();
    let mut out = HashSet::new();
    let n_nodes = 2 * tree.n_leaves() - 1;
    for id in 0..n_nodes {
        let set = match *tree.node(id) {
            Node::Leaf { index } => vec![index],
            Node::Internal { left, right, .. } => {
                let mut s = leafsets[left].clone();
                s.extend_from_slice(&leafsets[right]);
                s.sort_unstable();
                s
            }
        };
        // Non-trivial: more than one leaf, not the full leaf set (root).
        if set.len() > 1 && set.len() < tree.n_leaves() {
            out.insert(set.clone());
        }
        leafsets.push(set);
    }
    out
}

/// Robinson–Foulds distance between two dendrograms over the same leaves:
/// the number of clades present in exactly one tree. The normalized form
/// divides by the maximum possible (`2(n − 2)` for binary trees), giving
/// 0 for identical topologies and 1 for maximally conflicting ones.
pub fn robinson_foulds(a: &Dendrogram, b: &Dendrogram) -> usize {
    assert_eq!(a.n_leaves(), b.n_leaves(), "trees must share leaves");
    let ca = clades(a);
    let cb = clades(b);
    ca.symmetric_difference(&cb).count()
}

/// Normalized Robinson–Foulds in `[0, 1]`.
pub fn robinson_foulds_normalized(a: &Dendrogram, b: &Dendrogram) -> f64 {
    let n = a.n_leaves();
    if n <= 2 {
        return 0.0;
    }
    robinson_foulds(a, b) as f64 / (2.0 * (n as f64 - 2.0))
}

/// The Fowlkes–Mallows **Bₖ curve** (Fowlkes & Mallows, JASA 1983): for
/// each `k` in `2..=k_max`, cut both trees into `k` flat clusters and
/// compute the Fowlkes–Mallows index of the two partitions. High values
/// across `k` mean the trees agree at every granularity.
pub fn fowlkes_mallows_bk(a: &Dendrogram, b: &Dendrogram, k_max: usize) -> Vec<f64> {
    assert_eq!(a.n_leaves(), b.n_leaves(), "trees must share leaves");
    let k_max = k_max.min(a.n_leaves() - 1).max(2);
    (2..=k_max)
        .map(|k| fowlkes_mallows(&a.cut_k(k), &b.cut_k(k)))
        .collect()
}

/// Mean of the Bₖ curve — a single-number tree-agreement score in `[0,1]`.
pub fn mean_bk(a: &Dendrogram, b: &Dendrogram, k_max: usize) -> f64 {
    let curve = fowlkes_mallows_bk(a, b, k_max);
    if curve.is_empty() {
        return 0.0;
    }
    curve.iter().sum::<f64>() / curve.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::condensed::CondensedMatrix;
    use crate::distance::Metric;
    use crate::hac::{linkage, LinkageMethod};

    fn tree_of(pts: &[Vec<f64>], method: LinkageMethod) -> Dendrogram {
        let d = CondensedMatrix::pdist(pts, Metric::Euclidean);
        Dendrogram::from_merges(pts.len(), &linkage(&d, method))
    }

    fn line(n: usize) -> Vec<Vec<f64>> {
        (0..n).map(|i| vec![(i * i) as f64]).collect()
    }

    #[test]
    fn clades_count_for_binary_tree() {
        let t = tree_of(&line(6), LinkageMethod::Single);
        // A binary tree over n leaves has n-1 internal nodes; excluding
        // the root leaves n-2 non-trivial clades.
        assert_eq!(clades(&t).len(), 4);
    }

    #[test]
    fn rf_zero_for_identical_trees() {
        let t = tree_of(&line(8), LinkageMethod::Average);
        assert_eq!(robinson_foulds(&t, &t), 0);
        assert_eq!(robinson_foulds_normalized(&t, &t), 0.0);
    }

    #[test]
    fn rf_detects_topology_differences() {
        // Single and complete linkage disagree on chained data.
        let pts: Vec<Vec<f64>> = (0..10)
            .map(|i| vec![i as f64 * (1.0 + i as f64 * 0.1)])
            .collect();
        let a = tree_of(&pts, LinkageMethod::Single);
        let b = tree_of(&pts, LinkageMethod::Complete);
        let rf = robinson_foulds_normalized(&a, &b);
        assert!(rf > 0.0, "different linkages should differ on chained data");
        assert!(rf <= 1.0);
        // Symmetry.
        assert_eq!(robinson_foulds(&a, &b), robinson_foulds(&b, &a));
    }

    #[test]
    fn bk_curve_is_one_for_identical_trees() {
        let t = tree_of(&line(9), LinkageMethod::Average);
        for v in fowlkes_mallows_bk(&t, &t, 8) {
            assert!((v - 1.0).abs() < 1e-12);
        }
        assert!((mean_bk(&t, &t, 8) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bk_curve_length_and_bounds() {
        let pts: Vec<Vec<f64>> = (0..12)
            .map(|i| vec![(i as f64 * 2.7).sin() * 9.0, (i as f64 * 1.3).cos() * 4.0])
            .collect();
        let a = tree_of(&pts, LinkageMethod::Average);
        let b = tree_of(&pts, LinkageMethod::Ward);
        let curve = fowlkes_mallows_bk(&a, &b, 10);
        assert_eq!(curve.len(), 9); // k = 2..=10
        assert!(curve.iter().all(|&v| (0.0..=1.0 + 1e-12).contains(&v)));
    }

    #[test]
    fn mean_bk_ranks_similar_trees_higher() {
        let pts: Vec<Vec<f64>> = (0..14)
            .map(|i| vec![(i as f64 * 1.9).sin() * 8.0, (i as f64 * 0.7).cos() * 5.0])
            .collect();
        let avg = tree_of(&pts, LinkageMethod::Average);
        let weighted = tree_of(&pts, LinkageMethod::Weighted);
        let single = tree_of(&pts, LinkageMethod::Single);
        // Average and weighted linkage are near-identical variants; single
        // linkage chains and should agree less with average than weighted
        // does (or at most equally).
        assert!(mean_bk(&avg, &weighted, 10) >= mean_bk(&avg, &single, 10) - 1e-9);
    }
}
