//! SLINK (Sibson, *The Computer Journal* 1973) — the classic optimally
//! efficient single-linkage algorithm via the **pointer representation**:
//! for each point `i`, `lambda[i]` is the height at which `i` last ceases
//! to be the largest-indexed member of its cluster, and `pi[i]` is the
//! cluster it then joins. One pass per point, O(n²) time, O(n) memory —
//! no distance matrix mutation at all.
//!
//! Together with the Prim-MST path ([`crate::hac::single_linkage_mst`])
//! and the generic Lance–Williams driver, this gives three independent
//! single-linkage implementations that the tests cross-check exactly.

use crate::condensed::CondensedMatrix;
use crate::hac::Merge;
use crate::nnchain::merges_from_weighted_pairs;

/// The SLINK pointer representation.
#[derive(Debug, Clone)]
pub struct PointerRepresentation {
    /// `pi[i]`: the point `i` points at (its own index for the last point).
    pub pi: Vec<usize>,
    /// `lambda[i]`: the height at which `i` merges into `pi[i]`
    /// (`f64::INFINITY` for the last point).
    pub lambda: Vec<f64>,
}

/// Run SLINK, producing the pointer representation.
///
/// # Panics
/// If the matrix has fewer than 2 points.
pub fn slink(dist: &CondensedMatrix) -> PointerRepresentation {
    let n = dist.len();
    assert!(n >= 2, "need at least 2 points to cluster");
    let mut pi = vec![0usize; n];
    let mut lambda = vec![f64::INFINITY; n];
    let mut m = vec![0.0f64; n];

    pi[0] = 0;
    lambda[0] = f64::INFINITY;
    for i in 1..n {
        // Step 1: i starts as its own cluster representative.
        pi[i] = i;
        lambda[i] = f64::INFINITY;
        // Step 2: distances from i to all previous points.
        for (j, mj) in m.iter_mut().enumerate().take(i) {
            *mj = dist.get(i, j);
        }
        // Step 3: the Sibson update.
        for j in 0..i {
            if lambda[j] >= m[j] {
                m[pi[j]] = m[pi[j]].min(lambda[j]);
                lambda[j] = m[j];
                pi[j] = i;
            } else {
                m[pi[j]] = m[pi[j]].min(m[j]);
            }
        }
        // Step 4: relabel chains that now merge below their lambda.
        for j in 0..i {
            if lambda[j] >= lambda[pi[j]] {
                pi[j] = i;
            }
        }
    }
    PointerRepresentation { pi, lambda }
}

/// Single-linkage merges via SLINK (scipy `Z`-matrix shape, height
/// sorted).
pub fn slink_linkage(dist: &CondensedMatrix) -> Vec<Merge> {
    let n = dist.len();
    let rep = slink(dist);
    // Each point except the last contributes one merge edge
    // (i joins pi[i] at height lambda[i]).
    let edges: Vec<(f64, usize, usize)> = (0..n)
        .filter(|&i| rep.lambda[i].is_finite())
        .map(|i| (rep.lambda[i], i, rep.pi[i]))
        .collect();
    debug_assert_eq!(edges.len(), n - 1);
    merges_from_weighted_pairs(n, edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dendrogram::Dendrogram;
    use crate::distance::Metric;
    use crate::hac::single_linkage_mst;

    fn scatter(n: usize, seed: u64) -> Vec<Vec<f64>> {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 10_000) as f64 / 313.0 - 16.0
        };
        (0..n).map(|_| vec![next(), next()]).collect()
    }

    #[test]
    fn pointer_representation_invariants() {
        let pts = scatter(20, 3);
        let d = CondensedMatrix::pdist(&pts, Metric::Euclidean);
        let rep = slink(&d);
        let n = pts.len();
        // The last point is the terminal representative.
        assert_eq!(rep.pi[n - 1], n - 1);
        assert!(rep.lambda[n - 1].is_infinite());
        for i in 0..n - 1 {
            assert!(rep.pi[i] > i, "pi must point forward");
            assert!(rep.lambda[i].is_finite());
            assert!(rep.lambda[i] >= 0.0);
        }
    }

    #[test]
    fn matches_mst_single_linkage_exactly() {
        for seed in [1u64, 7, 42, 1337] {
            let pts = scatter(25, seed);
            let d = CondensedMatrix::pdist(&pts, Metric::Euclidean);
            let a = slink_linkage(&d);
            let b = single_linkage_mst(&d);
            assert_eq!(a.len(), b.len());
            // Distinct generic heights -> identical Z matrices.
            for (x, y) in a.iter().zip(&b) {
                assert!((x.distance - y.distance).abs() < 1e-9, "seed {seed}");
                assert_eq!((x.a, x.b, x.size), (y.a, y.b, y.size), "seed {seed}");
            }
        }
    }

    #[test]
    fn cophenetic_matches_mst_path() {
        let pts = scatter(18, 9);
        let d = CondensedMatrix::pdist(&pts, Metric::Euclidean);
        let t1 = Dendrogram::from_merges(18, &slink_linkage(&d));
        let t2 = Dendrogram::from_merges(18, &single_linkage_mst(&d));
        let (c1, c2) = (t1.cophenetic(), t2.cophenetic());
        for (i, j, v) in c1.iter_pairs() {
            assert!((v - c2.get(i, j)).abs() < 1e-9);
        }
    }

    #[test]
    fn line_example() {
        let pts = vec![vec![0.0], vec![1.0], vec![4.0], vec![10.0]];
        let d = CondensedMatrix::pdist(&pts, Metric::Euclidean);
        let m = slink_linkage(&d);
        let heights: Vec<f64> = m.iter().map(|x| x.distance).collect();
        assert_eq!(heights, vec![1.0, 3.0, 6.0]);
    }

    #[test]
    fn two_points() {
        let d = CondensedMatrix::from_condensed(2, vec![2.5]);
        let m = slink_linkage(&d);
        assert_eq!(m.len(), 1);
        assert!((m[0].distance - 2.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least 2 points")]
    fn single_point_rejected() {
        let d = CondensedMatrix::from_condensed(1, vec![]);
        let _ = slink(&d);
    }
}
