//! Hierarchical agglomerative clustering (HAC).
//!
//! Equivalent of `scipy.cluster.hierarchy.linkage`: starting from
//! singleton clusters, repeatedly merge the two closest clusters and
//! update inter-cluster distances with the **Lance–Williams** recurrence
//!
//! `d(k, i∪j) = αᵢ d(k,i) + αⱼ d(k,j) + β d(i,j) + γ |d(k,i) − d(k,j)|`
//!
//! whose coefficients select the linkage method. Ward, centroid and median
//! linkage follow the scipy convention: the recurrence runs on *squared*
//! Euclidean distances and the reported merge heights are square-rooted.
//!
//! Complexity: the generic path keeps a nearest-neighbour cache per active
//! cluster (O(n²) typical, O(n³) adversarial); single linkage additionally
//! has a guaranteed-O(n²) MST fast path ([`single_linkage_mst`]) used
//! automatically by [`linkage`].
//!
//! Cluster labels follow the scipy convention: leaves are `0..n`, the
//! cluster created by merge step `t` is `n + t`.

use serde::{Deserialize, Serialize};

use crate::condensed::CondensedMatrix;

/// Linkage method for HAC.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LinkageMethod {
    /// Minimum pairwise distance (chaining-prone; MST fast path).
    Single,
    /// Maximum pairwise distance.
    Complete,
    /// Unweighted average (UPGMA) — a common default for cuisine-style
    /// categorical profiles and the default of the cuisine-atlas pipeline.
    Average,
    /// Weighted average (WPGMA).
    Weighted,
    /// Ward's minimum-variance criterion (requires Euclidean input).
    Ward,
    /// Centroid linkage (UPGMC; requires Euclidean input, may invert).
    Centroid,
    /// Median linkage (WPGMC; requires Euclidean input, may invert).
    Median,
}

impl LinkageMethod {
    /// All methods, for sweeps.
    pub const ALL: [LinkageMethod; 7] = [
        LinkageMethod::Single,
        LinkageMethod::Complete,
        LinkageMethod::Average,
        LinkageMethod::Weighted,
        LinkageMethod::Ward,
        LinkageMethod::Centroid,
        LinkageMethod::Median,
    ];

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            LinkageMethod::Single => "single",
            LinkageMethod::Complete => "complete",
            LinkageMethod::Average => "average",
            LinkageMethod::Weighted => "weighted",
            LinkageMethod::Ward => "ward",
            LinkageMethod::Centroid => "centroid",
            LinkageMethod::Median => "median",
        }
    }

    /// Whether the method operates on squared Euclidean distances
    /// internally (scipy convention).
    pub(crate) fn squares_internally(self) -> bool {
        matches!(
            self,
            LinkageMethod::Ward | LinkageMethod::Centroid | LinkageMethod::Median
        )
    }

    /// Whether merge heights are guaranteed non-decreasing.
    pub fn is_monotone(self) -> bool {
        !matches!(self, LinkageMethod::Centroid | LinkageMethod::Median)
    }

    /// Lance–Williams coefficients `(αᵢ, αⱼ, β, γ)` for merging clusters
    /// of sizes `ni`, `nj` as seen from a cluster of size `nk`.
    pub(crate) fn lance_williams(self, ni: f64, nj: f64, nk: f64) -> (f64, f64, f64, f64) {
        match self {
            LinkageMethod::Single => (0.5, 0.5, 0.0, -0.5),
            LinkageMethod::Complete => (0.5, 0.5, 0.0, 0.5),
            LinkageMethod::Average => {
                let s = ni + nj;
                (ni / s, nj / s, 0.0, 0.0)
            }
            LinkageMethod::Weighted => (0.5, 0.5, 0.0, 0.0),
            LinkageMethod::Ward => {
                let s = ni + nj + nk;
                ((ni + nk) / s, (nj + nk) / s, -nk / s, 0.0)
            }
            LinkageMethod::Centroid => {
                let s = ni + nj;
                (ni / s, nj / s, -(ni * nj) / (s * s), 0.0)
            }
            LinkageMethod::Median => (0.5, 0.5, -0.25, 0.0),
        }
    }
}

impl std::fmt::Display for LinkageMethod {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One agglomeration step (a row of scipy's `Z` matrix).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Merge {
    /// Label of the first merged cluster (`< n` means leaf).
    pub a: usize,
    /// Label of the second merged cluster.
    pub b: usize,
    /// Inter-cluster distance at which the merge happened.
    pub distance: f64,
    /// Number of leaves in the new cluster.
    pub size: usize,
}

/// Cluster a condensed distance matrix; returns the `n − 1` merges in
/// agglomeration order.
///
/// # Panics
/// If the matrix has fewer than 2 points.
pub fn linkage(dist: &CondensedMatrix, method: LinkageMethod) -> Vec<Merge> {
    assert!(dist.len() >= 2, "need at least 2 points to cluster");
    match method {
        LinkageMethod::Single => single_linkage_mst(dist),
        _ => linkage_generic(dist, method),
    }
}

/// Generic Lance–Williams agglomeration with nearest-neighbour caching.
fn linkage_generic(dist: &CondensedMatrix, method: LinkageMethod) -> Vec<Merge> {
    let n = dist.len();
    let working = if method.squares_internally() {
        dist.map(|d| d * d)
    } else {
        dist.clone()
    };
    let mut d = working.to_square();
    let mut active: Vec<bool> = vec![true; n];
    let mut label: Vec<usize> = (0..n).collect();
    let mut size: Vec<f64> = vec![1.0; n];

    // nn[i] = (distance to nearest active j != i, j); lazily repaired.
    let mut nn: Vec<(f64, usize)> = (0..n).map(|i| nearest(&d, &active, i)).collect();

    let mut merges = Vec::with_capacity(n - 1);
    for step in 0..(n - 1) {
        // Find the globally closest pair through the caches, repairing
        // stale entries (pointing at deactivated rows) on the fly.
        let mut best_i = usize::MAX;
        let mut best = f64::INFINITY;
        for i in 0..n {
            if !active[i] {
                continue;
            }
            if nn[i].1 != usize::MAX && !active[nn[i].1] {
                nn[i] = nearest(&d, &active, i);
            }
            if nn[i].1 != usize::MAX && nn[i].0 < best {
                best = nn[i].0;
                best_i = i;
            }
        }
        let i = best_i;
        let j = nn[i].1;
        debug_assert!(i != usize::MAX && j != usize::MAX);
        let (i, j) = if i < j { (i, j) } else { (j, i) };
        let dij = d[i][j];

        let height = if method.squares_internally() {
            dij.max(0.0).sqrt()
        } else {
            dij
        };
        let (la, lb) = (label[i].min(label[j]), label[i].max(label[j]));
        let new_size = size[i] + size[j];
        merges.push(Merge {
            a: la,
            b: lb,
            distance: height,
            size: new_size as usize,
        });

        // Merge j into i.
        let (ni, nj) = (size[i], size[j]);
        active[j] = false;
        for k in 0..n {
            if !active[k] || k == i {
                continue;
            }
            let (ai, aj, beta, gamma) = method.lance_williams(ni, nj, size[k]);
            let dki = d[k][i];
            let dkj = d[k][j];
            let nd = ai * dki + aj * dkj + beta * dij + gamma * (dki - dkj).abs();
            d[k][i] = nd;
            d[i][k] = nd;
        }
        size[i] = new_size;
        label[i] = n + step;
        nn[i] = nearest(&d, &active, i);
        // Rows whose cached nn was i or j must be repaired; also any row
        // whose distance to i improved below its cached nn.
        for k in 0..n {
            if !active[k] || k == i {
                continue;
            }
            if nn[k].1 == i || nn[k].1 == j {
                nn[k] = nearest(&d, &active, k);
            } else if d[k][i] < nn[k].0 {
                nn[k] = (d[k][i], i);
            }
        }
    }
    merges
}

fn nearest(d: &[Vec<f64>], active: &[bool], i: usize) -> (f64, usize) {
    let mut best = (f64::INFINITY, usize::MAX);
    for (j, row) in d[i].iter().enumerate() {
        if j != i && active[j] && *row < best.0 {
            best = (*row, j);
        }
    }
    best
}

/// Single linkage via Prim's minimum-spanning-tree, O(n²): the single-
/// linkage dendrogram's merges are exactly the MST edges sorted by weight.
pub fn single_linkage_mst(dist: &CondensedMatrix) -> Vec<Merge> {
    let n = dist.len();
    assert!(n >= 2, "need at least 2 points to cluster");

    // Prim's algorithm.
    let mut in_tree = vec![false; n];
    let mut min_edge = vec![(f64::INFINITY, usize::MAX); n]; // (weight, from)
    let mut edges: Vec<(f64, usize, usize)> = Vec::with_capacity(n - 1);
    in_tree[0] = true;
    for (j, edge) in min_edge.iter_mut().enumerate().skip(1) {
        *edge = (dist.get(0, j), 0);
    }
    for _ in 1..n {
        let mut best = usize::MAX;
        let mut bw = f64::INFINITY;
        for (j, &(w, _)) in min_edge.iter().enumerate() {
            if !in_tree[j] && w < bw {
                bw = w;
                best = j;
            }
        }
        in_tree[best] = true;
        edges.push((bw, min_edge[best].1, best));
        for j in 0..n {
            if !in_tree[j] {
                let w = dist.get(best, j);
                if w < min_edge[j].0 {
                    min_edge[j] = (w, best);
                }
            }
        }
    }

    // Sort MST edges by weight and union-find into merges (shared with
    // the NN-chain driver).
    crate::nnchain::merges_from_weighted_pairs(n, edges)
}

/// Cut a merge sequence into exactly `k` flat clusters (the scipy
/// `fcluster(..., criterion="maxclust")` equivalent): undo the last
/// `k − 1` merges. Returns a label in `0..k` per leaf.
pub fn cut_k(n_leaves: usize, merges: &[Merge], k: usize) -> Vec<usize> {
    assert!(k >= 1 && k <= n_leaves, "k must be in 1..=n_leaves");
    assert_eq!(merges.len(), n_leaves - 1, "merge list must be complete");
    // Apply the first n-k merges with union-find.
    let mut parent: Vec<usize> = (0..2 * n_leaves - 1).collect();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    for (step, m) in merges.iter().take(n_leaves - k).enumerate() {
        let new_label = n_leaves + step;
        let ra = find(&mut parent, m.a);
        let rb = find(&mut parent, m.b);
        parent[ra] = new_label;
        parent[rb] = new_label;
    }
    // Relabel roots densely.
    let mut root_label: std::collections::HashMap<usize, usize> = std::collections::HashMap::new();
    let mut labels = Vec::with_capacity(n_leaves);
    for leaf in 0..n_leaves {
        let r = find(&mut parent, leaf);
        let next = root_label.len();
        let l = *root_label.entry(r).or_insert(next);
        labels.push(l);
    }
    labels
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::Metric;

    fn line_points() -> CondensedMatrix {
        // 1-D points at 0, 1, 4, 10.
        let pts = vec![vec![0.0], vec![1.0], vec![4.0], vec![10.0]];
        CondensedMatrix::pdist(&pts, Metric::Euclidean)
    }

    #[test]
    fn single_linkage_on_line() {
        let m = linkage(&line_points(), LinkageMethod::Single);
        assert_eq!(m.len(), 3);
        assert_eq!((m[0].a, m[0].b), (0, 1));
        assert!((m[0].distance - 1.0).abs() < 1e-12);
        assert_eq!((m[1].a, m[1].b), (2, 4));
        assert!((m[1].distance - 3.0).abs() < 1e-12);
        assert_eq!((m[2].a, m[2].b), (3, 5));
        assert!((m[2].distance - 6.0).abs() < 1e-12);
        assert_eq!(m[2].size, 4);
    }

    #[test]
    fn complete_linkage_on_line() {
        let m = linkage(&line_points(), LinkageMethod::Complete);
        assert!((m[0].distance - 1.0).abs() < 1e-12);
        assert!((m[1].distance - 4.0).abs() < 1e-12);
        assert!((m[2].distance - 10.0).abs() < 1e-12);
    }

    #[test]
    fn average_linkage_on_line() {
        let m = linkage(&line_points(), LinkageMethod::Average);
        assert!((m[1].distance - 3.5).abs() < 1e-12);
        let last = m[2].distance;
        assert!((last - (10.0 + 9.0 + 6.0) / 3.0).abs() < 1e-12);
    }

    #[test]
    fn ward_linkage_matches_hand_computation() {
        let m = linkage(&line_points(), LinkageMethod::Ward);
        assert!((m[0].distance - 1.0).abs() < 1e-12);
        assert!((m[1].distance - (49.0f64 / 3.0).sqrt()).abs() < 1e-9);
        assert!((m[2].distance - (416.666_666_666_f64 / 4.0).sqrt()).abs() < 1e-6);
    }

    #[test]
    fn monotone_methods_produce_nondecreasing_heights() {
        let pts: Vec<Vec<f64>> = (0..12)
            .map(|i| vec![(i as f64 * 1.37).sin() * 5.0, (i as f64 * 0.77).cos() * 3.0])
            .collect();
        let d = CondensedMatrix::pdist(&pts, Metric::Euclidean);
        for method in LinkageMethod::ALL {
            if !method.is_monotone() {
                continue;
            }
            let m = linkage(&d, method);
            for w in m.windows(2) {
                assert!(
                    w[1].distance >= w[0].distance - 1e-9,
                    "{method}: heights decreased: {} then {}",
                    w[0].distance,
                    w[1].distance
                );
            }
        }
    }

    #[test]
    fn every_method_produces_a_valid_merge_sequence() {
        let pts: Vec<Vec<f64>> = (0..9)
            .map(|i| {
                vec![
                    (i % 3) as f64 * 4.0,
                    (i / 3) as f64 * 4.0 + (i as f64) * 0.01,
                ]
            })
            .collect();
        let d = CondensedMatrix::pdist(&pts, Metric::Euclidean);
        for method in LinkageMethod::ALL {
            let m = linkage(&d, method);
            assert_eq!(m.len(), 8, "{method}");
            // Labels: each cluster id used as input at most once.
            let mut used = std::collections::HashSet::new();
            for (step, merge) in m.iter().enumerate() {
                assert!(merge.a < merge.b, "{method}: canonical order");
                assert!(merge.b < 9 + step, "{method}: label from the future");
                assert!(used.insert(merge.a), "{method}: cluster {} reused", merge.a);
                assert!(used.insert(merge.b), "{method}: cluster {} reused", merge.b);
            }
            assert_eq!(m[7].size, 9, "{method}: final cluster holds all leaves");
        }
    }

    #[test]
    fn two_points_single_merge() {
        let d = CondensedMatrix::from_condensed(2, vec![3.5]);
        for method in LinkageMethod::ALL {
            let m = linkage(&d, method);
            assert_eq!(m.len(), 1);
            assert_eq!((m[0].a, m[0].b), (0, 1));
            assert!((m[0].distance - 3.5).abs() < 1e-12, "{method}");
        }
    }

    #[test]
    fn mst_single_equals_generic_single() {
        let pts: Vec<Vec<f64>> = (0..15)
            .map(|i| vec![(i as f64 * 2.13).sin() * 7.0, (i as f64 * 1.91).cos() * 2.0])
            .collect();
        let d = CondensedMatrix::pdist(&pts, Metric::Euclidean);
        let mst = single_linkage_mst(&d);
        let gen = linkage_generic(&d, LinkageMethod::Single);
        // Heights must agree as multisets (label assignment can permute at
        // ties; with generic data there are none).
        let mut h1: Vec<f64> = mst.iter().map(|m| m.distance).collect();
        let mut h2: Vec<f64> = gen.iter().map(|m| m.distance).collect();
        h1.sort_by(|a, b| a.partial_cmp(b).unwrap());
        h2.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for (a, b) in h1.iter().zip(&h2) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn cut_k_produces_expected_partitions() {
        let m = linkage(&line_points(), LinkageMethod::Single);
        let labels2 = cut_k(4, &m, 2);
        // {0,1,4} vs {10}.
        assert_eq!(labels2[0], labels2[1]);
        assert_eq!(labels2[1], labels2[2]);
        assert_ne!(labels2[2], labels2[3]);
        let labels1 = cut_k(4, &m, 1);
        assert!(labels1.iter().all(|&l| l == 0));
        let labels4 = cut_k(4, &m, 4);
        let distinct: std::collections::HashSet<usize> = labels4.iter().copied().collect();
        assert_eq!(distinct.len(), 4);
    }

    #[test]
    #[should_panic(expected = "at least 2 points")]
    fn single_point_panics() {
        let d = CondensedMatrix::from_condensed(1, vec![]);
        let _ = linkage(&d, LinkageMethod::Average);
    }
}
