//! Choosing the number of clusters: silhouette sweeps and the **gap
//! statistic** (Tibshirani, Walther & Hastie 2001).
//!
//! The paper's Figure 1 shows the elbow method failing on the cuisine
//! pattern vectors; this module supplies the two standard stronger
//! criteria so that failure can be corroborated rather than eyeballed:
//! a silhouette-vs-k sweep (peaks at a meaningful k when real structure
//! exists) and the gap statistic (compares the WCSS drop against uniform
//! reference data; `gap(k) ≥ gap(k+1) − s(k+1)` selects k).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::condensed::CondensedMatrix;
use crate::distance::Metric;
use crate::kmeans::{kmeans, KMeansConfig};
use crate::validation::silhouette;

/// Mean silhouette for k-means clusterings with `k = 2..=k_max`.
/// Returns `(k, silhouette)` pairs.
pub fn silhouette_sweep(points: &[Vec<f64>], k_max: usize, seed: u64) -> Vec<(usize, f64)> {
    let n = points.len();
    let dist = CondensedMatrix::pdist(points, Metric::Euclidean);
    (2..=k_max.min(n.saturating_sub(1)))
        .map(|k| {
            let r = kmeans(points, &KMeansConfig::new(k).with_seed(seed));
            (k, silhouette(&dist, &r.labels))
        })
        .collect()
}

/// The best `(k, silhouette)` of a sweep.
pub fn best_silhouette(points: &[Vec<f64>], k_max: usize, seed: u64) -> Option<(usize, f64)> {
    silhouette_sweep(points, k_max, seed)
        .into_iter()
        .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
}

/// One point of the gap-statistic curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GapPoint {
    /// Number of clusters.
    pub k: usize,
    /// `gap(k) = E*[log WCSS_ref] − log WCSS_data`.
    pub gap: f64,
    /// Standard error of the reference term (`s_k`).
    pub std_err: f64,
}

/// Compute the gap statistic for `k = 1..=k_max` with `n_refs` uniform
/// reference datasets drawn from the data's bounding box.
pub fn gap_statistic(points: &[Vec<f64>], k_max: usize, n_refs: usize, seed: u64) -> Vec<GapPoint> {
    assert!(!points.is_empty(), "no points");
    assert!(n_refs >= 1, "need at least one reference dataset");
    let n = points.len();
    let dim = points[0].len();
    let k_max = k_max.min(n);

    // Bounding box of the data.
    let mut lo = vec![f64::INFINITY; dim];
    let mut hi = vec![f64::NEG_INFINITY; dim];
    for p in points {
        for (d, &x) in p.iter().enumerate() {
            lo[d] = lo[d].min(x);
            hi[d] = hi[d].max(x);
        }
    }

    let log_wcss = |pts: &[Vec<f64>], k: usize, seed: u64| -> f64 {
        let w = kmeans(pts, &KMeansConfig::new(k).with_seed(seed)).wcss;
        w.max(1e-12).ln()
    };

    let mut out = Vec::with_capacity(k_max);
    for k in 1..=k_max {
        let data_term = log_wcss(points, k, seed);
        let mut ref_terms = Vec::with_capacity(n_refs);
        for r in 0..n_refs {
            let mut rng = StdRng::seed_from_u64(seed ^ (0xA5A5_0000 + r as u64));
            let reference: Vec<Vec<f64>> = (0..n)
                .map(|_| {
                    (0..dim)
                        .map(|d| {
                            if (hi[d] - lo[d]).abs() < 1e-12 {
                                lo[d]
                            } else {
                                rng.gen_range(lo[d]..hi[d])
                            }
                        })
                        .collect()
                })
                .collect();
            ref_terms.push(log_wcss(&reference, k, seed.wrapping_add(r as u64)));
        }
        let mean = ref_terms.iter().sum::<f64>() / n_refs as f64;
        let var = ref_terms
            .iter()
            .map(|t| (t - mean) * (t - mean))
            .sum::<f64>()
            / n_refs as f64;
        // Tibshirani's s_k includes the simulation-error inflation factor.
        let std_err = var.sqrt() * (1.0 + 1.0 / n_refs as f64).sqrt();
        out.push(GapPoint {
            k,
            gap: mean - data_term,
            std_err,
        });
    }
    out
}

/// Tibshirani's selection rule, hardened: the smallest `k` with a
/// **non-negative** gap and `gap(k) ≥ gap(k+1) − s(k+1)`. (A negative gap
/// means the data clusters *worse* than a uniform reference at that k —
/// e.g. two well-separated blobs forced into one k-means cluster — so
/// such k cannot be evidence of structure; the textbook rule without this
/// guard degenerates to k=1 on multi-blob data.) Falls back to the argmax
/// of the gap when no k satisfies the inequality; returns `None` when
/// every gap is negative.
pub fn gap_select(curve: &[GapPoint]) -> Option<usize> {
    for w in curve.windows(2) {
        if w[0].gap >= 0.0 && w[0].gap >= w[1].gap - w[1].std_err {
            return Some(w[0].k);
        }
    }
    curve
        .iter()
        .max_by(|a, b| {
            a.gap
                .partial_cmp(&b.gap)
                .unwrap_or(std::cmp::Ordering::Equal)
        })
        .filter(|p| p.gap >= 0.0)
        .map(|p| p.k)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn three_blobs() -> Vec<Vec<f64>> {
        let mut pts = Vec::new();
        for i in 0..8 {
            let jitter = (i as f64) * 0.03;
            pts.push(vec![0.0 + jitter, 0.0]);
            pts.push(vec![10.0 + jitter, 10.0]);
            pts.push(vec![20.0 - jitter, 0.0]);
        }
        pts
    }

    #[test]
    fn silhouette_peaks_at_three_for_three_blobs() {
        let (k, s) = best_silhouette(&three_blobs(), 8, 3).expect("sweep non-empty");
        assert_eq!(k, 3);
        assert!(s > 0.8, "clean blobs: silhouette {s}");
    }

    #[test]
    fn silhouette_sweep_shape() {
        let sweep = silhouette_sweep(&three_blobs(), 6, 3);
        assert_eq!(sweep.len(), 5); // k = 2..=6
        assert!(sweep.iter().all(|&(k, _)| (2..=6).contains(&k)));
        assert!(sweep.iter().all(|&(_, s)| (-1.0..=1.0).contains(&s)));
    }

    #[test]
    fn gap_statistic_selects_three_for_three_blobs() {
        let curve = gap_statistic(&three_blobs(), 6, 8, 11);
        assert_eq!(curve.len(), 6);
        let k = gap_select(&curve).expect("structured data selects a k");
        assert!(
            (2..=4).contains(&k),
            "blob structure should be detected near k=3, got {k}: {curve:?}"
        );
    }

    #[test]
    fn gap_statistic_weak_on_uniform_scatter() {
        // Uniform-ish scatter: the gap curve should not show the strong
        // early stopping that blob data shows; selected k (if any) has a
        // small gap value.
        let mut rng = StdRng::seed_from_u64(5);
        let pts: Vec<Vec<f64>> = (0..60)
            .map(|_| vec![rng.gen_range(0.0..10.0), rng.gen_range(0.0..10.0)])
            .collect();
        let curve = gap_statistic(&pts, 6, 8, 11);
        let max_gap = curve.iter().map(|p| p.gap).fold(f64::MIN, f64::max);
        let blob_curve = gap_statistic(&three_blobs(), 6, 8, 11);
        let blob_max = blob_curve.iter().map(|p| p.gap).fold(f64::MIN, f64::max);
        assert!(
            max_gap < blob_max,
            "uniform scatter ({max_gap}) must gap below blobs ({blob_max})"
        );
    }

    #[test]
    fn gap_handles_degenerate_dimension() {
        // One constant coordinate: bounding box has zero width there.
        let pts: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64, 7.0]).collect();
        let curve = gap_statistic(&pts, 3, 4, 2);
        assert_eq!(curve.len(), 3);
        assert!(curve.iter().all(|p| p.gap.is_finite()));
    }

    #[test]
    fn gap_select_falls_back_to_argmax_when_curve_always_improves() {
        let curve = vec![
            GapPoint {
                k: 1,
                gap: 0.0,
                std_err: 0.01,
            },
            GapPoint {
                k: 2,
                gap: 1.0,
                std_err: 0.01,
            },
            GapPoint {
                k: 3,
                gap: 2.0,
                std_err: 0.01,
            },
        ];
        assert_eq!(gap_select(&curve), Some(3));
    }

    #[test]
    fn gap_select_none_when_all_gaps_negative() {
        let curve = vec![
            GapPoint {
                k: 1,
                gap: -0.5,
                std_err: 0.01,
            },
            GapPoint {
                k: 2,
                gap: -1.0,
                std_err: 0.01,
            },
        ];
        assert_eq!(gap_select(&curve), None);
    }

    #[test]
    fn gap_select_skips_negative_prefix() {
        let curve = vec![
            GapPoint {
                k: 1,
                gap: -0.8,
                std_err: 0.1,
            },
            GapPoint {
                k: 2,
                gap: -0.9,
                std_err: 0.2,
            },
            GapPoint {
                k: 3,
                gap: 7.5,
                std_err: 0.2,
            },
            GapPoint {
                k: 4,
                gap: 7.4,
                std_err: 0.2,
            },
        ];
        assert_eq!(gap_select(&curve), Some(3));
    }
}
