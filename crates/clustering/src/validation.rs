//! Cluster and dendrogram validation indices.
//!
//! The paper validates its cuisine trees *qualitatively* against a
//! geography-based tree. This module quantifies that comparison:
//!
//! * [`pearson`] / [`spearman`] correlation between condensed matrices;
//! * [`cophenetic_correlation`] — how faithfully a dendrogram preserves
//!   the input distances;
//! * [`bakers_gamma`] — rank correlation between two trees' cophenetic
//!   matrices (tree–tree similarity);
//! * [`adjusted_rand_index`] and [`fowlkes_mallows`] — flat-partition
//!   agreement;
//! * [`silhouette`] — flat-cluster quality under any metric.

use crate::condensed::CondensedMatrix;
use crate::dendrogram::Dendrogram;

/// Pearson correlation between two equal-length samples. Returns 0 when
/// either sample has zero variance.
pub fn pearson(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "samples must have equal length");
    let n = x.len();
    if n == 0 {
        return 0.0;
    }
    let mx = x.iter().sum::<f64>() / n as f64;
    let my = y.iter().sum::<f64>() / n as f64;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (a, b) in x.iter().zip(y) {
        cov += (a - mx) * (b - my);
        vx += (a - mx) * (a - mx);
        vy += (b - my) * (b - my);
    }
    if vx <= 0.0 || vy <= 0.0 {
        return 0.0;
    }
    cov / (vx * vy).sqrt()
}

/// Average ranks (ties get the mean of their positions).
fn ranks(x: &[f64]) -> Vec<f64> {
    let mut idx: Vec<usize> = (0..x.len()).collect();
    idx.sort_by(|&a, &b| x[a].partial_cmp(&x[b]).unwrap_or(std::cmp::Ordering::Equal));
    let mut out = vec![0.0; x.len()];
    let mut i = 0;
    while i < idx.len() {
        let mut j = i;
        while j + 1 < idx.len() && (x[idx[j + 1]] - x[idx[i]]).abs() < 1e-12 {
            j += 1;
        }
        let avg_rank = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            out[k] = avg_rank;
        }
        i = j + 1;
    }
    out
}

/// Spearman rank correlation (Pearson over average ranks).
pub fn spearman(x: &[f64], y: &[f64]) -> f64 {
    pearson(&ranks(x), &ranks(y))
}

/// Cophenetic correlation coefficient of a dendrogram against the original
/// distances (scipy `cophenet`).
pub fn cophenetic_correlation(tree: &Dendrogram, original: &CondensedMatrix) -> f64 {
    let coph = tree.cophenetic();
    pearson(coph.data(), original.data())
}

/// Baker's gamma between two dendrograms over the same leaves: the
/// Spearman correlation of their cophenetic matrices. 1 means identical
/// merge structure; ~0 means unrelated.
pub fn bakers_gamma(a: &Dendrogram, b: &Dendrogram) -> f64 {
    assert_eq!(a.n_leaves(), b.n_leaves(), "trees must share leaves");
    spearman(a.cophenetic().data(), b.cophenetic().data())
}

/// Pearson correlation between two condensed distance matrices over the
/// same points (direct matrix-level tree/geography comparison).
pub fn matrix_correlation(a: &CondensedMatrix, b: &CondensedMatrix) -> f64 {
    assert_eq!(a.len(), b.len(), "matrices must be over the same points");
    pearson(a.data(), b.data())
}

/// Contingency counts between two labelings.
fn contingency(a: &[usize], b: &[usize]) -> (Vec<Vec<u64>>, Vec<u64>, Vec<u64>) {
    let ka = a.iter().max().map_or(0, |&m| m + 1);
    let kb = b.iter().max().map_or(0, |&m| m + 1);
    let mut table = vec![vec![0u64; kb]; ka];
    for (&x, &y) in a.iter().zip(b) {
        table[x][y] += 1;
    }
    let rows: Vec<u64> = table.iter().map(|r| r.iter().sum()).collect();
    let cols: Vec<u64> = (0..kb).map(|j| table.iter().map(|r| r[j]).sum()).collect();
    (table, rows, cols)
}

fn choose2(x: u64) -> f64 {
    (x as f64) * (x as f64 - 1.0) / 2.0
}

/// Adjusted Rand Index between two flat labelings (1 = identical
/// partitions, ~0 = chance agreement).
pub fn adjusted_rand_index(a: &[usize], b: &[usize]) -> f64 {
    assert_eq!(a.len(), b.len(), "labelings must cover the same points");
    let n = a.len() as u64;
    if n < 2 {
        return 1.0;
    }
    let (table, rows, cols) = contingency(a, b);
    let sum_ij: f64 = table.iter().flatten().map(|&c| choose2(c)).sum();
    let sum_a: f64 = rows.iter().map(|&c| choose2(c)).sum();
    let sum_b: f64 = cols.iter().map(|&c| choose2(c)).sum();
    let total = choose2(n);
    let expected = sum_a * sum_b / total;
    let max_index = 0.5 * (sum_a + sum_b);
    if (max_index - expected).abs() < 1e-12 {
        return 1.0;
    }
    (sum_ij - expected) / (max_index - expected)
}

/// Fowlkes–Mallows index between two flat labelings (geometric mean of
/// pairwise precision and recall).
pub fn fowlkes_mallows(a: &[usize], b: &[usize]) -> f64 {
    assert_eq!(a.len(), b.len(), "labelings must cover the same points");
    let (table, rows, cols) = contingency(a, b);
    let tp: f64 = table.iter().flatten().map(|&c| choose2(c)).sum();
    let pa: f64 = rows.iter().map(|&c| choose2(c)).sum();
    let pb: f64 = cols.iter().map(|&c| choose2(c)).sum();
    if pa <= 0.0 || pb <= 0.0 {
        return 0.0;
    }
    tp / (pa * pb).sqrt()
}

/// Mean silhouette coefficient of a flat clustering under a precomputed
/// distance matrix. Points in singleton clusters contribute 0 (sklearn
/// convention). Returns 0 when every point is in one cluster.
pub fn silhouette(dist: &CondensedMatrix, labels: &[usize]) -> f64 {
    let n = dist.len();
    assert_eq!(labels.len(), n, "one label per point");
    let k = labels.iter().max().map_or(0, |&m| m + 1);
    if k <= 1 || n <= 1 {
        return 0.0;
    }
    let mut cluster_sizes = vec![0usize; k];
    for &l in labels {
        cluster_sizes[l] += 1;
    }
    let mut total = 0.0;
    for i in 0..n {
        let li = labels[i];
        if cluster_sizes[li] <= 1 {
            continue; // silhouette 0 for singletons
        }
        // Mean distance to own cluster (a) and nearest other cluster (b).
        let mut sums = vec![0.0; k];
        for j in 0..n {
            if i != j {
                sums[labels[j]] += dist.get(i, j);
            }
        }
        let a = sums[li] / (cluster_sizes[li] - 1) as f64;
        let b = (0..k)
            .filter(|&c| c != li && cluster_sizes[c] > 0)
            .map(|c| sums[c] / cluster_sizes[c] as f64)
            .fold(f64::INFINITY, f64::min);
        if b.is_finite() {
            total += (b - a) / a.max(b);
        }
    }
    total / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::Metric;
    use crate::hac::{linkage, LinkageMethod};

    #[test]
    fn pearson_basics() {
        assert!((pearson(&[1.0, 2.0, 3.0], &[2.0, 4.0, 6.0]) - 1.0).abs() < 1e-12);
        assert!((pearson(&[1.0, 2.0, 3.0], &[3.0, 2.0, 1.0]) + 1.0).abs() < 1e-12);
        assert_eq!(pearson(&[1.0, 1.0], &[1.0, 2.0]), 0.0, "zero variance");
        assert_eq!(pearson(&[], &[]), 0.0);
    }

    #[test]
    fn spearman_is_rank_based() {
        // Monotone nonlinear relation: spearman 1, pearson < 1.
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [1.0, 8.0, 27.0, 64.0];
        assert!((spearman(&x, &y) - 1.0).abs() < 1e-12);
        assert!(pearson(&x, &y) < 1.0);
    }

    #[test]
    fn ranks_handle_ties() {
        let r = ranks(&[1.0, 2.0, 2.0, 5.0]);
        assert_eq!(r, vec![1.0, 2.5, 2.5, 4.0]);
    }

    #[test]
    fn cophenetic_correlation_high_for_well_separated_data() {
        let pts = vec![
            vec![0.0],
            vec![0.2],
            vec![0.4],
            vec![10.0],
            vec![10.2],
            vec![10.4],
        ];
        let d = CondensedMatrix::pdist(&pts, Metric::Euclidean);
        let tree = Dendrogram::from_merges(6, &linkage(&d, LinkageMethod::Average));
        let c = cophenetic_correlation(&tree, &d);
        assert!(c > 0.95, "clean structure -> high CCC, got {c}");
    }

    #[test]
    fn bakers_gamma_identity_and_symmetry() {
        let pts = vec![vec![0.0], vec![1.0], vec![4.0], vec![10.0], vec![11.0]];
        let d = CondensedMatrix::pdist(&pts, Metric::Euclidean);
        let t1 = Dendrogram::from_merges(5, &linkage(&d, LinkageMethod::Average));
        let t2 = Dendrogram::from_merges(5, &linkage(&d, LinkageMethod::Complete));
        assert!((bakers_gamma(&t1, &t1) - 1.0).abs() < 1e-9);
        let g12 = bakers_gamma(&t1, &t2);
        let g21 = bakers_gamma(&t2, &t1);
        assert!((g12 - g21).abs() < 1e-12);
        assert!(g12 > 0.5, "same data, different linkage: related trees");
    }

    #[test]
    fn ari_perfect_permuted_and_random() {
        let a = vec![0, 0, 1, 1, 2, 2];
        let b = vec![2, 2, 0, 0, 1, 1]; // same partition, renamed
        assert!((adjusted_rand_index(&a, &b) - 1.0).abs() < 1e-12);
        let c = vec![0, 1, 0, 1, 0, 1]; // orthogonal partition
        assert!(adjusted_rand_index(&a, &c) < 0.1);
        assert!((adjusted_rand_index(&[0], &[0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fowlkes_mallows_bounds() {
        let a = vec![0, 0, 1, 1];
        assert!((fowlkes_mallows(&a, &a) - 1.0).abs() < 1e-12);
        let b = vec![0, 1, 0, 1];
        let fm = fowlkes_mallows(&a, &b);
        assert!((0.0..=1.0).contains(&fm));
        // All-singletons vs anything with no co-pairs: 0 by convention.
        assert_eq!(fowlkes_mallows(&[0, 1, 2], &[0, 0, 0]), 0.0);
    }

    #[test]
    fn silhouette_high_for_separated_clusters() {
        let pts = vec![vec![0.0], vec![0.1], vec![10.0], vec![10.1]];
        let d = CondensedMatrix::pdist(&pts, Metric::Euclidean);
        let good = silhouette(&d, &[0, 0, 1, 1]);
        assert!(good > 0.9, "separated clusters, got {good}");
        let bad = silhouette(&d, &[0, 1, 0, 1]);
        assert!(bad < 0.0, "mixed-up labels, got {bad}");
        assert_eq!(silhouette(&d, &[0, 0, 0, 0]), 0.0, "single cluster");
    }

    #[test]
    fn matrix_correlation_of_identical_matrices() {
        let m = CondensedMatrix::from_fn(4, |i, j| (i * 3 + j) as f64);
        assert!((matrix_correlation(&m, &m) - 1.0).abs() < 1e-12);
    }
}
